//! Simulated annealing with a greedy tail over [`SearchState`] moves.
//!
//! One annealing run is a pure function of `(initial state, config,
//! seed)`: every random decision comes from the caller's `StdRng`, so two
//! runs with the same inputs are bit-identical — the property the
//! restart-level parallelism of [`mod@crate::search`] relies on.

use rand::rngs::StdRng;
use rand::Rng;

use crate::objective::{cheap_score, ProxyWeights};
use crate::state::{Move, SearchState};

/// Schedule of one annealing restart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealConfig {
    /// Metropolis iterations with the geometric temperature schedule.
    pub iterations: usize,
    /// Greedy tail iterations (temperature zero: only improvements are
    /// accepted) — the "greedy local moves" polish after annealing.
    pub greedy_iterations: usize,
    /// Starting temperature (in cheap-score units).
    pub t0: f64,
    /// Final temperature of the annealing phase.
    pub t1: f64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        Self { iterations: 3_000, greedy_iterations: 1_000, t0: 1.0, t1: 0.01 }
    }
}

impl AnnealConfig {
    /// A reduced schedule for smoke runs and CI (`--quick`).
    #[must_use]
    pub fn quick() -> Self {
        Self { iterations: 400, greedy_iterations: 200, ..Self::default() }
    }
}

/// Proposal/acceptance counters of one annealing run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnnealStats {
    /// Moves proposed.
    pub proposed: usize,
    /// Moves rejected because they violated an invariant (overlap,
    /// disconnection, out-of-range, or no-op).
    pub invalid: usize,
    /// Moves accepted by the Metropolis criterion (including greedy-tail
    /// improvements).
    pub accepted: usize,
    /// Times a new best-so-far cheap score was recorded.
    pub improved: usize,
}

/// Outcome of one annealing run.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealOutcome {
    /// Best state visited, by cheap score.
    pub best: SearchState,
    /// Cheap score of `best`.
    pub best_cheap: f64,
    /// The state the run ended in (often, but not always, `best`).
    pub final_state: SearchState,
    /// Proposal/acceptance counters.
    pub stats: AnnealStats,
}

/// Anneals `state` under `config`, returning the best-visited and final
/// states. The input state must be connected with at least two tiles
/// (guaranteed by the [`crate::state`] constructors), otherwise `None`.
#[must_use]
pub fn anneal(
    state: &SearchState,
    config: &AnnealConfig,
    weights: &ProxyWeights,
    rng: &mut StdRng,
) -> Option<AnnealOutcome> {
    let mut current_state = state.clone();
    let mut current = cheap_score(&current_state.graph(), weights)?;
    let mut best = current;
    let mut best_state = current_state.clone();
    let mut stats = AnnealStats::default();

    let total = config.iterations + config.greedy_iterations;
    for k in 0..total {
        let temperature = if k < config.iterations && config.iterations > 1 {
            let progress = k as f64 / (config.iterations - 1) as f64;
            config.t0 * (config.t1 / config.t0).powf(progress)
        } else {
            0.0
        };
        stats.proposed += 1;
        let mv = propose(&current_state, rng);
        let Some(applied) = current_state.try_move(&mv) else {
            stats.invalid += 1;
            continue;
        };
        let Some(score) = cheap_score(&applied.graph, weights) else {
            // Unreachable (try_move guarantees connectivity), kept defensive.
            current_state.undo(applied);
            stats.invalid += 1;
            continue;
        };
        let accept = score <= current
            || (temperature > 0.0
                && rng.gen_bool(((current - score) / temperature).exp().clamp(0.0, 1.0)));
        if accept {
            stats.accepted += 1;
            current = score;
            if current < best {
                best = current;
                best_state = current_state.clone();
                stats.improved += 1;
            }
        } else {
            current_state.undo(applied);
        }
    }
    Some(AnnealOutcome {
        best: best_state,
        best_cheap: best,
        final_state: current_state,
        stats,
    })
}

/// Samples one move: mostly relocations (they reshape the floorplan), with
/// rotations and orientation swaps mixed in.
fn propose(state: &SearchState, rng: &mut StdRng) -> Move {
    let n = state.len();
    debug_assert!(n >= 2);
    match rng.gen_range(0..10u32) {
        0..=5 => {
            let i = rng.gen_range(0..n);
            let anchor = other_index(i, n, rng);
            let slot = rng.gen_range(0..state.relocate_slot_count(i, anchor));
            Move::Relocate { i, anchor, slot }
        }
        6 | 7 => Move::Rotate { i: rng.gen_range(0..n) },
        _ => {
            let i = rng.gen_range(0..n);
            Move::Swap { i, j: other_index(i, n, rng) }
        }
    }
}

/// A uniform index in `0..n` different from `i` (`n ≥ 2`).
fn other_index(i: usize, n: usize, rng: &mut StdRng) -> usize {
    let j = rng.gen_range(0..n - 1);
    if j >= i {
        j + 1
    } else {
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn run(seed: u64) -> AnnealOutcome {
        let init = SearchState::aligned_grid(16).unwrap();
        let config =
            AnnealConfig { iterations: 300, greedy_iterations: 100, ..AnnealConfig::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        anneal(&init, &config, &ProxyWeights::default(), &mut rng).unwrap()
    }

    #[test]
    fn anneal_is_deterministic_given_seed() {
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn different_seeds_explore_differently() {
        // Not guaranteed in principle, overwhelmingly likely in practice.
        assert_ne!(run(1).stats, run(2).stats);
    }

    #[test]
    fn best_never_worse_than_initial() {
        let init = SearchState::aligned_grid(16).unwrap();
        let initial_cheap = cheap_score(&init.graph(), &ProxyWeights::default()).unwrap();
        let out = run(7);
        assert!(out.best_cheap <= initial_cheap);
        assert!(out.best.is_overlap_free() && out.best.is_connected());
        assert!(out.final_state.is_overlap_free() && out.final_state.is_connected());
    }

    #[test]
    fn greedy_tail_only_improves() {
        // A pure greedy run (no hot phase) must end with best == final.
        let init = SearchState::aligned_grid(12).unwrap();
        let config =
            AnnealConfig { iterations: 0, greedy_iterations: 200, ..AnnealConfig::default() };
        let mut rng = StdRng::seed_from_u64(3);
        let out = anneal(&init, &config, &ProxyWeights::default(), &mut rng).unwrap();
        assert_eq!(
            out.best_cheap,
            cheap_score(&out.final_state.graph(), &ProxyWeights::default()).unwrap()
        );
    }
}
