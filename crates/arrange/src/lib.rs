//! Arrangement search: optimizing chiplet placements beyond HexaMesh.
//!
//! The HexaMesh paper hand-designs one arrangement family and shows it
//! beats the grid and brickwall; follow-up work (PlaceIT, Floorplet) shows
//! that *searching* placement-based topologies finds arrangements that
//! beat fixed patterns. This crate is that search for the reproduction: a
//! deterministic, seedable optimizer over rectangle placements from
//! `chiplet_layout`, discovering custom arrangements for any chiplet
//! count.
//!
//! The pipeline:
//!
//! * [`state`] — the mutable placement (identical 4×2 tiles on the brick
//!   lattice) with **swap / rotate / relocate** moves, each validated to
//!   preserve overlap-freedom and adjacency-graph connectivity before it
//!   takes effect;
//! * [`objective`] — the staged proxy objective: average distance +
//!   diameter every annealing step, the bisection-cut term (via the
//!   balanced partitioner) when candidates are archived;
//! * [`mod@anneal`] — simulated annealing with a zero-temperature greedy tail,
//!   a pure function of `(state, config, seed)`;
//! * [`mod@search`] — restart-parallel orchestration on the `xp` worker pool:
//!   three restarts seeded from the fixed arrangements (HexaMesh,
//!   brickwall, aligned grid) — so the winner provably scores no worse
//!   than the best fixed placement — plus random accretions, with
//!   coordinate-derived per-restart seeds so results are bit-identical
//!   for any `--workers` value;
//! * [`validate`] — cycle-accurate confirmation of top candidates: nocsim
//!   saturation throughput and closed-loop workload makespan.
//!
//! The `arrangement_search` binary in `hexamesh-bench` drives this crate
//! to rank {optimized, HexaMesh, brickwall, honeycomb, grid} and writes
//! the tracked `BENCH_arrange.{csv,json}` baselines.
//!
//! # Example
//!
//! ```
//! use chiplet_arrange::{search, SearchConfig};
//!
//! let mut config = SearchConfig::quick(7);
//! config.restarts = 3;
//! config.anneal.iterations = 60;
//! config.anneal.greedy_iterations = 20;
//! let outcome = search(&config)?;
//! let best = outcome.best();
//! assert_eq!(best.state.len(), 7);
//! assert!(best.state.is_overlap_free() && best.state.is_connected());
//! # Ok::<(), chiplet_arrange::ArrangeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod anneal;
pub mod objective;
pub mod search;
pub mod state;
pub mod study;
pub mod validate;

pub use anneal::{anneal, AnnealConfig, AnnealOutcome, AnnealStats};
pub use objective::{cheap_score, full_score, ProxyScore, ProxyWeights};
pub use search::{search, Candidate, InitKind, SearchConfig, SearchOutcome};
pub use state::{Move, SearchState, STEP, TILE_H, TILE_W};
pub use validate::{validate_graph, ValidateConfig, ValidationReport};

/// Errors of the arrangement search.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrangeError {
    /// The search needs at least two chiplets.
    TooFewChiplets(usize),
    /// A rectangle is not a tile of the search lattice.
    BadTile {
        /// Offending width.
        width: i64,
        /// Offending height.
        height: i64,
    },
    /// Two tiles overlap.
    Overlap,
    /// The adjacency graph is disconnected.
    Disconnected,
    /// A fixed-arrangement seed could not be constructed (unreachable for
    /// `n ≥ 2`; kept so a generator regression is diagnosable).
    SeedUnavailable {
        /// Fixed-arrangement family label.
        kind: &'static str,
        /// Requested chiplet count.
        n: usize,
    },
    /// The validation simulator rejected the topology or configuration.
    Sim(nocsim::SimError),
    /// The validation workload driver rejected its inputs.
    Workload(chiplet_workload::DriverError),
    /// The validation workload did not complete within the cycle budget.
    Stalled {
        /// Messages delivered before the budget ran out.
        delivered: u64,
        /// Messages in the workload.
        total: u64,
    },
}

impl fmt::Display for ArrangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrangeError::TooFewChiplets(n) => {
                write!(f, "arrangement search needs at least 2 chiplets, got {n}")
            }
            ArrangeError::BadTile { width, height } => {
                write!(f, "{width}x{height} is not a {TILE_W}x{TILE_H} search tile")
            }
            ArrangeError::Overlap => write!(f, "tiles overlap"),
            ArrangeError::Disconnected => write!(f, "adjacency graph is disconnected"),
            ArrangeError::SeedUnavailable { kind, n } => {
                write!(f, "no {kind} seed placement for {n} chiplets")
            }
            ArrangeError::Sim(e) => write!(f, "validation simulation: {e}"),
            ArrangeError::Workload(e) => write!(f, "validation workload: {e}"),
            ArrangeError::Stalled { delivered, total } => {
                write!(f, "validation workload stalled at {delivered}/{total} messages")
            }
        }
    }
}

impl std::error::Error for ArrangeError {}

impl From<nocsim::SimError> for ArrangeError {
    fn from(e: nocsim::SimError) -> Self {
        ArrangeError::Sim(e)
    }
}

impl From<chiplet_workload::DriverError> for ArrangeError {
    fn from(e: chiplet_workload::DriverError) -> Self {
        ArrangeError::Workload(e)
    }
}
