//! The staged proxy objective of the arrangement search.
//!
//! Stage 1 (every annealing step) is the **cheap score**: average
//! shortest-path distance plus a diameter term, both from one all-pairs
//! BFS. Stage 2 (candidate archiving) is the **full proxy score**, which
//! adds the bisection-cut term the paper uses as its throughput proxy
//! (§III-C) via the balanced partitioner. Stage 3 — nocsim saturation and
//! workload makespan on the top candidates — lives in [`crate::validate`].
//!
//! All scores are *minimised*; the bisection term enters as `n / cut` so
//! that a larger cut (more bisection bandwidth) lowers the objective.

use chiplet_graph::{metrics, Graph};
use chiplet_partition::{bisect, BisectionConfig};
use serde::{Deserialize, Serialize};

/// Weights of the proxy objective terms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProxyWeights {
    /// Weight of the average shortest-path distance (latency proxy).
    pub avg_distance: f64,
    /// Weight of the diameter (worst-case latency proxy).
    pub diameter: f64,
    /// Weight of the `n / bisection_cut` term (inverse throughput proxy).
    pub bisection: f64,
}

impl Default for ProxyWeights {
    fn default() -> Self {
        Self { avg_distance: 1.0, diameter: 0.25, bisection: 2.0 }
    }
}

/// The full proxy score of one arrangement graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProxyScore {
    /// Average shortest-path distance over ordered vertex pairs.
    pub avg_distance: f64,
    /// Graph diameter.
    pub diameter: u32,
    /// Balanced bisection cut (the bisection-bandwidth proxy).
    pub bisection_cut: usize,
    /// Weighted objective value (lower is better).
    pub value: f64,
}

/// Stage-1 score: `w_avg · avg_distance + w_diam · diameter`, or `None`
/// for graphs that are disconnected or have fewer than two vertices.
#[must_use]
pub fn cheap_score(g: &Graph, weights: &ProxyWeights) -> Option<f64> {
    let (avg, diam) = distance_terms(g)?;
    Some(weights.avg_distance * avg + weights.diameter * f64::from(diam))
}

/// Average distance and diameter from a single all-pairs BFS sweep (the
/// annealing hot loop calls this per proposal; the separate
/// `metrics::average_distance` + `metrics::diameter` pair would run the
/// sweep twice). Accumulation matches `metrics::average_distance` exactly
/// (integer total, one final division), so the values are bit-identical.
fn distance_terms(g: &Graph) -> Option<(f64, u32)> {
    let n = g.num_vertices();
    if n < 2 {
        return None;
    }
    let mut total: u64 = 0;
    let mut diameter: u32 = 0;
    for v in g.vertices() {
        for &d in &chiplet_graph::bfs::distances(g, v) {
            if d == chiplet_graph::bfs::UNREACHABLE {
                return None;
            }
            total += u64::from(d);
            diameter = diameter.max(d);
        }
    }
    Some((total as f64 / (n as f64 * (n as f64 - 1.0)), diameter))
}

/// Stage-2 score: the cheap terms plus the bisection-weighted term
/// `w_bis · n / cut`, or `None` for disconnected graphs or `n < 2`.
///
/// Deterministic: the partitioner runs from the seed in `config`, so the
/// same graph always yields the same score.
#[must_use]
pub fn full_score(
    g: &Graph,
    weights: &ProxyWeights,
    config: &BisectionConfig,
) -> Option<ProxyScore> {
    let avg = metrics::average_distance(g)?;
    let diam = metrics::diameter(g)?;
    let cut = bisect(g, config).ok()?.cut;
    let n = g.num_vertices() as f64;
    let value = weights.avg_distance * avg
        + weights.diameter * f64::from(diam)
        + weights.bisection * n / cut.max(1) as f64;
    Some(ProxyScore { avg_distance: avg, diameter: diam, bisection_cut: cut, value })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_graph::gen;

    #[test]
    fn cheap_score_orders_grid_below_path() {
        let w = ProxyWeights::default();
        let grid = cheap_score(&gen::grid(4, 4), &w).unwrap();
        let path = cheap_score(&gen::path(16), &w).unwrap();
        assert!(grid < path, "grid {grid} !< path {path}");
    }

    #[test]
    fn full_score_includes_bisection_term() {
        let w = ProxyWeights { avg_distance: 0.0, diameter: 0.0, bisection: 1.0 };
        let s = full_score(&gen::grid(4, 4), &w, &BisectionConfig::default()).unwrap();
        assert_eq!(s.bisection_cut, 4);
        assert!((s.value - 16.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn disconnected_graphs_score_none() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(cheap_score(&g, &ProxyWeights::default()).is_none());
        assert!(full_score(&g, &ProxyWeights::default(), &BisectionConfig::default()).is_none());
    }

    #[test]
    fn full_score_is_deterministic() {
        let g = gen::grid(6, 6);
        let w = ProxyWeights::default();
        let c = BisectionConfig::default();
        assert_eq!(full_score(&g, &w, &c), full_score(&g, &w, &c));
    }
}
