//! Restart-parallel arrangement search.
//!
//! A search runs `restarts` independent annealing restarts. Three restarts
//! are seeded from the fixed arrangements that have rectangle placements
//! (HexaMesh, brickwall, aligned grid) — which guarantees the best found
//! custom arrangement scores **no worse than the best fixed placement** —
//! and the rest start from random compact accretions. Restarts are
//! independent jobs on the `xp` worker pool with coordinate-derived seeds,
//! so the outcome is bit-identical for any worker count.

use chiplet_partition::BisectionConfig;
use hexamesh::arrangement::{Arrangement, ArrangementKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use xp::pool;
use xp::seed::derive_seed;

use crate::anneal::{anneal, AnnealConfig, AnnealStats};
use crate::objective::{full_score, ProxyScore, ProxyWeights};
use crate::state::SearchState;
use crate::ArrangeError;

/// How a restart's initial state was constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitKind {
    /// Seeded from the HexaMesh placement of `n` chiplets.
    HexaMesh,
    /// Seeded from the brickwall placement.
    Brickwall,
    /// Seeded from the aligned-rows grid.
    Grid,
    /// Random compact accretion.
    Random,
}

impl InitKind {
    /// Lower-case name for CSV/JSON output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            InitKind::HexaMesh => "hexamesh",
            InitKind::Brickwall => "brickwall",
            InitKind::Grid => "grid",
            InitKind::Random => "random",
        }
    }

    /// The init of restart `index`: the three fixed seeds first, then
    /// random accretions.
    #[must_use]
    pub fn for_restart(index: usize) -> Self {
        match index {
            0 => InitKind::HexaMesh,
            1 => InitKind::Brickwall,
            2 => InitKind::Grid,
            _ => InitKind::Random,
        }
    }
}

/// Configuration of one arrangement search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive] // construct via new()/quick() and mutate
pub struct SearchConfig {
    /// Chiplet count (`≥ 2`).
    pub n: usize,
    /// Independent annealing restarts (the first three are seeded from
    /// fixed arrangements; see [`InitKind::for_restart`]).
    pub restarts: usize,
    /// Annealing schedule of each restart.
    pub anneal: AnnealConfig,
    /// Objective weights.
    pub weights: ProxyWeights,
    /// Partitioner settings for the bisection term of the full score.
    pub bisection: BisectionConfig,
    /// Master seed; each restart derives its own seed from `(n, restart)`
    /// coordinates, so growing `restarts` never moves existing restarts'
    /// results.
    pub seed: u64,
    /// Worker threads for the restart pool.
    pub workers: usize,
}

impl SearchConfig {
    /// The default search for `n` chiplets.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            n,
            restarts: 8,
            anneal: AnnealConfig::default(),
            weights: ProxyWeights::default(),
            bisection: BisectionConfig::default(),
            seed: 0xA12A_46E5,
            workers: 1,
        }
    }

    /// A reduced search for smoke runs and CI.
    #[must_use]
    pub fn quick(n: usize) -> Self {
        Self { restarts: 4, anneal: AnnealConfig::quick(), ..Self::new(n) }
    }
}

/// The best arrangement one restart produced.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Restart index.
    pub restart: usize,
    /// How the restart was initialised.
    pub init: InitKind,
    /// The arrangement, in canonical form (origin-anchored, row-major).
    pub state: SearchState,
    /// Full proxy score of `state`.
    pub score: ProxyScore,
    /// Annealing counters of the restart.
    pub stats: AnnealStats,
}

/// Outcome of a search: every restart's candidate, best first.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Candidates sorted by `(score.value, restart)` — `candidates[0]` is
    /// the optimized arrangement.
    pub candidates: Vec<Candidate>,
}

impl SearchOutcome {
    /// The winning candidate.
    #[must_use]
    pub fn best(&self) -> &Candidate {
        &self.candidates[0]
    }
}

/// Runs the search described by `config`.
///
/// # Errors
///
/// [`ArrangeError::TooFewChiplets`] for `n < 2`; construction errors from
/// the seeded initial states are propagated (they indicate a bug, not bad
/// input, for `n ≥ 2`).
pub fn search(config: &SearchConfig) -> Result<SearchOutcome, ArrangeError> {
    if config.n < 2 {
        return Err(ArrangeError::TooFewChiplets(config.n));
    }
    let restarts: Vec<usize> = (0..config.restarts.max(1)).collect();
    let results = pool::run_jobs(
        &restarts,
        config.workers,
        |_| 1,
        |&restart| run_restart(config, restart),
        None,
    );
    let mut candidates = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    candidates.sort_by(|a, b| {
        a.score.value.total_cmp(&b.score.value).then(a.restart.cmp(&b.restart))
    });
    Ok(SearchOutcome { candidates })
}

/// One restart: build the initial state, anneal, archive `{initial, best,
/// final}` in canonical form, and keep the one with the best full score.
fn run_restart(config: &SearchConfig, restart: usize) -> Result<Candidate, ArrangeError> {
    let seed = derive_seed(config.seed, &[config.n as u64, restart as u64]);
    let mut rng = StdRng::seed_from_u64(seed);
    let init = InitKind::for_restart(restart);
    let initial = initial_state(config.n, init, &mut rng)?;
    let outcome = anneal(&initial, &config.anneal, &config.weights, &mut rng)
        .ok_or(ArrangeError::Disconnected)?;

    // Archive in canonical form and score with the full (bisection-
    // weighted) objective; the initial state is always in the archive, so
    // a fixed-seeded restart can never end up worse than its seed.
    let mut archive: Vec<SearchState> = Vec::with_capacity(3);
    for state in
        [initial.canonical(), outcome.best.canonical(), outcome.final_state.canonical()]
    {
        if !archive.contains(&state) {
            archive.push(state);
        }
    }
    let mut best: Option<(SearchState, ProxyScore)> = None;
    for state in archive {
        let score = full_score(&state.graph(), &config.weights, &config.bisection)
            .ok_or(ArrangeError::Disconnected)?;
        if best.as_ref().is_none_or(|(_, s)| score.value < s.value) {
            best = Some((state, score));
        }
    }
    let (state, score) = best.expect("archive is non-empty");
    Ok(Candidate { restart, init, state, score, stats: outcome.stats })
}

/// The initial state of a restart.
fn initial_state(
    n: usize,
    init: InitKind,
    rng: &mut StdRng,
) -> Result<SearchState, ArrangeError> {
    match init {
        InitKind::HexaMesh => seeded_from(ArrangementKind::HexaMesh, n),
        InitKind::Brickwall => seeded_from(ArrangementKind::Brickwall, n),
        InitKind::Grid => SearchState::aligned_grid(n),
        InitKind::Random => SearchState::random_compact(n, rng),
    }
}

/// Seeds a state from a fixed arrangement's placement.
fn seeded_from(kind: ArrangementKind, n: usize) -> Result<SearchState, ArrangeError> {
    let unavailable = ArrangeError::SeedUnavailable { kind: kind.label(), n };
    let arrangement = Arrangement::build(kind, n).map_err(|_| unavailable.clone())?;
    let placement = arrangement.placement().ok_or(unavailable)?;
    SearchState::from_placement(placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::full_score;

    fn tiny_config(n: usize) -> SearchConfig {
        let mut c = SearchConfig::quick(n);
        c.anneal.iterations = 150;
        c.anneal.greedy_iterations = 50;
        c
    }

    #[test]
    fn search_result_is_worker_count_invariant() {
        let mut a = tiny_config(19);
        a.workers = 1;
        let mut b = tiny_config(19);
        b.workers = 8;
        assert_eq!(search(&a).unwrap(), search(&b).unwrap());
    }

    #[test]
    fn optimized_no_worse_than_fixed_seeds() {
        let config = tiny_config(19);
        let outcome = search(&config).unwrap();
        let best = outcome.best();
        for kind in [ArrangementKind::HexaMesh, ArrangementKind::Brickwall] {
            let fixed = Arrangement::build(kind, 19).unwrap();
            let fixed_score =
                full_score(fixed.graph(), &config.weights, &config.bisection).unwrap();
            assert!(
                best.score.value <= fixed_score.value + 1e-12,
                "optimized {} !<= {kind} {}",
                best.score.value,
                fixed_score.value
            );
        }
        assert!(best.state.is_overlap_free() && best.state.is_connected());
        assert_eq!(best.state.len(), 19);
    }

    #[test]
    fn growing_restarts_keeps_existing_candidates() {
        let small = tiny_config(13);
        let mut large = tiny_config(13);
        large.restarts = small.restarts + 2;
        let a = search(&small).unwrap();
        let b = search(&large).unwrap();
        for candidate in &a.candidates {
            let twin = b
                .candidates
                .iter()
                .find(|c| c.restart == candidate.restart)
                .expect("restart present in the larger search");
            assert_eq!(twin, candidate);
        }
    }

    #[test]
    fn too_few_chiplets_rejected() {
        assert!(matches!(
            search(&SearchConfig::quick(1)),
            Err(ArrangeError::TooFewChiplets(1))
        ));
    }
}
