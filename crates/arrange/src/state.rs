//! Mutable placement state for the arrangement search: identical
//! rectangular tiles on the brick lattice, with swap/rotate/relocate moves
//! that are validated against the two search invariants before they take
//! effect:
//!
//! 1. **overlap-freedom** — no two tiles overlap with positive area;
//! 2. **connectivity** — the geometric-adjacency graph (shared edge of
//!    positive length, §III-C) stays connected.
//!
//! [`SearchState::try_move`] applies a move only if both invariants hold
//! and hands the caller the resulting adjacency graph (which the annealer
//! needs for scoring anyway) plus an undo token; an invalid move leaves
//! the state untouched.

use chiplet_graph::{metrics, Graph, GraphBuilder};
use chiplet_layout::{PlacedChiplet, Placement, Rect};
use rand::rngs::StdRng;
use rand::Rng;

use crate::ArrangeError;

/// Tile width in layout units — the brickwall/HexaMesh brick of the
/// `hexamesh` generators, so fixed-arrangement placements seed the search
/// directly.
pub const TILE_W: i64 = 4;
/// Tile height in layout units.
pub const TILE_H: i64 = 2;
/// Lattice step for anchors and relocation slots: half a brick, the offset
/// granularity the brickwall and HexaMesh patterns are built from.
pub const STEP: i64 = 2;

/// One candidate modification of a [`SearchState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// Rotate tile `i` 90° in place (4×2 ↔ 2×4), keeping its lower-left
    /// anchor.
    Rotate {
        /// Tile to rotate.
        i: usize,
    },
    /// Swap the anchors of tiles `i` and `j`, keeping each tile's own
    /// orientation. A no-op (and therefore invalid) when both have the
    /// same orientation.
    Swap {
        /// First tile.
        i: usize,
        /// Second tile.
        j: usize,
    },
    /// Detach tile `i` and re-attach it edge-to-edge against tile
    /// `anchor`, at contact slot `slot` (an index into the deterministic
    /// candidate list enumerated by [`SearchState::relocate_slot_count`]).
    Relocate {
        /// Tile to move.
        i: usize,
        /// Tile to attach to.
        anchor: usize,
        /// Contact-slot index around the anchor.
        slot: usize,
    },
}

/// A move that has been applied: the new state's adjacency graph plus the
/// undo token that restores the previous rectangles.
#[derive(Debug)]
pub struct Applied {
    /// Adjacency graph of the state *after* the move (connected by
    /// construction).
    pub graph: Graph,
    restore: Vec<(usize, Rect)>,
}

/// An overlap-free, connected placement of `n` identical tiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchState {
    rects: Vec<Rect>,
}

impl SearchState {
    /// Builds a state from raw rectangles, validating tile extents,
    /// overlap-freedom, and connectivity.
    ///
    /// # Errors
    ///
    /// [`ArrangeError::BadTile`] if a rectangle is not a `TILE_W × TILE_H`
    /// tile (in either orientation) or off the `STEP` lattice;
    /// [`ArrangeError::Overlap`] / [`ArrangeError::Disconnected`] if the
    /// invariants fail.
    pub fn from_rects(rects: Vec<Rect>) -> Result<Self, ArrangeError> {
        for r in &rects {
            let extent_ok = (r.width() == TILE_W && r.height() == TILE_H)
                || (r.width() == TILE_H && r.height() == TILE_W);
            if !extent_ok || r.x() % STEP != 0 || r.y() % STEP != 0 {
                return Err(ArrangeError::BadTile { width: r.width(), height: r.height() });
            }
        }
        let state = Self { rects };
        if !state.is_overlap_free() {
            return Err(ArrangeError::Overlap);
        }
        if !metrics::is_connected(&state.graph()) {
            return Err(ArrangeError::Disconnected);
        }
        Ok(state)
    }

    /// Seeds a state from an existing placement (compute chiplets only).
    ///
    /// # Errors
    ///
    /// As [`SearchState::from_rects`].
    pub fn from_placement(placement: &Placement) -> Result<Self, ArrangeError> {
        let rects = placement
            .compute_indices()
            .into_iter()
            .map(|i| placement.chiplets()[i].rect)
            .collect();
        Self::from_rects(rects)
    }

    /// The aligned-rows grid of `n` tiles (near-square, row-major): the
    /// grid-graph seed of the search, realised with the same 4×2 tiles as
    /// every other state.
    ///
    /// # Errors
    ///
    /// [`ArrangeError::TooFewChiplets`] when `n == 0`.
    pub fn aligned_grid(n: usize) -> Result<Self, ArrangeError> {
        if n == 0 {
            return Err(ArrangeError::TooFewChiplets(n));
        }
        let cols = (n as f64).sqrt().round().max(1.0) as usize;
        let mut rects = Vec::with_capacity(n);
        for k in 0..n {
            let (row, col) = (k / cols, k % cols);
            rects.push(
                Rect::new(col as i64 * TILE_W, row as i64 * TILE_H, TILE_W, TILE_H)
                    .expect("positive tile"),
            );
        }
        Self::from_rects(rects)
    }

    /// A random connected, overlap-free accretion of `n` tiles: starting
    /// from one tile at the origin, each new tile attaches edge-to-edge to
    /// a randomly chosen placed tile. Deterministic given `rng`.
    ///
    /// # Errors
    ///
    /// [`ArrangeError::TooFewChiplets`] when `n == 0`.
    pub fn random_compact(n: usize, rng: &mut StdRng) -> Result<Self, ArrangeError> {
        if n == 0 {
            return Err(ArrangeError::TooFewChiplets(n));
        }
        let mut state =
            Self { rects: vec![Rect::new(0, 0, TILE_W, TILE_H).expect("positive tile")] };
        while state.rects.len() < n {
            let next = state.sample_free_slot(rng);
            state.rects.push(next);
        }
        debug_assert!(state.is_overlap_free());
        Ok(state)
    }

    /// A free contact slot against a random anchor; falls back to a
    /// deterministic scan (a free hull slot always exists) if random
    /// probing keeps hitting occupied slots.
    fn sample_free_slot(&self, rng: &mut StdRng) -> Rect {
        for _ in 0..64 {
            let anchor = rng.gen_range(0..self.rects.len());
            let (w, h) = if rng.gen_bool(0.5) { (TILE_W, TILE_H) } else { (TILE_H, TILE_W) };
            let count = slot_count(self.rects[anchor], w, h);
            let slot = rng.gen_range(0..count);
            let candidate = slot_rect(self.rects[anchor], w, h, slot);
            if self.fits(candidate, usize::MAX) {
                return candidate;
            }
        }
        for &anchor_rect in &self.rects {
            for (w, h) in [(TILE_W, TILE_H), (TILE_H, TILE_W)] {
                for slot in 0..slot_count(anchor_rect, w, h) {
                    let candidate = slot_rect(anchor_rect, w, h, slot);
                    if self.fits(candidate, usize::MAX) {
                        return candidate;
                    }
                }
            }
        }
        unreachable!("a growing placement always has a free hull slot")
    }

    /// Number of tiles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// `true` when the state holds no tiles (never, for constructed states).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// The tile rectangles, in state order (vertex `i` of [`Self::graph`]
    /// is `rects()[i]`).
    #[must_use]
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// The geometric-adjacency graph over all tiles.
    #[must_use]
    pub fn graph(&self) -> Graph {
        let n = self.rects.len();
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if self.rects[i].is_adjacent(&self.rects[j]) {
                    b.add_edge(i, j).expect("pairs unique and in range");
                }
            }
        }
        b.build()
    }

    /// `true` if no two tiles overlap.
    #[must_use]
    pub fn is_overlap_free(&self) -> bool {
        for i in 0..self.rects.len() {
            for j in (i + 1)..self.rects.len() {
                if self.rects[i].overlaps(&self.rects[j]) {
                    return false;
                }
            }
        }
        true
    }

    /// `true` if the adjacency graph is connected.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        metrics::is_connected(&self.graph())
    }

    /// `rect` fits without overlapping any tile other than `skip`.
    fn fits(&self, rect: Rect, skip: usize) -> bool {
        self.rects.iter().enumerate().all(|(k, r)| k == skip || !r.overlaps(&rect))
    }

    /// Number of contact slots for re-attaching tile `i` against `anchor`
    /// (both in their current orientations): every `STEP`-aligned position
    /// where the moved tile shares a boundary edge of positive length with
    /// the anchor.
    #[must_use]
    pub fn relocate_slot_count(&self, i: usize, anchor: usize) -> usize {
        let r = self.rects[i];
        slot_count(self.rects[anchor], r.width(), r.height())
    }

    /// Applies `mv` if it preserves both invariants, returning the new
    /// adjacency graph and an undo token; returns `None` (state untouched)
    /// for out-of-range indices, no-op swaps, overlaps, or moves that
    /// disconnect the graph.
    pub fn try_move(&mut self, mv: &Move) -> Option<Applied> {
        let restore = match *mv {
            Move::Rotate { i } => {
                let old = *self.rects.get(i)?;
                let rotated =
                    Rect::new(old.x(), old.y(), old.height(), old.width()).expect("positive");
                if !self.fits(rotated, i) {
                    return None;
                }
                self.rects[i] = rotated;
                vec![(i, old)]
            }
            Move::Swap { i, j } => {
                if i == j {
                    return None;
                }
                let (a, b) = (*self.rects.get(i)?, *self.rects.get(j)?);
                if a.width() == b.width() && a.height() == b.height() {
                    return None; // identical tiles: swapping anchors is a no-op
                }
                let new_a = Rect::new(b.x(), b.y(), a.width(), a.height()).expect("positive");
                let new_b = Rect::new(a.x(), a.y(), b.width(), b.height()).expect("positive");
                self.rects[i] = new_a;
                self.rects[j] = new_b;
                // Both rects are written before validation, so fits(new_a, i)
                // already checks new_a against new_b (at index j) and vice
                // versa — the pair needs no separate overlap check.
                if !self.fits(new_a, i) || !self.fits(new_b, j) {
                    self.rects[i] = a;
                    self.rects[j] = b;
                    return None;
                }
                vec![(i, a), (j, b)]
            }
            Move::Relocate { i, anchor, slot } => {
                if i == anchor {
                    return None;
                }
                let old = *self.rects.get(i)?;
                let anchor_rect = *self.rects.get(anchor)?;
                if slot >= slot_count(anchor_rect, old.width(), old.height()) {
                    return None;
                }
                let moved = slot_rect(anchor_rect, old.width(), old.height(), slot);
                if moved == old || !self.fits(moved, i) {
                    return None;
                }
                self.rects[i] = moved;
                vec![(i, old)]
            }
        };
        let graph = self.graph();
        if metrics::is_connected(&graph) {
            Some(Applied { graph, restore })
        } else {
            for &(k, r) in &restore {
                self.rects[k] = r;
            }
            None
        }
    }

    /// Reverts a move applied by [`Self::try_move`].
    pub fn undo(&mut self, applied: Applied) {
        for (k, r) in applied.restore {
            self.rects[k] = r;
        }
    }

    /// The canonical form of this state: translated so the bounding box
    /// starts at the origin and tiles sorted by `(y, x, width)`. Two states
    /// that are translations/reorderings of the same floorplan canonicalise
    /// identically, which is what the golden determinism tests compare and
    /// what candidate archives score.
    #[must_use]
    pub fn canonical(&self) -> Self {
        let min_x = self.rects.iter().map(Rect::x).min().unwrap_or(0);
        let min_y = self.rects.iter().map(Rect::y).min().unwrap_or(0);
        let mut rects: Vec<Rect> =
            self.rects.iter().map(|r| r.translated(-min_x, -min_y)).collect();
        rects.sort_by_key(|r| (r.y(), r.x(), r.width()));
        Self { rects }
    }

    /// Converts to a validated [`Placement`] of compute chiplets.
    ///
    /// # Panics
    ///
    /// Never for states built through this module: overlap-freedom is an
    /// invariant.
    #[must_use]
    pub fn to_placement(&self) -> Placement {
        let mut p = Placement::new();
        for &r in &self.rects {
            p.push(PlacedChiplet::compute(r)).expect("state is overlap-free");
        }
        p
    }
}

/// Number of `STEP`-aligned contact slots a `w × h` tile has against
/// `anchor`: positions along each of the four sides with a shared edge of
/// positive length.
fn slot_count(anchor: Rect, w: i64, h: i64) -> usize {
    let vertical = ((anchor.height() + h) / STEP - 1).max(0) as usize; // left + right sides
    let horizontal = ((anchor.width() + w) / STEP - 1).max(0) as usize; // top + bottom sides
    2 * vertical + 2 * horizontal
}

/// The `slot`-th contact rectangle of a `w × h` tile against `anchor`.
/// Slots enumerate the right side bottom-to-top, then the left side, then
/// the top side left-to-right, then the bottom side.
fn slot_rect(anchor: Rect, w: i64, h: i64, slot: usize) -> Rect {
    let vertical = ((anchor.height() + h) / STEP - 1).max(0) as usize;
    let horizontal = ((anchor.width() + w) / STEP - 1).max(0) as usize;
    let (x, y) = if slot < vertical {
        // Right side: x fixed, y sweeps so the shared edge stays positive.
        (anchor.right(), anchor.y() - h + STEP * (slot as i64 + 1))
    } else if slot < 2 * vertical {
        let k = (slot - vertical) as i64;
        (anchor.x() - w, anchor.y() - h + STEP * (k + 1))
    } else if slot < 2 * vertical + horizontal {
        let k = (slot - 2 * vertical) as i64;
        (anchor.x() - w + STEP * (k + 1), anchor.top())
    } else {
        let k = (slot - 2 * vertical - horizontal) as i64;
        (anchor.x() - w + STEP * (k + 1), anchor.y() - h)
    };
    Rect::new(x, y, w, h).expect("positive tile extent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn slots_all_touch_the_anchor() {
        let anchor = Rect::new(0, 0, TILE_W, TILE_H).unwrap();
        for (w, h) in [(TILE_W, TILE_H), (TILE_H, TILE_W)] {
            let count = slot_count(anchor, w, h);
            assert!(count > 0);
            let mut seen = std::collections::HashSet::new();
            for slot in 0..count {
                let r = slot_rect(anchor, w, h, slot);
                assert!(r.is_adjacent(&anchor), "slot {slot} ({w}x{h}) not adjacent");
                assert!(!r.overlaps(&anchor));
                assert!(seen.insert((r.x(), r.y())), "duplicate slot {slot}");
            }
        }
    }

    #[test]
    fn aligned_grid_matches_grid_graph() {
        let s = SearchState::aligned_grid(9).unwrap();
        let g = s.graph();
        // 3×3 grid: 12 edges, diameter 4.
        assert_eq!(g.num_edges(), 12);
        assert_eq!(metrics::diameter(&g), Some(4));
    }

    #[test]
    fn random_compact_is_valid_for_many_seeds() {
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = SearchState::random_compact(24, &mut rng).unwrap();
            assert_eq!(s.len(), 24);
            assert!(s.is_overlap_free());
            assert!(s.is_connected());
        }
    }

    #[test]
    fn rotate_into_overlap_is_rejected() {
        // Two bricks stacked: rotating the lower one would hit the upper.
        let rects = vec![
            Rect::new(0, 0, TILE_W, TILE_H).unwrap(),
            Rect::new(0, TILE_H, TILE_W, TILE_H).unwrap(),
        ];
        let mut s = SearchState::from_rects(rects.clone()).unwrap();
        assert!(s.try_move(&Move::Rotate { i: 0 }).is_none());
        assert_eq!(s.rects(), &rects[..], "rejected move must not change the state");
    }

    #[test]
    fn relocate_that_disconnects_is_rejected() {
        // A 1×3 row: moving the middle tile to the far end of tile 0 keeps
        // overlap-freedom but disconnects tile 2 — must be rejected.
        let mut s = SearchState::from_rects(vec![
            Rect::new(0, 0, TILE_W, TILE_H).unwrap(),
            Rect::new(TILE_W, 0, TILE_W, TILE_H).unwrap(),
            Rect::new(2 * TILE_W, 0, TILE_W, TILE_H).unwrap(),
        ])
        .unwrap();
        let before = s.rects().to_vec();
        let count = s.relocate_slot_count(1, 0);
        let mut any_rejected = false;
        for slot in 0..count {
            if s.try_move(&Move::Relocate { i: 1, anchor: 0, slot }).is_none() {
                any_rejected = true;
            } else {
                // Accepted moves must keep both invariants.
                assert!(s.is_overlap_free() && s.is_connected());
                s = SearchState::from_rects(before.clone()).unwrap();
            }
        }
        assert!(any_rejected, "some slot around tile 0 must strand tile 2");
    }

    #[test]
    fn undo_restores_exactly() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = SearchState::random_compact(12, &mut rng).unwrap();
        let before = s.clone();
        let applied = loop {
            let i = rng.gen_range(0..s.len());
            let anchor = rng.gen_range(0..s.len());
            if i == anchor {
                continue;
            }
            let slot = rng.gen_range(0..s.relocate_slot_count(i, anchor));
            if let Some(a) = s.try_move(&Move::Relocate { i, anchor, slot }) {
                break a;
            }
        };
        assert_ne!(s, before);
        s.undo(applied);
        assert_eq!(s, before);
    }

    #[test]
    fn swap_requires_differing_orientations() {
        let mut s = SearchState::aligned_grid(4).unwrap();
        assert!(s.try_move(&Move::Swap { i: 0, j: 1 }).is_none(), "same-orientation no-op");
    }

    #[test]
    fn canonical_is_translation_and_order_invariant() {
        let a = SearchState::from_rects(vec![
            Rect::new(0, 0, TILE_W, TILE_H).unwrap(),
            Rect::new(TILE_W, 0, TILE_W, TILE_H).unwrap(),
        ])
        .unwrap();
        let b = SearchState::from_rects(vec![
            Rect::new(TILE_W + 10, 6, TILE_W, TILE_H).unwrap(),
            Rect::new(10, 6, TILE_W, TILE_H).unwrap(),
        ])
        .unwrap();
        assert_eq!(a.canonical(), b.canonical());
    }

    #[test]
    fn from_rects_rejects_bad_tiles_and_overlap() {
        let bad = SearchState::from_rects(vec![Rect::new(0, 0, 3, 3).unwrap()]);
        assert!(matches!(bad, Err(ArrangeError::BadTile { .. })));
        let overlap = SearchState::from_rects(vec![
            Rect::new(0, 0, TILE_W, TILE_H).unwrap(),
            Rect::new(STEP, 0, TILE_W, TILE_H).unwrap(),
        ]);
        assert!(matches!(overlap, Err(ArrangeError::Overlap)));
        let disconnected = SearchState::from_rects(vec![
            Rect::new(0, 0, TILE_W, TILE_H).unwrap(),
            Rect::new(3 * TILE_W, 0, TILE_W, TILE_H).unwrap(),
        ]);
        assert!(matches!(disconnected, Err(ArrangeError::Disconnected)));
    }
}
