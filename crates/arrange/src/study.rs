//! The study-flow integration: the search *stage* and the `optimized`
//! axis provider.
//!
//! `xp::flow` executes every stage it can reach from below the optimizer
//! in the dependency DAG; the arrangement search runs *on* the `xp` pool,
//! so its stage implementation lives here and plugs into the flow through
//! [`xp::flow::StageHooks`] ([`hooks`]). The stage reproduces the
//! `arrangement_search` campaign byte for byte: the optimized arrangement
//! and the four fixed families ranked by the staged proxy objective, with
//! cycle-accurate validation of the contenders.

use hexamesh::arrangement::{Arrangement, ArrangementKind};
use xp::cli::CampaignArgs;
use xp::flow::{StageHooks, StageOutput, StageTable, StudyError};
use xp::seed::derive_seed;
use xp::spec::StudySpec;
use xp::table::{f3, Table};
use xp::Campaign;

use crate::{
    full_score, search, validate_graph, ProxyScore, SearchConfig, SearchState, ValidateConfig,
    ValidationReport,
};

/// The standard hook set: the search stage plus the `optimized` axis.
/// Pass to [`xp::flow::run_study`]; the `study` binary and the rewritten
/// experiment binaries all do.
#[must_use]
pub fn hooks() -> StageHooks<'static> {
    StageHooks { search: Some(&run_search_stage), optimized_graph: Some(&optimized_graph) }
}

/// The search configuration shared by every `n` of a study: quick or
/// full base schedule, the campaign's seed and workers, and the spec's
/// restart/iteration overrides.
fn search_config(n: usize, spec: &StudySpec, args: &CampaignArgs) -> SearchConfig {
    let mut config = if args.quick { SearchConfig::quick(n) } else { SearchConfig::new(n) };
    config.seed = args.campaign_seed;
    config.workers = args.workers;
    if let Some(restarts) = spec.search.restarts {
        config.restarts = restarts;
    }
    if let Some(iterations) = spec.search.iterations {
        config.anneal.iterations = iterations;
    }
    config
}

/// The `optimized` axis: the ICI graph of the best searched arrangement
/// at `n`. Deterministic in `(spec, campaign seed)` and independent of
/// the worker count (the search's standard guarantee), so rows built on
/// it keep the engine's byte-identical-for-any-`--workers` contract.
///
/// # Errors
///
/// Wraps search failures as [`StudyError::Stage`].
pub fn optimized_graph(
    n: usize,
    spec: &StudySpec,
    args: &CampaignArgs,
) -> Result<chiplet_graph::Graph, StudyError> {
    let config = search_config(n, spec, args);
    let outcome =
        search(&config).map_err(|e| StudyError::Stage(format!("search n={n}: {e}")))?;
    Ok(outcome.best().state.graph())
}

/// One ranked row: the optimized arrangement or a fixed family.
struct Row {
    /// CSV label: "OPT" or the fixed family's label.
    label: &'static str,
    /// Where the row came from: winning init kind for OPT, regularity for
    /// fixed families.
    source: String,
    score: ProxyScore,
    /// The row's ICI graph, kept for validation.
    graph: chiplet_graph::Graph,
    validation: Option<ValidationReport>,
}

/// Scores one fixed arrangement family at `n`.
///
/// HexaMesh and brickwall placements are scored through the same
/// canonicalised [`SearchState`] path the optimizer's seeded restarts use,
/// so "optimized ≤ best fixed" holds exactly (the bisection heuristic sees
/// the same vertex labelling). The honeycomb has no rectangle placement
/// and the paper's grid uses unit tiles; both are scored on their graphs
/// directly.
fn fixed_row(kind: ArrangementKind, n: usize, config: &SearchConfig) -> Row {
    let arrangement = Arrangement::build(kind, n).expect("any n >= 1 builds");
    let graph = match kind {
        ArrangementKind::HexaMesh | ArrangementKind::Brickwall => {
            let placement = arrangement.placement().expect("rectangular family");
            SearchState::from_placement(placement)
                .expect("fixed placements are valid states")
                .canonical()
                .graph()
        }
        _ => arrangement.graph().clone(),
    };
    let score = full_score(&graph, &config.weights, &config.bisection)
        .expect("fixed arrangements are connected");
    Row {
        label: kind.label(),
        source: arrangement.regularity().to_string(),
        score,
        graph,
        validation: None,
    }
}

/// The search stage: discovers custom arrangements and ranks them against
/// the fixed families by the staged proxy objective, validating the
/// contenders with cycle-accurate saturation + workload makespan.
///
/// # Errors
///
/// Wraps search and validation failures; returns [`StudyError::Stage`]
/// if the optimized arrangement scores worse than a fixed family
/// (impossible unless the search is broken, because restarts are seeded
/// from the fixed placements).
pub fn run_search_stage(
    spec: &StudySpec,
    campaign: &Campaign,
) -> Result<StageOutput, StudyError> {
    let args = campaign.args();
    let ns = spec.axes.ns.clone().unwrap_or_else(|| {
        if args.quick {
            vec![19, 37]
        } else {
            vec![37, 91, 169, 271]
        }
    });
    let validate = spec.search.validate;
    let measure = {
        let mut schedule = xp::flow::sweep::schedule_for(args);
        if let Some(over) = &spec.schedule {
            over.apply(&mut schedule);
        }
        schedule
    };

    let mut table = Table::new(&[
        "n",
        "kind",
        "source",
        "avg_distance",
        "diameter",
        "bisection_cut",
        "proxy_value",
        "rank",
        "sat_rate",
        "sat_throughput",
        "makespan_cycles",
        "critical_path_cycles",
    ]);
    let mut summary =
        vec!["arrangement search vs. fixed families (proxy objective, lower is better)"
            .to_owned()];

    let mut opt_beats_best_fixed_everywhere = true;
    for &n in &ns {
        let config = search_config(n, spec, args);
        let outcome =
            search(&config).map_err(|e| StudyError::Stage(format!("search n={n}: {e}")))?;
        let best = outcome.best();

        let mut rows = vec![Row {
            label: "OPT",
            source: format!("{}:r{}", best.init.label(), best.restart),
            score: best.score,
            graph: best.state.graph(),
            validation: None,
        }];
        for kind in ArrangementKind::ALL {
            rows.push(fixed_row(kind, n, &config));
        }

        let values: Vec<f64> = rows.iter().map(|r| r.score.value).collect();
        let rank = xp::flow::sweep::competition_rank(&values);

        // Stage 3: validate the optimized arrangement and the best fixed
        // family with cycle-accurate saturation + workload makespan. Both
        // rows run under the *same* derived simulator seed (from `n`
        // alone), so their comparison measures the arrangements, not
        // traffic-realisation noise.
        if validate {
            let mut best_fixed = 1;
            for i in 2..rows.len() {
                if values[i] < values[best_fixed] {
                    best_fixed = i;
                }
            }
            let mut vconfig = ValidateConfig { measure, ..ValidateConfig::default() };
            vconfig.sim.seed = derive_seed(args.campaign_seed, &[n as u64]);
            let opt_report = validate_graph(&rows[0].graph, &vconfig)
                .map_err(|e| StudyError::Stage(format!("validate n={n} OPT: {e}")))?;
            // When the search converges to the best fixed family the two
            // graphs are identical, and so (same seed) is the report —
            // skip the second cycle-accurate run, the campaign's slowest.
            rows[best_fixed].validation = if rows[best_fixed].graph == rows[0].graph {
                Some(opt_report.clone())
            } else {
                Some(validate_graph(&rows[best_fixed].graph, &vconfig).map_err(|e| {
                    StudyError::Stage(format!("validate n={n} {}: {e}", rows[best_fixed].label))
                })?)
            };
            rows[0].validation = Some(opt_report);
        }

        let opt_value = rows[0].score.value;
        let best_fixed_value =
            rows[1..].iter().map(|r| r.score.value).fold(f64::INFINITY, f64::min);
        if opt_value > best_fixed_value {
            opt_beats_best_fixed_everywhere = false;
        }

        for (i, row) in rows.iter().enumerate() {
            let (sat_rate, sat_tp, makespan, critical) = match &row.validation {
                Some(v) => (
                    f3(v.saturation.rate),
                    f3(v.saturation.throughput),
                    v.workload.makespan.to_string(),
                    v.workload.critical_path_cycles.to_string(),
                ),
                None => (String::new(), String::new(), String::new(), String::new()),
            };
            table.row(&[
                &n,
                &row.label,
                &row.source,
                &f3(row.score.avg_distance),
                &row.score.diameter,
                &row.score.bisection_cut,
                &f3(row.score.value),
                &rank[i],
                &sat_rate,
                &sat_tp,
                &makespan,
                &critical,
            ]);
        }
        summary.push(format!(
            "n={n}: optimized ({}) value {} vs best fixed {} — {}",
            rows[0].source,
            f3(opt_value),
            f3(best_fixed_value),
            if opt_value < best_fixed_value { "improved" } else { "matched" }
        ));
    }
    if !opt_beats_best_fixed_everywhere {
        return Err(StudyError::Stage(
            "optimized arrangement scored worse than a fixed family (fixed-seeded restarts \
             make this impossible unless the search is broken)"
                .to_owned(),
        ));
    }
    Ok(StageOutput { tables: vec![StageTable::main(table)], summary })
}
