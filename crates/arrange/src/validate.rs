//! Stage-3 validation of search candidates: cycle-accurate saturation
//! throughput (nocsim) and closed-loop workload makespan
//! (`chiplet_workload`) on the candidate's ICI graph.
//!
//! The graph proxies of [`crate::objective`] steer the annealer; this
//! module is what confirms a discovered arrangement actually carries
//! traffic better. Both measurements are deterministic functions of
//! `(graph, config)`, so validation preserves the search's bit-identical
//! reproducibility.

use chiplet_graph::Graph;
use chiplet_workload::{WorkloadDriver, WorkloadKind, WorkloadStats};
use nocsim::measure::{saturation_search, SaturationResult};
use nocsim::{MeasureConfig, SimConfig};
use serde::{Deserialize, Serialize};

use crate::ArrangeError;

/// Configuration of the validation stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive] // construct via Default and mutate
pub struct ValidateConfig {
    /// Simulator configuration (seed included).
    pub sim: SimConfig,
    /// Measurement schedule of the saturation search.
    pub measure: MeasureConfig,
    /// Closed-loop workload whose makespan is measured.
    pub workload: WorkloadKind,
    /// Cycle budget for the workload run (far above any sane makespan).
    pub max_cycles: u64,
}

impl Default for ValidateConfig {
    fn default() -> Self {
        Self {
            sim: SimConfig::paper_defaults(),
            measure: MeasureConfig::quick(),
            workload: WorkloadKind::Stencil,
            max_cycles: 50_000_000,
        }
    }
}

/// Cycle-accurate validation results of one arrangement graph.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Saturation point from the open-loop rate search.
    pub saturation: SaturationResult,
    /// Full closed-loop workload statistics.
    pub workload: WorkloadStats,
}

/// Validates `graph` under `config`.
///
/// # Errors
///
/// [`ArrangeError::Sim`] if the simulator rejects the topology or
/// configuration; [`ArrangeError::Workload`] if the driver does, or
/// [`ArrangeError::Stalled`] if the workload fails to complete within the
/// cycle budget (a suspected deadlock).
pub fn validate_graph(
    graph: &Graph,
    config: &ValidateConfig,
) -> Result<ValidationReport, ArrangeError> {
    let saturation = saturation_search(graph, &config.sim, &config.measure)?;
    let endpoints = graph.num_vertices() * config.sim.endpoints_per_router;
    let workload = config.workload.build(endpoints);
    let sim = SimConfig { injection_rate: 0.0, ..config.sim };
    let mut driver = WorkloadDriver::new(graph, sim, &workload)?;
    let stats = driver.run(config.max_cycles);
    if !stats.completed {
        return Err(ArrangeError::Stalled {
            delivered: stats.delivered_messages,
            total: workload.len() as u64,
        });
    }
    Ok(ValidationReport { saturation, workload: stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::SearchState;

    fn quick_config() -> ValidateConfig {
        let mut c = ValidateConfig::default();
        c.sim.vcs = 4;
        c.sim.buffer_depth = 4;
        c.measure.warmup_cycles = 500;
        c.measure.measure_cycles = 1_000;
        c.measure.rate_resolution = 0.1;
        c
    }

    #[test]
    fn validation_runs_on_a_small_state() {
        let state = SearchState::aligned_grid(9).unwrap();
        let report = validate_graph(&state.graph(), &quick_config()).unwrap();
        assert!(report.saturation.rate > 0.0);
        assert!(report.workload.completed);
        assert!(report.workload.makespan >= report.workload.critical_path_cycles);
    }

    #[test]
    fn validation_is_deterministic() {
        let state = SearchState::aligned_grid(6).unwrap();
        let config = quick_config();
        let a = validate_graph(&state.graph(), &config).unwrap();
        let b = validate_graph(&state.graph(), &config).unwrap();
        assert_eq!(a, b);
    }
}
