//! Golden determinism: the search is a pure function of its seed — the
//! same configuration yields bit-identical best arrangements whatever the
//! worker count, and different seeds genuinely explore differently.

use chiplet_arrange::{search, ArrangeError, SearchConfig};

fn config(n: usize, seed: u64, workers: usize) -> SearchConfig {
    let mut c = SearchConfig::quick(n);
    c.anneal.iterations = 200;
    c.anneal.greedy_iterations = 80;
    c.seed = seed;
    c.workers = workers;
    c
}

#[test]
fn same_seed_same_best_across_worker_counts() -> Result<(), ArrangeError> {
    for n in [13usize, 19] {
        let reference = search(&config(n, 0xBEEF, 1))?;
        for workers in [2usize, 4, 8] {
            let outcome = search(&config(n, 0xBEEF, workers))?;
            assert_eq!(
                outcome, reference,
                "n={n}: workers={workers} diverged from the serial search"
            );
            // The headline artefact: the best arrangement's rectangles are
            // bit-identical, not merely equivalent.
            assert_eq!(outcome.best().state.rects(), reference.best().state.rects());
        }
    }
    Ok(())
}

#[test]
fn repeated_runs_are_identical() -> Result<(), ArrangeError> {
    let a = search(&config(19, 7, 3))?;
    let b = search(&config(19, 7, 3))?;
    assert_eq!(a, b);
    Ok(())
}

#[test]
fn campaign_seed_changes_the_exploration() -> Result<(), ArrangeError> {
    let a = search(&config(19, 1, 2))?;
    let b = search(&config(19, 2, 2))?;
    // Random-restart candidates must differ somewhere (fixed-seeded
    // restarts may legitimately converge to the same archive entry).
    assert_ne!(a, b, "two campaign seeds produced identical searches");
    Ok(())
}
