//! Property tests for the optimizer's move invariants: any sequence of
//! proposed moves, whatever mix is accepted or rejected, leaves the
//! placement overlap-free and its adjacency graph connected.

use chiplet_arrange::state::{Move, SearchState};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Decodes one raw move descriptor against the current state size. Raw
/// values are drawn by proptest; reduction happens here so every decoded
/// move is well-formed (in-range indices; slots may still be invalid,
/// which `try_move` must reject cleanly).
fn decode(raw: (u8, usize, usize, usize), n: usize) -> Move {
    let (kind, a, b, slot) = raw;
    let i = a % n;
    let j = b % n;
    match kind % 3 {
        0 => Move::Rotate { i },
        1 => Move::Swap { i, j },
        _ => Move::Relocate { i, anchor: j, slot: slot % 32 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn accepted_moves_preserve_invariants(
        seed in 0u64..1_000,
        n in 2usize..24,
        raw_moves in proptest::collection::vec(
            (0u8..6, 0usize..1024, 0usize..1024, 0usize..32),
            1..60,
        ),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state = SearchState::random_compact(n, &mut rng).expect("n >= 2");
        prop_assert!(state.is_overlap_free());
        prop_assert!(state.is_connected());
        for raw in raw_moves {
            let mv = decode(raw, n);
            let before = state.clone();
            match state.try_move(&mv) {
                Some(applied) => {
                    // Accepted: both invariants must hold, and the graph
                    // returned must describe the new state.
                    prop_assert!(state.is_overlap_free(), "overlap after {mv:?}");
                    prop_assert!(state.is_connected(), "disconnected after {mv:?}");
                    prop_assert_eq!(&applied.graph, &state.graph());
                    prop_assert_eq!(state.len(), n);
                }
                None => {
                    // Rejected: the state must be untouched.
                    prop_assert_eq!(&state, &before);
                }
            }
        }
    }

    #[test]
    fn undo_round_trips(
        seed in 0u64..1_000,
        n in 2usize..20,
        raw in (0u8..6, 0usize..1024, 0usize..1024, 0usize..32),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state = SearchState::random_compact(n, &mut rng).expect("n >= 2");
        let before = state.clone();
        if let Some(applied) = state.try_move(&decode(raw, n)) {
            state.undo(applied);
        }
        prop_assert_eq!(state, before);
    }
}
