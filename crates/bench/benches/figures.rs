//! Criterion benchmarks — one group per paper artefact (reduced-size
//! versions of the figure sweeps, suitable for performance regression
//! tracking; the full regeneration lives in the `src/bin/*` binaries).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use chiplet_partition::{bisect, exact, BisectionConfig};
use hexamesh::arrangement::{Arrangement, ArrangementKind, Regularity};
use hexamesh::eval::{link_budget, EvalParams};
use hexamesh::proxies;
use hexamesh::shape::{brickwall_shape, grid_shape, ShapeParams};
use nocsim::{measure, MeasureConfig, RoutingKind, SimConfig, Simulator};

/// Fig. 4 — arrangement construction and degree statistics.
fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_arrangements");
    for (name, kind, n) in [
        ("grid_100", ArrangementKind::Grid, 100usize),
        ("brickwall_100", ArrangementKind::Brickwall, 100),
        ("hexamesh_91", ArrangementKind::HexaMesh, 91),
        ("hexamesh_irregular_75", ArrangementKind::HexaMesh, 75),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let a = Arrangement::build(kind, black_box(n)).expect("builds");
                black_box(a.degree_stats())
            });
        });
    }
    group.finish();
}

/// Fig. 5 — shape solving for both bump layouts.
fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_shape");
    let params = ShapeParams::new(16.0, 0.4).expect("valid");
    group.bench_function("grid_shape", |b| {
        b.iter(|| grid_shape(black_box(&params)).expect("solvable"));
    });
    group.bench_function("brickwall_shape", |b| {
        b.iter(|| brickwall_shape(black_box(&params)).expect("solvable"));
    });
    group.finish();
}

/// Fig. 6a — diameter measurement on constructed graphs.
fn bench_fig6_diameter(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6a_diameter");
    for (name, kind, n) in [
        ("grid_100", ArrangementKind::Grid, 100usize),
        ("hexamesh_91", ArrangementKind::HexaMesh, 91),
    ] {
        let a = Arrangement::build(kind, n).expect("builds");
        group.bench_function(name, |b| {
            b.iter(|| proxies::measured_diameter(black_box(&a)).expect("connected"));
        });
    }
    group.finish();
}

/// Fig. 6b — bisection via the multilevel partitioner (METIS substitute)
/// and via exact enumeration at the small end.
fn bench_fig6_bisection(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6b_bisection");
    group.sample_size(20);
    let irregular_grid =
        Arrangement::build_with_regularity(ArrangementKind::Grid, 50, Regularity::Irregular)
            .expect("builds");
    group.bench_function("multilevel_grid_irregular_50", |b| {
        b.iter(|| {
            bisect(black_box(irregular_grid.graph()), &BisectionConfig::default())
                .expect("non-empty")
        });
    });
    let hm61 = Arrangement::build(ArrangementKind::HexaMesh, 61).expect("builds");
    group.bench_function("multilevel_hexamesh_61", |b| {
        b.iter(|| {
            bisect(black_box(hm61.graph()), &BisectionConfig::default()).expect("non-empty")
        });
    });
    let hm19 = Arrangement::build(ArrangementKind::HexaMesh, 19).expect("builds");
    group.bench_function("exact_hexamesh_19", |b| {
        b.iter(|| exact::exact_bisection(black_box(hm19.graph())));
    });
    group.finish();
}

/// Table I — link-budget computation.
fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_link_model");
    let params = EvalParams::paper_defaults();
    for (name, kind) in
        [("grid", ArrangementKind::Grid), ("hexamesh", ArrangementKind::HexaMesh)]
    {
        let a = Arrangement::build(kind, 64).expect("builds");
        group.bench_function(name, |b| {
            b.iter(|| link_budget(black_box(&a), &params).expect("valid"));
        });
    }
    group.finish();
}

/// Fig. 7 — a reduced cycle-accurate load point (N = 19, short windows) per
/// arrangement, plus the zero-load analytic path.
fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_simulation");
    group.sample_size(10);
    let mut schedule = MeasureConfig::quick();
    schedule.warmup_cycles = 400;
    schedule.measure_cycles = 800;
    for kind in ArrangementKind::EVALUATED {
        let a = Arrangement::build(kind, 19).expect("builds");
        let config = SimConfig { injection_rate: 0.1, ..SimConfig::paper_defaults() };
        group.bench_function(format!("load_point_{}", a.kind().label()), |b| {
            b.iter(|| {
                measure::run_load_point(black_box(a.graph()), &config, &schedule)
                    .expect("valid config")
            });
        });
    }
    let grid = Arrangement::build(ArrangementKind::Grid, 100).expect("builds");
    group.bench_function("zero_load_analytic_grid_100", |b| {
        b.iter(|| {
            measure::zero_load_latency(black_box(grid.graph()), &SimConfig::paper_defaults())
                .expect("connected")
        });
    });
    group.finish();
}

/// EXP-A2 — simulator internals: routing-table construction and raw
/// cycle throughput of the router model.
fn bench_router(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_internals");
    group.sample_size(20);
    let grid = Arrangement::build(ArrangementKind::Grid, 100).expect("builds");
    group.bench_function("routing_tables_grid_100", |b| {
        b.iter(|| {
            nocsim::routing::RoutingTables::new(
                black_box(grid.graph()),
                RoutingKind::MinimalAdaptiveEscape,
            )
            .expect("connected")
        });
    });
    let hm = Arrangement::build(ArrangementKind::HexaMesh, 37).expect("builds");
    let config = SimConfig { injection_rate: 0.2, ..SimConfig::paper_defaults() };
    group.bench_function("simulate_1000_cycles_hexamesh_37", |b| {
        b.iter_batched(
            || Simulator::new(hm.graph(), config).expect("valid"),
            |mut sim| {
                sim.run(1_000);
                black_box(sim.cycle())
            },
            BatchSize::SmallInput,
        );
    });
    // The simperf scenarios as regression-tracked steady-state benches:
    // a warmed 8×8 grid stepped in place (event-driven vs reference path).
    let grid8 = chiplet_graph::gen::grid(8, 8);
    for (name, rate, reference) in [
        ("step_grid8x8_rate005_event", 0.05, false),
        ("step_grid8x8_rate005_reference", 0.05, true),
        ("step_grid8x8_rate030_event", 0.30, false),
    ] {
        let config = SimConfig { injection_rate: rate, ..SimConfig::paper_defaults() };
        let mut sim = Simulator::new(&grid8, config).expect("valid");
        sim.set_reference_stepping(reference);
        sim.run(2_000);
        group.bench_function(name, |b| {
            b.iter(|| {
                sim.run(200);
                black_box(sim.cycle())
            });
        });
    }
    group.finish();
}

/// EXP-C1 — cost-model sweep (extension).
fn bench_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("cost_model");
    let params = chiplet_cost::system::CostParams::default_5nm();
    group.bench_function("comparison_800mm2_16", |b| {
        b.iter(|| {
            chiplet_cost::system::system_cost_comparison(black_box(&params), 800.0, 16)
                .expect("valid")
        });
    });
    group.bench_function("best_count_800mm2", |b| {
        let counts: Vec<usize> = (1..=128).collect();
        b.iter(|| {
            chiplet_cost::system::best_chiplet_count(black_box(&params), 800.0, &counts)
                .expect("valid sweep")
        });
    });
    group.finish();
}

/// EXP-P1 — signal-integrity model: eye analysis and capacity solvers.
fn bench_phy(c: &mut Criterion) {
    use chiplet_phy::{capacity, eye, SignalBudget, Technology};
    let mut group = c.benchmark_group("phy_link_model");
    let sub = Technology::organic_substrate();
    let int = Technology::silicon_interposer();
    let budget = SignalBudget::default();
    group.bench_function("eye_analysis", |b| {
        b.iter(|| eye::analyze(black_box(&sub), &budget, 16.0, 2.5));
    });
    group.bench_function("max_length_substrate_16gbps", |b| {
        b.iter(|| capacity::max_length_mm(black_box(&sub), &budget, 16.0, -15.0));
    });
    group.bench_function("derated_rate_interposer_3mm", |b| {
        b.iter(|| capacity::derated_bit_rate_gbps(black_box(&int), &budget, 3.0, 16.0, -15.0));
    });
    group.finish();
}

/// EXP-TH1 — thermal solver on arrangement floorplans.
fn bench_thermal(c: &mut Criterion) {
    use chiplet_thermal::{solve, PowerMap, ThermalParams};
    let mut group = c.benchmark_group("thermal_solver");
    group.sample_size(20);
    let arrangement = Arrangement::build(ArrangementKind::HexaMesh, 37).expect("builds");
    let placement = arrangement.placement().expect("has layout").clone();
    let first = placement.chiplets()[0].rect;
    let mm_per_unit = (800.0 / 37.0 / (first.width() * first.height()) as f64).sqrt();
    group.bench_function("hexamesh_37_power_map", |b| {
        b.iter(|| {
            PowerMap::from_placement(black_box(&placement), mm_per_unit, 0.5, 4, |_| 5.4)
                .expect("rasterises")
        });
    });
    let map =
        PowerMap::from_placement(&placement, mm_per_unit, 0.5, 4, |_| 5.4).expect("rasterises");
    group.bench_function("hexamesh_37_solve", |b| {
        b.iter(|| solve(black_box(&map), &ThermalParams::default()).expect("converges"));
    });
    group.finish();
}

/// EXP-K1 — topology generators and the express-link search.
fn bench_topo(c: &mut Criterion) {
    use chiplet_topo::express::ExpressOptions;
    let mut group = c.benchmark_group("topologies");
    group.sample_size(20);
    group.bench_function("ftorus_7x7", |b| {
        b.iter(|| chiplet_topo::ftorus(black_box(7), 7));
    });
    group.bench_function("express_5x5_default", |b| {
        b.iter(|| {
            chiplet_topo::express(black_box(5), 5, &ExpressOptions::default()).expect("builds")
        });
    });
    group.finish();
}

/// EXP-R1 — resilience analysis (bridges, connectivity).
fn bench_resilience(c: &mut Criterion) {
    use chiplet_graph::resilience::{bridges, edge_connectivity};
    let mut group = c.benchmark_group("resilience");
    group.sample_size(20);
    let hm = Arrangement::build(ArrangementKind::HexaMesh, 91).expect("builds");
    group.bench_function("bridges_hexamesh_91", |b| {
        b.iter(|| bridges(black_box(hm.graph())));
    });
    group.bench_function("edge_connectivity_hexamesh_91", |b| {
        b.iter(|| edge_connectivity(black_box(hm.graph())));
    });
    group.finish();
}

/// Partitioner extensions: spectral bisection and k-way.
fn bench_partition_ext(c: &mut Criterion) {
    use chiplet_partition::{partition_kway, spectral_bisection, SpectralConfig};
    let mut group = c.benchmark_group("partition_extensions");
    let grid = Arrangement::build(ArrangementKind::Grid, 100).expect("builds");
    group.bench_function("spectral_grid_100", |b| {
        b.iter(|| {
            spectral_bisection(black_box(grid.graph()), &SpectralConfig::default()).expect("ok")
        });
    });
    group.bench_function("kway_4_grid_100", |b| {
        b.iter(|| partition_kway(black_box(grid.graph()), 4).expect("ok"));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig4,
    bench_fig5,
    bench_fig6_diameter,
    bench_fig6_bisection,
    bench_table1,
    bench_fig7,
    bench_router,
    bench_cost,
    bench_phy,
    bench_thermal,
    bench_topo,
    bench_partition_ext,
    bench_resilience
);
criterion_main!(benches);
