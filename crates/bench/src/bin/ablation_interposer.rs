//! EXP-A5 — carrier ablation: organic substrate (C4 bumps) vs. silicon
//! interposer (micro-bumps).
//!
//! The paper evaluates §VI with C4-bump parameters (0.15 mm pitch) and
//! observes its results would scale with bump density (§II: micro-bumps
//! "further enhance the throughput of D2D links"). This ablation re-runs
//! the Fig. 7 pipeline with the §II micro-bump midpoint (45 µm): per-link
//! bandwidth grows ~11×, the G/BW/HM *ranking* must not change, and the
//! signal-integrity model confirms interposer links stay within their
//! ≤ 2 mm reach for N ≥ 10 (the regime where interposers are usable at
//! full rate).
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin ablation_interposer [--quick]`
//! Writes `results/ablation_interposer.csv`.

use std::path::Path;

use chiplet_phy::{capacity, SignalBudget, Technology};
use hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh::eval::{evaluate, EvalParams};
use hexamesh::link::MICROBUMP_PITCH_MM;
use hexamesh::shape::{paper_link_length, shape_for, ShapeParams};
use hexamesh_bench::csv::{f3, Table};
use hexamesh_bench::{sweep, RESULTS_DIR};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    xp::cli::reject_unknown_flags(&args, &["--quick"]);
    let quick = sweep::arg_flag(&args, "--quick");
    let budget = SignalBudget::default();
    let interposer = Technology::silicon_interposer();
    let reach = capacity::max_length_mm(&interposer, &budget, 16.0, -15.0)
        .expect("feasible at zero length");

    let c4 = if quick { EvalParams::quick() } else { EvalParams::paper_defaults() };
    let mut micro = c4;
    micro.bump_pitch_mm = MICROBUMP_PITCH_MM;

    let mut table = Table::new(&[
        "n",
        "kind",
        "link_length_mm",
        "within_interposer_reach",
        "c4_link_gbps",
        "microbump_link_gbps",
        "c4_saturation_tbps",
        "microbump_saturation_tbps",
    ]);

    println!("Carrier ablation (interposer reach at 16 Gb/s, BER 1e-15: {reach:.2} mm):");
    println!(
        "{:>3} {:<4} {:>8} {:>6} {:>10} {:>12} {:>10} {:>12}",
        "N",
        "kind",
        "link[mm]",
        "reach?",
        "C4 [Gb/s]",
        "µbump [Gb/s]",
        "C4 [Tb/s]",
        "µbump [Tb/s]"
    );
    for n in [16usize, 37, 64] {
        for kind in ArrangementKind::EVALUATED {
            let arrangement = Arrangement::build(kind, n).expect("any n builds");
            let shape_params =
                ShapeParams::new(c4.total_area_mm2 / n as f64, c4.power_fraction)
                    .expect("valid");
            let link_mm = paper_link_length(
                &shape_for(kind, &shape_params).expect("rectangular kinds solve"),
            );
            let feasible = link_mm <= reach;

            let on_c4 = evaluate(&arrangement, &c4).expect("simulates");
            let on_micro = evaluate(&arrangement, &micro).expect("simulates");

            println!(
                "{:>3} {:<4} {:>8.2} {:>6} {:>10.0} {:>12.0} {:>10.2} {:>12.2}",
                n,
                kind.label(),
                link_mm,
                if feasible { "yes" } else { "NO" },
                on_c4.link_bandwidth_gbps,
                on_micro.link_bandwidth_gbps,
                on_c4.saturation_throughput_tbps,
                on_micro.saturation_throughput_tbps,
            );
            table.row(&[
                &n,
                &kind.label(),
                &f3(link_mm),
                &feasible,
                &f3(on_c4.link_bandwidth_gbps),
                &f3(on_micro.link_bandwidth_gbps),
                &f3(on_c4.saturation_throughput_tbps),
                &f3(on_micro.saturation_throughput_tbps),
            ]);
        }
    }

    table
        .write_to(Path::new(RESULTS_DIR).join("ablation_interposer.csv").as_path())
        .expect("results dir writable");
    println!("\nwrote {RESULTS_DIR}/ablation_interposer.csv");
    println!("(relative throughput is pitch-invariant: the ranking is the paper's)");
}
