//! EXP-A4 — router-microarchitecture sensitivity of the arrangement
//! comparison.
//!
//! The paper evaluates one router pipeline (§VI: round-robin VC
//! allocation, nominee round-robin output arbitration, single-cycle
//! crossbar). This ablation re-runs the G/BW/HM comparison across the
//! pluggable [`nocsim::RouterModelKind`] matrix — random / least-loaded
//! VC allocation, age- and transit-priority arbitration, bubble escape
//! flow control, deeper crossbar pipelines — to check that the
//! arrangement ranking is not an artefact of one microarchitecture.
//!
//! A preset wrapper over the study flow (stage `router`):
//! `study --preset ablation_router` runs the identical campaign.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin ablation_router
//! [--n N] [--routers baseline,fortified,...] [--quick] [--workers W]
//! [--seeds K] [--out DIR] [--format F]`
//! Writes `results/ablation_router.{csv,json}`. Router-model names parse
//! through the shared `xp::cli` list layer (strict: malformed names
//! abort).
//!
//! Historical note: before the router-model axis existed, this binary
//! swept routing algorithm x VC count instead; that sweep is now spelled
//! as `[sim]` overrides (`sim.routing`, `sim.vcs`) on any simulating
//! stage, and this name keeps the microarchitecture ablation.

use hexamesh_bench::presets;
use hexamesh_bench::sweep;
use nocsim::RouterModelKind;
use xp::cli::{self, try_arg_list, CampaignArgs};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cli::reject_unknown_flags(&args, &cli::with_shared(&["--n", "--routers"]));
    let n = sweep::arg_usize(&args, "--n", 37);
    let routers = try_arg_list::<RouterModelKind>(&args, "--routers").unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let shared = CampaignArgs::parse(&args);

    let mut spec = presets::preset("ablation_router").expect("registered preset");
    spec.axes.ns = Some(vec![n]);
    if routers.is_some() {
        spec.axes.routers = routers;
    }

    println!("Router-model ablation at N = {n}:");
    presets::run_and_report(&spec, shared);
}
