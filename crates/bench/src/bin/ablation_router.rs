//! EXP-A2 — ablation of our BookSim2-substitute design choices: routing
//! algorithm and virtual-channel count, at a fixed arrangement size.
//!
//! The paper fixes 8 VCs and (implicitly) BookSim2's `anynet` shortest-path
//! routing; our default is minimal-adaptive with an up*/down* escape VC so
//! unattended sweeps cannot deadlock. This ablation quantifies the effect of
//! that substitution.
//!
//! The routing × VC axes are beyond the standard scenario grid, so this
//! binary feeds an ad-hoc job list (kind × routing × VCs × `--seeds K`)
//! straight to the engine pool — all 27 saturation searches in parallel,
//! with seeds derived from the job coordinates.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin ablation_router
//! [--n N] [--quick|--full] [--workers W] [--seeds K] [--out DIR]
//! [--format F]`
//! Writes `results/ablation_router.{csv,json}`.

use hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh_bench::csv::{f3, Table};
use hexamesh_bench::sweep::{self, mean_of};
use nocsim::{measure, RoutingKind, SimConfig};
use xp::grid::expand_replicates;
use xp::json::Value;
use xp::{Campaign, CampaignArgs};

const ROUTINGS: [RoutingKind; 3] = [
    RoutingKind::MinimalAdaptiveEscape,
    RoutingKind::MinimalDeterministic,
    RoutingKind::UpDownOnly,
];
const VC_COUNTS: [usize; 3] = [2, 4, 8];

#[derive(Clone, Copy)]
struct AblationJob {
    kind: ArrangementKind,
    routing: RoutingKind,
    vcs: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    xp::cli::reject_unknown_flags(&args, &xp::cli::with_shared(&["--n"]));
    let n = sweep::arg_usize(&args, "--n", 37);
    let campaign = Campaign::new("ablation_router", CampaignArgs::parse(&args));

    let schedule = sweep::schedule_for(campaign.args());

    let mut jobs = Vec::new();
    for &kind in &ArrangementKind::EVALUATED {
        for &routing in &ROUTINGS {
            for &vcs in &VC_COUNTS {
                jobs.push(AblationJob { kind, routing, vcs });
            }
        }
    }
    let seeds = campaign.args().seeds.max(1);
    let expanded = expand_replicates(&jobs, seeds, campaign.args().campaign_seed, |job| {
        let routing_rank =
            ROUTINGS.iter().position(|&r| r == job.routing).expect("listed routing");
        vec![sweep::evaluated_rank(job.kind) as u64, routing_rank as u64, job.vcs as u64]
    });

    let results = campaign.run_jobs(
        &expanded,
        |(job, _)| job.vcs as u64,
        |(job, seed)| {
            let arrangement = Arrangement::build(job.kind, n).expect("n >= 1 builds");
            let graph = arrangement.graph();
            let config = SimConfig {
                routing: job.routing,
                vcs: job.vcs,
                seed: *seed,
                ..SimConfig::paper_defaults()
            };
            let zero_load =
                measure::zero_load_latency(graph, &config).expect("connected graph");
            let sat = measure::saturation_search(graph, &config, &schedule)
                .expect("valid configuration");
            (zero_load, sat.throughput)
        },
    );

    let mut table = Table::new(&[
        "kind",
        "routing",
        "vcs",
        "zero_load_latency_cycles",
        "saturation_fraction",
    ]);

    println!("Routing/VC ablation at N = {n}:");
    println!(
        "{:<4} {:<22} {:>3}  {:>10} {:>10}",
        "kind", "routing", "vcs", "lat [cyc]", "sat [frac]"
    );
    for (job, chunk) in jobs.iter().zip(results.chunks(seeds as usize)) {
        let zero_load = mean_of(chunk, |(l, _)| *l);
        let saturation = mean_of(chunk, |(_, s)| *s);
        let routing_name = format!("{:?}", job.routing);
        println!(
            "{:<4} {:<22} {:>3}  {:>10.1} {:>10.3}",
            job.kind.label(),
            routing_name,
            job.vcs,
            zero_load,
            saturation
        );
        table.row(&[
            &job.kind.label(),
            &routing_name,
            &job.vcs,
            &f3(zero_load),
            &f3(saturation),
        ]);
    }

    let mut config = Value::object();
    config.set("n", n);
    let written = campaign.finish(&table, config).expect("write sinks");
    for path in &written {
        println!("wrote {} ({} rows)", path.display(), table.len());
    }
}
