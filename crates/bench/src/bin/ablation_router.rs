//! EXP-A2 — ablation of our BookSim2-substitute design choices: routing
//! algorithm and virtual-channel count, at a fixed arrangement size.
//!
//! The paper fixes 8 VCs and (implicitly) BookSim2's `anynet` shortest-path
//! routing; our default is minimal-adaptive with an up*/down* escape VC so
//! unattended sweeps cannot deadlock. This ablation quantifies the effect of
//! that substitution.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin ablation_router [--n N]`
//! Writes `results/ablation_router.csv`.

use std::path::Path;

use hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh_bench::csv::{f3, Table};
use hexamesh_bench::{sweep, RESULTS_DIR};
use nocsim::{measure, MeasureConfig, RoutingKind, SimConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = sweep::arg_usize(&args, "--n", 37);

    let schedule = MeasureConfig {
        warmup_cycles: 3_000,
        measure_cycles: 6_000,
        ..MeasureConfig::default()
    };
    let mut table = Table::new(&[
        "kind",
        "routing",
        "vcs",
        "zero_load_latency_cycles",
        "saturation_fraction",
    ]);

    println!("Routing/VC ablation at N = {n}:");
    println!(
        "{:<4} {:<22} {:>3}  {:>10} {:>10}",
        "kind", "routing", "vcs", "lat [cyc]", "sat [frac]"
    );
    for kind in ArrangementKind::EVALUATED {
        let arrangement = Arrangement::build(kind, n).expect("n >= 1 builds");
        let graph = arrangement.graph();
        for routing in [
            RoutingKind::MinimalAdaptiveEscape,
            RoutingKind::MinimalDeterministic,
            RoutingKind::UpDownOnly,
        ] {
            for vcs in [2usize, 4, 8] {
                let config = SimConfig { routing, vcs, ..SimConfig::paper_defaults() };
                let zero_load =
                    measure::zero_load_latency(graph, &config).expect("connected graph");
                let sat = measure::saturation_search(graph, &config, &schedule)
                    .expect("valid configuration");
                let routing_name = format!("{routing:?}");
                println!(
                    "{:<4} {:<22} {:>3}  {:>10.1} {:>10.3}",
                    kind.label(),
                    routing_name,
                    vcs,
                    zero_load,
                    sat.throughput
                );
                table.row(&[
                    &kind.label(),
                    &routing_name,
                    &vcs,
                    &f3(zero_load),
                    &f3(sat.throughput),
                ]);
            }
        }
    }
    let path = Path::new(RESULTS_DIR).join("ablation_router.csv");
    table.write_to(&path).expect("write CSV");
    println!("wrote {} ({} rows)", path.display(), table.len());
}
