//! EXP-A3 — traffic-pattern sensitivity of the arrangement comparison.
//!
//! The paper evaluates under uniform-random traffic only (§VI-A). This
//! ablation re-runs the G/BW/HM comparison under adversarial patterns
//! (bit-complement, bit-reverse, tornado, hotspot) to check that the
//! arrangement ranking is not an artefact of benign traffic.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin ablation_traffic [--n N] [--quick]`
//! Writes `results/ablation_traffic.csv`.

use std::path::Path;

use hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh_bench::csv::{f3, Table};
use hexamesh_bench::{sweep, RESULTS_DIR};
use nocsim::{measure, MeasureConfig, SimConfig, TrafficPattern};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = sweep::arg_usize(&args, "--n", 37);
    let quick = sweep::arg_flag(&args, "--quick");
    let schedule = if quick {
        MeasureConfig::quick()
    } else {
        MeasureConfig {
            warmup_cycles: 3_000,
            measure_cycles: 6_000,
            ..MeasureConfig::default()
        }
    };

    let patterns: [(&str, TrafficPattern); 5] = [
        ("uniform", TrafficPattern::UniformRandom),
        ("bitcomp", TrafficPattern::BitComplement),
        ("bitrev", TrafficPattern::BitReverse),
        ("tornado", TrafficPattern::Tornado),
        ("hotspot", TrafficPattern::Hotspot { num_hotspots: 4, fraction_permille: 500 }),
    ];

    let mut table = Table::new(&[
        "n",
        "pattern",
        "kind",
        "zero_load_latency_cycles",
        "saturation_fraction",
        "saturation_vs_grid",
    ]);

    println!("Traffic-pattern ablation at N = {n}:");
    println!(
        "{:<8} {:<4} {:>10} {:>10} {:>9}",
        "pattern", "kind", "lat [cyc]", "sat [frac]", "vs grid"
    );
    for (pattern_name, pattern) in patterns {
        let mut grid_sat = None;
        for kind in ArrangementKind::EVALUATED {
            let arrangement = Arrangement::build(kind, n).expect("any n builds");
            let graph = arrangement.graph();
            let config = SimConfig { pattern, ..SimConfig::paper_defaults() };
            let zero_load =
                measure::zero_load_latency(graph, &config).expect("connected graph");
            let sat = measure::saturation_search(graph, &config, &schedule)
                .expect("valid configuration");
            if kind == ArrangementKind::Grid {
                grid_sat = Some(sat.throughput);
            }
            let vs_grid = grid_sat
                .filter(|&g| g > 0.0)
                .map_or(f64::NAN, |g| sat.throughput / g);
            println!(
                "{:<8} {:<4} {:>10.1} {:>10.3} {:>9.2}",
                pattern_name,
                kind.label(),
                zero_load,
                sat.throughput,
                vs_grid
            );
            table.row(&[
                &n,
                &pattern_name,
                &kind.label(),
                &f3(zero_load),
                &f3(sat.throughput),
                &f3(vs_grid),
            ]);
        }
    }

    table
        .write_to(Path::new(RESULTS_DIR).join("ablation_traffic.csv").as_path())
        .expect("results dir writable");
    println!("\nwrote {RESULTS_DIR}/ablation_traffic.csv");
}
