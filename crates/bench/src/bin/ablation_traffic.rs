//! EXP-A3 — traffic-pattern sensitivity of the arrangement comparison.
//!
//! The paper evaluates under uniform-random traffic only (§VI-A). This
//! ablation re-runs the G/BW/HM comparison under adversarial patterns
//! (bit-complement, bit-reverse, tornado, hotspot) to check that the
//! arrangement ranking is not an artefact of benign traffic.
//!
//! A preset wrapper over the study flow (stage `traffic`):
//! `study --preset ablation_traffic` runs the identical campaign.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin ablation_traffic
//! [--n N] [--patterns uniform,bitcomp,...] [--quick] [--workers W]
//! [--seeds K] [--out DIR] [--format F]`
//! Writes `results/ablation_traffic.{csv,json}`. Patterns parse through
//! the shared `xp::cli` list layer (strict: malformed names abort).

use hexamesh_bench::presets;
use hexamesh_bench::sweep;
use nocsim::TrafficPattern;
use xp::cli::{self, try_arg_list, CampaignArgs};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cli::reject_unknown_flags(&args, &cli::with_shared(&["--n", "--patterns"]));
    let n = sweep::arg_usize(&args, "--n", 37);
    let patterns = try_arg_list::<TrafficPattern>(&args, "--patterns").unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let shared = CampaignArgs::parse(&args);

    let mut spec = presets::preset("ablation_traffic").expect("registered preset");
    spec.axes.ns = Some(vec![n]);
    spec.axes.patterns = patterns;

    println!("Traffic-pattern ablation at N = {n}:");
    presets::run_and_report(&spec, shared);
}
