//! EXP-A3 — traffic-pattern sensitivity of the arrangement comparison.
//!
//! The paper evaluates under uniform-random traffic only (§VI-A). This
//! ablation re-runs the G/BW/HM comparison under adversarial patterns
//! (bit-complement, bit-reverse, tornado, hotspot) to check that the
//! arrangement ranking is not an artefact of benign traffic.
//!
//! Declared as an engine grid (pattern × kind × `--seeds K`) so all
//! fifteen saturation searches run concurrently on the pool.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin ablation_traffic
//! [--n N] [--patterns uniform,bitcomp,...] [--quick] [--workers W]
//! [--seeds K] [--out DIR] [--format F]`
//! Writes `results/ablation_traffic.{csv,json}`. Patterns parse through
//! the shared `xp::cli::arg_list` layer (strict: malformed names abort).

use hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh_bench::csv::{f3, Table};
use hexamesh_bench::sweep::{self, mean_of};
use nocsim::{measure, SimConfig, TrafficPattern};
use xp::cli::arg_list;
use xp::grid::Scenario;
use xp::json::Value;
use xp::{Campaign, CampaignArgs};

/// The historical default sweep: benign baseline + four adversaries.
const DEFAULT_PATTERNS: [TrafficPattern; 5] = [
    TrafficPattern::UniformRandom,
    TrafficPattern::BitComplement,
    TrafficPattern::BitReverse,
    TrafficPattern::Tornado,
    TrafficPattern::Hotspot { num_hotspots: 4, fraction_permille: 500 },
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = sweep::arg_usize(&args, "--n", 37);
    let patterns = arg_list::<TrafficPattern>(&args, "--patterns", &DEFAULT_PATTERNS);
    let campaign = Campaign::new("ablation_traffic", CampaignArgs::parse(&args));
    let schedule = sweep::schedule_for(campaign.args());

    // Scenario expands kind-outermost (kind → n → rate → pattern →
    // replicate); the sort below restores the historical pattern-major
    // row order after aggregation.
    let scenario = Scenario::new(&ArrangementKind::EVALUATED, &[n]).with_patterns(&patterns);
    let results = campaign.run_grid(&scenario, |job| {
        let arrangement = Arrangement::build(job.kind, job.n).expect("any n builds");
        let graph = arrangement.graph();
        let config =
            SimConfig { pattern: job.pattern, seed: job.seed, ..SimConfig::paper_defaults() };
        let zero_load = measure::zero_load_latency(graph, &config).expect("connected graph");
        let sat =
            measure::saturation_search(graph, &config, &schedule).expect("valid configuration");
        (zero_load, sat.throughput)
    });

    let mut table = Table::new(&[
        "n",
        "pattern",
        "kind",
        "zero_load_latency_cycles",
        "saturation_fraction",
        "saturation_vs_grid",
    ]);

    println!("Traffic-pattern ablation at N = {n}:");
    println!(
        "{:<8} {:<4} {:>10} {:>10} {:>9}",
        "pattern", "kind", "lat [cyc]", "sat [frac]", "vs grid"
    );
    // Aggregate replicates, then reorder to the historical pattern-major
    // row order (the grid expands kind-major).
    let k = campaign.args().seeds.max(1) as usize;
    let mut by_point: Vec<(TrafficPattern, ArrangementKind, f64, f64)> = results
        .chunks(k)
        .map(|chunk| {
            let job = chunk[0].0;
            (
                job.pattern,
                job.kind,
                mean_of(chunk, |(_, (l, _))| *l),
                mean_of(chunk, |(_, (_, s))| *s),
            )
        })
        .collect();
    let pattern_rank =
        |p: TrafficPattern| patterns.iter().position(|&q| q == p).unwrap_or(usize::MAX);
    by_point.sort_by_key(|&(p, k, _, _)| (pattern_rank(p), sweep::evaluated_rank(k)));

    for (pattern, kind, zero_load, sat) in &by_point {
        let pattern_name = pattern.name();
        let grid_sat = by_point
            .iter()
            .find(|(p, k, _, _)| p == pattern && *k == ArrangementKind::Grid)
            .map(|&(_, _, _, s)| s)
            .filter(|&g| g > 0.0);
        let vs_grid = grid_sat.map_or(f64::NAN, |g| sat / g);
        println!(
            "{:<8} {:<4} {:>10.1} {:>10.3} {:>9.2}",
            pattern_name,
            kind.label(),
            zero_load,
            sat,
            vs_grid
        );
        table.row(&[
            &n,
            &pattern_name,
            &kind.label(),
            &f3(*zero_load),
            &f3(*sat),
            &f3(vs_grid),
        ]);
    }

    let mut config = Value::object();
    config.set("n", n);
    config
        .set("patterns", Value::Arr(patterns.iter().map(|p| Value::from(p.name())).collect()));
    let written = campaign.finish(&table, config).expect("results dir writable");
    for path in written {
        println!("wrote {}", path.display());
    }
}
