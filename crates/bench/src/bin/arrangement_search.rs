//! EXP-AS1 — arrangement search: discovers custom chiplet arrangements
//! with the `chiplet_arrange` optimizer and ranks them against the four
//! fixed families {HexaMesh, brickwall, honeycomb, grid} by the staged
//! proxy objective, then validates the contenders with cycle-accurate
//! saturation throughput and closed-loop workload makespan.
//!
//! A preset wrapper over the study flow (stage `search`, implemented by
//! `chiplet_arrange::study` and injected through the flow's stage hooks):
//! `study --preset arrangement_search` runs the identical campaign.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin arrangement_search
//! [--ns 37,91,169,271] [--restarts R] [--iterations I] [--no-validate]
//! [--quick] [--workers W] [--out DIR] [--format F] [--seed S]`
//!
//! Writes `BENCH_arrange.{csv,json}` — to the repository root by default
//! (the tracked baseline record; pass `--out` to redirect). Rows are
//! byte-identical for any `--workers` value. `--quick` shrinks the
//! chiplet counts to {19, 37} and the annealing schedule for CI smoke
//! runs.

use hexamesh_bench::presets;
use hexamesh_bench::sweep;
use xp::cli::{self, try_arg_list, CampaignArgs};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cli::reject_unknown_flags(
        &args,
        &cli::with_shared(&["--ns", "--restarts", "--iterations", "--no-validate"]),
    );
    let ns = try_arg_list::<usize>(&args, "--ns").unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let shared = CampaignArgs::parse(&args);

    let mut spec = presets::preset("arrangement_search").expect("registered preset");
    spec.axes.ns = ns;
    // The historical restart/iteration defaults are quick-dependent; only
    // explicit flags override the search's own schedule.
    spec.search.restarts =
        Some(sweep::arg_usize(&args, "--restarts", if shared.quick { 4 } else { 8 }));
    spec.search.iterations =
        Some(sweep::arg_usize(&args, "--iterations", if shared.quick { 400 } else { 3_000 }));
    spec.search.validate = !sweep::arg_flag(&args, "--no-validate");
    let mut resolved = shared;
    xp::flow::apply_spec_defaults(&spec, &mut resolved, &args);

    presets::run_and_report(&spec, resolved);
}
