//! EXP-AS1 — arrangement search: discovers custom chiplet arrangements
//! with the `chiplet_arrange` optimizer and ranks them against the four
//! fixed families {HexaMesh, brickwall, honeycomb, grid} by the staged
//! proxy objective, then validates the contenders with cycle-accurate
//! saturation throughput and closed-loop workload makespan.
//!
//! This is the scenario-diversity axis beyond the paper: instead of
//! evaluating hand-designed patterns, the search anneals rectangle
//! placements (swap/rotate/relocate moves preserving overlap-freedom and
//! connectivity) from fixed-arrangement and random seeds. Because three
//! restarts are seeded from the HexaMesh, brickwall, and grid placements,
//! the optimized arrangement's proxy objective is never worse than the
//! best fixed placement's.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin arrangement_search
//! [--ns 37,91,169,271] [--restarts R] [--iterations I] [--no-validate]
//! [--quick] [--workers W] [--out DIR] [--format F] [--seed S]`
//!
//! Writes `BENCH_arrange.{csv,json}` — to the repository root by default
//! (the tracked baseline record; pass `--out` to redirect). Rows are
//! byte-identical for any `--workers` value. `--quick` shrinks the
//! chiplet counts to {19, 37} and the annealing schedule for CI smoke
//! runs.

use chiplet_arrange::{
    full_score, search, validate_graph, ProxyScore, SearchConfig, SearchState, ValidateConfig,
    ValidationReport,
};
use chiplet_graph::Graph;
use hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh_bench::csv::{f3, Table};
use hexamesh_bench::sweep;
use xp::cli::arg_list;
use xp::json::Value;
use xp::seed::derive_seed;
use xp::{Campaign, CampaignArgs};

/// One ranked row: the optimized arrangement or a fixed family.
struct Row {
    /// CSV label: "OPT" or the fixed family's label.
    label: &'static str,
    /// Where the row came from: winning init kind for OPT, regularity for
    /// fixed families.
    source: String,
    score: ProxyScore,
    /// The row's ICI graph, kept for validation.
    graph: Graph,
    validation: Option<ValidationReport>,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut shared = CampaignArgs::parse(&args);
    sweep::default_out_to_repo_root(&args, &mut shared);
    let default_ns: &[usize] = if shared.quick { &[19, 37] } else { &[37, 91, 169, 271] };
    let ns = arg_list::<usize>(&args, "--ns", default_ns);
    let restarts = sweep::arg_usize(&args, "--restarts", if shared.quick { 4 } else { 8 });
    let iterations =
        sweep::arg_usize(&args, "--iterations", if shared.quick { 400 } else { 3_000 });
    let validate = !sweep::arg_flag(&args, "--no-validate");
    let measure = sweep::schedule_for(&shared);
    let campaign = Campaign::new("BENCH_arrange", shared);

    let mut table = Table::new(&[
        "n",
        "kind",
        "source",
        "avg_distance",
        "diameter",
        "bisection_cut",
        "proxy_value",
        "rank",
        "sat_rate",
        "sat_throughput",
        "makespan_cycles",
        "critical_path_cycles",
    ]);

    println!("Arrangement search vs. fixed families (proxy objective, lower is better):");
    println!(
        "{:>4} {:<5} {:<10} {:>8} {:>5} {:>5} {:>8} {:>5}  {:>8} {:>10}",
        "n",
        "kind",
        "source",
        "avg dist",
        "diam",
        "bisec",
        "value",
        "rank",
        "sat rate",
        "makespan"
    );

    let mut opt_beats_best_fixed_everywhere = true;
    for &n in &ns {
        let mut config = base_search_config(n, campaign.args());
        config.restarts = restarts;
        config.anneal.iterations = iterations;
        let outcome = search(&config).unwrap_or_else(|e| panic!("search n={n}: {e}"));
        let best = outcome.best();

        let mut rows = vec![Row {
            label: "OPT",
            source: format!("{}:r{}", best.init.label(), best.restart),
            score: best.score,
            graph: best.state.graph(),
            validation: None,
        }];
        for kind in ArrangementKind::ALL {
            rows.push(fixed_row(kind, n, &config));
        }

        let values: Vec<f64> = rows.iter().map(|r| r.score.value).collect();
        let rank = sweep::competition_rank(&values);

        // Stage 3: validate the optimized arrangement and the best fixed
        // family with cycle-accurate saturation + workload makespan. Both
        // rows run under the *same* derived simulator seed (from `n`
        // alone), so their comparison measures the arrangements, not
        // traffic-realisation noise.
        if validate {
            let mut best_fixed = 1;
            for i in 2..rows.len() {
                if values[i] < values[best_fixed] {
                    best_fixed = i;
                }
            }
            let mut vconfig = ValidateConfig { measure, ..ValidateConfig::default() };
            vconfig.sim.seed = derive_seed(campaign.args().campaign_seed, &[n as u64]);
            let opt_report = validate_graph(&rows[0].graph, &vconfig)
                .unwrap_or_else(|e| panic!("validate n={n} OPT: {e}"));
            // When the search converges to the best fixed family the two
            // graphs are identical, and so (same seed) is the report —
            // skip the second cycle-accurate run, the campaign's slowest.
            rows[best_fixed].validation = if rows[best_fixed].graph == rows[0].graph {
                Some(opt_report.clone())
            } else {
                Some(validate_graph(&rows[best_fixed].graph, &vconfig).unwrap_or_else(|e| {
                    panic!("validate n={n} {}: {e}", rows[best_fixed].label)
                }))
            };
            rows[0].validation = Some(opt_report);
        }

        let opt_value = rows[0].score.value;
        let best_fixed_value =
            rows[1..].iter().map(|r| r.score.value).fold(f64::INFINITY, f64::min);
        if opt_value > best_fixed_value {
            opt_beats_best_fixed_everywhere = false;
        }

        for (i, row) in rows.iter().enumerate() {
            let (sat_rate, sat_tp, makespan, critical) = match &row.validation {
                Some(v) => (
                    f3(v.saturation.rate),
                    f3(v.saturation.throughput),
                    v.workload.makespan.to_string(),
                    v.workload.critical_path_cycles.to_string(),
                ),
                None => (String::new(), String::new(), String::new(), String::new()),
            };
            println!(
                "{:>4} {:<5} {:<10} {:>8} {:>5} {:>5} {:>8} {:>5}  {:>8} {:>10}",
                n,
                row.label,
                row.source,
                f3(row.score.avg_distance),
                row.score.diameter,
                row.score.bisection_cut,
                f3(row.score.value),
                rank[i],
                sat_rate,
                makespan,
            );
            table.row(&[
                &n,
                &row.label,
                &row.source,
                &f3(row.score.avg_distance),
                &row.score.diameter,
                &row.score.bisection_cut,
                &f3(row.score.value),
                &rank[i],
                &sat_rate,
                &sat_tp,
                &makespan,
                &critical,
            ]);
        }
        println!(
            "  → n={n}: optimized ({}) value {} vs best fixed {} — {}",
            rows[0].source,
            f3(opt_value),
            f3(best_fixed_value),
            if opt_value < best_fixed_value { "improved" } else { "matched" }
        );
    }
    assert!(
        opt_beats_best_fixed_everywhere,
        "optimized arrangement scored worse than a fixed family (fixed-seeded \
         restarts make this impossible unless the search is broken)"
    );

    let mut config = Value::object();
    config.set("ns", Value::Arr(ns.iter().map(|&n| Value::from(n as f64)).collect()));
    config.set("restarts", restarts);
    config.set("iterations", iterations);
    config.set("validated", validate);
    let written = campaign.finish(&table, config).expect("results dir writable");
    for path in written {
        println!("wrote {}", path.display());
    }
}

/// The search configuration shared by every `n` of this campaign.
fn base_search_config(n: usize, args: &CampaignArgs) -> SearchConfig {
    let mut config = if args.quick { SearchConfig::quick(n) } else { SearchConfig::new(n) };
    config.seed = args.campaign_seed;
    config.workers = args.workers;
    config
}

/// Scores one fixed arrangement family at `n`.
///
/// HexaMesh and brickwall placements are scored through the same
/// canonicalised [`SearchState`] path the optimizer's seeded restarts use,
/// so "optimized ≤ best fixed" holds exactly (the bisection heuristic sees
/// the same vertex labelling). The honeycomb has no rectangle placement
/// and the paper's grid uses unit tiles; both are scored on their graphs
/// directly.
fn fixed_row(kind: ArrangementKind, n: usize, config: &SearchConfig) -> Row {
    let arrangement = Arrangement::build(kind, n).expect("any n >= 1 builds");
    let graph = match kind {
        ArrangementKind::HexaMesh | ArrangementKind::Brickwall => {
            let placement = arrangement.placement().expect("rectangular family");
            SearchState::from_placement(placement)
                .expect("fixed placements are valid states")
                .canonical()
                .graph()
        }
        _ => arrangement.graph().clone(),
    };
    let score = full_score(&graph, &config.weights, &config.bisection)
        .expect("fixed arrangements are connected");
    Row {
        label: kind.label(),
        source: arrangement.regularity().to_string(),
        score,
        graph,
        validation: None,
    }
}
