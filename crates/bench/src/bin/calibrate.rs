//! Quick timing calibration for the simulator (not a paper experiment).
use hexamesh::arrangement::{Arrangement, ArrangementKind};
use nocsim::{measure, MeasureConfig, SimConfig};
use std::time::Instant;

fn main() {
    // Analytic binary: no flags. Unknown flags abort (strict-CLI rule).
    let args: Vec<String> = std::env::args().collect();
    xp::cli::reject_unknown_flags(&args, &[]);
    for n in [25usize, 100] {
        let a = Arrangement::build(ArrangementKind::HexaMesh, n).unwrap();
        let cfg = SimConfig { injection_rate: 0.2, ..SimConfig::paper_defaults() };
        let mut sched = MeasureConfig::default();
        sched.warmup_cycles = 3_000;
        sched.measure_cycles = 6_000;
        let t = Instant::now();
        let point = measure::run_load_point(a.graph(), &cfg, &sched).unwrap();
        println!(
            "n={n}: one 9k-cycle load point in {:?} (saturated={}, lat={:?})",
            t.elapsed(),
            point.saturated,
            point.stats.avg_packet_latency
        );
        let t = Instant::now();
        let sat = measure::saturation_search(a.graph(), &cfg, &sched).unwrap();
        println!(
            "n={n}: saturation search in {:?} -> rate {:.3} thr {:.3}",
            t.elapsed(),
            sat.rate,
            sat.throughput
        );
    }
}
