//! EXP-C1 (extension) — the cost analysis the paper's §VII points to
//! (Chiplet Actuary): monolithic vs. 2.5D recurring cost across total
//! silicon area and chiplet count, using the same 800 mm² design point as
//! the performance evaluation.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin cost_model`
//! Writes `results/cost_model.csv`.

use std::path::Path;

use chiplet_cost::system::{best_chiplet_count, system_cost_comparison, CostParams};
use hexamesh_bench::csv::{f3, Table};
use hexamesh_bench::RESULTS_DIR;

fn main() {
    let params = CostParams::default_5nm();
    let mut table = Table::new(&[
        "total_area_mm2",
        "num_chiplets",
        "monolithic_cost",
        "mcm_cost",
        "monolithic_over_mcm",
        "monolithic_yield",
        "chiplet_yield",
        "assembly_yield",
    ]);

    println!("Monolithic vs 2.5D recurring cost (5nm-class defaults)\n");
    println!(
        "{:>8} {:>5}  {:>11} {:>11} {:>8}  {:>7} {:>7} {:>7}",
        "area", "N", "mono [$]", "mcm [$]", "ratio", "Y_mono", "Y_chip", "Y_asm"
    );
    for &area in &[50.0, 100.0, 200.0, 400.0, 600.0, 800.0] {
        for &n in &[2usize, 4, 8, 16, 25, 36, 49, 64, 100] {
            let Ok(cmp) = system_cost_comparison(&params, area, n) else {
                continue; // tiny chiplets may round below wafer feasibility
            };
            println!(
                "{:>8.0} {:>5}  {:>11.0} {:>11.0} {:>8.2}  {:>7.3} {:>7.3} {:>7.3}",
                area,
                n,
                cmp.monolithic_total,
                cmp.mcm_total,
                cmp.monolithic_over_mcm(),
                cmp.monolithic_yield,
                cmp.chiplet_yield,
                cmp.assembly_yield
            );
            table.row(&[
                &f3(area),
                &n,
                &f3(cmp.monolithic_total),
                &f3(cmp.mcm_total),
                &f3(cmp.monolithic_over_mcm()),
                &f3(cmp.monolithic_yield),
                &f3(cmp.chiplet_yield),
                &f3(cmp.assembly_yield),
            ]);
        }
    }

    // The sweet spot at the paper's 800 mm² design point.
    let counts: Vec<usize> = (1..=128).collect();
    if let Some((best_n, best_cost)) = best_chiplet_count(&params, 800.0, &counts) {
        println!("\noptimal chiplet count at 800 mm²: N = {best_n} (MCM cost ${best_cost:.0})");
    }

    let path = Path::new(RESULTS_DIR).join("cost_model.csv");
    table.write_to(&path).expect("write CSV");
    println!("wrote {} ({} rows)", path.display(), table.len());
}
