//! EXP-C1 (extension) — the cost analysis the paper's §VII points to
//! (Chiplet Actuary): monolithic vs. 2.5D recurring cost across total
//! silicon area and chiplet count, using the same 800 mm² design point as
//! the performance evaluation.
//!
//! A preset wrapper over the study flow (stage `cost`):
//! `study --preset cost_model` runs the identical campaign.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin cost_model
//! [--ns 2,4,...] [--out DIR] [--format F]`
//! Writes `results/cost_model.{csv,json}`.

use hexamesh_bench::presets;
use xp::cli::{self, try_arg_list, CampaignArgs};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cli::reject_unknown_flags(&args, &cli::with_shared(&["--ns"]));
    let ns = try_arg_list::<usize>(&args, "--ns").unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let shared = CampaignArgs::parse(&args);

    let mut spec = presets::preset("cost_model").expect("registered preset");
    spec.axes.ns = ns;

    println!("Monolithic vs 2.5D recurring cost (5nm-class defaults)");
    presets::run_and_report(&spec, shared);
}
