//! EXP-F4 — regenerates the Fig. 4 panel: for each arrangement family and
//! regular chiplet count, the neighbour statistics and the formula-vs-
//! measured diameter and bisection bandwidth.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin fig4_arrangements`
//! Writes `results/fig4_arrangements.csv`.

use std::path::Path;

use chiplet_partition::BisectionConfig;
use hexamesh::arrangement::{hexamesh_count, Arrangement, ArrangementKind, Regularity};
use hexamesh::proxies;
use hexamesh_bench::csv::{f3, Table};
use hexamesh_bench::RESULTS_DIR;

fn main() {
    // Analytic binary: no flags. Unknown flags abort (strict-CLI rule).
    let args: Vec<String> = std::env::args().collect();
    xp::cli::reject_unknown_flags(&args, &[]);
    let mut table = Table::new(&[
        "kind",
        "n",
        "min_neighbors",
        "max_neighbors",
        "avg_neighbors",
        "diameter_formula",
        "diameter_measured",
        "bisection_formula",
        "bisection_exact",
    ]);

    println!("Fig. 4 — arrangement properties (regular arrangements)");
    println!(
        "{:<10} {:>4} {:>4}/{:>4} {:>6}  {:>9} {:>9}  {:>9} {:>9}",
        "kind", "n", "min", "max", "avg", "D(form)", "D(meas)", "B(form)", "B(exact)"
    );

    let config = BisectionConfig::default();
    for kind in ArrangementKind::ALL {
        for n in regular_counts(kind) {
            let a = Arrangement::build_with_regularity(kind, n, Regularity::Regular)
                .expect("regular count");
            let stats = a.degree_stats();
            let d_formula = proxies::formula_diameter(kind, n);
            let d_measured = proxies::measured_diameter(&a).expect("connected");
            let b_formula = proxies::formula_bisection(kind, n);
            // Exact bisection only where enumeration is feasible.
            let b_exact = if n <= 20 {
                proxies::measured_bisection(&a, &config)
                    .map_or_else(|| "-".to_owned(), |b| b.to_string())
            } else {
                "-".to_owned()
            };
            println!(
                "{:<10} {:>4} {:>4}/{:>4} {:>6.2}  {:>9.2} {:>9}  {:>9.2} {:>9}",
                kind.label(),
                n,
                stats.min,
                stats.max,
                stats.average,
                d_formula,
                d_measured,
                b_formula,
                b_exact
            );
            table.row(&[
                &kind.label(),
                &n,
                &stats.min,
                &stats.max,
                &f3(stats.average),
                &f3(d_formula),
                &d_measured,
                &f3(b_formula),
                &b_exact,
            ]);
        }
    }

    // The §IV-A c) claim: honeycomb and brickwall share one graph structure.
    let mut equivalent = true;
    for n in 2..=49 {
        let hc = Arrangement::build(ArrangementKind::Honeycomb, n).expect("builds");
        let bw = Arrangement::build(ArrangementKind::Brickwall, n).expect("builds");
        if hc.graph() != bw.graph() {
            equivalent = false;
            println!("MISMATCH: HC and BW graphs differ at n={n}");
        }
    }
    println!("honeycomb ≡ brickwall graph structure for n=2..=49: {equivalent}");

    let path = Path::new(RESULTS_DIR).join("fig4_arrangements.csv");
    table.write_to(&path).expect("write CSV");
    println!("wrote {}", path.display());
}

/// The regular chiplet counts up to 100 for a kind.
fn regular_counts(kind: ArrangementKind) -> Vec<usize> {
    match kind {
        ArrangementKind::HexaMesh => (0..=5).map(hexamesh_count).collect(),
        _ => (1..=10).map(|s| s * s).collect(),
    }
}
