//! EXP-F5 — regenerates the Fig. 5 / §IV-B shape analysis: the worked
//! example (A_C = 16 mm², p_p = 0.4) plus a sweep over chiplet area and
//! power fraction for both bump-sector layouts.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin fig5_shape`
//! Writes `results/fig5_shape.csv`.

use std::path::Path;

use hexamesh::shape::{brickwall_shape, grid_shape, ShapeParams};
use hexamesh_bench::csv::{f3, Table};
use hexamesh_bench::RESULTS_DIR;

fn main() {
    // Analytic binary: no flags. Unknown flags abort (strict-CLI rule).
    let args: Vec<String> = std::env::args().collect();
    xp::cli::reject_unknown_flags(&args, &[]);
    // ── Worked example of §IV-B ─────────────────────────────────────────
    let params = ShapeParams::new(16.0, 0.4).expect("valid paper parameters");
    let bw = brickwall_shape(&params).expect("solvable");
    println!("§IV-B worked example (A_C = 16 mm², p_p = 0.4):");
    println!("  paper:    W_C = 4.38 mm, H_C = 3.65 mm, D_B = 0.73 mm");
    println!(
        "  computed: W_C = {:.2} mm, H_C = {:.2} mm, D_B = {:.2} mm",
        bw.width, bw.height, bw.max_bump_distance
    );

    // ── Sweep for both layouts ──────────────────────────────────────────
    let mut table = Table::new(&[
        "layout",
        "chiplet_area_mm2",
        "power_fraction",
        "width_mm",
        "height_mm",
        "aspect",
        "link_sectors",
        "link_sector_area_mm2",
        "max_bump_distance_mm",
    ]);
    for &area in &[4.0, 8.0, 16.0, 32.0, 50.0, 100.0, 200.0, 400.0] {
        for &pp in &[0.2, 0.3, 0.4, 0.5, 0.6] {
            let p = ShapeParams::new(area, pp).expect("valid sweep parameters");
            for (layout, shape) in [
                ("grid", grid_shape(&p).expect("solvable")),
                ("brickwall", brickwall_shape(&p).expect("solvable")),
            ] {
                table.row(&[
                    &layout,
                    &f3(area),
                    &f3(pp),
                    &f3(shape.width),
                    &f3(shape.height),
                    &f3(shape.aspect_ratio()),
                    &shape.link_sectors,
                    &f3(shape.link_sector_area),
                    &f3(shape.max_bump_distance),
                ]);
            }
        }
    }
    let path = Path::new(RESULTS_DIR).join("fig5_shape.csv");
    table.write_to(&path).expect("write CSV");
    println!("wrote {} ({} rows)", path.display(), table.len());
}
