//! EXP-F6 — regenerates Fig. 6: network diameter (6a) and estimated
//! bisection bandwidth (6b) for grid, brickwall, and HexaMesh across
//! chiplet counts 1..=100, with the regularity classification of §IV-C.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin fig6_proxies`
//! Writes `results/fig6a_diameter.csv` and `results/fig6b_bisection.csv`.

use std::path::Path;

use hexamesh::arrangement::ArrangementKind;
use hexamesh_bench::csv::{f3, Table};
use hexamesh_bench::{sweep, RESULTS_DIR};

fn main() {
    // Analytic binary: no flags. Unknown flags abort (strict-CLI rule).
    let args: Vec<String> = std::env::args().collect();
    xp::cli::reject_unknown_flags(&args, &[]);
    let ns: Vec<usize> = (1..=100).collect();
    let points = sweep::proxy_sweep(&ns);

    let mut diameter = Table::new(&["kind", "regularity", "n", "diameter"]);
    let mut bisection = Table::new(&["kind", "regularity", "n", "bisection"]);
    for p in &points {
        let regularity = p.regularity.to_string();
        diameter.row(&[&p.kind.label(), &regularity, &p.n, &p.diameter]);
        bisection.row(&[&p.kind.label(), &regularity, &p.n, &f3(p.bisection)]);
    }

    let path_a = Path::new(RESULTS_DIR).join("fig6a_diameter.csv");
    diameter.write_to(&path_a).expect("write CSV");
    let path_b = Path::new(RESULTS_DIR).join("fig6b_bisection.csv");
    bisection.write_to(&path_b).expect("write CSV");

    // The figure's annotations: at N = 100, HexaMesh reaches ~0.6x the
    // grid's diameter and ~2.3x its bisection bandwidth.
    let at = |kind: ArrangementKind, n: usize| {
        points.iter().find(|p| p.kind == kind && p.n == n).expect("swept")
    };
    let g100 = at(ArrangementKind::Grid, 100);
    let bw100 = at(ArrangementKind::Brickwall, 100);
    let hm100 = at(ArrangementKind::HexaMesh, 100);
    println!("Fig. 6 at N = 100:");
    println!(
        "  diameter:  G {}  BW {}  HM {}  (HM/G = {:.2}; paper annotation x0.6)",
        g100.diameter,
        bw100.diameter,
        hm100.diameter,
        f64::from(hm100.diameter) / f64::from(g100.diameter)
    );
    println!(
        "  bisection: G {:.1}  BW {:.1}  HM {:.1}  (HM/G = {:.2}; paper annotation x2.3)",
        g100.bisection,
        bw100.bisection,
        hm100.bisection,
        hm100.bisection / g100.bisection
    );
    println!("wrote {} and {}", path_a.display(), path_b.display());
}
