//! EXP-F7 — regenerates Fig. 7: zero-load latency (7a), saturation
//! throughput (7b), and their grid-normalised counterparts (7c, 7d), using
//! the D2D link model plus the cycle-accurate simulator.
//!
//! Usage:
//! ```text
//! cargo run --release -p hexamesh-bench --bin fig7_simulation [--step K] \
//!     [--max-n N] [--quick] [--workers W] [--seeds K] [--fanout F] \
//!     [--out DIR] [--format csv|json|both] \
//!     [--routing adaptive|deterministic|updown]
//! ```
//! `--step` samples every K-th chiplet count (default 1 = the paper's full
//! 2..=100 sweep); `--quick` shortens the simulation windows; `--seeds K`
//! replicates every `(kind, n)` evaluation with engine-derived seeds and
//! reports replicate means; `--fanout F` probes F rates per saturation
//! round in parallel (use when the grid is narrow relative to
//! `--workers`; changes the probe sequence, so fix it per campaign). `--routing deterministic` matches BookSim2's
//! `anynet` shortest-path routing (the paper's setup); the default
//! `adaptive` is our deadlock-safe minimal-adaptive + escape
//! configuration. Writes `results/fig7_results[_<routing>]` and the
//! matching `fig7_normalized` series through the engine sinks.

use hexamesh::arrangement::ArrangementKind;
use hexamesh::eval::{normalize, EvalParams, EvalResult};
use hexamesh_bench::csv::{f3, Table};
use hexamesh_bench::sweep;
use nocsim::RoutingKind;
use xp::json::Value;
use xp::{Campaign, CampaignArgs};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let step = sweep::arg_usize(&args, "--step", 1);
    let max_n = sweep::arg_usize(&args, "--max-n", 100);
    // Intra-search parallelism: probe F rates per bracketing round. An
    // explicit flag (not derived from --workers) so rows stay independent
    // of the worker count.
    let fanout = sweep::arg_usize(&args, "--fanout", 1).max(1);
    let shared = CampaignArgs::parse(&args);
    let routing_value = xp::cli::try_arg_value(&args, "--routing").unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let (routing, suffix) = match routing_value {
        None | Some("adaptive") => (RoutingKind::MinimalAdaptiveEscape, ""),
        Some("deterministic") => (RoutingKind::MinimalDeterministic, "_deterministic"),
        Some("updown") => (RoutingKind::UpDownOnly, "_updown"),
        Some(other) => {
            eprintln!("error: --routing expects adaptive|deterministic|updown, got {other:?}");
            std::process::exit(2);
        }
    };

    let mut params = EvalParams::paper_defaults();
    params.sim.routing = routing;
    params.measure = sweep::schedule_for(&shared);

    let campaign = Campaign::new(&format!("fig7_results{suffix}"), shared);
    let ns: Vec<usize> = (2..=max_n).step_by(step.max(1)).collect();
    eprintln!(
        "fig7: evaluating {} chiplet counts x 3 kinds x {} seeds on {} workers (quick={}, routing={routing:?})",
        ns.len(),
        campaign.args().seeds,
        campaign.args().workers,
        campaign.args().quick,
    );
    let results = sweep::evaluation_campaign(&ns, &params, &campaign, fanout);

    // ── Absolute series (Fig. 7a / 7b) ──────────────────────────────────
    let mut table = Table::new(&[
        "kind",
        "regularity",
        "n",
        "zero_load_latency_cycles",
        "saturation_fraction",
        "link_bandwidth_gbps",
        "full_global_bandwidth_tbps",
        "saturation_throughput_tbps",
        "diameter",
    ]);
    for r in &results {
        table.row(&[
            &r.kind.label(),
            &r.regularity.to_string(),
            &r.n,
            &f3(r.zero_load_latency_cycles),
            &f3(r.saturation_fraction),
            &f3(r.link_bandwidth_gbps),
            &f3(r.full_global_bandwidth_tbps),
            &f3(r.saturation_throughput_tbps),
            &r.diameter,
        ]);
    }
    let mut config = Value::object();
    config.set("routing", format!("{routing:?}"));
    config.set("step", step);
    config.set("max_n", max_n);
    config.set("fanout", fanout);
    let written = campaign.finish(&table, config.clone()).expect("write sinks");

    // ── Normalised series (Fig. 7c / 7d) ────────────────────────────────
    let by_kind = |kind: ArrangementKind| -> Vec<EvalResult> {
        results.iter().copied().filter(|r| r.kind == kind).collect()
    };
    let grid = by_kind(ArrangementKind::Grid);
    let mut normalized = Table::new(&["kind", "n", "latency_pct", "throughput_pct"]);
    let mut summary: Vec<(ArrangementKind, f64, f64)> = Vec::new();
    for kind in [ArrangementKind::Brickwall, ArrangementKind::HexaMesh] {
        let series = normalize(&by_kind(kind), &grid);
        for p in &series {
            normalized.row(&[&kind.label(), &p.n, &f3(p.latency_pct), &f3(p.throughput_pct)]);
        }
        // The paper's averages are over N >= 10, where layouts stabilise.
        let lat: Vec<f64> =
            series.iter().filter(|p| p.n >= 10).map(|p| p.latency_pct).collect();
        let thr: Vec<f64> =
            series.iter().filter(|p| p.n >= 10).map(|p| p.throughput_pct).collect();
        summary.push((
            kind,
            sweep::mean(&lat).unwrap_or(f64::NAN),
            sweep::mean(&thr).unwrap_or(f64::NAN),
        ));
    }
    let norm_written = campaign
        .finish_named(&format!("fig7_normalized{suffix}"), &normalized, config)
        .expect("write sinks");

    println!("Fig. 7 summary (averages over N >= 10, relative to the grid):");
    println!(
        "  paper:    BW latency ~80%, throughput ~112%;  HM latency ~80%, throughput ~134%"
    );
    for (kind, lat, thr) in summary {
        println!(
            "  measured: {} latency {:.1}% (Δ {:+.1}%), throughput {:.1}% (Δ {:+.1}%)",
            kind.label(),
            lat,
            lat - 100.0,
            thr,
            thr - 100.0
        );
    }
    for path in written.iter().chain(&norm_written) {
        println!("wrote {}", path.display());
    }
}
