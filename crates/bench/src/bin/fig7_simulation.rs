//! EXP-F7 — regenerates Fig. 7: zero-load latency (7a), saturation
//! throughput (7b), and their grid-normalised counterparts (7c, 7d), using
//! the D2D link model plus the cycle-accurate simulator.
//!
//! A preset wrapper: builds the `fig7_simulation` [`StudySpec`] preset
//! (stage `saturation`), applies the historical flags as spec overrides,
//! and delegates to the study flow — `study --preset fig7_simulation`
//! runs the identical campaign.
//!
//! Usage:
//! ```text
//! cargo run --release -p hexamesh-bench --bin fig7_simulation [--step K] \
//!     [--max-n N] [--quick] [--workers W] [--seeds K] [--fanout F] \
//!     [--out DIR] [--format csv|json|both] \
//!     [--routing adaptive|deterministic|updown]
//! ```
//! `--step` samples every K-th chiplet count (default 1 = the paper's full
//! 2..=100 sweep); `--quick` shortens the simulation windows; `--seeds K`
//! replicates every `(kind, n)` evaluation with engine-derived seeds and
//! reports replicate means; `--fanout F` probes F rates per saturation
//! round in parallel (use when the grid is narrow relative to
//! `--workers`; changes the probe sequence, so fix it per campaign).
//! `--routing deterministic` matches BookSim2's `anynet` shortest-path
//! routing (the paper's setup); the default `adaptive` is our
//! deadlock-safe minimal-adaptive + escape configuration. Writes
//! `results/fig7_results[_<routing>]` and the matching `fig7_normalized`
//! series through the engine sinks.

use hexamesh_bench::presets;
use hexamesh_bench::sweep;
use nocsim::RoutingKind;
use xp::cli::{self, CampaignArgs};
use xp::spec::StudySpec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cli::reject_unknown_flags(
        &args,
        &cli::with_shared(&["--step", "--max-n", "--fanout", "--routing"]),
    );
    let step = sweep::arg_usize(&args, "--step", 1);
    let max_n = sweep::arg_usize(&args, "--max-n", 100);
    // Intra-search parallelism: probe F rates per bracketing round. An
    // explicit flag (not derived from --workers) so rows stay independent
    // of the worker count.
    let fanout = sweep::arg_usize(&args, "--fanout", 1).max(1);
    // Parsed by hand (not `try_arg`) so the error names the accepted
    // values instead of the Rust type.
    let routing: RoutingKind = xp::cli::try_arg_value(&args, "--routing")
        .and_then(|v| {
            v.map_or(Ok(RoutingKind::default()), |v| {
                v.parse().map_err(|e| format!("--routing: {e}"))
            })
        })
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        });
    let shared = CampaignArgs::parse(&args);

    let mut spec: StudySpec = presets::preset("fig7_simulation").expect("registered preset");
    spec.axes.ns = Some((2..=max_n).step_by(step.max(1)).collect());
    spec.saturation.fanout = Some(fanout);
    if routing != RoutingKind::default() {
        spec.sim.routing = Some(routing);
        spec.name = format!("fig7_results_{routing}");
        spec.saturation.normalized_stem = Some(format!("fig7_normalized_{routing}"));
    }

    presets::run_and_report(&spec, shared);
}
