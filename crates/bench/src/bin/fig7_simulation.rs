//! EXP-F7 — regenerates Fig. 7: zero-load latency (7a), saturation
//! throughput (7b), and their grid-normalised counterparts (7c, 7d), using
//! the D2D link model plus the cycle-accurate simulator.
//!
//! Usage:
//! ```text
//! cargo run --release -p hexamesh-bench --bin fig7_simulation [--step K] \
//!     [--max-n N] [--quick] [--workers W] [--routing adaptive|deterministic|updown]
//! ```
//! `--step` samples every K-th chiplet count (default 1 = the paper's full
//! 2..=100 sweep, ~15 min on two cores); `--quick` shortens the simulation
//! windows. `--routing deterministic` matches BookSim2's `anynet`
//! shortest-path routing (the paper's setup); the default `adaptive` is our
//! deadlock-safe minimal-adaptive + escape configuration. Writes
//! `results/fig7_results[_<routing>].csv` and the matching
//! `fig7_normalized` CSV.

use std::path::Path;

use hexamesh::arrangement::ArrangementKind;
use hexamesh::eval::{normalize, EvalParams, EvalResult};
use hexamesh_bench::csv::{f3, Table};
use hexamesh_bench::{sweep, RESULTS_DIR};
use nocsim::{MeasureConfig, RoutingKind};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let step = sweep::arg_usize(&args, "--step", 1);
    let max_n = sweep::arg_usize(&args, "--max-n", 100);
    let workers = sweep::arg_usize(&args, "--workers", 2);
    let quick = sweep::arg_flag(&args, "--quick");
    let (routing, suffix) = match args
        .iter()
        .position(|a| a == "--routing")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        None | Some("adaptive") => (RoutingKind::MinimalAdaptiveEscape, ""),
        Some("deterministic") => (RoutingKind::MinimalDeterministic, "_deterministic"),
        Some("updown") => (RoutingKind::UpDownOnly, "_updown"),
        Some(other) => panic!("unknown --routing {other}"),
    };

    let mut params = EvalParams::paper_defaults();
    params.sim.routing = routing;
    params.measure = if quick {
        MeasureConfig::quick()
    } else {
        MeasureConfig {
            warmup_cycles: 3_000,
            measure_cycles: 6_000,
            rate_resolution: 0.01,
            ..MeasureConfig::default()
        }
    };

    let ns: Vec<usize> = (2..=max_n).step_by(step.max(1)).collect();
    eprintln!(
        "fig7: evaluating {} chiplet counts x 3 kinds on {workers} workers (quick={quick}, routing={routing:?})",
        ns.len()
    );
    let results = sweep::evaluation_sweep(&ns, &params, workers);

    // ── Absolute series (Fig. 7a / 7b) ──────────────────────────────────
    let mut table = Table::new(&[
        "kind",
        "regularity",
        "n",
        "zero_load_latency_cycles",
        "saturation_fraction",
        "link_bandwidth_gbps",
        "full_global_bandwidth_tbps",
        "saturation_throughput_tbps",
        "diameter",
    ]);
    for r in &results {
        table.row(&[
            &r.kind.label(),
            &r.regularity.to_string(),
            &r.n,
            &f3(r.zero_load_latency_cycles),
            &f3(r.saturation_fraction),
            &f3(r.link_bandwidth_gbps),
            &f3(r.full_global_bandwidth_tbps),
            &f3(r.saturation_throughput_tbps),
            &r.diameter,
        ]);
    }
    let path = Path::new(RESULTS_DIR).join(format!("fig7_results{suffix}.csv"));
    table.write_to(&path).expect("write CSV");

    // ── Normalised series (Fig. 7c / 7d) ────────────────────────────────
    let by_kind = |kind: ArrangementKind| -> Vec<EvalResult> {
        results.iter().copied().filter(|r| r.kind == kind).collect()
    };
    let grid = by_kind(ArrangementKind::Grid);
    let mut normalized = Table::new(&["kind", "n", "latency_pct", "throughput_pct"]);
    let mut summary: Vec<(ArrangementKind, f64, f64)> = Vec::new();
    for kind in [ArrangementKind::Brickwall, ArrangementKind::HexaMesh] {
        let series = normalize(&by_kind(kind), &grid);
        for p in &series {
            normalized.row(&[&kind.label(), &p.n, &f3(p.latency_pct), &f3(p.throughput_pct)]);
        }
        // The paper's averages are over N >= 10, where layouts stabilise.
        let lat: Vec<f64> =
            series.iter().filter(|p| p.n >= 10).map(|p| p.latency_pct).collect();
        let thr: Vec<f64> =
            series.iter().filter(|p| p.n >= 10).map(|p| p.throughput_pct).collect();
        summary.push((
            kind,
            sweep::mean(&lat).unwrap_or(f64::NAN),
            sweep::mean(&thr).unwrap_or(f64::NAN),
        ));
    }
    let norm_path = Path::new(RESULTS_DIR).join(format!("fig7_normalized{suffix}.csv"));
    normalized.write_to(&norm_path).expect("write CSV");

    println!("Fig. 7 summary (averages over N >= 10, relative to the grid):");
    println!("  paper:    BW latency ~80%, throughput ~112%;  HM latency ~80%, throughput ~134%");
    for (kind, lat, thr) in summary {
        println!(
            "  measured: {} latency {:.1}% (Δ {:+.1}%), throughput {:.1}% (Δ {:+.1}%)",
            kind.label(),
            lat,
            lat - 100.0,
            thr,
            thr - 100.0
        );
    }
    println!("wrote {} and {}", path.display(), norm_path.display());
}
