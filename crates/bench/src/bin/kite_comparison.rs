//! EXP-K1 — HexaMesh vs. long-link grid topologies (Kite-style), with the
//! frequency penalty of long links modelled.
//!
//! §VII positions HexaMesh against Kite \[15\]: Kite connects non-adjacent
//! chiplets on a grid arrangement, accepting lower link frequencies for
//! better graph properties; HexaMesh gets the better graph by
//! *arrangement* and keeps every link short. This campaign makes the
//! comparison quantitative: mesh, folded torus, and a Kite-style express
//! mesh on the grid arrangement — each link derated by the
//! signal-integrity model — against HexaMesh with all-adjacent full-rate
//! links. See the `kite` stage in `xp::flow` for the geometry and
//! bump-budget details.
//!
//! A preset wrapper over the study flow (stage `kite`):
//! `study --preset kite_comparison` runs the identical campaign.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin kite_comparison
//! [--ns 16,25,36,49] [--quick] [--workers W] [--seeds K] [--out DIR]
//! [--format F]`
//! (the default schedule already is the paper-scale one, so `--full` is
//! the default here)
//! Writes `results/kite_comparison.{csv,json}`.

use hexamesh_bench::presets;
use xp::cli::{self, try_arg_list, CampaignArgs};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cli::reject_unknown_flags(&args, &cli::with_shared(&["--ns"]));
    let ns = try_arg_list::<usize>(&args, "--ns").unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let shared = CampaignArgs::parse(&args);

    let mut spec = presets::preset("kite_comparison").expect("registered preset");
    spec.axes.ns = ns;

    presets::run_and_report(&spec, shared);
}
