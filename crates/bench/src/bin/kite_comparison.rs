//! EXP-K1 — HexaMesh vs. long-link grid topologies (Kite-style), with the
//! frequency penalty of long links modelled.
//!
//! §VII positions HexaMesh against Kite [15]: Kite connects non-adjacent
//! chiplets on a grid arrangement, accepting lower link frequencies for
//! better graph properties; HexaMesh gets the better graph by *arrangement*
//! and keeps every link short. This experiment makes the comparison
//! quantitative: mesh, folded torus, and a Kite-style express mesh on the
//! grid arrangement — each link derated by the signal-integrity model —
//! against HexaMesh with all-adjacent full-rate links.
//!
//! Per-link bump area is `(1 − p_p)·A_C / max_degree`: a router with more
//! ports splits the same bump budget across more links (§IV-B's argument,
//! applied to Kite routers too).
//!
//! Physical link lengths follow the paper's geometry: an adjacent-chiplet
//! wire spans bump sector to bump sector, `≈ 2·D_B` (§IV-B), *not* a full
//! centre-to-centre pitch; an express link spanning `k` pitches adds
//! `(k − 1)` pitches of routing on top.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin kite_comparison [--quick]`
//! Writes `results/kite_comparison.csv`.

use std::path::Path;

use chiplet_phy::Technology;
use chiplet_topo::express::ExpressOptions;
use chiplet_topo::{evaluate, express, ftorus, mesh, EvalOptions, Topology};
use hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh::link::{estimate_link, LinkParams, UCIE_POWER_FRACTION, UCIE_TOTAL_AREA_MM2};
use hexamesh::shape::{shape_for, ShapeParams};
use hexamesh_bench::csv::{f3, Table};
use hexamesh_bench::{sweep, RESULTS_DIR};
use nocsim::MeasureConfig;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = sweep::arg_flag(&args, "--quick");
    let tech = Technology::organic_substrate();

    let mut table = Table::new(&[
        "n",
        "topology",
        "links",
        "max_degree",
        "min_link_rate_gbps",
        "zero_load_latency_cycles",
        "saturation_tbps",
    ]);

    println!("HexaMesh vs. length-aware grid topologies (substrate, 16 Gb/s nominal):");
    println!(
        "{:>3} {:<14} {:>5} {:>7} {:>9} {:>10} {:>10}",
        "N", "topology", "links", "max_deg", "min Gb/s", "lat [cyc]", "sat [Tb/s]"
    );

    for n in [16usize, 25, 36, 49] {
        let side = (n as f64).sqrt().round() as usize;
        let chiplet_area = UCIE_TOTAL_AREA_MM2 / n as f64;
        let shape_params =
            ShapeParams::new(chiplet_area, UCIE_POWER_FRACTION).expect("valid areas");

        // Grid-arrangement topologies.
        let grid_shape = shape_for(ArrangementKind::Grid, &shape_params)
            .expect("grid shape solvable");
        let grid_topologies = vec![
            mesh(side, side),
            ftorus(side, side),
            express(side, side, &ExpressOptions::default()).expect("express builds"),
        ];
        for topo in &grid_topologies {
            let physical = with_mm_lengths(topo, grid_shape.width, grid_shape.max_bump_distance);
            report(&physical, &tech, quick, n, &mut table);
        }

        // HexaMesh: every link adjacent, bump sector to bump sector.
        let hm = Arrangement::build(ArrangementKind::HexaMesh, n).expect("any n builds");
        let hm_shape = shape_for(ArrangementKind::HexaMesh, &shape_params)
            .expect("brickwall shape solvable");
        let hm_edges: Vec<(usize, usize, f64)> =
            hm.graph().edges().map(|(u, v)| (u, v, 1.0)).collect();
        let hm_topo = Topology::new(format!("hexamesh_{n}"), n, hm_edges)
            .expect("arrangement graphs are simple");
        let physical = with_mm_lengths(&hm_topo, hm_shape.width, hm_shape.max_bump_distance);
        report(&physical, &tech, quick, n, &mut table);
    }

    table
        .write_to(Path::new(RESULTS_DIR).join("kite_comparison.csv").as_path())
        .expect("results dir writable");
    println!("\nwrote {RESULTS_DIR}/kite_comparison.csv");
}

/// Converts generator lengths (pitch units) to physical mm: an adjacent
/// link (1 pitch) spans bump sector to bump sector, `2·D_B`; each extra
/// pitch adds a full chiplet crossing.
fn with_mm_lengths(topo: &Topology, pitch_mm: f64, d_b_mm: f64) -> Topology {
    let edges: Vec<(usize, usize, f64)> = topo
        .edges()
        .iter()
        .map(|e| (e.u, e.v, 2.0 * d_b_mm + (e.length_pitch - 1.0) * pitch_mm))
        .collect();
    Topology::new(topo.name().to_owned(), topo.num_routers(), edges)
        .expect("lengths stay positive")
}

fn report(topo: &Topology, tech: &Technology, quick: bool, n: usize, table: &mut Table) {
    let mut opts = EvalOptions::paper_defaults(tech.clone());
    opts.pitch_mm = 1.0; // lengths already in mm
    if quick {
        opts.schedule = MeasureConfig::quick();
    }
    let result = evaluate(topo, &opts).expect("feasible topologies");

    // §V bandwidth with the port-count tax: A_B = (1 − p_p)·A_C / max_deg.
    let chiplet_area = UCIE_TOTAL_AREA_MM2 / n as f64;
    let sector_area =
        (1.0 - UCIE_POWER_FRACTION) * chiplet_area / topo.max_degree().max(1) as f64;
    let link = estimate_link(&LinkParams::ucie_c4(sector_area)).expect("valid params");
    let full_global_tbps =
        n as f64 * opts.sim.endpoints_per_router as f64 * link.bandwidth_tbps();
    let sat_tbps = result.saturation.throughput * full_global_tbps;

    println!(
        "{:>3} {:<14} {:>5} {:>7} {:>9.1} {:>10.1} {:>10.2}",
        n,
        topo.name(),
        topo.edges().len(),
        topo.max_degree(),
        result.min_rate_gbps,
        result.zero_load_latency,
        sat_tbps
    );
    table.row(&[
        &n,
        &topo.name(),
        &topo.edges().len(),
        &topo.max_degree(),
        &f3(result.min_rate_gbps),
        &f3(result.zero_load_latency),
        &f3(sat_tbps),
    ]);
}
