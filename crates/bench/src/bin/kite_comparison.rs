//! EXP-K1 — HexaMesh vs. long-link grid topologies (Kite-style), with the
//! frequency penalty of long links modelled.
//!
//! §VII positions HexaMesh against Kite \[15\]: Kite connects non-adjacent
//! chiplets on a grid arrangement, accepting lower link frequencies for
//! better graph properties; HexaMesh gets the better graph by *arrangement*
//! and keeps every link short. This experiment makes the comparison
//! quantitative: mesh, folded torus, and a Kite-style express mesh on the
//! grid arrangement — each link derated by the signal-integrity model —
//! against HexaMesh with all-adjacent full-rate links.
//!
//! Per-link bump area is `(1 − p_p)·A_C / max_degree`: a router with more
//! ports splits the same bump budget across more links (§IV-B's argument,
//! applied to Kite routers too).
//!
//! Physical link lengths follow the paper's geometry: an adjacent-chiplet
//! wire spans bump sector to bump sector, `≈ 2·D_B` (§IV-B), *not* a full
//! centre-to-centre pitch; an express link spanning `k` pitches adds
//! `(k − 1)` pitches of routing on top.
//!
//! Each `(N, topology, seed)` evaluation is one engine-pool job.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin kite_comparison
//! [--quick] [--workers W] [--seeds K] [--out DIR] [--format F]`
//! (the default schedule already is the paper-scale one, so `--full` is
//! the default here)
//! Writes `results/kite_comparison.{csv,json}`.

use chiplet_phy::Technology;
use chiplet_topo::express::ExpressOptions;
use chiplet_topo::{evaluate, express, ftorus, mesh, EvalOptions, Topology};
use hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh::link::{estimate_link, LinkParams, UCIE_POWER_FRACTION, UCIE_TOTAL_AREA_MM2};
use hexamesh::shape::{shape_for, ShapeParams};
use hexamesh_bench::csv::{f3, Table};
use hexamesh_bench::sweep::mean_of;
use nocsim::MeasureConfig;
use xp::grid::expand_replicates;
use xp::json::Value;
use xp::{Campaign, CampaignArgs};

const NS: [usize; 4] = [16, 25, 36, 49];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Variant {
    Mesh,
    Ftorus,
    Express,
    HexaMesh,
}

const VARIANTS: [Variant; 4] =
    [Variant::Mesh, Variant::Ftorus, Variant::Express, Variant::HexaMesh];

#[derive(Clone, Copy)]
struct KiteJob {
    n: usize,
    variant: Variant,
}

struct Row {
    name: String,
    links: usize,
    max_degree: usize,
    min_rate_gbps: f64,
    zero_load: f64,
    sat_tbps: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let campaign = Campaign::new("kite_comparison", CampaignArgs::parse(&args));
    let tech = Technology::organic_substrate();

    let mut jobs = Vec::new();
    for &n in &NS {
        for &variant in &VARIANTS {
            jobs.push(KiteJob { n, variant });
        }
    }
    let seeds = campaign.args().seeds.max(1);
    let expanded = expand_replicates(&jobs, seeds, campaign.args().campaign_seed, |job| {
        let variant_rank =
            VARIANTS.iter().position(|&v| v == job.variant).expect("listed variant");
        vec![job.n as u64, variant_rank as u64]
    });

    // This binary's historical default *is* the paper-scale schedule, so
    // --full coincides with the default and --quick shortens it.
    let schedule =
        if campaign.args().quick { MeasureConfig::quick() } else { MeasureConfig::default() };
    let results = campaign.run_jobs(
        &expanded,
        |(job, _)| job.n as u64,
        |(job, seed)| {
            let physical = build_topology(job.n, job.variant);
            report(&physical, &tech, schedule, job.n, *seed)
        },
    );

    let mut table = Table::new(&[
        "n",
        "topology",
        "links",
        "max_degree",
        "min_link_rate_gbps",
        "zero_load_latency_cycles",
        "saturation_tbps",
    ]);

    println!("HexaMesh vs. length-aware grid topologies (substrate, 16 Gb/s nominal):");
    println!(
        "{:>3} {:<14} {:>5} {:>7} {:>9} {:>10} {:>10}",
        "N", "topology", "links", "max_deg", "min Gb/s", "lat [cyc]", "sat [Tb/s]"
    );
    for (job, chunk) in jobs.iter().zip(results.chunks(seeds as usize)) {
        let first = &chunk[0];
        let zero_load = mean_of(chunk, |r| r.zero_load);
        let sat_tbps = mean_of(chunk, |r| r.sat_tbps);
        println!(
            "{:>3} {:<14} {:>5} {:>7} {:>9.1} {:>10.1} {:>10.2}",
            job.n,
            first.name,
            first.links,
            first.max_degree,
            first.min_rate_gbps,
            zero_load,
            sat_tbps
        );
        table.row(&[
            &job.n,
            &first.name,
            &first.links,
            &first.max_degree,
            &f3(first.min_rate_gbps),
            &f3(zero_load),
            &f3(sat_tbps),
        ]);
    }

    let mut config = Value::object();
    config.set("technology", "organic_substrate");
    config.set("ns", Value::Arr(NS.iter().map(|&n| Value::from(n)).collect()));
    let written = campaign.finish(&table, config).expect("results dir writable");
    for path in written {
        println!("wrote {}", path.display());
    }
}

/// Builds the physical (mm-lengths) topology of one variant at `n`.
fn build_topology(n: usize, variant: Variant) -> Topology {
    let side = (n as f64).sqrt().round() as usize;
    let chiplet_area = UCIE_TOTAL_AREA_MM2 / n as f64;
    let shape_params =
        ShapeParams::new(chiplet_area, UCIE_POWER_FRACTION).expect("valid areas");
    match variant {
        Variant::Mesh | Variant::Ftorus | Variant::Express => {
            let grid_shape =
                shape_for(ArrangementKind::Grid, &shape_params).expect("grid shape solvable");
            let topo = match variant {
                Variant::Mesh => mesh(side, side),
                Variant::Ftorus => ftorus(side, side),
                _ => express(side, side, &ExpressOptions::default()).expect("express builds"),
            };
            with_mm_lengths(&topo, grid_shape.width, grid_shape.max_bump_distance)
        }
        Variant::HexaMesh => {
            let hm = Arrangement::build(ArrangementKind::HexaMesh, n).expect("any n builds");
            let hm_shape = shape_for(ArrangementKind::HexaMesh, &shape_params)
                .expect("brickwall shape solvable");
            let hm_edges: Vec<(usize, usize, f64)> =
                hm.graph().edges().map(|(u, v)| (u, v, 1.0)).collect();
            let hm_topo = Topology::new(format!("hexamesh_{n}"), n, hm_edges)
                .expect("arrangement graphs are simple");
            with_mm_lengths(&hm_topo, hm_shape.width, hm_shape.max_bump_distance)
        }
    }
}

/// Converts generator lengths (pitch units) to physical mm: an adjacent
/// link (1 pitch) spans bump sector to bump sector, `2·D_B`; each extra
/// pitch adds a full chiplet crossing.
fn with_mm_lengths(topo: &Topology, pitch_mm: f64, d_b_mm: f64) -> Topology {
    let edges: Vec<(usize, usize, f64)> = topo
        .edges()
        .iter()
        .map(|e| (e.u, e.v, 2.0 * d_b_mm + (e.length_pitch - 1.0) * pitch_mm))
        .collect();
    Topology::new(topo.name().to_owned(), topo.num_routers(), edges)
        .expect("lengths stay positive")
}

fn report(
    topo: &Topology,
    tech: &Technology,
    schedule: MeasureConfig,
    n: usize,
    seed: u64,
) -> Row {
    let mut opts = EvalOptions::paper_defaults(tech.clone());
    opts.pitch_mm = 1.0; // lengths already in mm
    opts.sim.seed = seed;
    opts.schedule = schedule;
    let result = evaluate(topo, &opts).expect("feasible topologies");

    // §V bandwidth with the port-count tax: A_B = (1 − p_p)·A_C / max_deg.
    let chiplet_area = UCIE_TOTAL_AREA_MM2 / n as f64;
    let sector_area =
        (1.0 - UCIE_POWER_FRACTION) * chiplet_area / topo.max_degree().max(1) as f64;
    let link = estimate_link(&LinkParams::ucie_c4(sector_area)).expect("valid params");
    let full_global_tbps =
        n as f64 * opts.sim.endpoints_per_router as f64 * link.bandwidth_tbps();

    Row {
        name: topo.name().to_owned(),
        links: topo.edges().len(),
        max_degree: topo.max_degree(),
        min_rate_gbps: result.min_rate_gbps,
        zero_load: result.zero_load_latency,
        sat_tbps: result.saturation.throughput * full_global_tbps,
    }
}
