//! EXP-LC — latency-vs-offered-load curves (the raw data behind Fig. 7).
//!
//! The paper reports two scalars per arrangement (zero-load latency and
//! saturation throughput); this binary regenerates the full latency/load
//! curves those scalars summarise, including tail percentiles — the
//! standard BookSim2 presentation.
//!
//! Declared as an engine grid (kind × injection rate × `--seeds K`
//! replicates) and run on the worker pool, so the curve points of all
//! three arrangements simulate concurrently and rows are identical for
//! any `--workers` value. Unlike the pre-engine loop, *all* twelve rate
//! points are always simulated — there is no past-saturation early exit,
//! because a declared grid is fixed up front. Each point's cost is
//! bounded by the fixed warmup/measure window, and the post-knee rows
//! (noisy by nature) are part of the output; filter on the latency
//! column downstream if you only want the stable branch.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin load_curves
//! [--n N] [--patterns uniform,tornado,...] [--workers W] [--seeds K]
//! [--out DIR] [--format csv|json|both]`
//! Writes `results/load_curves.{csv,json}`. Patterns parse through the
//! shared `xp::cli::arg_list` layer (strict: malformed names abort);
//! the default single-pattern sweep is the historical uniform-random
//! curve. Each row also reports the endpoint source-queue occupancy
//! (max + mean) — the congestion signal that rises past the knee.

use hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh_bench::csv::{f3, Table};
use hexamesh_bench::sweep::{self, mean_of};
use nocsim::{SimConfig, Simulator, TrafficPattern};
use xp::cli::arg_list;
use xp::grid::Scenario;
use xp::json::Value;
use xp::{Campaign, CampaignArgs};

/// The metrics of one simulated curve point.
struct Point {
    accepted: f64,
    avg: f64,
    p50: f64,
    p95: f64,
    p99: f64,
    queue_max: u64,
    queue_mean: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = sweep::arg_usize(&args, "--n", 37);
    let patterns =
        arg_list::<TrafficPattern>(&args, "--patterns", &[TrafficPattern::UniformRandom]);
    let campaign = Campaign::new("load_curves", CampaignArgs::parse(&args));
    // Per-point simulation windows: the historical 4k/8k by default,
    // shortened by --quick, paper-scale under --full.
    let (warmup, measure) = if campaign.args().quick {
        (1_500, 3_000)
    } else if campaign.args().full {
        (5_000, 10_000)
    } else {
        (4_000, 8_000)
    };

    let rates: Vec<f64> = (1..=12u32).map(|step| f64::from(step) * 0.04).collect();
    let scenario = Scenario::new(&ArrangementKind::EVALUATED, &[n])
        .with_rates(&rates)
        .with_patterns(&patterns);

    let results = campaign.run_grid(&scenario, |job| {
        let arrangement = Arrangement::build(job.kind, job.n).expect("any n builds");
        let config = SimConfig {
            injection_rate: job.rate.expect("rate axis set"),
            pattern: job.pattern,
            seed: job.seed,
            ..SimConfig::paper_defaults()
        };
        let mut sim = Simulator::new(arrangement.graph(), config).expect("valid configuration");
        let stats = sim.run_to_window(warmup, measure);
        // One histogram merge serves all three tail percentiles.
        let tails = sim.latency_percentiles(&[0.50, 0.95, 0.99]);
        Point {
            accepted: stats.accepted_flits_per_cycle_per_endpoint,
            avg: stats.avg_packet_latency.unwrap_or(f64::NAN),
            p50: tails[0].unwrap_or(f64::NAN),
            p95: tails[1].unwrap_or(f64::NAN),
            p99: tails[2].unwrap_or(f64::NAN),
            queue_max: stats.max_source_queue_flits,
            queue_mean: stats.avg_source_queue_flits,
        }
    });

    let mut table = Table::new(&[
        "n",
        "kind",
        "pattern",
        "offered_flits_per_cycle",
        "accepted_flits_per_cycle",
        "avg_latency_cycles",
        "p50_latency_cycles",
        "p95_latency_cycles",
        "p99_latency_cycles",
        "max_source_queue_flits",
        "mean_source_queue_flits",
    ]);

    println!("Latency/load curves at N = {n} (paper §VI-A config):");
    println!(
        "{:<4} {:<10} {:>8} {:>9} {:>9} {:>8} {:>8} {:>8} {:>7} {:>8}",
        "kind",
        "pattern",
        "offered",
        "accepted",
        "avg lat",
        "p50",
        "p95",
        "p99",
        "max q",
        "mean q"
    );
    // Replicates of one (kind, rate, pattern) point are adjacent in grid
    // order; aggregate each chunk to the replicate mean.
    let k = campaign.args().seeds.max(1) as usize;
    for chunk in results.chunks(k) {
        let job = chunk[0].0;
        let of = |f: fn(&Point) -> f64| mean_of(chunk, |(_, p)| f(p));
        let rate = job.rate.expect("rate axis set");
        let pattern_name = job.pattern.name();
        let (accepted, avg) = (of(|p| p.accepted), of(|p| p.avg));
        let (p50, p95, p99) = (of(|p| p.p50), of(|p| p.p95), of(|p| p.p99));
        let queue_max = chunk.iter().map(|(_, p)| p.queue_max).max().unwrap_or(0);
        let queue_mean = of(|p| p.queue_mean);
        println!(
            "{:<4} {:<10} {:>8.2} {:>9.3} {:>9.1} {:>8.0} {:>8.0} {:>8.0} {:>7} {:>8.2}",
            job.kind.label(),
            pattern_name,
            rate,
            accepted,
            avg,
            p50,
            p95,
            p99,
            queue_max,
            queue_mean
        );
        table.row(&[
            &n,
            &job.kind.label(),
            &pattern_name,
            &f3(rate),
            &f3(accepted),
            &f3(avg),
            &f3(p50),
            &f3(p95),
            &f3(p99),
            &queue_max,
            &f3(queue_mean),
        ]);
    }

    let mut config = Value::object();
    config.set("n", n);
    config.set("warmup_cycles", warmup);
    config.set("measure_cycles", measure);
    config
        .set("patterns", Value::Arr(patterns.iter().map(|p| Value::from(p.name())).collect()));
    let written = campaign.finish(&table, config).expect("results dir writable");
    for path in written {
        println!("wrote {}", path.display());
    }
}
