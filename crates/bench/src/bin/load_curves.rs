//! EXP-LC — latency-vs-offered-load curves (the raw data behind Fig. 7).
//!
//! The paper reports two scalars per arrangement (zero-load latency and
//! saturation throughput); this campaign regenerates the full
//! latency/load curves those scalars summarise, including tail
//! percentiles — the standard BookSim2 presentation. Each row also
//! reports the endpoint source-queue occupancy (max + mean) — the
//! congestion signal that rises past the knee.
//!
//! A preset wrapper over the study flow (stage `load_curve`):
//! `study --preset load_curves` runs the identical campaign, and a TOML
//! spec can sweep anything this binary's flags cannot (multiple `ns`,
//! non-default rates, routing overrides, an `optimized` search-discovered
//! arrangement next to the fixed families).
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin load_curves
//! [--n N] [--patterns uniform,tornado,...] [--workers W] [--seeds K]
//! [--out DIR] [--format csv|json|both]`
//! Writes `results/load_curves.{csv,json}`. Patterns parse through the
//! shared `xp::cli::arg_list` layer (strict: malformed names abort);
//! the default single-pattern sweep is the historical uniform-random
//! curve.

use hexamesh_bench::presets;
use hexamesh_bench::sweep;
use nocsim::TrafficPattern;
use xp::cli::{self, try_arg_list, CampaignArgs};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cli::reject_unknown_flags(&args, &cli::with_shared(&["--n", "--patterns"]));
    let n = sweep::arg_usize(&args, "--n", 37);
    let patterns = try_arg_list::<TrafficPattern>(&args, "--patterns").unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let shared = CampaignArgs::parse(&args);

    let mut spec = presets::preset("load_curves").expect("registered preset");
    spec.axes.ns = Some(vec![n]);
    spec.axes.patterns = patterns;

    println!("Latency/load curves at N = {n} (paper §VI-A config):");
    presets::run_and_report(&spec, shared);
}
