//! EXP-LC — latency-vs-offered-load curves (the raw data behind Fig. 7).
//!
//! The paper reports two scalars per arrangement (zero-load latency and
//! saturation throughput); this binary regenerates the full latency/load
//! curves those scalars summarise, including tail percentiles — the
//! standard BookSim2 presentation.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin load_curves [--n N]`
//! Writes `results/load_curves.csv`.

use std::path::Path;

use hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh_bench::csv::{f3, Table};
use hexamesh_bench::{sweep, RESULTS_DIR};
use nocsim::{SimConfig, Simulator};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n = sweep::arg_usize(&args, "--n", 37);

    let mut table = Table::new(&[
        "n",
        "kind",
        "offered_flits_per_cycle",
        "accepted_flits_per_cycle",
        "avg_latency_cycles",
        "p50_latency_cycles",
        "p95_latency_cycles",
        "p99_latency_cycles",
    ]);

    println!("Latency/load curves at N = {n} (uniform random, paper §VI-A config):");
    println!(
        "{:<4} {:>8} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "kind", "offered", "accepted", "avg lat", "p50", "p95", "p99"
    );
    for kind in ArrangementKind::EVALUATED {
        let arrangement = Arrangement::build(kind, n).expect("any n builds");
        for step in 1..=12u32 {
            let rate = f64::from(step) * 0.04;
            let config = SimConfig {
                injection_rate: rate,
                ..SimConfig::paper_defaults()
            };
            let mut sim =
                Simulator::new(arrangement.graph(), config).expect("valid configuration");
            sim.run(4_000);
            sim.open_measurement_window();
            sim.run(8_000);
            let stats = sim.stats();
            let avg = stats.avg_packet_latency.unwrap_or(f64::NAN);
            let p50 = sim.latency_percentile(0.50).unwrap_or(f64::NAN);
            let p95 = sim.latency_percentile(0.95).unwrap_or(f64::NAN);
            let p99 = sim.latency_percentile(0.99).unwrap_or(f64::NAN);
            println!(
                "{:<4} {:>8.2} {:>9.3} {:>9.1} {:>8.0} {:>8.0} {:>8.0}",
                kind.label(),
                rate,
                stats.accepted_flits_per_cycle_per_endpoint,
                avg,
                p50,
                p95,
                p99
            );
            table.row(&[
                &n,
                &kind.label(),
                &f3(rate),
                &f3(stats.accepted_flits_per_cycle_per_endpoint),
                &f3(avg),
                &f3(p50),
                &f3(p95),
                &f3(p99),
            ]);
            // Past saturation the curve only gets noisier; stop once
            // latency explodes to keep runtimes bounded.
            if avg.is_finite() && avg > 1_500.0 {
                break;
            }
        }
    }

    table
        .write_to(Path::new(RESULTS_DIR).join("load_curves.csv").as_path())
        .expect("results dir writable");
    println!("\nwrote {RESULTS_DIR}/load_curves.csv");
}
