//! ⚙ `netview` — replay one load point with every observability sink on.
//!
//! Runs the `netview` preset (stage `load_curve`, HexaMesh + grid at one
//! rate) with the `[observe]` section fully enabled, writing next to the
//! result table and manifest:
//!
//! * `timeline.csv` — the probe's windowed time series (throughput,
//!   latency, flits in flight, buffered flits, stall causes, link load);
//! * `heatmap_<kind>_n<N>_r<permille>_<pattern>.svg` — the per-link /
//!   per-chiplet congestion choropleth over the physical placement;
//! * `trace.json` — Chrome-trace spans of the worker pool, loadable by
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Observability is zero-perturbation: the result rows are byte-identical
//! with `--no-observe` (which strips the `[observe]` section — CI diffs
//! the two). Probes record into buffers preallocated at attach, so even
//! the simulator's steady-state allocation contract holds with them on.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin netview
//! [--n N] [--rate R] [--kinds hexamesh,grid,...] [--no-observe]`
//! plus the shared campaign flags (`--workers`, `--quick`, `--out`, …).
//! Writes `results/netview.{csv,json}` and the artefacts above.

use hexamesh::arrangement::ArrangementKind;
use hexamesh_bench::presets;
use hexamesh_bench::sweep;
use xp::cli::{self, arg_flag, try_arg_list, try_arg_value};

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn strict<T>(result: Result<T, String>) -> T {
    result.unwrap_or_else(|e| fail(&e))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cli::reject_unknown_flags(
        &args,
        &cli::with_shared(&["--n", "--rate", "--kinds", "--no-observe"]),
    );

    let mut spec = presets::preset("netview").expect("registered preset");
    if let Some(kinds) = strict(try_arg_list::<ArrangementKind>(&args, "--kinds")) {
        spec.axes.kinds = Some(kinds);
    }
    spec.axes.ns = Some(vec![sweep::arg_usize(&args, "--n", 19)]);
    if let Some(rate) = strict(try_arg_value(&args, "--rate")) {
        let rate: f64 = rate
            .parse()
            .unwrap_or_else(|_| fail(&format!("--rate expects a number, got {rate:?}")));
        spec.axes.rates = Some(vec![rate]);
    }
    if arg_flag(&args, "--no-observe") {
        spec.observe = Default::default();
    }
    let shared = strict(xp::flow::campaign_args_for(&spec, &args));

    eprintln!("netview: one observed load point per family (observe = {})", {
        if spec.observe.is_off() {
            "off"
        } else {
            "timeline + heatmap + trace"
        }
    });
    presets::run_and_report(&spec, shared);
}
