//! EXP-P1 — signal-integrity sweep of the D2D link model extension.
//!
//! §V of the paper treats the link frequency as an input, noting that
//! adjacent-chiplet links are "below 4 mm in general, for N ≥ 10 chiplets
//! even below 2 mm", and §II quotes UCIe's ≤ 2 mm limit for silicon
//! interposers. The `chiplet-phy` crate models *why*: insertion loss,
//! crosstalk, and BER. This sweep regenerates the reach/rate trade-off for
//! both wiring technologies and cross-checks the paper's envelopes.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin phy_sweep`
//! Writes `results/phy_reach.csv` and `results/phy_derating.csv`.

use std::path::Path;

use chiplet_phy::{capacity, eye, SignalBudget, Technology};
use hexamesh_bench::csv::{f3, Table};
use hexamesh_bench::RESULTS_DIR;

fn main() {
    // Analytic binary: no flags. Unknown flags abort (strict-CLI rule).
    let args: Vec<String> = std::env::args().collect();
    xp::cli::reject_unknown_flags(&args, &[]);
    let budget = SignalBudget::default();
    let technologies = [Technology::organic_substrate(), Technology::silicon_interposer()];
    const BER_TARGET: f64 = -15.0;

    // ── Reach vs. per-wire bit rate ─────────────────────────────────────
    let mut reach = Table::new(&["technology", "bit_rate_gbps", "max_length_mm"]);
    println!("Maximum link length at BER 1e-15:");
    println!("{:<28} {:>6} {:>12}", "technology", "Gb/s", "reach [mm]");
    for tech in &technologies {
        for rate in [4.0f64, 8.0, 12.0, 16.0, 24.0, 32.0] {
            let r = capacity::max_length_mm(tech, &budget, rate, BER_TARGET).unwrap_or(0.0);
            println!("{:<28} {:>6.0} {:>12.2}", tech.name, rate, r);
            reach.row(&[&tech.name, &rate, &f3(r)]);
        }
    }
    reach
        .write_to(Path::new(RESULTS_DIR).join("phy_reach.csv").as_path())
        .expect("results dir writable");

    // ── Derated rate and BER vs. length at the paper's 16 Gb/s ──────────
    let mut derating = Table::new(&[
        "technology",
        "length_mm",
        "insertion_loss_db",
        "eye_mv",
        "log10_ber",
        "derated_rate_gbps",
    ]);
    for tech in &technologies {
        for tenths in 1..=60u32 {
            let length = f64::from(tenths) * 0.1;
            let a = eye::analyze(tech, &budget, 16.0, length);
            let derated =
                capacity::derated_bit_rate_gbps(tech, &budget, length, 16.0, BER_TARGET);
            derating.row(&[
                &tech.name,
                &f3(length),
                &f3(a.insertion_loss_db),
                &f3(a.eye_height_v * 1e3),
                &f3(a.log10_ber.max(-40.0)),
                &f3(derated),
            ]);
        }
    }
    derating
        .write_to(Path::new(RESULTS_DIR).join("phy_derating.csv").as_path())
        .expect("results dir writable");

    // ── The paper's envelope checkpoints ────────────────────────────────
    let sub = &technologies[0];
    let int = &technologies[1];
    let sub_reach = capacity::max_length_mm(sub, &budget, 16.0, BER_TARGET).unwrap_or(0.0);
    let int_reach = capacity::max_length_mm(int, &budget, 16.0, BER_TARGET).unwrap_or(0.0);
    println!();
    println!("Paper envelope checks at 16 Gb/s, BER 1e-15:");
    println!(
        "  substrate reach {sub_reach:.2} mm  (paper §V: adjacent links < 4 mm in general) {}",
        verdict(sub_reach >= 4.0)
    );
    println!(
        "  interposer reach {int_reach:.2} mm (paper §II: UCIe interposer links <= 2 mm)   {}",
        verdict((1.8..=2.6).contains(&int_reach))
    );
    println!(
        "  N >= 10 chiplets => links < 2 mm: both technologies run at full rate {}",
        verdict(
            capacity::derated_bit_rate_gbps(int, &budget, 2.0, 16.0, BER_TARGET) >= 16.0
                && capacity::derated_bit_rate_gbps(sub, &budget, 2.0, 16.0, BER_TARGET) >= 16.0
        )
    );
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "[ok]"
    } else {
        "[MISMATCH]"
    }
}
