//! EXP-R1 — fault tolerance of chiplet arrangements.
//!
//! §IV motivates HexaMesh partly through the *minimum* number of
//! neighbours per chiplet (3 vs. the grid's 2; §IV-C notes irregular grids
//! drop to 1). The engineering content of minimum degree is fault
//! tolerance: this experiment measures it directly — bridges (links whose
//! failure splits the ICI), articulation chiplets, and the Stoer–Wagner
//! edge connectivity (the number of link failures that suffice to
//! disconnect any pair).
//!
//! Declared as an engine grid (kind × n); the Stoer–Wagner analyses of
//! the large counts dominate, so the pool's large-first schedule pays off
//! even for this purely structural sweep.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin resilience
//! [--workers W] [--out DIR] [--format F]`
//! Writes `results/resilience.{csv,json}`.

use chiplet_graph::resilience::{articulation_points, bridges, edge_connectivity};
use hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh_bench::csv::Table;
use hexamesh_bench::sweep;
use xp::grid::Scenario;
use xp::json::Value;
use xp::{Campaign, CampaignArgs};

/// Regular sizes plus irregular ones (where the paper concedes weaker
/// minimum degree).
const NS: [usize; 8] = [16, 17, 36, 37, 41, 64, 91, 100];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    xp::cli::reject_unknown_flags(&args, &xp::cli::with_shared(&[]));
    let mut shared = CampaignArgs::parse(&args);
    // Structural analyses have no randomness: replicates would only
    // duplicate identical rows.
    shared.seeds = 1;
    let campaign = Campaign::new("resilience", shared);

    let scenario = Scenario::new(&ArrangementKind::EVALUATED, &NS);
    let results = campaign.run_grid(&scenario, |job| {
        let arrangement = Arrangement::build(job.kind, job.n).expect("any n builds");
        let g = arrangement.graph();
        (
            arrangement.regularity().to_string(),
            arrangement.degree_stats().min,
            bridges(g).len(),
            articulation_points(g).len(),
            edge_connectivity(g).unwrap_or(0),
        )
    });

    let mut table = Table::new(&[
        "n",
        "kind",
        "regularity",
        "min_degree",
        "bridges",
        "articulation_points",
        "edge_connectivity",
    ]);

    println!("Fault tolerance of arrangements (bridges / cut chiplets / edge connectivity):");
    println!(
        "{:>3} {:<4} {:<12} {:>7} {:>8} {:>7} {:>7}",
        "N", "kind", "regularity", "min deg", "bridges", "cut ch.", "k_edge"
    );
    // Historical row order is n-major; the grid expands kind-major.
    let mut rows: Vec<_> = results
        .iter()
        .map(|(job, (regularity, min_deg, b, cuts, k))| {
            (job.n, job.kind, regularity.clone(), *min_deg, *b, *cuts, *k)
        })
        .collect();
    rows.sort_by_key(|&(n, kind, ..)| (n, sweep::evaluated_rank(kind)));

    for (n, kind, regularity, min_deg, b, cuts, k) in &rows {
        println!(
            "{:>3} {:<4} {:<12} {:>7} {:>8} {:>7} {:>7}",
            n,
            kind.label(),
            regularity,
            min_deg,
            b,
            cuts,
            k
        );
        table.row(&[n, &kind.label(), regularity, min_deg, b, cuts, k]);
    }

    let config = Value::object();
    let written = campaign.finish(&table, config).expect("results dir writable");
    for path in written {
        println!("wrote {}", path.display());
    }
    println!("(edge connectivity <= min degree always; equality means the only");
    println!(" weakness is a single chiplet's full link set, not a fabric cut)");
}
