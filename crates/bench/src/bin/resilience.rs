//! EXP-R1 — fault tolerance of chiplet arrangements, static and live.
//!
//! §IV motivates HexaMesh partly through the *minimum* number of
//! neighbours per chiplet (3 vs. the grid's 2; §IV-C notes irregular grids
//! drop to 1). The engineering content of minimum degree is fault
//! tolerance, measured here in two ways:
//!
//! * **structural** (`resilience.{csv,json}`): bridges (links whose
//!   failure splits the ICI), articulation chiplets, and the Stoer–Wagner
//!   edge connectivity — the legacy sweep, byte-identical to the
//!   pre-preset binary;
//! * **dynamic** (`BENCH_resilience.{csv,json}`): graceful degradation
//!   under live link failures — saturation throughput and stencil /
//!   ring-all-reduce makespans (with source retransmission) after 0, 1,
//!   2, 4 random links die mid-run.
//!
//! A preset wrapper over the study flow (stage `resilience`):
//! `study --preset resilience` runs the identical campaign.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin resilience
//! [--quick] [--workers W] [--out DIR] [--format F]`
//!
//! Writes to the repository root by default (`BENCH_resilience` is a
//! tracked baseline record; pass `--out` to redirect). `--seeds` is
//! rejected: the structural half has no randomness, and the degradation
//! table's replicate count is the preset's contract — silently forcing
//! the flag back to 1 (the historical behaviour) hid user error.

use hexamesh_bench::presets;
use xp::cli::{self, CampaignArgs};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--seeds") {
        eprintln!(
            "error: `resilience` does not accept --seeds: the structural sweep is \
             deterministic (replicates would duplicate identical rows) and the degradation \
             sweep's replicate count is fixed by the preset. Use `study --preset resilience` \
             with a spec file to change replication."
        );
        std::process::exit(2);
    }
    let allowed: Vec<&str> =
        cli::with_shared(&[]).into_iter().filter(|&f| f != "--seeds").collect();
    cli::reject_unknown_flags(&args, &allowed);
    let mut resolved = CampaignArgs::parse(&args);

    let spec = presets::preset("resilience").expect("registered preset");
    xp::flow::apply_spec_defaults(&spec, &mut resolved, &args);

    println!("Fault tolerance of arrangements (bridges / cut chiplets / edge connectivity,");
    println!(" plus graceful degradation under live link failures):");
    presets::run_and_report(&spec, resolved);
}
