//! EXP-R1 — fault tolerance of chiplet arrangements.
//!
//! §IV motivates HexaMesh partly through the *minimum* number of
//! neighbours per chiplet (3 vs. the grid's 2; §IV-C notes irregular grids
//! drop to 1). The engineering content of minimum degree is fault
//! tolerance: this experiment measures it directly — bridges (links whose
//! failure splits the ICI), articulation chiplets, and the Stoer–Wagner
//! edge connectivity (the number of link failures that suffice to
//! disconnect any pair).
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin resilience`
//! Writes `results/resilience.csv`.

use std::path::Path;

use chiplet_graph::resilience::{articulation_points, bridges, edge_connectivity};
use hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh_bench::csv::Table;
use hexamesh_bench::RESULTS_DIR;

fn main() {
    let mut table = Table::new(&[
        "n",
        "kind",
        "regularity",
        "min_degree",
        "bridges",
        "articulation_points",
        "edge_connectivity",
    ]);

    println!("Fault tolerance of arrangements (bridges / cut chiplets / edge connectivity):");
    println!(
        "{:>3} {:<4} {:<12} {:>7} {:>8} {:>7} {:>7}",
        "N", "kind", "regularity", "min deg", "bridges", "cut ch.", "k_edge"
    );
    // Regular sizes plus irregular ones (where the paper concedes weaker
    // minimum degree).
    for n in [16usize, 17, 36, 37, 41, 64, 91, 100] {
        for kind in ArrangementKind::EVALUATED {
            let arrangement = Arrangement::build(kind, n).expect("any n builds");
            let g = arrangement.graph();
            let stats = arrangement.degree_stats();
            let b = bridges(g).len();
            let cuts = articulation_points(g).len();
            let k = edge_connectivity(g).unwrap_or(0);
            println!(
                "{:>3} {:<4} {:<12} {:>7} {:>8} {:>7} {:>7}",
                n,
                kind.label(),
                arrangement.regularity().to_string(),
                stats.min,
                b,
                cuts,
                k
            );
            table.row(&[
                &n,
                &kind.label(),
                &arrangement.regularity().to_string(),
                &stats.min,
                &b,
                &cuts,
                &k,
            ]);
        }
    }

    table
        .write_to(Path::new(RESULTS_DIR).join("resilience.csv").as_path())
        .expect("results dir writable");
    println!("\nwrote {RESULTS_DIR}/resilience.csv");
    println!("(edge connectivity <= min degree always; equality means the only");
    println!(" weakness is a single chiplet's full link set, not a fabric cut)");
}
