//! ⚙ `router_fidelity` — does the arrangement ranking survive router
//! fidelity?
//!
//! The headline comparison (HexaMesh vs. brickwall vs. grid vs.
//! honeycomb) is simulated under one router pipeline. This campaign
//! re-ranks the four families under six [`nocsim::RouterModelKind`]
//! microarchitectures — from the paper baseline through occupancy-aware
//! VC allocation, age-ordered arbitration, bubble escape flow control,
//! and deeper crossbar pipelines to the fully fortified router — by
//! open-loop saturation throughput *and* closed-loop stencil /
//! ring-all-reduce makespan at n ∈ {37, 91, 169}.
//!
//! A preset wrapper over the study flow (stage `router`):
//! `study --preset router_fidelity` runs the identical campaign.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin router_fidelity
//! [--ns 37,91,169] [--routers baseline,...] [--workloads stencil,...]
//! [--quick] [--workers W] [--seeds K] [--out DIR] [--format F]`
//!
//! Writes `BENCH_router.{csv,json}` — to the repository root by default
//! (the tracked baseline record; pass `--out` to redirect). `--quick`
//! shrinks the chiplet counts to {7, 13} for CI smoke runs.

use chiplet_workload::WorkloadKind;
use hexamesh_bench::presets;
use nocsim::RouterModelKind;
use xp::cli::{self, try_arg_list, CampaignArgs};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cli::reject_unknown_flags(&args, &cli::with_shared(&["--ns", "--routers", "--workloads"]));
    let strict = |e: String| -> ! {
        eprintln!("error: {e}");
        std::process::exit(2);
    };
    let ns = try_arg_list::<usize>(&args, "--ns").unwrap_or_else(|e| strict(e));
    let routers =
        try_arg_list::<RouterModelKind>(&args, "--routers").unwrap_or_else(|e| strict(e));
    let workloads =
        try_arg_list::<WorkloadKind>(&args, "--workloads").unwrap_or_else(|e| strict(e));
    let shared = CampaignArgs::parse(&args);

    let mut spec = presets::preset("router_fidelity").expect("registered preset");
    if ns.is_some() {
        spec.axes.ns = ns;
    }
    if routers.is_some() {
        spec.axes.routers = routers;
    }
    if workloads.is_some() {
        spec.axes.workloads = workloads;
    }
    let mut resolved = shared;
    xp::flow::apply_spec_defaults(&spec, &mut resolved, &args);

    println!("Router-model fidelity re-ranking (open- and closed-loop):");
    presets::run_and_report(&spec, resolved);
}
