//! EXP-SP — simulator hot-path performance: simulated Mcycles/s and
//! flit-hops/s of `nocsim` on the paper-defaults 8×8 grid, at light load
//! (rate 0.05, the event-driven sweet spot) and past the saturation knee
//! (rate 0.30, where every router is busy each cycle) — plus a `large_n`
//! scenario (n = 1027 HexaMesh near saturation) that sweeps the `--shards`
//! axis of the bounded-lag parallel engine and reports each shard count's
//! `speedup_vs_serial`.
//!
//! Each grid scenario is measured twice — on the event-driven hot path and
//! on the forced poll-every-cycle reference path — and compared against
//! the recorded pre-optimization baseline (commit `abd2986`, measured with
//! this same warmup/window methodology on the repo's CI-class single-core
//! container). Baselines and shard speedups are wall-clock numbers, so
//! compare them only to runs on comparable hardware; the JSON manifest
//! records `git describe` and `host_cpus` for every run so regressions
//! (and single-core runs, where sharding cannot win) are attributable.
//!
//! Usage:
//! ```text
//! cargo run --release -p hexamesh-bench --bin simperf \
//!     [--quick] [--cycles N] [--side S] [--shards 1,2,4,8] \
//!     [--out DIR] [--format csv|json|both]
//! ```
//! Writes `BENCH_nocsim.{csv,json}` (to the repository root by default —
//! pass `--out` to redirect). Scenarios always run serially, whatever
//! `--workers` says: interleaved timing would measure the scheduler, not
//! the simulator.

use std::time::Instant;

use chiplet_graph::{gen, Graph};
use hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh_bench::csv::{f3, Table};
use hexamesh_bench::sweep;
use nocsim::{ShardedSimulator, SimConfig, Simulator};
use xp::json::Value;
use xp::{Campaign, CampaignArgs};

/// Pre-PR baseline (commit `abd2986`, poll-everything simulator with
/// per-cycle allocations): simulated Mcycles/s and Mflit-hops/s on the
/// 8×8 grid, 2 000-cycle warmup, 200 000-cycle window.
const BASELINE: &[(&str, f64, f64, f64)] = &[
    // (scenario, rate, mcycles_per_s, mflit_hops_per_s)
    ("low_load", 0.05, 0.025, 0.850),
    ("near_saturation", 0.30, 0.007, 0.059),
];

/// The sharded scenario: a paper-scale HexaMesh (a valid centered-hex
/// count, k = 18) near the saturation knee.
const LARGE_N: usize = 1_027;
const LARGE_N_RATE: f64 = 0.30;

struct Measured {
    scenario: &'static str,
    path: &'static str,
    shards: usize,
    rate: f64,
    cycles: u64,
    wall_s: f64,
    mcycles_per_s: f64,
    mflit_hops_per_s: f64,
}

fn measure(
    side: usize,
    rate: f64,
    cycles: u64,
    reference: bool,
    scenario: &'static str,
) -> Measured {
    let g = gen::grid(side, side);
    let config = SimConfig { injection_rate: rate, ..SimConfig::paper_defaults() };
    let mut sim = Simulator::new(&g, config).expect("valid configuration");
    sim.set_reference_stepping(reference);
    sim.run(2_000);
    sim.open_measurement_window();
    let hops_before: u64 = sim.channel_loads().iter().map(|&(_, _, c)| c).sum();
    let t0 = Instant::now();
    sim.run(cycles);
    let wall_s = t0.elapsed().as_secs_f64();
    let hops: u64 = sim.channel_loads().iter().map(|&(_, _, c)| c).sum::<u64>() - hops_before;
    assert!(sim.stats().received_packets > 0, "perf scenario moved no traffic");
    Measured {
        scenario,
        path: if reference { "reference" } else { "event" },
        shards: 1,
        rate,
        cycles,
        wall_s,
        mcycles_per_s: cycles as f64 / wall_s / 1e6,
        mflit_hops_per_s: hops as f64 / wall_s / 1e6,
    }
}

fn measure_sharded(graph: &Graph, rate: f64, cycles: u64, shards: usize) -> Measured {
    let config = SimConfig { injection_rate: rate, ..SimConfig::paper_defaults() };
    let mut sim = ShardedSimulator::new(graph, config, shards).expect("valid configuration");
    sim.run(2_000);
    sim.open_measurement_window();
    let hops_before: u64 = sim.channel_loads().iter().map(|&(_, _, c)| c).sum();
    let t0 = Instant::now();
    sim.run(cycles);
    let wall_s = t0.elapsed().as_secs_f64();
    let hops: u64 = sim.channel_loads().iter().map(|&(_, _, c)| c).sum::<u64>() - hops_before;
    assert!(sim.stats().received_packets > 0, "perf scenario moved no traffic");
    Measured {
        scenario: "large_n",
        // One shard is the serial event engine itself (no threads).
        path: if shards == 1 { "event" } else { "sharded" },
        shards,
        rate,
        cycles,
        wall_s,
        mcycles_per_s: cycles as f64 / wall_s / 1e6,
        mflit_hops_per_s: hops as f64 / wall_s / 1e6,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    xp::cli::reject_unknown_flags(
        &args,
        &xp::cli::with_shared(&["--side", "--cycles", "--shards"]),
    );
    let side = sweep::arg_usize(&args, "--side", 8);
    let mut shared = CampaignArgs::parse(&args);
    sweep::default_out_to_repo_root(&args, &mut shared);
    let default_cycles = if shared.quick { 20_000 } else { 100_000 };
    let cycles = sweep::arg_u64(&args, "--cycles", default_cycles);
    let default_shards: &[usize] = if shared.quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let mut shard_counts = xp::cli::arg_list(&args, "--shards", default_shards);
    if !shard_counts.contains(&1) {
        // The serial row anchors every speedup_vs_serial value.
        shard_counts.insert(0, 1);
    }
    // The n = 1027 network does ~16× the per-cycle work of the 8×8 grid;
    // a shorter window keeps the sweep's wall time comparable.
    let large_n_cycles = (cycles / 10).max(1_000);
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let campaign = Campaign::new("BENCH_nocsim", shared);

    eprintln!(
        "simperf: {side}x{side} grid x 2 paths @ {cycles} cycles, \
         large_n (n={LARGE_N} hexamesh) x shards {shard_counts:?} @ {large_n_cycles} cycles, \
         {host_cpus} host cpus"
    );
    let mut rows: Vec<Measured> = Vec::new();
    for &(scenario, rate, _, _) in BASELINE {
        for reference in [false, true] {
            let m = measure(side, rate, cycles, reference, scenario);
            eprintln!(
                "  {scenario:>16} {:>9}: {:.3} Mcycles/s, {:.3} Mflit-hops/s",
                m.path, m.mcycles_per_s, m.mflit_hops_per_s
            );
            rows.push(m);
        }
    }
    let arrangement =
        Arrangement::build(ArrangementKind::HexaMesh, LARGE_N).expect("valid hex count");
    for &shards in &shard_counts {
        let m = measure_sharded(arrangement.graph(), LARGE_N_RATE, large_n_cycles, shards);
        eprintln!(
            "  {:>16} shards={shards}: {:.4} Mcycles/s, {:.3} Mflit-hops/s",
            m.scenario, m.mcycles_per_s, m.mflit_hops_per_s
        );
        rows.push(m);
    }

    let baseline_of = |scenario: &str| BASELINE.iter().find(|b| b.0 == scenario);
    let serial_wall = rows
        .iter()
        .find(|m| m.scenario == "large_n" && m.shards == 1)
        .map(|m| m.wall_s)
        .expect("serial large_n row present");
    let mut table = Table::new(&[
        "scenario",
        "path",
        "shards",
        "rate",
        "cycles",
        "wall_s",
        "mcycles_per_s",
        "mflit_hops_per_s",
        "baseline_mcycles_per_s",
        "speedup_vs_baseline",
        "speedup_vs_serial",
    ]);
    for m in &rows {
        let (base_mcyc, speedup_base) = match baseline_of(m.scenario) {
            Some(&(_, _, mcyc, _)) => (f3(mcyc), f3(m.mcycles_per_s / mcyc)),
            None => (String::new(), String::new()),
        };
        let speedup_serial =
            if m.scenario == "large_n" { f3(serial_wall / m.wall_s) } else { String::new() };
        table.row(&[
            &m.scenario,
            &m.path,
            &m.shards,
            &f3(m.rate),
            &m.cycles,
            &f3(m.wall_s),
            &f3(m.mcycles_per_s),
            &f3(m.mflit_hops_per_s),
            &base_mcyc,
            &speedup_base,
            &speedup_serial,
        ]);
    }
    // The recorded baselines ride along so the JSON is self-contained.
    for &(scenario, rate, mcyc, mhops) in BASELINE {
        table.row(&[
            &scenario,
            &"baseline_pre_pr",
            &1usize,
            &f3(rate),
            &200_000u64,
            &"",
            &f3(mcyc),
            &f3(mhops),
            &f3(mcyc),
            &f3(1.0),
            &"",
        ]);
    }

    let mut config = Value::object();
    config.set("side", side);
    config.set("cycles", cycles);
    config.set("large_n", LARGE_N);
    config.set("large_n_cycles", large_n_cycles);
    config.set("shards", Value::Arr(shard_counts.iter().map(|&s| Value::from(s)).collect()));
    config.set("host_cpus", host_cpus);
    config.set("baseline_commit", "abd2986");
    let written = campaign.finish(&table, config).expect("write sinks");

    println!("simperf speedups vs pre-PR baseline (event-driven path):");
    for m in rows.iter().filter(|m| m.path == "event" && m.scenario != "large_n") {
        let &(_, _, base_mcyc, _) = baseline_of(m.scenario).expect("grid scenario");
        println!(
            "  {:>16}: {:.2}x ({:.3} vs {:.3} Mcycles/s)",
            m.scenario,
            m.mcycles_per_s / base_mcyc,
            m.mcycles_per_s,
            base_mcyc
        );
    }
    println!("large_n (n={LARGE_N}, rate {LARGE_N_RATE}) self-speedup vs serial:");
    for m in rows.iter().filter(|m| m.scenario == "large_n") {
        println!(
            "  shards={}: {:.2}x ({:.4} Mcycles/s)",
            m.shards,
            serial_wall / m.wall_s,
            m.mcycles_per_s
        );
    }
    for path in &written {
        println!("wrote {}", path.display());
    }
}
