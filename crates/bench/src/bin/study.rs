//! ⚙ `study` — the one data-driven experiment runner.
//!
//! Every campaign in this repository is a [`StudySpec`] value: a stage
//! (`proxies | saturation | traffic | load_curve | workload | search |
//! kite | thermal | cost | resilience | router`), sweep axes, parameter
//! overrides, and output
//! configuration. This binary loads a spec and executes it through
//! `xp::flow::run_study` — so a new study is a file, not a new binary.
//!
//! Usage:
//! ```text
//! study --spec FILE.toml|FILE.json     # run a spec file
//! study --preset NAME                  # run a registered preset
//! study --list                         # list presets and stages
//! study serve [--cache-dir DIR] [--socket PATH] [--stats-out FILE]
//!                                      # resident service: JSONL spec
//!                                      # requests on stdin (or the Unix
//!                                      # socket), served from a
//!                                      # content-addressed result cache
//! ```
//! plus the shared campaign flags (`--workers`, `--seeds`, `--quick`,
//! `--full`, `--out`, `--format`, `--seed`) and generic axis overrides
//! that win over the spec: `--kinds`, `--ns`, `--n` (single-count
//! shorthand), `--rates`, `--patterns`, `--workloads`, `--routers`
//! (router-model sweep), `--router` (fixed named model via `sim.router`),
//! `--restarts`, `--iterations`, `--no-validate`, `--optimized`.
//!
//! A spec's `seed` / `replicates` / `output` keys act as defaults for
//! the matching flags, so checked-in specs pin their reproduction
//! exactly; explicit flags always win. Presets reproduce the historical
//! binaries byte for byte at equal flags — pinned by the golden tests
//! and the `study-vs-legacy` CI job.

use chiplet_workload::WorkloadKind;
use hexamesh::arrangement::ArrangementKind;
use hexamesh_bench::presets;
use nocsim::{RouterModelKind, TrafficPattern};
use xp::cli::{self, arg_flag, try_arg_list, try_arg_value};
use xp::spec::{StageKind, StudySpec};

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn strict<T>(result: Result<T, String>) -> T {
    result.unwrap_or_else(|e| fail(&e))
}

fn load_spec(args: &[String]) -> StudySpec {
    let spec_path = strict(try_arg_value(args, "--spec"));
    let preset_name = strict(try_arg_value(args, "--preset"));
    match (spec_path, preset_name) {
        (Some(path), None) => {
            let source = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
            let parsed = if path.ends_with(".json") {
                StudySpec::from_json(&source)
            } else {
                StudySpec::from_toml(&source)
            };
            parsed.unwrap_or_else(|e| fail(&format!("{path}: {e}")))
        }
        (None, Some(name)) => presets::preset(name).unwrap_or_else(|| {
            fail(&format!(
                "unknown preset {name:?} (available: {})",
                presets::PRESET_NAMES.join(", ")
            ))
        }),
        (Some(_), Some(_)) => fail("--spec and --preset are mutually exclusive"),
        (None, None) => fail("pass --spec FILE, --preset NAME, or --list"),
    }
}

fn apply_overrides(spec: &mut StudySpec, args: &[String]) {
    if let Some(kinds) = strict(try_arg_list::<ArrangementKind>(args, "--kinds")) {
        spec.axes.kinds = Some(kinds);
    }
    if let Some(ns) = strict(try_arg_list::<usize>(args, "--ns")) {
        spec.axes.ns = Some(ns);
    }
    if let Some(n) = strict(xp::cli::try_arg_value(args, "--n")) {
        let n: usize =
            n.parse().unwrap_or_else(|_| fail(&format!("--n expects a count, got {n:?}")));
        spec.axes.ns = Some(vec![n]);
    }
    if let Some(rates) = strict(try_arg_list::<f64>(args, "--rates")) {
        spec.axes.rates = Some(rates);
    }
    if let Some(patterns) = strict(try_arg_list::<TrafficPattern>(args, "--patterns")) {
        spec.axes.patterns = Some(patterns);
    }
    if let Some(workloads) = strict(try_arg_list::<WorkloadKind>(args, "--workloads")) {
        spec.axes.workloads = Some(workloads);
    }
    if let Some(routers) = strict(try_arg_list::<RouterModelKind>(args, "--routers")) {
        spec.axes.routers = Some(routers);
    }
    if let Some(router) = strict(try_arg_value(args, "--router")) {
        spec.sim.router =
            Some(router.parse().unwrap_or_else(|e: String| fail(&format!("--router: {e}"))));
    }
    if let Some(restarts) = strict(try_arg_value(args, "--restarts")) {
        spec.search.restarts =
            Some(restarts.parse().unwrap_or_else(|_| fail("--restarts expects a count")));
    }
    if let Some(iterations) = strict(try_arg_value(args, "--iterations")) {
        spec.search.iterations =
            Some(iterations.parse().unwrap_or_else(|_| fail("--iterations expects a count")));
    }
    if arg_flag(args, "--no-validate") {
        spec.search.validate = false;
    }
    if arg_flag(args, "--optimized") {
        spec.axes.optimized = true;
    }
}

/// `study serve`: a resident server answering JSONL spec requests from
/// the content-addressed result cache (see `xp::serve`). Without
/// `--socket`, requests stream over stdin and events over stdout; the
/// shared campaign flags set the backend worker count, schedule tier,
/// and seed/replicate defaults.
fn run_serve(args: &[String]) {
    cli::reject_unknown_flags(
        args,
        &cli::with_shared(&["--cache-dir", "--socket", "--stats-out"]),
    );
    let shared = strict(xp::cli::CampaignArgs::try_parse(args));
    let cache_dir =
        strict(try_arg_value(args, "--cache-dir")).unwrap_or("serve_cache").to_owned();
    let socket = strict(try_arg_value(args, "--socket")).map(str::to_owned);
    let stats_out = strict(try_arg_value(args, "--stats-out")).map(str::to_owned);
    let hooks = chiplet_arrange::study::hooks();
    let config = xp::serve::ServeConfig::new(shared);
    eprintln!(
        "study serve: cache {cache_dir}, version {}, {} workers",
        config.version, config.args.workers
    );
    let server = xp::Server::new(&cache_dir, config, hooks);
    if let Some(path) = socket {
        eprintln!("study serve: listening on {path}");
        if let Err(e) = xp::serve::serve_unix(&server, std::path::Path::new(&path)) {
            fail(&format!("serve: {e}"));
        }
        return;
    }
    let stats = xp::serve::serve_lines(&server, std::io::stdin().lock(), std::io::stdout())
        .unwrap_or_else(|e| fail(&format!("serve: {e}")));
    if let Some(path) = stats_out {
        std::fs::write(&path, stats.to_value().to_json())
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        eprintln!("study serve: stats written to {path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("serve") {
        run_serve(&args);
        return;
    }
    cli::reject_unknown_flags(
        &args,
        &cli::with_shared(&[
            "--spec",
            "--preset",
            "--list",
            "--kinds",
            "--ns",
            "--n",
            "--rates",
            "--patterns",
            "--workloads",
            "--routers",
            "--router",
            "--restarts",
            "--iterations",
            "--no-validate",
            "--optimized",
        ]),
    );
    if arg_flag(&args, "--list") {
        println!("presets:");
        for name in presets::PRESET_NAMES {
            let spec = presets::preset(name).expect("listed preset");
            println!("  {name:<22} stage {}", spec.stage);
        }
        println!("stages:");
        for stage in StageKind::ALL {
            println!("  {stage}");
        }
        return;
    }

    let mut spec = load_spec(&args);
    apply_overrides(&mut spec, &args);
    let shared = strict(xp::flow::campaign_args_for(&spec, &args));

    eprintln!("study: {} (stage {})", spec.name, spec.stage);
    presets::run_and_report(&spec, shared);
}
