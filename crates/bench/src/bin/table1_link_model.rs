//! EXP-T1 — regenerates Table I's model inputs and the §VI-B per-link
//! bandwidth estimates across chiplet counts for the three evaluated
//! arrangements.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin table1_link_model`
//! Writes `results/table1_link_bandwidth.csv`.

use std::path::Path;

use hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh::eval::{link_budget, EvalParams};
use hexamesh::link;
use hexamesh_bench::csv::{f3, Table};
use hexamesh_bench::RESULTS_DIR;

fn main() {
    // Analytic binary: no flags. Unknown flags abort (strict-CLI rule).
    let args: Vec<String> = std::env::args().collect();
    xp::cli::reject_unknown_flags(&args, &[]);
    // ── Table I: architectural parameters (the model's inputs) ─────────
    println!("Table I — architectural parameters (UCIe-based, §VI-B):");
    println!("  A_all  = {} mm² (combined chiplet area)", link::UCIE_TOTAL_AREA_MM2);
    println!("  p_p    = {} (power bump fraction)", link::UCIE_POWER_FRACTION);
    println!("  P_B    = {} mm (C4 bump pitch)", link::UCIE_BUMP_PITCH_MM);
    println!("  N_ndw  = {} wires (handshake/clock/sideband)", link::UCIE_NON_DATA_WIRES);
    println!("  f      = {} GHz (32 GT/s UCIe)", link::UCIE_FREQUENCY_GHZ);

    let params = EvalParams::paper_defaults();
    let mut table = Table::new(&[
        "kind",
        "n",
        "chiplet_area_mm2",
        "link_sector_area_mm2",
        "wires",
        "data_wires",
        "link_bandwidth_gbps",
        "full_global_bandwidth_tbps",
    ]);
    for n in 2..=100usize {
        for kind in ArrangementKind::EVALUATED {
            let a = Arrangement::build(kind, n).expect("n >= 2 builds");
            let budget = link_budget(&a, &params).expect("paper parameters are valid");
            table.row(&[
                &kind.label(),
                &n,
                &f3(budget.chiplet_area_mm2),
                &f3(budget.link_sector_area_mm2),
                &budget.estimate.wires,
                &budget.estimate.data_wires,
                &f3(budget.estimate.bandwidth_gbps()),
                &f3(budget.full_global_bandwidth_tbps),
            ]);
        }
    }
    let path = Path::new(RESULTS_DIR).join("table1_link_bandwidth.csv");
    table.write_to(&path).expect("write CSV");

    // Headline check from §VI-C: the grid's fewer sectors mean fatter links.
    for n in [16usize, 64, 100] {
        let g = link_budget(&Arrangement::build(ArrangementKind::Grid, n).unwrap(), &params)
            .unwrap();
        let hm =
            link_budget(&Arrangement::build(ArrangementKind::HexaMesh, n).unwrap(), &params)
                .unwrap();
        println!(
            "  N = {n:>3}: per-link bandwidth G {:.0} Gb/s vs HM {:.0} Gb/s (G/HM = {:.2})",
            g.estimate.bandwidth_gbps(),
            hm.estimate.bandwidth_gbps(),
            g.estimate.bandwidth_gbps() / hm.estimate.bandwidth_gbps()
        );
    }
    println!("wrote {} ({} rows)", path.display(), table.len());
}
