//! EXP-TH1 — thermal comparison of chiplet arrangements.
//!
//! §II notes that dense integration brings thermal problems, and the
//! cross-layer work the paper cites (Coskun et al. \[16\]) treats operating
//! temperature as a co-equal objective with ICI performance. This
//! experiment asks: does the HexaMesh arrangement, which packs chiplets
//! into a roughly circular footprint, pay a thermal price against the grid
//! at equal total power?
//!
//! Every arrangement is rasterised area-preservingly (lattice aspect
//! distortion of the brick layouts is accepted and noted), compute chiplets
//! dissipate a fixed areal power density, perimeter I/O chiplets a third of
//! it.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin thermal_comparison [--n N]`
//! Writes `results/thermal_comparison.csv`.

use std::path::Path;

use chiplet_layout::ChipletKind;
use chiplet_thermal::{solve, HotspotReport, PowerMap, ThermalParams};
use hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh::link::UCIE_TOTAL_AREA_MM2;
use hexamesh_bench::csv::{f3, Table};
use hexamesh_bench::{sweep, RESULTS_DIR};

/// Areal power density of compute silicon, W/mm² (200 W per 800 mm²).
const COMPUTE_DENSITY_W_PER_MM2: f64 = 0.25;
/// I/O chiplets dissipate a third of the compute density.
const IO_DENSITY_RATIO: f64 = 1.0 / 3.0;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let single_n = sweep::arg_usize(&args, "--n", 0);
    let ns: Vec<usize> = if single_n > 0 { vec![single_n] } else { vec![16, 37, 64] };

    let mut table = Table::new(&[
        "n",
        "kind",
        "total_power_w",
        "peak_c",
        "avg_c",
        "gradient_c",
        "hotspot_fraction",
    ]);

    println!(
        "Steady-state thermal comparison at {COMPUTE_DENSITY_W_PER_MM2} W/mm² compute density:"
    );
    println!(
        "{:>3} {:<4} {:>9} {:>8} {:>8} {:>9} {:>9}",
        "N", "kind", "P [W]", "peak °C", "avg °C", "grad [K]", "hot frac"
    );

    for &n in &ns {
        for kind in ArrangementKind::EVALUATED {
            let arrangement = Arrangement::build(kind, n).expect("any n builds");
            let placement = arrangement.placement().expect("evaluated kinds have layouts");
            // Area-preserving lattice scale: one layout unit² maps to
            // chiplet_area / units_per_chiplet mm².
            let chiplet_area = UCIE_TOTAL_AREA_MM2 / n as f64;
            let first = placement.chiplets().first().expect("non-empty placement");
            let unit_area = (first.rect.width() * first.rect.height()) as f64;
            let mm_per_unit = (chiplet_area / unit_area).sqrt();

            let map = PowerMap::from_placement(placement, mm_per_unit, 0.5, 4, |c| {
                let area_mm2 =
                    (c.rect.width() * c.rect.height()) as f64 * mm_per_unit * mm_per_unit;
                let density = match c.kind {
                    ChipletKind::Compute => COMPUTE_DENSITY_W_PER_MM2,
                    ChipletKind::Io => COMPUTE_DENSITY_W_PER_MM2 * IO_DENSITY_RATIO,
                };
                area_mm2 * density
            })
            .expect("placement rasterises");
            let total_power = map.total_w();
            let solution = solve(&map, &ThermalParams::default()).expect("converges");
            let report = HotspotReport::from_solution(&solution);

            println!(
                "{:>3} {:<4} {:>9.1} {:>8.1} {:>8.1} {:>9.2} {:>9.3}",
                n,
                kind.label(),
                total_power,
                report.peak_c,
                report.average_c,
                report.gradient_c,
                report.hotspot_fraction
            );
            table.row(&[
                &n,
                &kind.label(),
                &f3(total_power),
                &f3(report.peak_c),
                &f3(report.average_c),
                &f3(report.gradient_c),
                &f3(report.hotspot_fraction),
            ]);
        }
    }

    table
        .write_to(Path::new(RESULTS_DIR).join("thermal_comparison.csv").as_path())
        .expect("results dir writable");
    println!("\nwrote {RESULTS_DIR}/thermal_comparison.csv");
}
