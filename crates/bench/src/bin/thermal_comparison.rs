//! EXP-TH1 — thermal comparison of chiplet arrangements.
//!
//! §II notes that dense integration brings thermal problems, and the
//! cross-layer work the paper cites (Coskun et al. \[16\]) treats
//! operating temperature as a co-equal objective with ICI performance.
//! This campaign asks: does the HexaMesh arrangement, which packs
//! chiplets into a roughly circular footprint, pay a thermal price
//! against the grid at equal total power? (Rasterisation and power
//! densities live in the `thermal` stage of `xp::flow`.)
//!
//! A preset wrapper over the study flow (stage `thermal`):
//! `study --preset thermal_comparison` runs the identical campaign.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin thermal_comparison
//! [--n N] [--workers W] [--out DIR] [--format F]`
//! Writes `results/thermal_comparison.{csv,json}`.

use hexamesh_bench::presets;
use hexamesh_bench::sweep;
use xp::cli::{self, CampaignArgs};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cli::reject_unknown_flags(&args, &cli::with_shared(&["--n"]));
    let single_n = sweep::arg_usize(&args, "--n", 0);
    let shared = CampaignArgs::parse(&args);

    let mut spec = presets::preset("thermal_comparison").expect("registered preset");
    if single_n > 0 {
        spec.axes.ns = Some(vec![single_n]);
    }

    presets::run_and_report(&spec, shared);
}
