//! EXP-W1 — application-level arrangement comparison: ranks all four
//! arrangement families by *makespan* under closed-loop workloads
//! (dependency-driven collectives, stencils, request–reply services,
//! pipelines) instead of open-loop saturation throughput.
//!
//! This is the evaluation dimension the paper's Fig. 7 cannot express:
//! with messages unlocking other messages, congestion feeds back into
//! the offered load, and an arrangement is good exactly when real
//! communication patterns *finish sooner* on it. The analytic zero-load
//! critical path of each DAG rides along, so the `overhead` column
//! (makespan / critical path) separates topology-fundamental latency
//! from congestion the arrangement adds.
//!
//! Declared as an engine grid (kind × n × workload × `--seeds K`) on the
//! worker pool; rows are byte-identical for any `--workers` value, and —
//! because a workload run is a pure function of `(workload, topology,
//! config)` — bit-identical across replicate seeds too.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin workload_comparison
//! [--ns 37,61,91] [--workloads ring_allreduce,stencil,...] [--traces]
//! [--quick] [--workers W] [--seeds K] [--out DIR] [--format F]`
//!
//! Writes `BENCH_workload.{csv,json}` — to the repository root by
//! default (the tracked baseline record; pass `--out` to redirect).
//! `--quick` shrinks the chiplet counts to {7, 13, 19} for CI smoke
//! runs; `--traces` additionally records each workload DAG as a replayable
//! trace under `<out>/traces/`.

use chiplet_workload::{trace, WorkloadDriver, WorkloadKind, WorkloadStats};
use hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh_bench::csv::{f3, Table};
use hexamesh_bench::sweep::{self, mean_of};
use nocsim::SimConfig;
use xp::cli::arg_list;
use xp::grid::Scenario;
use xp::json::Value;
use xp::{Campaign, CampaignArgs};

/// Cycle budget per run — far above any sane makespan; the driver bails
/// out on suspected deadlock long before this.
const MAX_CYCLES: u64 = 50_000_000;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut shared = CampaignArgs::parse(&args);
    sweep::default_out_to_repo_root(&args, &mut shared);
    let default_ns: &[usize] = if shared.quick { &[7, 13, 19] } else { &[37, 61, 91] };
    let ns = arg_list::<usize>(&args, "--ns", default_ns);
    let workloads = arg_list::<WorkloadKind>(&args, "--workloads", &WorkloadKind::ALL);
    let dump_traces = sweep::arg_flag(&args, "--traces");
    let campaign = Campaign::new("BENCH_workload", shared);

    let scenario = Scenario::new(&ArrangementKind::ALL, &ns).with_workloads(&workloads);
    let results = campaign.run_grid(&scenario, |job| {
        let arrangement = Arrangement::build(job.kind, job.n).expect("any n builds");
        let config = SimConfig { seed: job.seed, ..SimConfig::paper_defaults() };
        let kind = job.workload.expect("workload axis set");
        let endpoints = job.n * config.endpoints_per_router;
        let workload = kind.build(endpoints);
        let mut driver =
            WorkloadDriver::new(arrangement.graph(), config, &workload).expect("valid driver");
        let stats = driver.run(MAX_CYCLES);
        assert!(
            stats.completed,
            "{kind} on {} n={} stalled at {}/{} messages",
            job.kind,
            job.n,
            stats.delivered_messages,
            workload.len()
        );
        stats
    });

    if dump_traces {
        let dir = campaign.args().out.join("traces");
        std::fs::create_dir_all(&dir).expect("traces dir writable");
        for &kind in &workloads {
            for &n in &ns {
                let endpoints = n * SimConfig::paper_defaults().endpoints_per_router;
                let path = dir.join(format!("{kind}_e{endpoints}.trace.csv"));
                trace::save(&kind.build(endpoints), &path).expect("trace writable");
                println!("wrote {}", path.display());
            }
        }
    }

    // Aggregate replicates (bit-identical by construction, but --seeds K
    // keeps the CLI uniform), then regroup rows (workload, n)-major for
    // the ranking.
    let k = campaign.args().seeds.max(1) as usize;
    struct Row {
        workload: WorkloadKind,
        n: usize,
        kind: ArrangementKind,
        stats: WorkloadStats,
        makespan: f64,
        critical: f64,
        avg_latency: f64,
    }
    let mut rows: Vec<Row> = results
        .chunks(k)
        .map(|chunk| {
            let job = chunk[0].0;
            Row {
                workload: job.workload.expect("workload axis set"),
                n: job.n,
                kind: job.kind,
                stats: chunk[0].1.clone(),
                makespan: mean_of(chunk, |(_, s)| s.makespan as f64),
                critical: mean_of(chunk, |(_, s)| s.critical_path_cycles as f64),
                avg_latency: mean_of(chunk, |(_, s)| {
                    s.network.avg_packet_latency.unwrap_or(f64::NAN)
                }),
            }
        })
        .collect();
    let workload_rank =
        |w: WorkloadKind| workloads.iter().position(|&x| x == w).unwrap_or(usize::MAX);
    let kind_rank = |kind: ArrangementKind| {
        ArrangementKind::ALL.iter().position(|&x| x == kind).unwrap_or(usize::MAX)
    };
    rows.sort_by_key(|r| (workload_rank(r.workload), r.n, kind_rank(r.kind)));

    let mut table = Table::new(&[
        "workload",
        "n",
        "kind",
        "messages",
        "flits",
        "makespan_cycles",
        "critical_path_cycles",
        "overhead",
        "avg_packet_latency_cycles",
        "max_source_queue_flits",
        "mean_source_queue_flits",
        "rank",
    ]);

    println!("Application-level arrangement comparison (closed-loop workloads):");
    println!(
        "{:<14} {:>4} {:<4} {:>9} {:>10} {:>10} {:>9} {:>8} {:>9} {:>5}",
        "workload",
        "n",
        "kind",
        "messages",
        "makespan",
        "critical",
        "overhead",
        "avg lat",
        "max queue",
        "rank"
    );
    for group in rows.chunks(ArrangementKind::ALL.len()) {
        // Rank the four kinds of one (workload, n) point by makespan
        // (shared competition ranking: identical makespans — routine for
        // brickwall vs. honeycomb — share the better rank).
        let makespans: Vec<f64> = group.iter().map(|r| r.makespan).collect();
        let rank = sweep::competition_rank(&makespans);
        for (i, row) in group.iter().enumerate() {
            let overhead = row.makespan / row.critical.max(1.0);
            println!(
                "{:<14} {:>4} {:<4} {:>9} {:>10.0} {:>10.0} {:>9.2} {:>8.1} {:>9} {:>5}",
                row.workload.label(),
                row.n,
                row.kind.label(),
                row.stats.delivered_messages,
                row.makespan,
                row.critical,
                overhead,
                row.avg_latency,
                row.stats.network.max_source_queue_flits,
                rank[i],
            );
            table.row(&[
                &row.workload.label(),
                &row.n,
                &row.kind.label(),
                &row.stats.delivered_messages,
                &row.stats.delivered_flits,
                &f3(row.makespan),
                &f3(row.critical),
                &f3(overhead),
                &f3(row.avg_latency),
                &row.stats.network.max_source_queue_flits,
                &f3(row.stats.network.avg_source_queue_flits),
                &rank[i],
            ]);
        }
        let best_idx = rank.iter().position(|&r| r == 1).expect("non-empty group");
        let best = &group[best_idx];
        println!(
            "  → {} n={}: fastest is {} ({:.0} cycles)",
            best.workload.label(),
            best.n,
            best.kind,
            best.makespan
        );
    }

    let mut config = Value::object();
    config.set("ns", Value::Arr(ns.iter().map(|&n| Value::from(n as f64)).collect()));
    config.set(
        "workloads",
        Value::Arr(workloads.iter().map(|w| Value::from(w.label())).collect()),
    );
    config.set("max_cycles", MAX_CYCLES);
    let written = campaign.finish(&table, config).expect("results dir writable");
    for path in written {
        println!("wrote {}", path.display());
    }
}
