//! EXP-W1 — application-level arrangement comparison: ranks all four
//! arrangement families by *makespan* under closed-loop workloads
//! (dependency-driven collectives, stencils, request–reply services,
//! pipelines) instead of open-loop saturation throughput.
//!
//! This is the evaluation dimension the paper's Fig. 7 cannot express:
//! with messages unlocking other messages, congestion feeds back into
//! the offered load, and an arrangement is good exactly when real
//! communication patterns *finish sooner* on it.
//!
//! A preset wrapper over the study flow (stage `workload`):
//! `study --preset workload_comparison` runs the identical campaign, and
//! a spec can additionally rank a search-discovered arrangement
//! (`axes.optimized = true`) against the fixed families.
//!
//! Usage: `cargo run --release -p hexamesh-bench --bin workload_comparison
//! [--ns 37,61,91] [--workloads ring_allreduce,stencil,...] [--traces]
//! [--quick] [--workers W] [--seeds K] [--out DIR] [--format F]`
//!
//! Writes `BENCH_workload.{csv,json}` — to the repository root by
//! default (the tracked baseline record; pass `--out` to redirect).
//! `--quick` shrinks the chiplet counts to {7, 13, 19} for CI smoke
//! runs; `--traces` additionally records each workload DAG as a
//! replayable trace under `<out>/traces/`.

use chiplet_workload::WorkloadKind;
use hexamesh_bench::presets;
use hexamesh_bench::sweep;
use xp::cli::{self, try_arg_list, CampaignArgs};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    cli::reject_unknown_flags(&args, &cli::with_shared(&["--ns", "--workloads", "--traces"]));
    let strict = |e: String| -> ! {
        eprintln!("error: {e}");
        std::process::exit(2);
    };
    let ns = try_arg_list::<usize>(&args, "--ns").unwrap_or_else(|e| strict(e));
    let workloads =
        try_arg_list::<WorkloadKind>(&args, "--workloads").unwrap_or_else(|e| strict(e));
    let shared = CampaignArgs::parse(&args);

    let mut spec = presets::preset("workload_comparison").expect("registered preset");
    spec.axes.ns = ns;
    spec.axes.workloads = workloads;
    spec.workload.traces = sweep::arg_flag(&args, "--traces");
    let mut resolved = shared;
    xp::flow::apply_spec_defaults(&spec, &mut resolved, &args);

    println!("Application-level arrangement comparison (closed-loop workloads):");
    presets::run_and_report(&spec, resolved);
}
