//! CSV output for the figure binaries — the engine's table sink,
//! re-exported under the historical `hexamesh_bench::csv` path.
//!
//! # Example
//!
//! ```
//! use hexamesh_bench::csv::Table;
//!
//! let mut t = Table::new(&["n", "diameter"]);
//! t.row(&[&4, &2]);
//! assert_eq!(t.to_csv(), "n,diameter\n4,2\n");
//! ```

pub use xp::table::{f3, Table};
