//! Shared harness for regenerating every table and figure of the HexaMesh
//! paper.
//!
//! Each `src/bin/*` binary regenerates one artefact (see DESIGN.md's
//! experiment index) and writes CSV series into `results/`:
//!
//! | binary | paper artefact |
//! |--------|----------------|
//! | `study`             | **any** — runs a declarative [`xp::spec::StudySpec`] file or [`presets`] preset |
//! | `fig4_arrangements` | Fig. 4 neighbour/diameter/bisection panel |
//! | `fig5_shape`        | Fig. 5 / §IV-B shape worked example |
//! | `fig6_proxies`      | Fig. 6a diameter, Fig. 6b bisection |
//! | `table1_link_model` | Table I + §VI-B link bandwidth estimates |
//! | `fig7_simulation`   | Fig. 7a–d latency/throughput (cycle-accurate) |
//! | `ablation_router`   | EXP-A2 routing/VC sensitivity of the simulator |
//! | `ablation_traffic`  | EXP-A3 traffic-pattern sensitivity of the ranking |
//! | `ablation_interposer` | EXP-A5 C4 vs. micro-bump carrier ablation |
//! | `load_curves`       | EXP-LC latency-vs-load curves behind Fig. 7 |
//! | `phy_sweep`         | EXP-P1 link reach/derating (§II/§V envelopes) |
//! | `kite_comparison`   | EXP-K1 HexaMesh vs. Kite-style topologies (§VII) |
//! | `thermal_comparison`| EXP-TH1 arrangement thermal comparison (§II/\[16\]) |
//! | `cost_model`        | EXP-C1 monolithic vs. 2.5D cost (§I/\[17\]) |
//! | `resilience`        | EXP-R1 bridges/connectivity fault tolerance (§IV-C) |
//! | `workload_comparison` | EXP-W1 closed-loop application ranking (makespan) |
//! | `arrangement_search`  | EXP-AS1 optimized vs. fixed arrangements |
//! | `simperf`             | simulator performance tracking (`BENCH_nocsim`) |
//! | `calibrate`           | BookSim2 cross-check of the simulator |
//!
//! The `benches/` directory holds Criterion benchmarks exercising reduced
//! versions of the same code paths for performance regression tracking.
//!
//! Every sweep runs on the experiment engine (the `xp` crate): a shared
//! worker pool with large-job-first scheduling, coordinate-derived seeds
//! (rows are identical for any `--workers` value), `--seeds K` replicate
//! aggregation, and unified CSV + JSON sinks. The campaign binaries accept
//! the shared flags `--workers`, `--seeds`, `--quick`/`--full`, `--out`,
//! `--format csv|json|both`, and `--seed`; unknown flags abort. The
//! preset-backed binaries (`fig7_simulation`, `load_curves`,
//! `ablation_traffic`, `workload_comparison`, `kite_comparison`,
//! `arrangement_search`) are thin wrappers over the declarative study
//! flow (`xp::spec` + `xp::flow`, presets in [`presets`]); see
//! DESIGN.md's "Study specs".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod presets;
pub mod sweep;

/// Directory (relative to the workspace root / current dir) where binaries
/// write their CSV output.
pub const RESULTS_DIR: &str = "results";
