//! The preset study registry: every experiment this repository ships,
//! as a named [`StudySpec`].
//!
//! `study --preset <name>` resolves here, and the rewritten experiment
//! binaries (`fig7_simulation`, `load_curves`, `ablation_traffic`,
//! `workload_comparison`, `kite_comparison`, `arrangement_search`) are
//! ~15-line wrappers that fetch their preset, apply their historical
//! flags as spec overrides, and delegate to [`xp::flow::run_study`] —
//! so the preset *is* the binary's behaviour, and
//! `study --preset <name>` reproduces it byte for byte.

use chiplet_workload::WorkloadKind;
use hexamesh::arrangement::ArrangementKind;
use nocsim::RouterModelKind;
use xp::spec::{StageKind, StudySpec};

/// Every preset name, in documentation order.
pub const PRESET_NAMES: [&str; 13] = [
    "fig7_simulation",
    "load_curves",
    "ablation_traffic",
    "ablation_router",
    "workload_comparison",
    "kite_comparison",
    "arrangement_search",
    "proxies",
    "thermal_comparison",
    "cost_model",
    "resilience",
    "netview",
    "router_fidelity",
];

/// Builds the named preset, or `None` for an unknown name. Axes left
/// unset resolve to the stage defaults at run time (which is where
/// `--quick`-dependent defaults like `workload_comparison`'s chiplet
/// counts live).
#[must_use]
pub fn preset(name: &str) -> Option<StudySpec> {
    let spec = match name {
        "fig7_simulation" => {
            let mut spec = StudySpec::new("fig7_results", StageKind::Saturation);
            spec.saturation.normalized_stem = Some("fig7_normalized".to_owned());
            spec
        }
        "load_curves" => StudySpec::new("load_curves", StageKind::LoadCurve),
        "ablation_traffic" => StudySpec::new("ablation_traffic", StageKind::Traffic),
        "ablation_router" => {
            let mut spec = StudySpec::new("ablation_router", StageKind::Router);
            // The legacy trio at the paper's headline count, across the
            // full router-model matrix (open-loop: no makespan columns).
            spec.axes.kinds = Some(ArrangementKind::EVALUATED.to_vec());
            spec.axes.ns = Some(vec![37]);
            spec
        }
        "workload_comparison" => {
            let mut spec = StudySpec::new("BENCH_workload", StageKind::Workload);
            spec.output.to_repo_root = true;
            spec
        }
        "kite_comparison" => StudySpec::new("kite_comparison", StageKind::Kite),
        "arrangement_search" => {
            let mut spec = StudySpec::new("BENCH_arrange", StageKind::Search);
            spec.output.to_repo_root = true;
            spec
        }
        "proxies" => StudySpec::new("proxies", StageKind::Proxies),
        "thermal_comparison" => StudySpec::new("thermal_comparison", StageKind::Thermal),
        "cost_model" => StudySpec::new("cost_model", StageKind::Cost),
        "resilience" => {
            let mut spec = StudySpec::new("resilience", StageKind::Resilience);
            // Structural analyses have no randomness and the degradation
            // table aggregates replicates internally; one seed is the
            // historical contract (the binary refuses `--seeds` outright).
            spec.replicates = Some(1);
            // The degradation table (`BENCH_resilience`) is a tracked
            // repo-root baseline like `BENCH_workload` / `BENCH_arrange`.
            spec.output.to_repo_root = true;
            spec
        }
        "netview" => {
            let mut spec = StudySpec::new("netview", StageKind::LoadCurve);
            // One load point per family, near the grid's knee, with every
            // observability sink on: windowed timeline, congestion
            // heatmaps, and the engine trace.
            spec.axes.kinds = Some(vec![ArrangementKind::HexaMesh, ArrangementKind::Grid]);
            spec.axes.ns = Some(vec![19]);
            spec.axes.rates = Some(vec![0.30]);
            spec.observe.sample_every = Some(250);
            spec.observe.heatmap = true;
            spec.observe.timeline = true;
            spec.observe.trace = true;
            spec
        }
        "router_fidelity" => {
            let mut spec = StudySpec::new("BENCH_router", StageKind::Router);
            // The fidelity re-ranking record: does the arrangement
            // comparison survive raising router-microarchitecture
            // fidelity? Six models spanning every policy axis (including
            // the adaptive occupancy-aware allocator and bubble escape
            // flow control), ranked by saturation throughput and by
            // stencil / ring-all-reduce makespan. Kinds and chiplet
            // counts resolve to the stage defaults (all four families;
            // n ∈ {37, 91, 169}, CI-sized under `--quick`).
            spec.axes.routers = Some(vec![
                RouterModelKind::Baseline,
                RouterModelKind::LeastLoaded,
                RouterModelKind::OldestFirst,
                RouterModelKind::Bubble,
                RouterModelKind::DeepCrossbar,
                RouterModelKind::Fortified,
            ]);
            spec.axes.workloads =
                Some(vec![WorkloadKind::Stencil, WorkloadKind::RingAllReduce]);
            // A tracked repo-root baseline like `BENCH_workload`.
            spec.output.to_repo_root = true;
            spec
        }
        _ => return None,
    };
    Some(spec)
}

/// The shared tail of every preset wrapper binary (and `study`): run the
/// spec through the study flow with the arrangement-search hooks, print
/// the stage summary and the paths written, abort with exit 1 on
/// failure. Keeping this in one place means the reporting convention
/// cannot drift between the nine binaries that share it.
pub fn run_and_report(spec: &StudySpec, args: xp::cli::CampaignArgs) {
    match xp::flow::run_study(spec, args, &chiplet_arrange::study::hooks()) {
        Ok(report) => {
            for line in &report.summary {
                println!("{line}");
            }
            for path in report.written {
                println!("wrote {}", path.display());
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_preset_builds_and_round_trips() {
        for name in PRESET_NAMES {
            let spec = preset(name).unwrap_or_else(|| panic!("preset {name} missing"));
            let round = StudySpec::from_value(&spec.to_value())
                .unwrap_or_else(|e| panic!("preset {name} does not round-trip: {e}"));
            assert_eq!(round, spec, "preset {name}");
        }
        assert!(preset("fig9").is_none());
    }
}
