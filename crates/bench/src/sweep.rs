//! Sweep runners shared by the figure binaries and Criterion benches.

use std::sync::Mutex;

use chiplet_partition::BisectionConfig;
use hexamesh::arrangement::{Arrangement, ArrangementKind};
use hexamesh::eval::{self, EvalParams, EvalResult};
use hexamesh::proxies;

/// One row of the Fig. 6 proxy sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProxyPoint {
    /// Arrangement family.
    pub kind: ArrangementKind,
    /// Regularity used at this `n`.
    pub regularity: hexamesh::Regularity,
    /// Chiplet count.
    pub n: usize,
    /// Diameter measured on the constructed graph.
    pub diameter: u32,
    /// Bisection bandwidth following the paper's methodology (formula for
    /// regular, partitioner otherwise).
    pub bisection: f64,
}

/// Computes the Fig. 6 proxies for all chiplet counts in `ns`, for the three
/// evaluated arrangement kinds.
#[must_use]
pub fn proxy_sweep(ns: &[usize]) -> Vec<ProxyPoint> {
    let config = BisectionConfig::default();
    let mut out = Vec::new();
    for &n in ns {
        for kind in ArrangementKind::EVALUATED {
            let a = Arrangement::build(kind, n).expect("n >= 1 always builds");
            out.push(ProxyPoint {
                kind,
                regularity: a.regularity(),
                n,
                diameter: proxies::measured_diameter(&a).expect("connected"),
                bisection: proxies::paper_bisection(&a, &config),
            });
        }
    }
    out
}

/// Runs the full Fig. 7 evaluation for all counts in `ns` across the three
/// evaluated kinds, spreading work over `workers` threads. Results are
/// returned sorted by `(kind, n)`.
///
/// # Panics
///
/// Panics if any single evaluation fails — every `n ≥ 1` arrangement is
/// connected and the paper configuration is valid, so a failure is a bug.
#[must_use]
pub fn evaluation_sweep(ns: &[usize], params: &EvalParams, workers: usize) -> Vec<EvalResult> {
    let mut jobs: Vec<(ArrangementKind, usize)> = Vec::new();
    for &n in ns {
        for kind in ArrangementKind::EVALUATED {
            jobs.push((kind, n));
        }
    }
    // Interleave large and small jobs for better load balance.
    jobs.sort_by_key(|&(_, n)| std::cmp::Reverse(n));

    let queue = Mutex::new(jobs);
    let results = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            scope.spawn(|| loop {
                let job = queue.lock().expect("queue lock").pop();
                let Some((kind, n)) = job else { break };
                let arrangement = Arrangement::build(kind, n).expect("n >= 1 builds");
                let result = eval::evaluate(&arrangement, params)
                    .unwrap_or_else(|e| panic!("evaluate {kind} n={n}: {e}"));
                results.lock().expect("results lock").push(result);
            });
        }
    });
    let mut results = results.into_inner().expect("results mutex");
    results.sort_by_key(|r| (r.kind.label(), r.n));
    results
}

/// Arithmetic mean, `None` for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> Option<f64> {
    (!values.is_empty()).then(|| values.iter().sum::<f64>() / values.len() as f64)
}

/// Parses `--flag value` style integer arguments from a raw arg list.
#[must_use]
pub fn arg_usize(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `true` if `--flag` is present.
#[must_use]
pub fn arg_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proxy_sweep_covers_all_kinds() {
        let points = proxy_sweep(&[7, 16]);
        assert_eq!(points.len(), 6);
        // HexaMesh at n=7 is regular with diameter 2 and bisection 5.
        let hm7 = points
            .iter()
            .find(|p| p.kind == ArrangementKind::HexaMesh && p.n == 7)
            .unwrap();
        assert_eq!(hm7.diameter, 2);
        assert_eq!(hm7.bisection, 5.0);
    }

    #[test]
    fn mean_of_values() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> =
            ["--step", "5", "--quick"].iter().map(|s| (*s).to_string()).collect();
        assert_eq!(arg_usize(&args, "--step", 1), 5);
        assert_eq!(arg_usize(&args, "--max-n", 100), 100);
        assert!(arg_flag(&args, "--quick"));
        assert!(!arg_flag(&args, "--full"));
    }

    #[test]
    fn evaluation_sweep_tiny() {
        let mut params = EvalParams::quick();
        params.sim.vcs = 4;
        params.sim.buffer_depth = 4;
        params.measure.warmup_cycles = 500;
        params.measure.measure_cycles = 1_000;
        params.measure.rate_resolution = 0.1;
        let results = evaluation_sweep(&[4], &params, 2);
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|r| r.saturation_fraction > 0.0));
    }
}
