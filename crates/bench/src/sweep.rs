//! Sweep runners shared by the figure binaries and Criterion benches —
//! re-exported from the experiment engine.
//!
//! The runners themselves (`evaluation_campaign`, `proxy_sweep`,
//! `schedule_for`, `competition_rank`, …) moved into
//! [`xp::flow::sweep`] when the declarative study flow landed: the
//! study stages run the same sweeps from specs, so the code lives below
//! the binaries now. This module keeps the historical
//! `hexamesh_bench::sweep` names working, plus the one helper that is
//! genuinely about binaries: [`default_out_to_repo_root`].

use xp::cli::CampaignArgs;

pub use xp::cli::{arg_f64, arg_flag, arg_u64, arg_usize};
pub use xp::flow::sweep::{
    competition_rank, evaluate_pooled, evaluated_rank, evaluation_campaign,
    evaluation_campaign_over, evaluation_sweep, proxy_sweep, proxy_sweep_over,
    saturation_search_pooled, schedule_for, ProxyPoint,
};
pub use xp::stats::{mean, mean_of, Summary};

/// Applies the baseline-binary convention: when `--out` is absent, write
/// to the repository root — where the tracked `BENCH_*` records live —
/// instead of the `results/` default. Shared by `simperf`,
/// `workload_comparison`, and `arrangement_search` (spec-driven studies
/// express the same through `output.to_repo_root`).
pub fn default_out_to_repo_root(args: &[String], shared: &mut CampaignArgs) {
    if !arg_flag(args, "--out") {
        shared.out = std::path::PathBuf::from(".");
    }
}
