//! Golden byte-identity: the spec-driven study flow reproduces the
//! pre-redesign binaries' output exactly.
//!
//! The fixtures under `tests/golden/` were produced by the *hand-wired*
//! binaries (commit `c286593`, before the StudySpec rewrite) at fixed
//! `--seed 42 --workers 2 --quick` and small axes. Each test builds the
//! same campaign through the preset + flow path and compares:
//!
//! * **CSV**: byte-for-byte;
//! * **JSON**: the `campaign`, `args`, `columns`, and `rows` manifest
//!   fields, parsed (`git` / `created_unix_s` / `wall_s` are volatile by
//!   construction, and `config` intentionally changed from ad-hoc
//!   per-binary keys to the resolved spec echo — see DESIGN.md);
//! * **worker invariance**: reruns at other `--workers` values stay
//!   byte-identical.

use std::path::{Path, PathBuf};

use xp::cli::{CampaignArgs, OutputFormat};
use xp::flow::{run_study, StudyReport};
use xp::json::{self, Value};
use xp::spec::StudySpec;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn args(out: &Path, workers: usize) -> CampaignArgs {
    CampaignArgs {
        workers,
        seeds: 1,
        quick: true,
        full: false,
        out: out.to_path_buf(),
        format: OutputFormat::Both,
        campaign_seed: 42,
        progress: false,
    }
}

fn run(spec: &StudySpec, out: &Path, workers: usize) -> StudyReport {
    run_study(spec, args(out, workers), &chiplet_arrange::study::hooks())
        .unwrap_or_else(|e| panic!("study {} failed: {e}", spec.name))
}

/// Asserts the CSV at `<out>/<stem>.csv` equals the fixture byte for
/// byte, and the JSON manifest's stable fields match.
fn assert_matches_fixture(out: &Path, fixture_subdir: &str, stem: &str) {
    let fixture_csv = golden_dir().join(fixture_subdir).join(format!("{stem}.csv"));
    let produced_csv = out.join(format!("{stem}.csv"));
    let expected = std::fs::read_to_string(&fixture_csv)
        .unwrap_or_else(|e| panic!("fixture {}: {e}", fixture_csv.display()));
    let actual = std::fs::read_to_string(&produced_csv)
        .unwrap_or_else(|e| panic!("output {}: {e}", produced_csv.display()));
    assert_eq!(actual, expected, "{stem}.csv is not byte-identical to the pre-redesign output");

    let fixture_json =
        std::fs::read_to_string(golden_dir().join(fixture_subdir).join(format!("{stem}.json")))
            .expect("fixture json");
    let produced_json =
        std::fs::read_to_string(out.join(format!("{stem}.json"))).expect("output json");
    let fixture = json::parse(&fixture_json).expect("fixture parses");
    let produced = json::parse(&produced_json).expect("output parses");
    for key in ["campaign", "columns", "rows"] {
        assert_eq!(
            produced.get(key),
            fixture.get(key),
            "{stem}.json manifest field {key:?} drifted from the pre-redesign output"
        );
    }
    // `args` must match except `workers`, which the invariance tests
    // deliberately vary (rows may not depend on it, the manifest does).
    let sans_workers = |v: Option<&Value>| -> Vec<(String, Value)> {
        match v {
            Some(Value::Obj(entries)) => {
                entries.iter().filter(|(k, _)| k != "workers").cloned().collect()
            }
            other => panic!("args must be an object, got {other:?}"),
        }
    };
    assert_eq!(
        sans_workers(produced.get("args")),
        sans_workers(fixture.get("args")),
        "{stem}.json campaign args drifted from the pre-redesign output"
    );
}

fn temp_out(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("golden_study").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The preset + override combination each fixture was generated with
/// (see the flag lines in `tests/golden/`'s generation commands).
fn fixture_spec(name: &str) -> StudySpec {
    let mut spec = hexamesh_bench::presets::preset(name).expect("registered preset");
    match name {
        "fig7_simulation" => spec.axes.ns = Some(vec![2, 9]), // --step 7 --max-n 9
        "load_curves" => spec.axes.ns = Some(vec![16]),       // --n 16
        "ablation_traffic" => spec.axes.ns = Some(vec![9]),   // --n 9
        // Not a pre-redesign pin (the legacy binary swept routing x VC
        // count): this fixture freezes the router-model table the day the
        // axis landed, so later sessions cannot drift it silently.
        "ablation_router" => {
            spec.axes.ns = Some(vec![9]); // --n 9
            spec.axes.routers = Some(vec![
                nocsim::RouterModelKind::Baseline,
                nocsim::RouterModelKind::OldestFirst,
                nocsim::RouterModelKind::Fortified,
            ]);
        }
        "workload_comparison" => {
            spec.axes.ns = Some(vec![7, 13]);
            spec.axes.workloads = Some(vec![
                chiplet_workload::WorkloadKind::Stencil,
                chiplet_workload::WorkloadKind::ClientServer,
            ]);
        }
        // The kite fixture runs the reduced {16} sweep (full-NS
        // byte-identity was proven against the pre-redesign binary before
        // the fixture was shrunk for debug-profile test time).
        "kite_comparison" => spec.axes.ns = Some(vec![16]),
        "arrangement_search" => {
            spec.axes.ns = Some(vec![19]);
            spec.search.restarts = Some(3);
            spec.search.iterations = Some(120);
        }
        "thermal_comparison" => spec.axes.ns = Some(vec![16]), // --n 16
        "cost_model" => {}
        // The structural table (the byte-compared fixture) keeps its full
        // legacy axes; only the degradation sweep is shrunk for
        // debug-profile test time.
        "resilience" => {
            spec.faults.ns = Some(vec![7]);
            spec.faults.link_failures = Some(vec![0, 1]);
        }
        other => panic!("no fixture for {other}"),
    }
    if name == "ablation_traffic" {
        spec.axes.patterns =
            Some(vec![nocsim::TrafficPattern::UniformRandom, nocsim::TrafficPattern::Tornado]);
    }
    spec
}

#[test]
fn fig7_preset_reproduces_the_legacy_binary() {
    let out = temp_out("fig7");
    let spec = fixture_spec("fig7_simulation");
    run(&spec, &out, 2);
    assert_matches_fixture(&out, "fig7", "fig7_results");
    assert_matches_fixture(&out, "fig7", "fig7_normalized");
}

#[test]
fn load_curves_preset_reproduces_the_legacy_binary_at_any_worker_count() {
    let spec = fixture_spec("load_curves");
    // Fixture ran at --workers 2; byte-identity must hold at 1 and 8 too.
    for workers in [1usize, 8] {
        let out = temp_out(&format!("load_curves_w{workers}"));
        run(&spec, &out, workers);
        assert_matches_fixture(&out, "load_curves", "load_curves");
    }
}

#[test]
fn ablation_traffic_preset_reproduces_the_legacy_binary() {
    let out = temp_out("ablation_traffic");
    run(&fixture_spec("ablation_traffic"), &out, 2);
    assert_matches_fixture(&out, "ablation_traffic", "ablation_traffic");
}

#[test]
fn ablation_router_preset_matches_its_pinned_fixture_at_any_worker_count() {
    let spec = fixture_spec("ablation_router");
    for workers in [1usize, 4] {
        let out = temp_out(&format!("ablation_router_w{workers}"));
        run(&spec, &out, workers);
        assert_matches_fixture(&out, "ablation_router", "ablation_router");
    }
}

#[test]
fn workload_preset_reproduces_the_legacy_binary_at_any_worker_count() {
    let spec = fixture_spec("workload_comparison");
    for workers in [1usize, 4] {
        let out = temp_out(&format!("workload_w{workers}"));
        run(&spec, &out, workers);
        assert_matches_fixture(&out, "workload", "BENCH_workload");
    }
}

#[test]
fn kite_preset_reproduces_the_legacy_binary() {
    let out = temp_out("kite");
    run(&fixture_spec("kite_comparison"), &out, 2);
    assert_matches_fixture(&out, "kite", "kite_comparison");
}

#[test]
fn arrangement_search_preset_reproduces_the_legacy_binary() {
    let out = temp_out("arrange");
    run(&fixture_spec("arrangement_search"), &out, 2);
    assert_matches_fixture(&out, "arrange", "BENCH_arrange");
}

#[test]
fn thermal_and_cost_presets_reproduce_the_legacy_binaries() {
    // These two fixtures are the raw CSVs of the pre-rewrite binaries
    // (they wrote no JSON), so only the CSV side is compared.
    for (name, stem) in
        [("thermal_comparison", "thermal_comparison"), ("cost_model", "cost_model")]
    {
        let out = temp_out(name);
        run(&fixture_spec(name), &out, 2);
        let expected =
            std::fs::read_to_string(golden_dir().join(format!("{stem}.csv"))).expect("fixture");
        let actual =
            std::fs::read_to_string(out.join(format!("{stem}.csv"))).expect("output csv");
        assert_eq!(actual, expected, "{stem}.csv drifted from the pre-redesign output");
    }
}

#[test]
fn resilience_preset_reproduces_the_legacy_binary() {
    let out = temp_out("resilience");
    run(&fixture_spec("resilience"), &out, 2);
    assert_matches_fixture(&out, "resilience", "resilience");
    // The degradation companion exists and covers every point of the
    // shrunk sweep: 1 chiplet count x 4 kinds x 2 failure levels.
    let degradation =
        std::fs::read_to_string(out.join("BENCH_resilience.csv")).expect("degradation csv");
    assert_eq!(degradation.lines().count(), 1 + 8, "header + 8 degradation rows");
}

#[test]
fn checked_in_specs_parse_and_match_their_presets() {
    // Every CI diff pair stays honest only if the spec file encodes the
    // same study the test above runs; parse each and compare the fields
    // the fixtures pin.
    let specs_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/specs");
    for (file, preset) in [
        ("fig7_quick.toml", "fig7_simulation"),
        ("load_curves_quick.toml", "load_curves"),
        ("ablation_traffic_quick.toml", "ablation_traffic"),
        ("ablation_router_quick.toml", "ablation_router"),
        ("workload_quick.toml", "workload_comparison"),
        ("arrangement_search_quick.toml", "arrangement_search"),
        ("kite_quick.toml", "kite_comparison"),
        ("thermal_quick.toml", "thermal_comparison"),
        ("cost_model.toml", "cost_model"),
        ("resilience_quick.toml", "resilience"),
    ] {
        let source = std::fs::read_to_string(specs_dir.join(file)).expect("spec file");
        let from_file = StudySpec::from_toml(&source).unwrap_or_else(|e| panic!("{file}: {e}"));
        let expected = fixture_spec(preset);
        assert_eq!(from_file, expected, "{file} drifted from the {preset} fixture study");
    }
}

#[test]
fn large_n_saturation_spec_parses_with_shards() {
    // The paper-scale spec is too big to *run* in a test; pin that it
    // parses, targets n >= 1000, and engages the sharded engine.
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/specs/large_n_saturation.toml");
    let spec = StudySpec::from_toml(&std::fs::read_to_string(path).expect("spec file"))
        .expect("spec parses");
    assert_eq!(spec.stage, xp::spec::StageKind::Saturation);
    assert_eq!(spec.sim.shards, Some(8));
    assert_eq!(spec.axes.ns, Some(vec![1_027]));
}

#[test]
fn sharded_study_rows_are_byte_identical_to_serial() {
    // `sim.shards` must never change a row — only the wall clock. Run a
    // small saturation study serial and sharded and diff the CSV bytes.
    let base = "name = \"shard_diff\"\nstage = \"saturation\"\n[axes]\nns = [9]\n";
    let serial_spec = StudySpec::from_toml(base).expect("serial spec");
    let sharded_spec =
        StudySpec::from_toml(&format!("{base}[sim]\nshards = 4\n")).expect("sharded spec");
    let out_serial = temp_out("shard_diff_serial");
    let out_sharded = temp_out("shard_diff_sharded");
    run(&serial_spec, &out_serial, 2);
    run(&sharded_spec, &out_sharded, 2);
    let a = std::fs::read_to_string(out_serial.join("shard_diff.csv")).unwrap();
    let b = std::fs::read_to_string(out_sharded.join("shard_diff.csv")).unwrap();
    assert_eq!(a, b, "sharded rows drifted from serial");
}

#[test]
fn optimized_hotspot_load_curve_spec_runs_end_to_end() {
    // The acceptance spec: an axis combination no hand-wired binary
    // covers (search-optimized arrangement × hotspot traffic × load
    // curve), runnable purely as data.
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/specs/opt_hotspot_load_curve.toml");
    let spec = StudySpec::from_toml(&std::fs::read_to_string(path).expect("spec file"))
        .expect("spec parses");
    assert!(spec.axes.optimized);
    let out_a = temp_out("opt_hotspot_w1");
    let out_b = temp_out("opt_hotspot_w4");
    run(&spec, &out_a, 1);
    run(&spec, &out_b, 4);
    let a = std::fs::read_to_string(out_a.join("opt_hotspot_curves.csv")).unwrap();
    let b = std::fs::read_to_string(out_b.join("opt_hotspot_curves.csv")).unwrap();
    assert_eq!(a, b, "OPT rows must stay byte-identical across worker counts");
    // Both the fixed family and the searched arrangement appear.
    assert!(a.lines().any(|l| l.contains(",HM,")), "HexaMesh rows present");
    assert!(a.lines().any(|l| l.contains(",OPT,")), "searched-arrangement rows present");
}
