//! The observability zero-perturbation contract at the preset level: the
//! `netview` preset's result table is byte-identical with the whole
//! `[observe]` section stripped, while the observed run also emits the
//! timeline, heatmap, and trace artefacts.
//!
//! (The simulator-level version of this contract — `NetworkStats`
//! bit-identical with a probe attached, under both the serial and the
//! sharded engine — is pinned by `crates/nocsim/tests/obs_probe.rs`.)

use std::path::Path;

use xp::cli::{CampaignArgs, OutputFormat};
use xp::flow::{run_study, StageHooks};
use xp::spec::ObserveSpec;

fn args(out: &Path) -> CampaignArgs {
    CampaignArgs {
        workers: 2,
        seeds: 1,
        quick: true,
        full: false,
        out: out.to_path_buf(),
        format: OutputFormat::Both,
        campaign_seed: 42,
        progress: false,
    }
}

#[test]
fn netview_rows_are_byte_identical_with_observability_stripped() {
    let dir = std::env::temp_dir().join("bench_observe_equivalence");
    let _ = std::fs::remove_dir_all(&dir);

    let watched_spec = hexamesh_bench::presets::preset("netview").expect("preset");
    let mut plain_spec = watched_spec.clone();
    plain_spec.observe = ObserveSpec::default();

    let watched_dir = dir.join("watched");
    let plain_dir = dir.join("plain");
    let watched = run_study(&watched_spec, args(&watched_dir), &StageHooks::default()).unwrap();
    let plain = run_study(&plain_spec, args(&plain_dir), &StageHooks::default()).unwrap();

    // The main table does not change by a byte when observing.
    let watched_csv =
        std::fs::read_to_string(watched_dir.join("netview.csv")).expect("watched csv");
    let plain_csv = std::fs::read_to_string(plain_dir.join("netview.csv")).expect("plain csv");
    assert_eq!(watched_csv, plain_csv, "observability perturbed the result rows");

    // The observed run emits every artefact; the plain run emits none.
    assert!(watched_dir.join("timeline.csv").exists());
    assert!(watched_dir.join("trace.json").exists());
    let heatmaps: Vec<_> = std::fs::read_dir(&watched_dir)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy().into_owned();
            name.starts_with("heatmap_") && name.ends_with(".svg")
        })
        .collect();
    assert_eq!(heatmaps.len(), 2, "one heatmap per family at replicate 0");
    assert!(!plain_dir.join("timeline.csv").exists());
    assert!(!plain_dir.join("trace.json").exists());

    // The watched manifest still books the per-stage wall-time map.
    let manifest = std::fs::read_to_string(watched_dir.join("netview.json")).expect("manifest");
    assert!(manifest.contains("\"stages\":{\"load_curve\":{\"jobs\":2"), "{manifest}");
    assert!(manifest.contains("\"peak_workers\":"), "{manifest}");

    assert!(watched.written.iter().any(|p| p.ends_with("trace.json")));
    assert_eq!(plain.written.len(), 2, "csv + json only");
    let _ = std::fs::remove_dir_all(&dir);
}
