//! Serving-grade battery for `study serve` (`xp::serve`).
//!
//! Locks down the behaviours a resident result server must not lose:
//!
//! * **in-flight dedup** — N concurrent submissions of one spec cause
//!   exactly one backend run, and every submitter receives byte-identical
//!   artefacts;
//! * **stream isolation** — distinct specs interleaved on one JSONL
//!   stream produce correctly-tagged, whole-line events with no
//!   cross-request bleed;
//! * **cache robustness** — truncated, corrupted, or version-mismatched
//!   entries are detected by checksum, evicted, and recomputed to the
//!   correct bytes; a cold cache is a plain miss;
//! * **warm-start equivalence** — serving a superset grid by splicing a
//!   cached sub-grid plus a delta run is byte-identical to computing the
//!   superset from scratch, at every `--workers` value.
//!
//! All runs pin a tiny explicit `[schedule]` so the battery stays fast;
//! determinism comes from coordinate-derived seeds, not the schedule.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use xp::cache::Lookup;
use xp::cli::{CampaignArgs, OutputFormat};
use xp::json::{self, Value};
use xp::serve::{serve_lines, Outcome, ServeConfig};
use xp::spec::{Schedule, StageKind, StudySpec};
use xp::Server;

const VERSION: &str = "battery-v1";

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "serve_battery_{tag}_{}_{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn args(workers: usize) -> CampaignArgs {
    CampaignArgs {
        workers,
        seeds: 1,
        quick: true,
        full: false,
        out: std::env::temp_dir().join("serve_battery_unused_out"),
        format: OutputFormat::Both,
        campaign_seed: 42,
        progress: false,
    }
}

fn server(dir: &Path, workers: usize) -> Server<'static> {
    let config = ServeConfig { args: args(workers), version: VERSION.to_owned() };
    Server::new(dir, config, chiplet_arrange::study::hooks())
}

/// A small load-curve spec: single kind, pinned schedule, explicit axes.
fn curve_spec(name: &str, ns: &[usize], rates: &[f64]) -> StudySpec {
    let mut spec = StudySpec::new(name, StageKind::LoadCurve);
    spec.axes.kinds = Some(vec!["hexamesh".parse().expect("kind parses")]);
    spec.axes.ns = Some(ns.to_vec());
    spec.axes.rates = Some(rates.to_vec());
    spec.schedule = Some(Schedule::new(200, 400));
    spec
}

/// The served files as a name → content map for byte comparison.
fn file_map(served: &xp::Served) -> Vec<(String, String)> {
    served.files.iter().map(|f| (f.name.clone(), f.content.clone())).collect()
}

// ---------------------------------------------------------------------
// Satellite: concurrency / in-flight dedup
// ---------------------------------------------------------------------

/// N threads submitting one spec cause exactly one backend run; every
/// thread gets byte-identical files. Late submitters that land after
/// completion are disk hits, overlapping ones are dedups — either way
/// the backend ran once.
#[test]
fn concurrent_identical_submissions_run_the_backend_once() {
    const N: usize = 6;
    let dir = temp_dir("dedup");
    let server = server(&dir, 2);
    let spec = curve_spec("dedup", &[5], &[0.08]);

    let barrier = std::sync::Barrier::new(N);
    let results: Vec<xp::Served> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                scope.spawn(|| {
                    barrier.wait();
                    server.submit(&spec).expect("submit succeeds")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("thread joins")).collect()
    });

    let stats = server.stats();
    assert_eq!(stats.backend_runs, 1, "exactly one backend run for N identical requests");
    assert_eq!(stats.requests, N as u64);
    assert_eq!(
        stats.hits + stats.deduped,
        (N - 1) as u64,
        "every non-leader is a dedup or a disk hit"
    );

    let reference = file_map(&results[0]);
    assert!(!reference.is_empty(), "served files are non-empty");
    for served in &results {
        assert_eq!(served.key, results[0].key);
        assert_eq!(file_map(served), reference, "all submitters see identical bytes");
    }
}

// ---------------------------------------------------------------------
// Satellite: stream isolation on one JSONL connection
// ---------------------------------------------------------------------

/// Two distinct specs interleaved on one stream: every emitted line is
/// valid standalone JSON tagged with its request id, each request's
/// files match a clean-room run of that spec alone, and the final stats
/// line accounts for both.
#[test]
fn interleaved_requests_do_not_bleed_across_the_stream() {
    let dir = temp_dir("interleave");
    let srv = server(&dir, 2);
    let spec_a = curve_spec("stream_a", &[5], &[0.08]);
    let spec_b = curve_spec("stream_b", &[7], &[0.16]);

    let mut request = String::new();
    for (id, spec) in [("a", &spec_a), ("b", &spec_b)] {
        let mut envelope = Value::object();
        envelope.set("id", id);
        envelope.set("spec", spec.to_value());
        request.push_str(&envelope.to_json());
        request.push('\n');
    }

    let mut output = Vec::new();
    let stats = serve_lines(&srv, request.as_bytes(), &mut output).expect("stream serves");
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.backend_runs, 2, "distinct specs never dedupe");

    let text = String::from_utf8(output).expect("stream is UTF-8");
    let mut per_id: Vec<(String, Vec<Value>)> =
        vec![("a".into(), vec![]), ("b".into(), vec![])];
    let mut saw_stats = false;
    for line in text.lines() {
        let event = json::parse(line)
            .unwrap_or_else(|e| panic!("every stream line is standalone JSON: {e}\n{line}"));
        let kind = match event.get("event") {
            Some(Value::Str(kind)) => kind.clone(),
            other => panic!("event line without an event field: {other:?}"),
        };
        if kind == "stats" {
            saw_stats = true;
            continue;
        }
        let id = match event.get("id") {
            Some(Value::Str(id)) => id.clone(),
            other => panic!("{kind} event without a request id: {other:?}"),
        };
        per_id
            .iter_mut()
            .find(|(tag, _)| *tag == id)
            .unwrap_or_else(|| panic!("event for unknown request id {id:?}"))
            .1
            .push(event);
    }
    assert!(saw_stats, "stream ends with a stats line");

    // Each request's streamed files match a clean-room run of that spec
    // alone — no cross-request bleed.
    for (id, spec) in [("a", &spec_a), ("b", &spec_b)] {
        let clean = server(&temp_dir("clean"), 2).submit(spec).expect("clean-room run");
        let events = &per_id.iter().find(|(tag, _)| tag == id).expect("request seen").1;
        let mut streamed: Vec<(String, String)> = events
            .iter()
            .filter(|e| e.get("event") == Some(&Value::Str("file".into())))
            .map(|e| {
                let get = |key: &str| match e.get(key) {
                    Some(Value::Str(s)) => s.clone(),
                    other => panic!("file event field {key}: {other:?}"),
                };
                (get("name"), get("content"))
            })
            .collect();
        streamed.sort();
        let mut expected = file_map(&clean);
        expected.sort();
        assert_eq!(streamed, expected, "request {id}: streamed bytes match a solo run");
        let done = events
            .iter()
            .find(|e| e.get("event") == Some(&Value::Str("done".into())))
            .expect("done event per request");
        assert_eq!(done.get("key"), Some(&Value::Str(clean.key.clone())));
    }
}

// ---------------------------------------------------------------------
// Satellite: cache poisoning / robustness
// ---------------------------------------------------------------------

/// Damage of every flavour — truncation, corruption, a missing file —
/// is detected by checksum on load, evicted, recomputed, and served
/// with the correct bytes again.
#[test]
fn damaged_entries_are_evicted_and_recomputed() {
    let dir = temp_dir("poison");
    let spec = curve_spec("poison", &[5], &[0.08]);

    let srv = server(&dir, 2);
    let first = srv.submit(&spec).expect("cold run");
    assert_eq!(first.outcome, Outcome::Miss, "a cold cache is a plain miss");
    let reference = file_map(&first);
    let entry_dir = srv.cache().dir(&first.key);

    let csv_path = entry_dir.join("poison.csv");
    for label in ["truncate", "corrupt", "remove"] {
        match label {
            "truncate" => {
                let bytes = std::fs::read(&csv_path).expect("read csv");
                std::fs::write(&csv_path, &bytes[..bytes.len() / 2]).expect("truncate csv");
            }
            "corrupt" => {
                let mut bytes = std::fs::read(&csv_path).expect("read csv");
                let mid = bytes.len() / 2;
                bytes[mid] = bytes[mid].wrapping_add(1);
                std::fs::write(&csv_path, bytes).expect("corrupt csv");
            }
            _ => std::fs::remove_file(&csv_path).expect("remove csv"),
        }
        // A fresh server (no in-memory state) must detect the damage on
        // disk, evict, recompute, and serve the original bytes.
        let srv = server(&dir, 2);
        let again = srv.submit(&spec).expect("recompute after damage");
        assert_eq!(again.outcome, Outcome::Miss, "{label}: damaged entry is not a hit");
        assert_eq!(file_map(&again), reference, "{label}: recomputed bytes are correct");
        let stats = srv.stats();
        assert_eq!(stats.evictions, 1, "{label}: the damaged entry was evicted");
        assert_eq!(stats.backend_runs, 1, "{label}: the result was recomputed");
        assert!(entry_dir.join("entry.json").exists(), "{label}: entry was re-stored");
    }
}

/// A version bump is a miss, never a stale hit: the old entry is
/// evicted on sight and the new version's bytes are stored beside its
/// own key space.
#[test]
fn version_mismatch_is_a_miss_not_a_stale_hit() {
    let dir = temp_dir("version");
    let spec = curve_spec("version", &[5], &[0.08]);

    let old = server(&dir, 2);
    let first = old.submit(&spec).expect("old-version run");
    assert_eq!(first.outcome, Outcome::Miss);

    let bumped = Server::new(
        &dir,
        ServeConfig { args: args(2), version: "battery-v2".to_owned() },
        chiplet_arrange::study::hooks(),
    );
    let again = bumped.submit(&spec).expect("new-version run");
    assert_eq!(again.outcome, Outcome::Miss, "a new version never serves old bytes");
    assert_ne!(again.key, first.key, "the version is key material");

    // The result rows are version-independent: CSV bytes match exactly,
    // and the JSON manifests agree on everything but the version/key
    // stamps they embed.
    let (old_files, new_files) = (file_map(&first), file_map(&again));
    let csv_of = |files: &[(String, String)]| {
        files.iter().find(|(n, _)| n.ends_with(".csv")).expect("csv served").1.clone()
    };
    assert_eq!(csv_of(&new_files), csv_of(&old_files), "rows are version-independent");
    let manifest_of = |files: &[(String, String)]| {
        let (_, content) =
            files.iter().find(|(n, _)| n.ends_with(".json")).expect("json served");
        json::parse(content).expect("manifest parses")
    };
    let (old_manifest, new_manifest) = (manifest_of(&old_files), manifest_of(&new_files));
    for field in ["campaign", "config", "columns", "rows"] {
        assert_eq!(
            new_manifest.get(field),
            old_manifest.get(field),
            "manifest field {field:?} is version-independent"
        );
    }

    // The old entry still exists under its own key but loads as
    // `Evicted` for the new version — and is then gone.
    match bumped.cache().load(&first.key, "battery-v2").expect("load old key") {
        Lookup::Evicted => {}
        other => panic!("old-version entry must evict under the new version, got {other:?}"),
    }
    match bumped.cache().load(&first.key, "battery-v2").expect("reload old key") {
        Lookup::Miss => {}
        other => panic!("evicted entry must be a miss on reload, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Satellite: warm-start equivalence golden
// ---------------------------------------------------------------------

/// The warm-start splice is byte-identical to a from-scratch run of the
/// superset grid, at every worker count, and the provenance records the
/// reused cells.
#[test]
fn warm_start_is_byte_identical_to_from_scratch_at_every_worker_count() {
    let sub = curve_spec("warm", &[5], &[0.08, 0.16]);
    let sup = curve_spec("warm", &[5], &[0.08, 0.16, 0.24]);

    // Reference: the superset computed from scratch, single-worker.
    let reference = server(&temp_dir("warm_ref"), 1).submit(&sup).expect("reference run");
    assert_eq!(reference.outcome, Outcome::Miss);
    let reference_files = file_map(&reference);

    for workers in [1, 2, 4, 8] {
        let dir = temp_dir("warm");
        let srv = server(&dir, workers);

        let seeded = srv.submit(&sub).expect("sub-grid run");
        assert_eq!(seeded.outcome, Outcome::Miss);

        let warmed = srv.submit(&sup).expect("warm superset run");
        assert_eq!(warmed.outcome, Outcome::Warm, "workers={workers}: superset warm-starts");
        assert_eq!(
            file_map(&warmed),
            reference_files,
            "workers={workers}: warm splice is byte-identical to from-scratch"
        );

        assert_eq!(warmed.provenance.cells_total, 3, "workers={workers}");
        assert_eq!(
            warmed.provenance.cells_cached, 2,
            "workers={workers}: both cached cells were reused"
        );
        assert_eq!(
            warmed.provenance.cells_run, 1,
            "workers={workers}: only the delta cell ran"
        );
        assert_eq!(
            warmed.provenance.warm_from.as_deref(),
            Some(seeded.key.as_str()),
            "workers={workers}: provenance names the donor entry"
        );
        assert_eq!(srv.stats().warm, 1, "workers={workers}");

        // The spliced entry replays as an exact hit with the same bytes.
        let replay = srv.submit(&sup).expect("replay");
        assert_eq!(replay.outcome, Outcome::Hit);
        assert_eq!(file_map(&replay), reference_files);
    }
}

/// Explicit-default and sparse spellings of one study resolve to one
/// cache entry end to end: the second spelling is served as an exact
/// hit of the first.
#[test]
fn equivalent_spellings_share_one_cache_entry() {
    let dir = temp_dir("spelling");
    let srv = server(&dir, 2);

    let sparse = curve_spec("spelling", &[5], &[0.08]);
    let first = srv.submit(&sparse).expect("sparse run");
    assert_eq!(first.outcome, Outcome::Miss);

    // The same study with defaults written out: the resolved pattern
    // axis, the seed/replicate defaults, and an explicit [serve] block.
    let mut explicit = sparse.clone();
    explicit.axes.patterns = Some(vec!["uniform".parse().expect("pattern parses")]);
    explicit.seed = Some(42);
    explicit.replicates = Some(1);
    explicit.serve.warm_start = true;

    let again = srv.submit(&explicit).expect("explicit run");
    assert_eq!(again.key, first.key, "spellings share one key");
    assert_eq!(again.outcome, Outcome::Hit, "the explicit spelling is an exact hit");
    assert_eq!(file_map(&again), file_map(&first));
}
