//! Brickwall (BW) arrangement generators (Fig. 4c).
//!
//! Bricks are 2×1 rectangles; consecutive rows are offset by half a brick so
//! that every interior brick touches two row-mates and two bricks in each
//! adjacent row — six neighbours, realising the honeycomb graph with
//! rectangular chiplets.

use chiplet_layout::Rect;

use super::{grid::best_factor_pair, is_perfect_square, Regularity};

/// Brick extent in layout units.
const BRICK_W: i64 = 4;
const BRICK_H: i64 = 2;
/// Row offset: half a brick.
const HALF: i64 = BRICK_W / 2;

/// Generates the rectangles of a brickwall arrangement, or `None` if `n`
/// cannot be realised with the requested regularity.
pub(super) fn generate(n: usize, regularity: Regularity) -> Option<Vec<Rect>> {
    Some(positions(n, regularity)?.into_iter().map(|(row, col)| brick(row, col)).collect())
}

/// `(row, col)` positions of a brickwall arrangement. Shared with the
/// honeycomb generator, which realises the same pattern with hexagons.
pub(super) fn positions(n: usize, regularity: Regularity) -> Option<Vec<(i64, i64)>> {
    match regularity {
        Regularity::Regular => {
            if !is_perfect_square(n) {
                return None;
            }
            let side = (n as f64).sqrt().round() as usize;
            Some(rows_by_cols(side, side))
        }
        Regularity::SemiRegular => {
            let (r, c) = best_factor_pair(n)?;
            Some(rows_by_cols(r, c))
        }
        Regularity::Irregular => Some(irregular(n)),
    }
}

/// A full `rows × cols` position block.
fn rows_by_cols(rows: usize, cols: usize) -> Vec<(i64, i64)> {
    let mut out = Vec::with_capacity(rows * cols);
    for row in 0..rows {
        for col in 0..cols {
            out.push((row as i64, col as i64));
        }
    }
    out
}

/// Irregular brickwall (§IV-C): closest smaller regular `k × k` wall plus
/// incomplete rows on top.
fn irregular(n: usize) -> Vec<(i64, i64)> {
    let k = (n as f64).sqrt() as usize;
    let k = if k * k > n { k - 1 } else { k };
    if k == 0 {
        return rows_by_cols(1, n);
    }
    let mut out = rows_by_cols(k, k);
    let mut remaining = n - k * k;
    let mut row = k as i64;
    while remaining > 0 {
        let in_this_row = remaining.min(k);
        for col in 0..in_this_row {
            out.push((row, col as i64));
        }
        remaining -= in_this_row;
        row += 1;
    }
    out
}

/// Brick at `(row, col)`: odd rows shift right by half a brick.
fn brick(row: i64, col: i64) -> Rect {
    let offset = if row.rem_euclid(2) == 1 { HALF } else { 0 };
    Rect::new(col * BRICK_W + offset, row * BRICK_H, BRICK_W, BRICK_H)
        .expect("positive brick size")
}

#[cfg(test)]
mod tests {
    use super::super::{Arrangement, ArrangementKind, Regularity};
    use super::*;
    use chiplet_graph::metrics;

    fn build(n: usize, regularity: Regularity) -> Arrangement {
        Arrangement::build_with_regularity(ArrangementKind::Brickwall, n, regularity)
            .expect("valid brickwall")
    }

    #[test]
    fn interior_bricks_have_six_neighbors() {
        let a = build(25, Regularity::Regular);
        assert_eq!(a.degree_stats().max, 6);
    }

    #[test]
    fn regular_brickwall_min_degree_is_two() {
        // §IV-A d): "there are two chiplets with only two neighbors".
        let a = build(16, Regularity::Regular);
        assert_eq!(a.degree_stats().min, 2);
        let histogram = metrics::degree_histogram(a.graph());
        assert_eq!(histogram[2], 2, "exactly two corner bricks with 2 neighbours");
    }

    #[test]
    fn average_degree_approaches_six() {
        let a = build(100, Regularity::Regular);
        let avg = a.degree_stats().average;
        assert!(avg > 5.0 && avg < 6.0, "avg {avg}");
        // And it respects the planar bound 6 - 12/N.
        let bound = metrics::planar_average_degree_bound(100).unwrap();
        assert!(avg <= bound);
    }

    #[test]
    fn brickwall_diameter_beats_grid() {
        for n in [16usize, 25, 36, 49, 64, 81, 100] {
            let bw = build(n, Regularity::Regular);
            let g = Arrangement::build_with_regularity(
                ArrangementKind::Grid,
                n,
                Regularity::Regular,
            )
            .unwrap();
            let d_bw = metrics::diameter(bw.graph()).unwrap();
            let d_g = metrics::diameter(g.graph()).unwrap();
            assert!(d_bw < d_g, "n={n}: BW {d_bw} !< G {d_g}");
        }
    }

    #[test]
    fn semi_regular_counts() {
        let a = build(12, Regularity::SemiRegular);
        assert_eq!(a.num_chiplets(), 12);
        assert!(metrics::is_connected(a.graph()));
    }

    #[test]
    fn irregular_counts_and_connectivity() {
        for n in 2..=50 {
            let rects = irregular(n);
            assert_eq!(rects.len(), n, "n={n}");
            let a = build(n, Regularity::Irregular);
            assert!(metrics::is_connected(a.graph()), "n={n}");
        }
    }

    #[test]
    fn offset_rows_share_half_brick_edges() {
        // Brick (0,0) and brick (1,0): offset by half a brick, must touch.
        let a = brick(0, 0);
        let b = brick(1, 0);
        assert_eq!(a.shared_edge_length(&b), HALF);
        // Brick (1,1) also touches (0,1) and (0,2)... i.e. two up-neighbours
        // for interior bricks.
        let c = brick(1, 1);
        assert!(c.is_adjacent(&brick(0, 1)));
        assert!(c.is_adjacent(&brick(0, 2)));
        assert!(!c.is_adjacent(&brick(0, 0)), "corner-only contact is excluded");
    }
}
