//! Grid (G) arrangement generators — the paper's baseline (Fig. 4a).

use chiplet_layout::Rect;

use super::{is_perfect_square, Regularity, MAX_SEMI_REGULAR_ASPECT};

/// Cell size in layout units (squares; any positive size works).
const CELL: i64 = 2;

/// Generates the rectangles of a grid arrangement, or `None` if `n` cannot
/// be realised with the requested regularity.
pub(super) fn generate(n: usize, regularity: Regularity) -> Option<Vec<Rect>> {
    match regularity {
        Regularity::Regular => {
            if !is_perfect_square(n) {
                return None;
            }
            let side = (n as f64).sqrt().round() as usize;
            Some(rows_by_cols(side, side))
        }
        Regularity::SemiRegular => {
            let (r, c) = best_factor_pair(n)?;
            Some(rows_by_cols(r, c))
        }
        Regularity::Irregular => Some(irregular(n)),
    }
}

/// The most-square non-trivial factorisation `R × C = n` with `R < C`,
/// `R ≥ 2`, and aspect ratio `C / R ≤` [`MAX_SEMI_REGULAR_ASPECT`] — the
/// "similar R and C" rule of §IV-C. `None` if no such pair exists (primes,
/// perfect squares, and elongated-only counts).
#[must_use]
pub fn best_factor_pair(n: usize) -> Option<(usize, usize)> {
    let mut best: Option<(usize, usize)> = None;
    let mut r = (n as f64).sqrt() as usize;
    while r >= 2 {
        if n.is_multiple_of(r) {
            let c = n / r;
            if c != r {
                best = Some((r, c));
                break; // descending from sqrt(n): first hit is most square
            }
        }
        r -= 1;
    }
    let (r, c) = best?;
    (c as f64 / r as f64 <= MAX_SEMI_REGULAR_ASPECT).then_some((r, c))
}

/// A full `rows × cols` block of square cells.
fn rows_by_cols(rows: usize, cols: usize) -> Vec<Rect> {
    let mut rects = Vec::with_capacity(rows * cols);
    for row in 0..rows {
        for col in 0..cols {
            rects.push(cell(row as i64, col as i64));
        }
    }
    rects
}

/// Irregular grid (§IV-C): the closest smaller regular `k × k` grid plus the
/// remaining chiplets as incomplete rows on top.
fn irregular(n: usize) -> Vec<Rect> {
    let k = (n as f64).sqrt() as usize; // floor
    let k = if k * k > n { k - 1 } else { k };
    if k == 0 {
        // n == 0 is rejected upstream; n < 4 lands here with k = 1.
        return rows_by_cols(1, n);
    }
    let mut rects = rows_by_cols(k, k);
    let mut remaining = n - k * k;
    let mut row = k as i64;
    while remaining > 0 {
        let in_this_row = remaining.min(k);
        for col in 0..in_this_row {
            rects.push(cell(row, col as i64));
        }
        remaining -= in_this_row;
        row += 1;
    }
    rects
}

fn cell(row: i64, col: i64) -> Rect {
    Rect::new(col * CELL, row * CELL, CELL, CELL).expect("positive cell size")
}

#[cfg(test)]
mod tests {
    use super::super::{Arrangement, ArrangementKind, Regularity};
    use super::*;
    use chiplet_graph::metrics;

    #[test]
    fn regular_grid_structure() {
        let a =
            Arrangement::build_with_regularity(ArrangementKind::Grid, 16, Regularity::Regular)
                .unwrap();
        let g = a.graph();
        // 4x4 mesh: 2*4*3 = 24 edges.
        assert_eq!(g.num_edges(), 24);
        let stats = a.degree_stats();
        assert_eq!(stats.min, 2);
        assert_eq!(stats.max, 4);
        assert_eq!(metrics::diameter(g), Some(6));
    }

    #[test]
    fn regular_rejects_non_squares() {
        assert!(generate(12, Regularity::Regular).is_none());
    }

    #[test]
    fn semi_regular_picks_most_square_pair() {
        assert_eq!(best_factor_pair(12), Some((3, 4)));
        assert_eq!(best_factor_pair(24), Some((4, 6)));
        assert_eq!(best_factor_pair(2), None); // 1x2 is trivial
        assert_eq!(best_factor_pair(13), None); // prime
        assert_eq!(best_factor_pair(26), None); // 2x13 too elongated
        assert_eq!(best_factor_pair(16), None); // 2x8 too elongated (4x4 is regular)
        assert_eq!(best_factor_pair(18), Some((3, 6)));
    }

    #[test]
    fn semi_regular_structure() {
        let a = Arrangement::build_with_regularity(
            ArrangementKind::Grid,
            12,
            Regularity::SemiRegular,
        )
        .unwrap();
        // 3x4 mesh: 3*3 + 4*2 = 17 edges.
        assert_eq!(a.graph().num_edges(), 17);
        assert_eq!(metrics::diameter(a.graph()), Some(5));
    }

    #[test]
    fn irregular_counts_match() {
        for n in 2..=60 {
            let rects = irregular(n);
            assert_eq!(rects.len(), n, "n={n}");
        }
    }

    #[test]
    fn irregular_min_degree_can_drop_to_one() {
        // 10 = 3x3 + 1 extra: the lone extra chiplet has one neighbour
        // (the paper: "reduces the minimum number of neighbors to 1").
        let a = Arrangement::build_with_regularity(
            ArrangementKind::Grid,
            10,
            Regularity::Irregular,
        )
        .unwrap();
        assert_eq!(a.degree_stats().min, 1);
    }

    #[test]
    fn irregular_extra_row_connects() {
        // 21 = 4x4 + 5 extras -> one full row of 4 + 1 in the next row.
        let a = Arrangement::build_with_regularity(
            ArrangementKind::Grid,
            21,
            Regularity::Irregular,
        )
        .unwrap();
        assert!(metrics::is_connected(a.graph()));
        assert_eq!(a.num_chiplets(), 21);
    }

    #[test]
    fn tiny_irregular_grids() {
        let a =
            Arrangement::build_with_regularity(ArrangementKind::Grid, 2, Regularity::Irregular)
                .unwrap();
        assert_eq!(a.graph().num_edges(), 1);
        let a =
            Arrangement::build_with_regularity(ArrangementKind::Grid, 3, Regularity::Irregular)
                .unwrap();
        assert_eq!(a.graph().num_edges(), 2);
    }

    #[test]
    fn average_degree_approaches_four() {
        // §IV-A: grid average neighbours -> 4 as N grows.
        let a = Arrangement::build(ArrangementKind::Grid, 100).unwrap();
        let avg = a.degree_stats().average;
        assert!(avg > 3.5 && avg < 4.0, "avg {avg}");
    }
}
