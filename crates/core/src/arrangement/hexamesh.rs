//! HexaMesh (HM) arrangement generators (Fig. 4d) — the paper's contribution.
//!
//! A regular HexaMesh has `N = 1 + 3r(r+1)` chiplets: a central chiplet
//! surrounded by `r` rings, the `i`-th ring holding `6i` chiplets. We realise
//! it physically as a hexagon-shaped brickwall: rows `−r..=r`, row `i`
//! holding `2r+1−|i|` bricks, each row inset by half a brick per step away
//! from the centre. This yields exactly the ring graph: minimum degree 3,
//! maximum 6, diameter `2r`.
//!
//! Irregular HexaMeshes (§IV-C) add `m < 6(r+1)` chiplets as a contiguous
//! arc of the next ring.

use chiplet_layout::Rect;

use super::Regularity;

/// Brick extent in layout units (same proportions as the brickwall).
const BRICK_W: i64 = 4;
const BRICK_H: i64 = 2;
const HALF: i64 = BRICK_W / 2;

/// Chiplets in a regular HexaMesh with `r` rings: `1 + 3r(r+1)`.
///
/// # Example
///
/// ```
/// use hexamesh::arrangement::hexamesh_count;
///
/// assert_eq!(hexamesh_count(0), 1);
/// assert_eq!(hexamesh_count(1), 7);
/// assert_eq!(hexamesh_count(3), 37);
/// ```
#[must_use]
pub fn hexamesh_count(rings: usize) -> usize {
    1 + 3 * rings * (rings + 1)
}

/// Number of complete rings in the largest regular HexaMesh with at most
/// `n` chiplets (`n ≥ 1`).
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn ring_radius(n: usize) -> usize {
    assert!(n >= 1, "ring_radius requires n >= 1");
    let mut r = 0;
    while hexamesh_count(r + 1) <= n {
        r += 1;
    }
    r
}

/// `true` if `n = 1 + 3r(r+1)` for some integer `r`.
pub(super) fn is_regular_count(n: usize) -> bool {
    n >= 1 && hexamesh_count(ring_radius(n)) == n
}

/// Generates the rectangles of a HexaMesh arrangement, or `None` if `n`
/// cannot be realised with the requested regularity.
pub(super) fn generate(n: usize, regularity: Regularity) -> Option<Vec<Rect>> {
    match regularity {
        Regularity::Regular => is_regular_count(n).then(|| hexagon(ring_radius(n))),
        Regularity::SemiRegular => None,
        Regularity::Irregular => {
            if n == 0 || is_regular_count(n) {
                return None;
            }
            let r = ring_radius(n);
            let m = n - hexamesh_count(r);
            let mut rects = hexagon(r);
            for &(row, j) in ring_arc(r + 1).iter().take(m) {
                rects.push(brick_at(r + 1, row, j));
            }
            Some(rects)
        }
    }
}

/// All bricks of the hexagon with `r` rings.
fn hexagon(r: usize) -> Vec<Rect> {
    let r = r as i64;
    let mut rects = Vec::new();
    for row in -r..=r {
        let count = 2 * r + 1 - row.abs();
        for j in 0..count {
            rects.push(brick_at(r as usize, row, j));
        }
    }
    rects
}

/// Brick `j` of row `row` in the hexagon of radius `radius`.
///
/// In half-brick units, the brick starts at `−(2R+1) + |row| + 2j`; this is
/// scaled by `HALF` so all hexagon radii share one coordinate system
/// (hexagon `R` is a strict subset of hexagon `R+1`).
fn brick_at(radius: usize, row: i64, j: i64) -> Rect {
    let radius = radius as i64;
    let start_half_units = -(2 * radius + 1) + row.abs() + 2 * j;
    Rect::new(start_half_units * HALF, row * BRICK_H, BRICK_W, BRICK_H)
        .expect("positive brick size")
}

/// The positions `(row, j)` of ring `r_prime` (the bricks of hexagon
/// `r_prime` that are not in hexagon `r_prime − 1`), ordered as one
/// contiguous arc around the hexagon.
///
/// The arc starts at the second brick of the top row so that the first
/// added chiplet of an irregular HexaMesh touches two inner chiplets
/// whenever possible, keeping the minimum degree at 2 (§IV-C).
fn ring_arc(r_prime: usize) -> Vec<(i64, i64)> {
    let rp = r_prime as i64;
    let mut arc = Vec::with_capacity(6 * r_prime);
    // Top row (row = rp) has rp + 1 bricks: j in 0..=rp. Start at j = 1.
    for j in 1..=rp {
        arc.push((rp, j));
    }
    // Right edge: rows rp−1 down to −(rp−1), rightmost brick j = 2rp − |row|.
    for row in (-(rp - 1)..=(rp - 1)).rev() {
        arc.push((row, 2 * rp - row.abs()));
    }
    // Bottom row, right to left.
    for j in (0..=rp).rev() {
        arc.push((-rp, j));
    }
    // Left edge: rows −(rp−1) up to rp−1, leftmost brick j = 0.
    for row in -(rp - 1)..=(rp - 1) {
        arc.push((row, 0));
    }
    // Close the circle at the top row's first brick.
    arc.push((rp, 0));
    debug_assert_eq!(arc.len(), 6 * r_prime);
    arc
}

#[cfg(test)]
mod tests {
    use super::super::{Arrangement, ArrangementKind, Regularity};
    use super::*;
    use chiplet_graph::metrics;

    fn build(n: usize) -> Arrangement {
        Arrangement::build(ArrangementKind::HexaMesh, n).expect("valid HexaMesh")
    }

    #[test]
    fn count_formula() {
        assert_eq!(hexamesh_count(0), 1);
        assert_eq!(hexamesh_count(1), 7);
        assert_eq!(hexamesh_count(2), 19);
        assert_eq!(hexamesh_count(4), 61);
        assert_eq!(hexamesh_count(5), 91);
    }

    #[test]
    fn ring_radius_inverse() {
        for r in 0..6 {
            assert_eq!(ring_radius(hexamesh_count(r)), r);
            if r > 0 {
                assert_eq!(ring_radius(hexamesh_count(r) - 1), r - 1);
                assert_eq!(ring_radius(hexamesh_count(r) + 1), r);
            }
        }
    }

    #[test]
    fn regular_hexamesh_degrees() {
        // Fig. 4d: Min 3, Max 6 neighbours.
        for n in [7usize, 19, 37, 61, 91] {
            let a = build(n);
            assert_eq!(a.regularity(), Regularity::Regular);
            let stats = a.degree_stats();
            assert_eq!(stats.min, 3, "n={n}");
            assert_eq!(stats.max, 6, "n={n}");
        }
    }

    #[test]
    fn regular_hexamesh_diameter_is_two_r() {
        // D_HM(N) = (1/3)sqrt(12N − 3) − 1 = 2r for regular counts.
        for r in 1..=5usize {
            let n = hexamesh_count(r);
            let a = build(n);
            assert_eq!(metrics::diameter(a.graph()), Some(2 * r as u32), "r={r}");
        }
    }

    #[test]
    fn seven_chiplet_hexamesh_is_wheel() {
        // Centre + 6-ring: centre has 6 neighbours, ring vertices 3 each,
        // 12 edges total.
        let a = build(7);
        let g = a.graph();
        assert_eq!(g.num_edges(), 12);
        let histogram = metrics::degree_histogram(g);
        assert_eq!(histogram[6], 1);
        assert_eq!(histogram[3], 6);
    }

    #[test]
    fn ring_arc_is_contiguous_and_complete() {
        for rp in 1..=5usize {
            let arc = ring_arc(rp);
            assert_eq!(arc.len(), 6 * rp, "ring {rp} size");
            // No duplicates.
            let mut sorted = arc.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), arc.len(), "ring {rp} has duplicates");
            // Consecutive arc bricks are geometrically adjacent.
            for w in arc.windows(2) {
                let a = brick_at(rp, w[0].0, w[0].1);
                let b = brick_at(rp, w[1].0, w[1].1);
                assert!(a.is_adjacent(&b), "ring {rp}: {:?} !~ {:?}", w[0], w[1]);
            }
        }
    }

    #[test]
    fn irregular_counts_and_connectivity() {
        for n in 2..=61usize {
            let a = build(n);
            assert_eq!(a.num_chiplets(), n);
            assert!(metrics::is_connected(a.graph()), "n={n}");
        }
    }

    #[test]
    fn irregular_min_degree_is_at_least_two_beyond_first_ring() {
        // §IV-C: irregular HM has minimum degree 2 (for arrangements grown
        // from at least one complete ring).
        for n in 8..=61usize {
            if is_regular_count(n) {
                continue;
            }
            let a = build(n);
            assert!(a.degree_stats().min >= 2, "n={n} min degree {}", a.degree_stats().min);
        }
    }

    #[test]
    fn hexagon_is_subset_of_next_hexagon() {
        for r in 0..4usize {
            let inner: std::collections::HashSet<_> =
                hexagon(r).into_iter().map(|rect| (rect.x(), rect.y())).collect();
            let outer: std::collections::HashSet<_> =
                hexagon(r + 1).into_iter().map(|rect| (rect.x(), rect.y())).collect();
            assert!(inner.is_subset(&outer), "hexagon {r} ⊄ hexagon {}", r + 1);
            assert_eq!(outer.len() - inner.len(), 6 * (r + 1));
        }
    }

    #[test]
    fn average_degree_approaches_six() {
        let a = build(91);
        let avg = a.degree_stats().average;
        assert!(avg > 5.0, "avg {avg}");
        assert!(avg <= metrics::planar_average_degree_bound(91).unwrap());
    }
}
