//! Honeycomb (HC) arrangement generator (Fig. 4b) — graph only.
//!
//! Hexagonal chiplets violate the rectangular-chiplet constraint (§III-B),
//! so the honeycomb exists here to verify the paper's claim in §IV-A c):
//! arranging *rectangular* chiplets in a brickwall yields the same graph.
//! We generate the honeycomb from hexagon geometry (odd-row offset
//! coordinates with the six axial neighbour directions) over the same
//! `(row, col)` position sets the brickwall uses; the equivalence test in
//! the crate's integration suite checks edge-for-edge equality.

use chiplet_graph::{Graph, GraphBuilder};

use super::{brickwall, Regularity};

/// Generates the honeycomb ICI graph, or `None` if `n` cannot be realised
/// with the requested regularity.
pub(super) fn generate(n: usize, regularity: Regularity) -> Option<Graph> {
    let positions = brickwall::positions(n, regularity)?;
    Some(graph_from_positions(&positions))
}

/// Builds the adjacency graph of hexagons at odd-row-offset positions.
fn graph_from_positions(positions: &[(i64, i64)]) -> Graph {
    // Convert offset coordinates to axial coordinates; two hexagons are
    // adjacent iff their axial difference is one of the six unit directions.
    let axial: Vec<(i64, i64)> =
        positions.iter().map(|&(row, col)| to_axial(row, col)).collect();
    let index: std::collections::HashMap<(i64, i64), usize> =
        axial.iter().enumerate().map(|(i, &a)| (a, i)).collect();
    const DIRECTIONS: [(i64, i64); 6] = [(1, 0), (-1, 0), (0, 1), (0, -1), (1, -1), (-1, 1)];
    let mut b = GraphBuilder::new(positions.len());
    for (i, &(q, r)) in axial.iter().enumerate() {
        for (dq, dr) in DIRECTIONS {
            if let Some(&j) = index.get(&(q + dq, r + dr)) {
                if i < j {
                    b.add_edge(i, j).expect("axial neighbours are unique");
                }
            }
        }
    }
    b.build()
}

/// Odd-row offset → axial conversion for pointy-top hexagons whose odd rows
/// shift right by half a hexagon (mirroring the brickwall's half-brick
/// offset).
fn to_axial(row: i64, col: i64) -> (i64, i64) {
    let q = col - (row - row.rem_euclid(2)) / 2;
    (q, row)
}

#[cfg(test)]
mod tests {
    use super::super::{Arrangement, ArrangementKind};
    use super::*;
    use chiplet_graph::metrics;

    #[test]
    fn honeycomb_matches_brickwall_graph_exactly() {
        // §IV-A c): the brickwall "results in the same graph structure as
        // the HC" — with shared position indexing the edge sets coincide.
        for n in [4usize, 9, 12, 16, 20, 25, 30, 36, 49] {
            let hc = Arrangement::build(ArrangementKind::Honeycomb, n).unwrap();
            let bw = Arrangement::build(ArrangementKind::Brickwall, n).unwrap();
            assert_eq!(hc.regularity(), bw.regularity(), "n={n}");
            assert_eq!(hc.graph(), bw.graph(), "n={n}: graphs differ");
        }
    }

    #[test]
    fn honeycomb_has_no_placement() {
        let hc = Arrangement::build(ArrangementKind::Honeycomb, 9).unwrap();
        assert!(hc.placement().is_none());
        let bw = Arrangement::build(ArrangementKind::Brickwall, 9).unwrap();
        assert!(bw.placement().is_some());
    }

    #[test]
    fn honeycomb_degree_bounds() {
        // Fig. 4b: Min 2, Max 6.
        let hc = Arrangement::build(ArrangementKind::Honeycomb, 25).unwrap();
        let stats = hc.degree_stats();
        assert_eq!(stats.min, 2);
        assert_eq!(stats.max, 6);
    }

    #[test]
    fn axial_conversion_is_injective_on_lattice() {
        let mut seen = std::collections::HashSet::new();
        for row in -5..5i64 {
            for col in -5..5i64 {
                assert!(seen.insert(to_axial(row, col)), "collision at ({row}, {col})");
            }
        }
    }

    #[test]
    fn honeycomb_connected_across_counts() {
        for n in 2..=40 {
            let hc = Arrangement::build(ArrangementKind::Honeycomb, n).unwrap();
            assert!(metrics::is_connected(hc.graph()), "n={n}");
        }
    }
}
