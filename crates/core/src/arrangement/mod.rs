//! Chiplet arrangements: grid, brickwall, honeycomb, HexaMesh (§IV).
//!
//! Each arrangement is generated as a physical [`Placement`] of rectangles
//! on an integer lattice (bricks are 2×1, grid cells 1×1 — proportions do
//! not affect the contact graph) and converted to its ICI graph by
//! shared-edge adjacency. The honeycomb uses hexagonal chiplets, which
//! violates the rectangular-chiplet constraint; it is generated graph-only
//! to verify the paper's claim that the brickwall realises the same graph.

mod brickwall;
mod grid;
mod hexamesh;
mod honeycomb;

use std::fmt;

use chiplet_graph::{metrics, Graph};
use chiplet_layout::{LayoutError, PlacedChiplet, Placement, Rect};
use serde::{Deserialize, Serialize};

pub use grid::best_factor_pair;
pub use hexamesh::{hexamesh_count, ring_radius};

/// The four arrangement families of Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArrangementKind {
    /// 2D grid — the paper's baseline (Fig. 4a).
    Grid,
    /// Honeycomb of hexagonal chiplets (Fig. 4b; violates constraints).
    Honeycomb,
    /// Brickwall of rectangular chiplets (Fig. 4c).
    Brickwall,
    /// HexaMesh: rings around a central chiplet (Fig. 4d; the contribution).
    HexaMesh,
}

impl ArrangementKind {
    /// All four kinds, in the paper's presentation order.
    pub const ALL: [ArrangementKind; 4] = [
        ArrangementKind::Grid,
        ArrangementKind::Honeycomb,
        ArrangementKind::Brickwall,
        ArrangementKind::HexaMesh,
    ];

    /// The three kinds evaluated in §VI (the honeycomb is excluded because
    /// it violates the rectangular-chiplet constraint).
    pub const EVALUATED: [ArrangementKind; 3] =
        [ArrangementKind::Grid, ArrangementKind::Brickwall, ArrangementKind::HexaMesh];

    /// Number of D2D-link bump sectors per chiplet (§IV-B): 4 for the grid
    /// layout of Fig. 5a, 6 for the brickwall/HexaMesh layout of Fig. 5b.
    #[must_use]
    pub fn link_sectors(&self) -> usize {
        match self {
            ArrangementKind::Grid => 4,
            _ => 6,
        }
    }

    /// Short label used in CSV output ("G", "HC", "BW", "HM").
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ArrangementKind::Grid => "G",
            ArrangementKind::Honeycomb => "HC",
            ArrangementKind::Brickwall => "BW",
            ArrangementKind::HexaMesh => "HM",
        }
    }

    /// Canonical lower-case name, as accepted by the [`std::str::FromStr`]
    /// parser and used in study-spec files: `grid`, `honeycomb`,
    /// `brickwall`, `hexamesh`. Round-trips through `parse`.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ArrangementKind::Grid => "grid",
            ArrangementKind::Honeycomb => "honeycomb",
            ArrangementKind::Brickwall => "brickwall",
            ArrangementKind::HexaMesh => "hexamesh",
        }
    }
}

impl std::str::FromStr for ArrangementKind {
    type Err = String;

    /// Parses an arrangement-kind name, case-insensitively: the canonical
    /// [`ArrangementKind::name`] (`grid`, …), the CSV
    /// [`ArrangementKind::label`] (`G`, `HC`, `BW`, `HM`), and the
    /// [`std::fmt::Display`] form (`Grid`, `HexaMesh`, …) all parse back
    /// to the kind they came from.
    fn from_str(s: &str) -> Result<Self, String> {
        let lower = s.to_ascii_lowercase();
        ArrangementKind::ALL
            .into_iter()
            .find(|k| lower == k.name() || lower == k.label().to_ascii_lowercase())
            .ok_or_else(|| {
                format!("unknown arrangement kind {s:?} (expected grid|honeycomb|brickwall|hexamesh)")
            })
    }
}

impl fmt::Display for ArrangementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ArrangementKind::Grid => "Grid",
            ArrangementKind::Honeycomb => "Honeycomb",
            ArrangementKind::Brickwall => "Brickwall",
            ArrangementKind::HexaMesh => "HexaMesh",
        };
        write!(f, "{name}")
    }
}

/// How closely an arrangement matches its ideal pattern (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Regularity {
    /// Grid/brickwall/honeycomb: `N` is a perfect square. HexaMesh:
    /// `N = 1 + 3r(r+1)`.
    Regular,
    /// Grid/brickwall/honeycomb only: `R × C = N` with `R ≠ C`, both ≥ 2 and
    /// similar (aspect ratio bounded).
    SemiRegular,
    /// Closest smaller regular arrangement plus an incomplete row / circle.
    Irregular,
}

impl fmt::Display for Regularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Regularity::Regular => "regular",
            Regularity::SemiRegular => "semi-regular",
            Regularity::Irregular => "irregular",
        };
        write!(f, "{name}")
    }
}

/// Errors from arrangement construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrangementError {
    /// `n == 0` or the requested regularity cannot realise `n` chiplets for
    /// this kind.
    UnsupportedCount {
        /// Arrangement family.
        kind: ArrangementKind,
        /// Requested chiplet count.
        n: usize,
        /// Requested regularity.
        regularity: Regularity,
    },
    /// Internal geometric failure (should not occur; kept for diagnosis).
    Layout(LayoutError),
}

impl fmt::Display for ArrangementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrangementError::UnsupportedCount { kind, n, regularity } => {
                write!(f, "{kind} cannot realise {n} chiplets as a {regularity} arrangement")
            }
            ArrangementError::Layout(e) => write!(f, "layout: {e}"),
        }
    }
}

impl std::error::Error for ArrangementError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArrangementError::Layout(e) => Some(e),
            ArrangementError::UnsupportedCount { .. } => None,
        }
    }
}

impl From<LayoutError> for ArrangementError {
    fn from(e: LayoutError) -> Self {
        ArrangementError::Layout(e)
    }
}

/// A concrete arrangement: its (optional) physical placement and ICI graph.
///
/// Honeycomb arrangements carry no rectangle placement (hexagons are not
/// representable in `chiplet-layout`); every other kind always has one.
#[derive(Debug, Clone)]
pub struct Arrangement {
    kind: ArrangementKind,
    regularity: Regularity,
    n: usize,
    placement: Option<Placement>,
    graph: Graph,
}

impl Arrangement {
    /// Builds the canonical arrangement of `n` chiplets of the given kind,
    /// choosing the best applicable regularity: regular when `n` permits,
    /// then semi-regular (grid/brickwall/honeycomb), then irregular.
    ///
    /// # Errors
    ///
    /// [`ArrangementError::UnsupportedCount`] if `n == 0`.
    ///
    /// # Example
    ///
    /// ```
    /// use hexamesh::arrangement::{Arrangement, ArrangementKind, Regularity};
    ///
    /// let hm = Arrangement::build(ArrangementKind::HexaMesh, 19)?;
    /// assert_eq!(hm.regularity(), Regularity::Regular); // 19 = 1 + 3·2·3
    /// assert_eq!(hm.graph().num_vertices(), 19);
    /// # Ok::<(), hexamesh::arrangement::ArrangementError>(())
    /// ```
    pub fn build(kind: ArrangementKind, n: usize) -> Result<Self, ArrangementError> {
        Self::build_with_regularity(kind, n, classify(kind, n))
    }

    /// Builds an arrangement with an explicit regularity.
    ///
    /// # Errors
    ///
    /// [`ArrangementError::UnsupportedCount`] if the regularity cannot
    /// realise `n` chiplets for this kind (e.g. regular grid with non-square
    /// `n`, or semi-regular HexaMesh, which does not exist).
    pub fn build_with_regularity(
        kind: ArrangementKind,
        n: usize,
        regularity: Regularity,
    ) -> Result<Self, ArrangementError> {
        let unsupported = ArrangementError::UnsupportedCount { kind, n, regularity };
        if n == 0 {
            return Err(unsupported);
        }
        match kind {
            ArrangementKind::Grid => {
                let rects = grid::generate(n, regularity).ok_or(unsupported)?;
                Self::from_rects(kind, regularity, rects)
            }
            ArrangementKind::Brickwall => {
                let rects = brickwall::generate(n, regularity).ok_or(unsupported)?;
                Self::from_rects(kind, regularity, rects)
            }
            ArrangementKind::HexaMesh => {
                if regularity == Regularity::SemiRegular {
                    return Err(unsupported);
                }
                let rects = hexamesh::generate(n, regularity).ok_or(unsupported)?;
                Self::from_rects(kind, regularity, rects)
            }
            ArrangementKind::Honeycomb => {
                let graph = honeycomb::generate(n, regularity).ok_or(unsupported)?;
                Ok(Self { kind, regularity, n, placement: None, graph })
            }
        }
    }

    fn from_rects(
        kind: ArrangementKind,
        regularity: Regularity,
        rects: Vec<Rect>,
    ) -> Result<Self, ArrangementError> {
        let n = rects.len();
        let mut placement = Placement::new();
        for rect in rects {
            placement.push(PlacedChiplet::compute(rect))?;
        }
        let graph = placement.compute_adjacency_graph();
        debug_assert!(
            n <= 1 || metrics::is_connected(&graph),
            "{kind} arrangement of {n} chiplets must be connected"
        );
        Ok(Self { kind, regularity, n, placement: Some(placement), graph })
    }

    /// Arrangement family.
    #[must_use]
    pub fn kind(&self) -> ArrangementKind {
        self.kind
    }

    /// Regularity class.
    #[must_use]
    pub fn regularity(&self) -> Regularity {
        self.regularity
    }

    /// Number of compute chiplets.
    #[must_use]
    pub fn num_chiplets(&self) -> usize {
        self.n
    }

    /// Physical placement (absent for the honeycomb).
    #[must_use]
    pub fn placement(&self) -> Option<&Placement> {
        self.placement.as_ref()
    }

    /// The inter-chiplet-interconnect graph (§III-C).
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Degree statistics — the "neighbours per chiplet" numbers of Fig. 4.
    ///
    /// # Panics
    ///
    /// Never panics: arrangements have at least one chiplet.
    #[must_use]
    pub fn degree_stats(&self) -> metrics::DegreeStats {
        metrics::degree_stats(&self.graph).expect("arrangements are non-empty")
    }
}

/// The canonical regularity for `n` chiplets of the given kind, following
/// §IV-C: regular when the count permits, semi-regular for
/// grid/brickwall/honeycomb when a similar-sided factorisation exists
/// (aspect ratio at most [`MAX_SEMI_REGULAR_ASPECT`]), irregular otherwise.
#[must_use]
pub fn classify(kind: ArrangementKind, n: usize) -> Regularity {
    match kind {
        ArrangementKind::HexaMesh => {
            if hexamesh::is_regular_count(n) {
                Regularity::Regular
            } else {
                Regularity::Irregular
            }
        }
        _ => {
            if is_perfect_square(n) {
                Regularity::Regular
            } else if best_factor_pair(n).is_some() {
                Regularity::SemiRegular
            } else {
                Regularity::Irregular
            }
        }
    }
}

/// Largest row/column aspect ratio still considered "similar" for a
/// semi-regular arrangement (§IV-C: "semi-regular arrangements make only
/// sense if R and C are similar").
pub const MAX_SEMI_REGULAR_ASPECT: f64 = 2.5;

pub(crate) fn is_perfect_square(n: usize) -> bool {
    let s = (n as f64).sqrt().round() as usize;
    s * s == n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_squares_as_regular() {
        for n in [1usize, 4, 9, 16, 25, 100] {
            assert_eq!(classify(ArrangementKind::Grid, n), Regularity::Regular);
            assert_eq!(classify(ArrangementKind::Brickwall, n), Regularity::Regular);
        }
    }

    #[test]
    fn classify_hexamesh_counts() {
        for n in [1usize, 7, 19, 37, 61, 91] {
            assert_eq!(classify(ArrangementKind::HexaMesh, n), Regularity::Regular);
        }
        for n in [2usize, 8, 20, 50, 100] {
            assert_eq!(classify(ArrangementKind::HexaMesh, n), Regularity::Irregular);
        }
    }

    #[test]
    fn classify_factorable_as_semi_regular() {
        assert_eq!(classify(ArrangementKind::Grid, 12), Regularity::SemiRegular); // 3x4
        assert_eq!(classify(ArrangementKind::Grid, 6), Regularity::SemiRegular); // 2x3
                                                                                 // 7 is prime: no factorisation, not square.
        assert_eq!(classify(ArrangementKind::Grid, 7), Regularity::Irregular);
        // 26 = 2x13 is too elongated.
        assert_eq!(classify(ArrangementKind::Grid, 26), Regularity::Irregular);
    }

    #[test]
    fn zero_chiplets_rejected() {
        let err = Arrangement::build(ArrangementKind::Grid, 0).unwrap_err();
        assert!(matches!(err, ArrangementError::UnsupportedCount { n: 0, .. }));
    }

    #[test]
    fn semi_regular_hexamesh_rejected() {
        let err = Arrangement::build_with_regularity(
            ArrangementKind::HexaMesh,
            12,
            Regularity::SemiRegular,
        )
        .unwrap_err();
        assert!(matches!(err, ArrangementError::UnsupportedCount { .. }));
    }

    #[test]
    fn single_chiplet_arrangements() {
        for kind in ArrangementKind::ALL {
            let a = Arrangement::build(kind, 1).unwrap();
            assert_eq!(a.num_chiplets(), 1);
            assert_eq!(a.graph().num_vertices(), 1);
            assert_eq!(a.graph().num_edges(), 0);
        }
    }

    #[test]
    fn kind_metadata() {
        assert_eq!(ArrangementKind::Grid.link_sectors(), 4);
        assert_eq!(ArrangementKind::HexaMesh.link_sectors(), 6);
        assert_eq!(ArrangementKind::Brickwall.label(), "BW");
        assert_eq!(ArrangementKind::Honeycomb.to_string(), "Honeycomb");
        assert_eq!(Regularity::SemiRegular.to_string(), "semi-regular");
    }

    #[test]
    fn all_kinds_build_across_counts() {
        for kind in ArrangementKind::ALL {
            for n in 1..=40 {
                let a =
                    Arrangement::build(kind, n).unwrap_or_else(|e| panic!("{kind} n={n}: {e}"));
                assert_eq!(a.num_chiplets(), n, "{kind} n={n}");
                assert_eq!(a.graph().num_vertices(), n);
                if n > 1 {
                    assert!(
                        chiplet_graph::metrics::is_connected(a.graph()),
                        "{kind} n={n} disconnected"
                    );
                }
                assert!(
                    chiplet_graph::metrics::satisfies_planar_edge_bound(a.graph()),
                    "{kind} n={n} violates planarity bound"
                );
            }
        }
    }
}
