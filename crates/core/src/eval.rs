//! The end-to-end evaluation pipeline (§VI): arrangement → ICI graph →
//! link-bandwidth estimate → cycle-accurate simulation → absolute and
//! grid-normalised latency/throughput.

use std::fmt;

use nocsim::measure::{self, LoadPointResult, SaturationResult};
use nocsim::{LinkSpec, MeasureConfig, SimConfig, SimError};
use serde::{Deserialize, Serialize};

use crate::arrangement::{Arrangement, ArrangementKind, Regularity};
use crate::link::{self, estimate_link, LinkEstimate, LinkModelError, LinkParams};
use crate::proxies;
use crate::shape::{self, ShapeError, ShapeParams};

/// Errors from the evaluation pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EvalError {
    /// Shape solving failed (honeycomb, or invalid parameters).
    Shape(ShapeError),
    /// Link-bandwidth estimation failed.
    Link(LinkModelError),
    /// Simulation failed (disconnected topology or invalid configuration).
    Sim(SimError),
    /// Evaluation needs at least two endpoints (`N ≥ 1` and
    /// `N × endpoints ≥ 2`).
    TooFewEndpoints(usize),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Shape(e) => write!(f, "shape: {e}"),
            EvalError::Link(e) => write!(f, "link model: {e}"),
            EvalError::Sim(e) => write!(f, "simulation: {e}"),
            EvalError::TooFewEndpoints(n) => {
                write!(f, "evaluation needs at least 2 endpoints, got {n}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

impl From<ShapeError> for EvalError {
    fn from(e: ShapeError) -> Self {
        EvalError::Shape(e)
    }
}
impl From<LinkModelError> for EvalError {
    fn from(e: LinkModelError) -> Self {
        EvalError::Link(e)
    }
}
impl From<SimError> for EvalError {
    fn from(e: SimError) -> Self {
        EvalError::Sim(e)
    }
}

/// All parameters of the §VI evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive] // construct via paper_defaults()/quick() and mutate
pub struct EvalParams {
    /// Combined compute-chiplet area `A_all` in mm² (§VI-B: 800).
    pub total_area_mm2: f64,
    /// Power bump fraction `p_p` (§VI-B: 0.4).
    pub power_fraction: f64,
    /// Bump pitch `P_B` in mm (§VI-B: 0.15).
    pub bump_pitch_mm: f64,
    /// Non-data wires per link (§VI-B: 12).
    pub non_data_wires: u32,
    /// Link frequency in GHz (§VI-B: 16).
    pub frequency_ghz: f64,
    /// Arrangements with at most this many chiplets get hand-optimised bump
    /// sectors (§VI-B: 7).
    pub hand_optimize_threshold: usize,
    /// Simulator configuration (§VI-A values by default).
    pub sim: SimConfig,
    /// Measurement schedule and saturation criteria.
    pub measure: MeasureConfig,
}

impl EvalParams {
    /// The paper's parameters (§VI-A and §VI-B).
    #[must_use]
    pub fn paper_defaults() -> Self {
        Self {
            total_area_mm2: link::UCIE_TOTAL_AREA_MM2,
            power_fraction: link::UCIE_POWER_FRACTION,
            bump_pitch_mm: link::UCIE_BUMP_PITCH_MM,
            non_data_wires: link::UCIE_NON_DATA_WIRES,
            frequency_ghz: link::UCIE_FREQUENCY_GHZ,
            hand_optimize_threshold: 7,
            sim: SimConfig::paper_defaults(),
            measure: MeasureConfig::default(),
        }
    }

    /// Paper parameters with a fast measurement schedule (tests, smoke runs).
    #[must_use]
    pub fn quick() -> Self {
        Self { measure: MeasureConfig::quick(), ..Self::paper_defaults() }
    }
}

impl Default for EvalParams {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// The per-arrangement link budget: chiplet area, sector area, and the
/// resulting per-link and full-global bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkBudget {
    /// Chiplet area `A_C = A_all / N` in mm².
    pub chiplet_area_mm2: f64,
    /// Link bump-sector area `A_B` in mm².
    pub link_sector_area_mm2: f64,
    /// Per-link estimate from the §V model.
    pub estimate: LinkEstimate,
    /// Full global bandwidth in Tb/s: `N × endpoints/chiplet × B` (§VI-A).
    pub full_global_bandwidth_tbps: f64,
}

/// Computes the link budget of an arrangement (§VI-B).
///
/// Arrangements up to [`EvalParams::hand_optimize_threshold`] chiplets use
/// the hand-optimised sector area (all non-power bump area split across the
/// busiest chiplet's links); larger ones use the closed-form sector areas of
/// §IV-B.
///
/// # Errors
///
/// * [`EvalError::Shape`] for the honeycomb (no rectangular shape),
/// * [`EvalError::Link`] for invalid link-model parameters,
/// * [`EvalError::TooFewEndpoints`] for `N = 1` hand-optimised arrangements
///   with no links at all.
pub fn link_budget(
    arrangement: &Arrangement,
    params: &EvalParams,
) -> Result<LinkBudget, EvalError> {
    let n = arrangement.num_chiplets();
    let chiplet_area = params.total_area_mm2 / n as f64;
    let shape_params = ShapeParams::new(chiplet_area, params.power_fraction)?;
    let sector_area = if n <= params.hand_optimize_threshold {
        shape::hand_optimized_sector_area(arrangement, &shape_params)
            .ok_or(EvalError::TooFewEndpoints(n))?
    } else {
        shape::shape_for(arrangement.kind(), &shape_params)?.link_sector_area
    };
    let estimate = estimate_link(&LinkParams {
        bump_area: sector_area,
        bump_pitch: params.bump_pitch_mm,
        non_data_wires: params.non_data_wires,
        frequency_ghz: params.frequency_ghz,
    })?;
    let endpoints = params.sim.endpoints_per_router as f64;
    let full_global = n as f64 * endpoints * estimate.bandwidth_tbps();
    Ok(LinkBudget {
        chiplet_area_mm2: chiplet_area,
        link_sector_area_mm2: sector_area,
        estimate,
        full_global_bandwidth_tbps: full_global,
    })
}

/// A fully evaluated arrangement: one row of Fig. 7's underlying data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalResult {
    /// Arrangement family.
    pub kind: ArrangementKind,
    /// Regularity class used for this `N`.
    pub regularity: Regularity,
    /// Chiplet count.
    pub n: usize,
    /// Chiplet area in mm².
    pub chiplet_area_mm2: f64,
    /// Per-link bump-sector area in mm².
    pub link_sector_area_mm2: f64,
    /// Per-link bandwidth in Gb/s.
    pub link_bandwidth_gbps: f64,
    /// Full global bandwidth in Tb/s.
    pub full_global_bandwidth_tbps: f64,
    /// Average zero-load packet latency in cycles (Fig. 7a).
    pub zero_load_latency_cycles: f64,
    /// Saturation throughput as a fraction of full global bandwidth.
    pub saturation_fraction: f64,
    /// Saturation throughput in Tb/s (Fig. 7b).
    pub saturation_throughput_tbps: f64,
    /// Network diameter of the ICI graph.
    pub diameter: u32,
}

/// Structural zero-load latency for an arrangement under `params`.
///
/// # Errors
///
/// Propagates routing/configuration errors as [`EvalError::Sim`].
pub fn zero_load_of(arrangement: &Arrangement, params: &EvalParams) -> Result<f64, EvalError> {
    Ok(measure::zero_load_latency(arrangement.graph(), &params.sim)?)
}

/// Simulates one injection-rate point of the saturation search: build the
/// simulator, warm up, measure, classify. Each point is independent of
/// every other point — this is the unit of work the experiment engine
/// schedules (`crates/xp`); `zero_load` is the latency-guard baseline from
/// [`zero_load_of`].
///
/// # Errors
///
/// Propagates simulator construction failures as [`EvalError::Sim`].
pub fn measure_load_point(
    arrangement: &Arrangement,
    params: &EvalParams,
    rate: f64,
    zero_load: f64,
) -> Result<LoadPointResult, EvalError> {
    let config = SimConfig { injection_rate: rate, ..params.sim };
    let latency = config.link_latency;
    Ok(measure::run_load_point_with_specs(
        arrangement.graph(),
        &config,
        &params.measure,
        |_, _| LinkSpec::uniform(latency),
        zero_load,
    )?)
}

/// Re-export of the probe-rate helper of the batched saturation search
/// (see [`measure::saturation_search_batched`]).
pub use nocsim::measure::round_rates;

/// Finds the saturation point by *batched* bracketing
/// ([`measure::saturation_search_batched`] at the resolution of
/// `params.measure`): every round asks `run_points` to simulate
/// [`round_rates`] — independent jobs the caller may run on any number of
/// workers. With `fanout = 1` the probe sequence (and therefore the
/// result) is exactly the serial bisection the paper methodology uses;
/// larger fanouts trade ~2× total work for `fanout`-way parallelism
/// inside a single arrangement's search.
///
/// # Errors
///
/// Propagates failures from `run_points`.
pub fn saturation_search_with<F>(
    params: &EvalParams,
    fanout: usize,
    run_points: F,
) -> Result<SaturationResult, EvalError>
where
    F: FnMut(&[f64]) -> Result<Vec<LoadPointResult>, EvalError>,
{
    measure::saturation_search_batched(params.measure.rate_resolution, fanout, run_points)
}

/// [`evaluate`] with the saturation search decomposed through
/// `run_points` (see [`saturation_search_with`]): the engine plugs a
/// parallel map in here to spread one arrangement's rate search over
/// workers. `run_points` receives the zero-load latency (computed once,
/// here) as the latency-guard baseline for [`measure_load_point`],
/// followed by the batch of rates to simulate.
///
/// # Errors
///
/// See [`link_budget`]; additionally [`EvalError::Sim`] if the simulator
/// rejects the topology or configuration.
pub fn evaluate_with<F>(
    arrangement: &Arrangement,
    params: &EvalParams,
    fanout: usize,
    mut run_points: F,
) -> Result<EvalResult, EvalError>
where
    F: FnMut(f64, &[f64]) -> Result<Vec<LoadPointResult>, EvalError>,
{
    let n = arrangement.num_chiplets();
    if n * params.sim.endpoints_per_router < 2 {
        return Err(EvalError::TooFewEndpoints(n * params.sim.endpoints_per_router));
    }
    let budget = link_budget(arrangement, params)?;
    let zero_load = zero_load_of(arrangement, params)?;
    let saturation =
        saturation_search_with(params, fanout, |rates| run_points(zero_load, rates))?;
    let diameter = proxies::measured_diameter(arrangement).unwrap_or(0);
    Ok(EvalResult {
        kind: arrangement.kind(),
        regularity: arrangement.regularity(),
        n,
        chiplet_area_mm2: budget.chiplet_area_mm2,
        link_sector_area_mm2: budget.link_sector_area_mm2,
        link_bandwidth_gbps: budget.estimate.bandwidth_gbps(),
        full_global_bandwidth_tbps: budget.full_global_bandwidth_tbps,
        zero_load_latency_cycles: zero_load,
        saturation_fraction: saturation.throughput,
        saturation_throughput_tbps: saturation.throughput * budget.full_global_bandwidth_tbps,
        diameter,
    })
}

/// Evaluates an arrangement end to end: link budget, zero-load latency, and
/// simulated saturation throughput. This runs the cycle-accurate simulator
/// several times (binary search over injection rates) — seconds per call at
/// `N ≈ 100` in release builds. Equivalent to [`evaluate_with`] at
/// `fanout = 1` with a serial runner.
///
/// # Errors
///
/// See [`link_budget`]; additionally [`EvalError::Sim`] if the simulator
/// rejects the topology or configuration.
pub fn evaluate(
    arrangement: &Arrangement,
    params: &EvalParams,
) -> Result<EvalResult, EvalError> {
    evaluate_with(arrangement, params, 1, |zero_load, rates| {
        rates
            .iter()
            .map(|&rate| measure_load_point(arrangement, params, rate, zero_load))
            .collect()
    })
}

/// Evaluates everything except the saturation simulation (cheap; used for
/// latency-only sweeps and tests). `saturation_*` fields are zero.
///
/// # Errors
///
/// See [`evaluate`].
pub fn evaluate_analytic(
    arrangement: &Arrangement,
    params: &EvalParams,
) -> Result<EvalResult, EvalError> {
    let n = arrangement.num_chiplets();
    if n * params.sim.endpoints_per_router < 2 {
        return Err(EvalError::TooFewEndpoints(n * params.sim.endpoints_per_router));
    }
    let budget = link_budget(arrangement, params)?;
    let zero_load = measure::zero_load_latency(arrangement.graph(), &params.sim)?;
    Ok(EvalResult {
        kind: arrangement.kind(),
        regularity: arrangement.regularity(),
        n,
        chiplet_area_mm2: budget.chiplet_area_mm2,
        link_sector_area_mm2: budget.link_sector_area_mm2,
        link_bandwidth_gbps: budget.estimate.bandwidth_gbps(),
        full_global_bandwidth_tbps: budget.full_global_bandwidth_tbps,
        zero_load_latency_cycles: zero_load,
        saturation_fraction: 0.0,
        saturation_throughput_tbps: 0.0,
        diameter: proxies::measured_diameter(arrangement).unwrap_or(0),
    })
}

/// One point of Fig. 7c/7d: a variant's latency and throughput relative to
/// the grid baseline at the same `N` (100 = parity).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormalizedPoint {
    /// Chiplet count.
    pub n: usize,
    /// Zero-load latency as % of the grid's (lower is better).
    pub latency_pct: f64,
    /// Saturation throughput as % of the grid's (higher is better).
    pub throughput_pct: f64,
}

/// Normalises `results` against `baseline` by matching chiplet counts
/// (§VI-C, Fig. 7c/d). Points without a matching baseline `N` are skipped.
#[must_use]
pub fn normalize(results: &[EvalResult], baseline: &[EvalResult]) -> Vec<NormalizedPoint> {
    results
        .iter()
        .filter_map(|r| {
            let base = baseline.iter().find(|b| b.n == r.n)?;
            if base.zero_load_latency_cycles <= 0.0 {
                return None;
            }
            let latency_pct =
                100.0 * r.zero_load_latency_cycles / base.zero_load_latency_cycles;
            let throughput_pct = if base.saturation_throughput_tbps > 0.0 {
                100.0 * r.saturation_throughput_tbps / base.saturation_throughput_tbps
            } else {
                0.0
            };
            Some(NormalizedPoint { n: r.n, latency_pct, throughput_pct })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrangement::Arrangement;

    fn quick_params() -> EvalParams {
        let mut p = EvalParams::quick();
        // Keep unit tests fast: small router buffers, coarse search.
        p.sim.vcs = 4;
        p.sim.buffer_depth = 4;
        p.measure.warmup_cycles = 800;
        p.measure.measure_cycles = 1_500;
        p.measure.rate_resolution = 0.05;
        p
    }

    #[test]
    fn link_budget_matches_hand_computation() {
        // N = 16 grid: A_C = 50 mm², A_B = 0.6·50/4 = 7.5 mm²,
        // N_w = ⌊7.5/0.0225⌋ = 333, N_dw = 321, B = 5136 Gb/s,
        // full global = 16 · 2 · 5.136 Tb/s.
        let a = Arrangement::build(ArrangementKind::Grid, 16).unwrap();
        let budget = link_budget(&a, &EvalParams::paper_defaults()).unwrap();
        assert!((budget.chiplet_area_mm2 - 50.0).abs() < 1e-12);
        assert!((budget.link_sector_area_mm2 - 7.5).abs() < 1e-12);
        assert_eq!(budget.estimate.wires, 333);
        assert_eq!(budget.estimate.data_wires, 321);
        assert!((budget.estimate.bandwidth_gbps() - 5_136.0).abs() < 1e-9);
        assert!((budget.full_global_bandwidth_tbps - 16.0 * 2.0 * 5.136).abs() < 1e-9);
    }

    #[test]
    fn grid_links_fatter_than_hexamesh_links() {
        // Same N: the grid splits bump area over 4 sectors, BW/HM over 6 —
        // the discrepancy §VI-C highlights.
        let params = EvalParams::paper_defaults();
        let g = Arrangement::build(ArrangementKind::Grid, 64).unwrap();
        let hm = Arrangement::build(ArrangementKind::HexaMesh, 64).unwrap();
        let bg = link_budget(&g, &params).unwrap();
        let bhm = link_budget(&hm, &params).unwrap();
        assert!(bg.estimate.bandwidth_gbps() > bhm.estimate.bandwidth_gbps());
        let ratio = bg.link_sector_area_mm2 / bhm.link_sector_area_mm2;
        assert!((ratio - 1.5).abs() < 1e-9, "4 vs 6 sectors ⇒ 1.5x area ratio");
    }

    #[test]
    fn small_n_uses_hand_optimized_sectors() {
        let params = EvalParams::paper_defaults();
        let a = Arrangement::build(ArrangementKind::Grid, 2).unwrap();
        let budget = link_budget(&a, &params).unwrap();
        // N = 2: A_C = 400, max degree 1, A_B = 0.6·400 = 240 mm².
        assert!((budget.link_sector_area_mm2 - 240.0).abs() < 1e-9);
    }

    #[test]
    fn single_chiplet_rejected() {
        let params = EvalParams::paper_defaults();
        let a = Arrangement::build(ArrangementKind::Grid, 1).unwrap();
        assert!(matches!(link_budget(&a, &params), Err(EvalError::TooFewEndpoints(1))));
    }

    #[test]
    fn analytic_evaluation_orders_latency_correctly() {
        // HexaMesh must beat the grid on zero-load latency at N = 37.
        let params = quick_params();
        let g = Arrangement::build(ArrangementKind::Grid, 37).unwrap();
        let hm = Arrangement::build(ArrangementKind::HexaMesh, 37).unwrap();
        let rg = evaluate_analytic(&g, &params).unwrap();
        let rhm = evaluate_analytic(&hm, &params).unwrap();
        assert!(
            rhm.zero_load_latency_cycles < rg.zero_load_latency_cycles,
            "HM {} !< G {}",
            rhm.zero_load_latency_cycles,
            rg.zero_load_latency_cycles
        );
        assert!(rhm.diameter < rg.diameter);
    }

    #[test]
    fn full_evaluation_small_case() {
        let params = quick_params();
        let a = Arrangement::build(ArrangementKind::Grid, 9).unwrap();
        let r = evaluate(&a, &params).unwrap();
        assert!(r.saturation_fraction > 0.0 && r.saturation_fraction <= 1.0);
        assert!(r.saturation_throughput_tbps > 0.0);
        assert!(r.zero_load_latency_cycles > 0.0);
        assert_eq!(r.n, 9);
    }

    #[test]
    fn normalization_is_100_for_self() {
        let params = quick_params();
        let a = Arrangement::build(ArrangementKind::Grid, 16).unwrap();
        let r = evaluate_analytic(&a, &params).unwrap();
        let points = normalize(&[r], &[r]);
        assert_eq!(points.len(), 1);
        assert!((points[0].latency_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn normalization_skips_unmatched_counts() {
        let params = quick_params();
        let a = Arrangement::build(ArrangementKind::Grid, 16).unwrap();
        let b = Arrangement::build(ArrangementKind::Grid, 25).unwrap();
        let ra = evaluate_analytic(&a, &params).unwrap();
        let rb = evaluate_analytic(&b, &params).unwrap();
        assert!(normalize(&[ra], &[rb]).is_empty());
    }

    #[test]
    fn error_conversions_display() {
        let e: EvalError = ShapeError::InvalidArea(-1.0).into();
        assert!(e.to_string().contains("shape"));
        let e: EvalError = LinkModelError::InvalidPitch(0.0).into();
        assert!(e.to_string().contains("link model"));
    }
}
