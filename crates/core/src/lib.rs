//! # HexaMesh — chiplet arrangements with high-performance interconnects
//!
//! A from-scratch Rust reproduction of *HexaMesh: Scaling to Hundreds of
//! Chiplets with an Optimized Chiplet Arrangement* (Iff, Besta, Cavalcante,
//! Fischer, Benini, Hoefler — DAC 2023). The paper asks: how should tens to
//! hundreds of identical rectangular chiplets be shaped and arranged so that
//! the inter-chiplet interconnect (ICI), built only from short links between
//! *adjacent* chiplets, has minimal diameter and maximal bisection
//! bandwidth?
//!
//! This crate provides the paper's contributions as a library:
//!
//! * [`arrangement`] — generators for the grid (baseline), honeycomb,
//!   brickwall, and HexaMesh arrangements, in regular, semi-regular, and
//!   irregular variants (§IV-A, §IV-C), each with its physical floorplan and
//!   ICI graph;
//! * [`proxies`] — the closed-form diameter/bisection formulas and measured
//!   counterparts (§III-C, §IV-D);
//! * [`shape`] — chiplet shape and bump-sector optimisation (§IV-B, Fig. 5);
//! * [`link`] — the D2D link-bandwidth model (§V, Table I);
//! * [`eval`] — the full §VI pipeline combining the link model with
//!   cycle-accurate simulation (the `nocsim` crate) to produce zero-load
//!   latency and saturation throughput, absolute and grid-normalised.
//!
//! # Quickstart
//!
//! ```
//! use hexamesh::arrangement::{Arrangement, ArrangementKind};
//! use hexamesh::proxies;
//!
//! # fn main() -> Result<(), hexamesh::arrangement::ArrangementError> {
//! // A 37-chiplet HexaMesh (3 complete rings) vs. the grid baseline:
//! let hm = Arrangement::build(ArrangementKind::HexaMesh, 37)?;
//! let grid = Arrangement::build(ArrangementKind::Grid, 37)?;
//!
//! let d_hm = proxies::measured_diameter(&hm).unwrap();
//! let d_g = proxies::measured_diameter(&grid).unwrap();
//! assert!(d_hm < d_g, "HexaMesh has the smaller network diameter");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrangement;
pub mod eval;
pub mod link;
pub mod proxies;
pub mod report;
pub mod shape;

pub use arrangement::{Arrangement, ArrangementError, ArrangementKind, Regularity};
pub use eval::{evaluate, evaluate_analytic, EvalError, EvalParams, EvalResult};
pub use link::{estimate_link, LinkEstimate, LinkParams};
pub use shape::{ChipletShape, ShapeParams};
