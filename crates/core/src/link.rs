//! The D2D link-bandwidth model (§V, Table I).
//!
//! ```text
//! N_w  = A_B / P_B²          (wires that fit the bump sector)
//! N_dw = N_w − N_ndw         (minus handshake/clock/sideband wires)
//! B    = N_dw · f            (link bandwidth)
//! ```
//!
//! The wire count is floored to an integer (a regular bump layout cannot
//! hold fractional wires; the paper notes a staggered layout would fit
//! slightly more).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Errors from the link model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkModelError {
    /// Bump-sector area must be non-negative and finite.
    InvalidArea(f64),
    /// Bump pitch must be positive and finite.
    InvalidPitch(f64),
    /// Frequency must be positive and finite.
    InvalidFrequency(f64),
}

impl fmt::Display for LinkModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkModelError::InvalidArea(a) => write!(f, "bump area {a} must be >= 0"),
            LinkModelError::InvalidPitch(p) => write!(f, "bump pitch {p} must be > 0"),
            LinkModelError::InvalidFrequency(hz) => write!(f, "frequency {hz} must be > 0"),
        }
    }
}

impl std::error::Error for LinkModelError {}

/// Architectural parameters of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// `A_B`: area (mm²) available for the bumps of one D2D link.
    pub bump_area: f64,
    /// `P_B`: bump pitch (mm).
    pub bump_pitch: f64,
    /// `N_ndw`: non-data wires per link (handshake, clock, sideband).
    pub non_data_wires: u32,
    /// `f`: link operating frequency in GHz.
    pub frequency_ghz: f64,
}

impl LinkParams {
    /// The paper's UCIe-derived constants (§VI-B): C4 bumps at 0.15 mm
    /// pitch, 12 non-data wires, 16 GHz operation. `bump_area` is filled in
    /// per-arrangement by the caller.
    #[must_use]
    pub fn ucie_c4(bump_area: f64) -> Self {
        Self {
            bump_area,
            bump_pitch: UCIE_BUMP_PITCH_MM,
            non_data_wires: UCIE_NON_DATA_WIRES,
            frequency_ghz: UCIE_FREQUENCY_GHZ,
        }
    }

    /// Silicon-interposer micro-bumps (§II: 30–60 µm pitch; we take the
    /// 45 µm midpoint). The ~11× bump-density advantage over C4 is the
    /// reason interposers exist despite their cost and their ≤ 2 mm link
    /// reach.
    #[must_use]
    pub fn ucie_microbump(bump_area: f64) -> Self {
        Self {
            bump_area,
            bump_pitch: MICROBUMP_PITCH_MM,
            non_data_wires: UCIE_NON_DATA_WIRES,
            frequency_ghz: UCIE_FREQUENCY_GHZ,
        }
    }
}

/// §VI-B: C4 bump pitch `P_B` = 0.15 mm.
pub const UCIE_BUMP_PITCH_MM: f64 = 0.15;
/// §II: micro-bump pitch midpoint (30–60 µm range) for silicon interposers.
pub const MICROBUMP_PITCH_MM: f64 = 0.045;
/// §VI-B: `N_ndw` = 12 (2 clock, 1 valid, 1 track per direction + 4
/// sideband).
pub const UCIE_NON_DATA_WIRES: u32 = 12;
/// §VI-B: 16 GHz operation (UCIe's 32 GT/s maximum data rate).
pub const UCIE_FREQUENCY_GHZ: f64 = 16.0;
/// §VI-B: combined compute-chiplet area, just below the reticle limit.
pub const UCIE_TOTAL_AREA_MM2: f64 = 800.0;
/// §VI-B: fraction of bumps used for power supply.
pub const UCIE_POWER_FRACTION: f64 = 0.4;

/// Output of the link model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkEstimate {
    /// `N_w`: wires that fit the sector.
    pub wires: u64,
    /// `N_dw`: data wires (`N_w − N_ndw`, floored at zero).
    pub data_wires: u64,
    /// `B`: link bandwidth in Gbit/s (`N_dw · f`); integral for integral
    /// frequencies but stored ×1000 as Mbit/s to stay exact.
    pub bandwidth_mbps: u64,
}

impl LinkEstimate {
    /// Link bandwidth in Gbit/s.
    #[must_use]
    pub fn bandwidth_gbps(&self) -> f64 {
        self.bandwidth_mbps as f64 / 1_000.0
    }

    /// Link bandwidth in Tbit/s.
    #[must_use]
    pub fn bandwidth_tbps(&self) -> f64 {
        self.bandwidth_mbps as f64 / 1_000_000.0
    }
}

/// Estimates the bandwidth of one D2D link (§V-B).
///
/// # Errors
///
/// Returns a [`LinkModelError`] for non-finite or non-positive parameters.
///
/// # Example
///
/// ```
/// use hexamesh::link::{estimate_link, LinkParams};
///
/// // A 2.4 mm² sector of 0.15 mm-pitch C4 bumps at 16 GHz:
/// let est = estimate_link(&LinkParams::ucie_c4(2.4))?;
/// assert_eq!(est.wires, 106);       // ⌊2.4 / 0.0225⌋
/// assert_eq!(est.data_wires, 94);   // 106 − 12
/// assert_eq!(est.bandwidth_gbps(), 1504.0);
/// # Ok::<(), hexamesh::link::LinkModelError>(())
/// ```
pub fn estimate_link(params: &LinkParams) -> Result<LinkEstimate, LinkModelError> {
    if !(params.bump_area.is_finite() && params.bump_area >= 0.0) {
        return Err(LinkModelError::InvalidArea(params.bump_area));
    }
    if !(params.bump_pitch.is_finite() && params.bump_pitch > 0.0) {
        return Err(LinkModelError::InvalidPitch(params.bump_pitch));
    }
    if !(params.frequency_ghz.is_finite() && params.frequency_ghz > 0.0) {
        return Err(LinkModelError::InvalidFrequency(params.frequency_ghz));
    }
    let wires = (params.bump_area / (params.bump_pitch * params.bump_pitch)).floor() as u64;
    let data_wires = wires.saturating_sub(u64::from(params.non_data_wires));
    let bandwidth_mbps = (data_wires as f64 * params.frequency_ghz * 1_000.0).round() as u64;
    Ok(LinkEstimate { wires, data_wires, bandwidth_mbps })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        let bad_area = LinkParams { bump_area: f64::NAN, ..LinkParams::ucie_c4(1.0) };
        assert!(matches!(estimate_link(&bad_area), Err(LinkModelError::InvalidArea(_))));
        let bad_pitch = LinkParams { bump_pitch: 0.0, ..LinkParams::ucie_c4(1.0) };
        assert!(matches!(estimate_link(&bad_pitch), Err(LinkModelError::InvalidPitch(_))));
        let bad_freq = LinkParams { frequency_ghz: -16.0, ..LinkParams::ucie_c4(1.0) };
        assert!(matches!(estimate_link(&bad_freq), Err(LinkModelError::InvalidFrequency(_))));
    }

    #[test]
    fn wire_count_floors() {
        // 1 mm² at 0.15 mm pitch: 1 / 0.0225 = 44.4 → 44 wires.
        let est = estimate_link(&LinkParams::ucie_c4(1.0)).unwrap();
        assert_eq!(est.wires, 44);
        assert_eq!(est.data_wires, 32);
    }

    #[test]
    fn non_data_wires_saturate_at_zero() {
        // A sector too small for even the non-data wires yields zero
        // bandwidth, not a negative count.
        let est = estimate_link(&LinkParams::ucie_c4(0.1)).unwrap();
        assert!(est.wires < 12);
        assert_eq!(est.data_wires, 0);
        assert_eq!(est.bandwidth_mbps, 0);
    }

    #[test]
    fn zero_area_is_valid_and_zero_bandwidth() {
        let est = estimate_link(&LinkParams::ucie_c4(0.0)).unwrap();
        assert_eq!(est.wires, 0);
        assert_eq!(est.bandwidth_gbps(), 0.0);
    }

    #[test]
    fn bandwidth_monotone_in_area() {
        let mut last = 0;
        for area in [0.5, 1.0, 2.0, 4.0, 8.0] {
            let est = estimate_link(&LinkParams::ucie_c4(area)).unwrap();
            assert!(est.bandwidth_mbps >= last, "area {area}");
            last = est.bandwidth_mbps;
        }
    }

    #[test]
    fn bandwidth_scales_with_frequency() {
        let base = LinkParams::ucie_c4(2.0);
        let double = LinkParams { frequency_ghz: 32.0, ..base };
        let b1 = estimate_link(&base).unwrap().bandwidth_mbps;
        let b2 = estimate_link(&double).unwrap().bandwidth_mbps;
        assert_eq!(b2, 2 * b1);
    }

    #[test]
    fn microbumps_pack_an_order_of_magnitude_more_wires() {
        // (0.15 / 0.045)² ≈ 11.1× the wire count for the same sector.
        let c4 = estimate_link(&LinkParams::ucie_c4(2.4)).unwrap();
        let micro = estimate_link(&LinkParams::ucie_microbump(2.4)).unwrap();
        let ratio = micro.wires as f64 / c4.wires as f64;
        assert!((10.0..12.5).contains(&ratio), "wire ratio {ratio}");
        assert!(micro.bandwidth_mbps > 10 * c4.bandwidth_mbps);
    }

    #[test]
    fn unit_conversions() {
        let est = LinkEstimate { wires: 0, data_wires: 0, bandwidth_mbps: 1_504_000 };
        assert_eq!(est.bandwidth_gbps(), 1_504.0);
        assert!((est.bandwidth_tbps() - 1.504).abs() < 1e-12);
    }
}
