//! Performance proxies (§III-C, §IV-D): network diameter and bisection
//! bandwidth, both as closed-form formulas for regular arrangements and as
//! measured values on constructed graphs.

use chiplet_graph::metrics;
use chiplet_partition::{bisect, BisectionConfig};

use crate::arrangement::{Arrangement, ArrangementKind, Regularity};

/// `D_G(N) = 2√N − 2` — diameter of a regular grid (§IV-D).
#[must_use]
pub fn grid_diameter(n: usize) -> f64 {
    2.0 * (n as f64).sqrt() - 2.0
}

/// `D_BW(N) = 2√N − 2 − ⌊(√N − 1)/2⌋` — diameter of a regular brickwall.
#[must_use]
pub fn brickwall_diameter(n: usize) -> f64 {
    let s = (n as f64).sqrt();
    2.0 * s - 2.0 - ((s - 1.0) / 2.0).floor()
}

/// `D_HM(N) = (1/3)√(12N − 3) − 1` — diameter of a regular HexaMesh.
/// For `N = 1 + 3r(r+1)` this is exactly `2r`.
#[must_use]
pub fn hexamesh_diameter(n: usize) -> f64 {
    (12.0 * n as f64 - 3.0).sqrt() / 3.0 - 1.0
}

/// `B_G(N) = √N` — bisection bandwidth of a regular grid (§IV-D).
#[must_use]
pub fn grid_bisection(n: usize) -> f64 {
    (n as f64).sqrt()
}

/// `B_BW(N) = 2√N − 1` — bisection bandwidth of a regular brickwall.
#[must_use]
pub fn brickwall_bisection(n: usize) -> f64 {
    2.0 * (n as f64).sqrt() - 1.0
}

/// `B_HM(N) = (2/3)√(12N − 3) − 1` — bisection bandwidth of a regular
/// HexaMesh. For `N = 1 + 3r(r+1)` this is exactly `4r + 1`.
#[must_use]
pub fn hexamesh_bisection(n: usize) -> f64 {
    2.0 * (12.0 * n as f64 - 3.0).sqrt() / 3.0 - 1.0
}

/// Closed-form diameter for a *regular* arrangement of kind `kind`, or
/// `None` when the paper gives no formula (honeycomb shares the brickwall's).
#[must_use]
pub fn formula_diameter(kind: ArrangementKind, n: usize) -> f64 {
    match kind {
        ArrangementKind::Grid => grid_diameter(n),
        ArrangementKind::Brickwall | ArrangementKind::Honeycomb => brickwall_diameter(n),
        ArrangementKind::HexaMesh => hexamesh_diameter(n),
    }
}

/// Closed-form bisection bandwidth for a *regular* arrangement.
#[must_use]
pub fn formula_bisection(kind: ArrangementKind, n: usize) -> f64 {
    match kind {
        ArrangementKind::Grid => grid_bisection(n),
        ArrangementKind::Brickwall | ArrangementKind::Honeycomb => brickwall_bisection(n),
        ArrangementKind::HexaMesh => hexamesh_bisection(n),
    }
}

/// Asymptotic diameter ratio `lim D_BW / D_G = 3/4` (−25%).
pub const DIAMETER_RATIO_BW_OVER_G: f64 = 0.75;
/// Asymptotic diameter ratio `lim D_HM / D_G = 1/√3` (−42%).
pub const DIAMETER_RATIO_HM_OVER_G: f64 = 0.577_350_269_189_625_8;
/// Asymptotic bisection ratio `lim B_BW / B_G = 2` (+100%).
pub const BISECTION_RATIO_BW_OVER_G: f64 = 2.0;
/// Asymptotic bisection ratio `lim B_HM / B_G = 4/√3 ≈ 2.31` (+130%).
pub const BISECTION_RATIO_HM_OVER_G: f64 = 2.309_401_076_758_503;

/// Measured diameter of an arrangement's graph (`None` if disconnected,
/// which does not happen for generated arrangements).
#[must_use]
pub fn measured_diameter(arrangement: &Arrangement) -> Option<u32> {
    metrics::diameter(arrangement.graph())
}

/// Bisection bandwidth following the paper's methodology (§IV-D b): the
/// closed-form value for regular arrangements, and a balanced-partitioner
/// estimate (our METIS substitute) for semi-regular and irregular ones.
#[must_use]
pub fn paper_bisection(arrangement: &Arrangement, config: &BisectionConfig) -> f64 {
    match arrangement.regularity() {
        Regularity::Regular => {
            formula_bisection(arrangement.kind(), arrangement.num_chiplets())
        }
        _ => measured_bisection(arrangement, config).unwrap_or(0) as f64,
    }
}

/// Bisection width measured on the constructed graph with the partitioner
/// (`None` for empty graphs, which generated arrangements never are).
#[must_use]
pub fn measured_bisection(
    arrangement: &Arrangement,
    config: &BisectionConfig,
) -> Option<usize> {
    bisect(arrangement.graph(), config).ok().map(|r| r.cut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrangement::hexamesh_count;

    #[test]
    fn grid_formula_matches_measured_diameter() {
        for side in 1..=10usize {
            let n = side * side;
            let a = Arrangement::build_with_regularity(
                ArrangementKind::Grid,
                n,
                Regularity::Regular,
            )
            .unwrap();
            assert_eq!(measured_diameter(&a).unwrap() as f64, grid_diameter(n), "grid n={n}");
        }
    }

    #[test]
    fn brickwall_formula_matches_measured_diameter() {
        for side in 1..=10usize {
            let n = side * side;
            let a = Arrangement::build_with_regularity(
                ArrangementKind::Brickwall,
                n,
                Regularity::Regular,
            )
            .unwrap();
            assert_eq!(
                measured_diameter(&a).unwrap() as f64,
                brickwall_diameter(n),
                "brickwall n={n}"
            );
        }
    }

    #[test]
    fn hexamesh_formula_matches_measured_diameter() {
        for r in 0..=5usize {
            let n = hexamesh_count(r);
            let a = Arrangement::build_with_regularity(
                ArrangementKind::HexaMesh,
                n,
                Regularity::Regular,
            )
            .unwrap();
            assert_eq!(
                measured_diameter(&a).unwrap() as f64,
                hexamesh_diameter(n),
                "hexamesh r={r}"
            );
        }
    }

    #[test]
    fn hexamesh_bisection_formula_matches_exact_cut() {
        // Exactly solvable sizes: N = 7 (r=1) and N = 19 (r=2).
        for r in 1..=2usize {
            let n = hexamesh_count(r);
            let a = Arrangement::build_with_regularity(
                ArrangementKind::HexaMesh,
                n,
                Regularity::Regular,
            )
            .unwrap();
            let exact = measured_bisection(&a, &BisectionConfig::default()).unwrap();
            assert_eq!(exact as f64, hexamesh_bisection(n), "r={r}: exact {exact}");
            assert_eq!(exact, 4 * r + 1);
        }
    }

    #[test]
    fn grid_bisection_formula_matches_exact_cut_even_sides() {
        for side in [2usize, 4] {
            let n = side * side;
            let a = Arrangement::build_with_regularity(
                ArrangementKind::Grid,
                n,
                Regularity::Regular,
            )
            .unwrap();
            let exact = measured_bisection(&a, &BisectionConfig::default()).unwrap();
            assert_eq!(exact as f64, grid_bisection(n), "side={side}");
        }
    }

    #[test]
    fn brickwall_bisection_formula_matches_exact_cut() {
        let a = Arrangement::build_with_regularity(
            ArrangementKind::Brickwall,
            16,
            Regularity::Regular,
        )
        .unwrap();
        let exact = measured_bisection(&a, &BisectionConfig::default()).unwrap();
        assert_eq!(exact as f64, brickwall_bisection(16)); // 2*4 - 1 = 7
    }

    #[test]
    fn asymptotic_ratios_converge() {
        // At N = 10_000 the formula ratios are within 2% of the limits.
        let n = 10_000;
        let d_ratio_bw = brickwall_diameter(n) / grid_diameter(n);
        assert!((d_ratio_bw - DIAMETER_RATIO_BW_OVER_G).abs() < 0.02, "{d_ratio_bw}");
        let d_ratio_hm = hexamesh_diameter(n) / grid_diameter(n);
        assert!((d_ratio_hm - DIAMETER_RATIO_HM_OVER_G).abs() < 0.02, "{d_ratio_hm}");
        let b_ratio_bw = brickwall_bisection(n) / grid_bisection(n);
        assert!((b_ratio_bw - BISECTION_RATIO_BW_OVER_G).abs() < 0.02, "{b_ratio_bw}");
        let b_ratio_hm = hexamesh_bisection(n) / grid_bisection(n);
        assert!((b_ratio_hm - BISECTION_RATIO_HM_OVER_G).abs() < 0.02, "{b_ratio_hm}");
    }

    #[test]
    fn headline_improvements() {
        // Abstract: diameter −42%, bisection +130% for HM vs G.
        assert!((1.0 - DIAMETER_RATIO_HM_OVER_G - 0.42).abs() < 0.01);
        assert!((BISECTION_RATIO_HM_OVER_G - 1.0 - 1.30).abs() < 0.01);
        // §IV-D: BW −25% diameter, +100% bisection.
        assert!((1.0 - DIAMETER_RATIO_BW_OVER_G - 0.25).abs() < 1e-12);
        assert!((BISECTION_RATIO_BW_OVER_G - 1.0 - 1.00).abs() < 1e-12);
    }

    #[test]
    fn paper_bisection_dispatches_by_regularity() {
        let regular =
            Arrangement::build_with_regularity(ArrangementKind::Grid, 16, Regularity::Regular)
                .unwrap();
        assert_eq!(paper_bisection(&regular, &BisectionConfig::default()), 4.0);
        let irregular = Arrangement::build_with_regularity(
            ArrangementKind::Grid,
            17,
            Regularity::Irregular,
        )
        .unwrap();
        let b = paper_bisection(&irregular, &BisectionConfig::default());
        assert!(b >= 1.0, "irregular bisection {b}");
    }

    #[test]
    fn honeycomb_shares_brickwall_formulas() {
        assert_eq!(formula_diameter(ArrangementKind::Honeycomb, 49), brickwall_diameter(49));
        assert_eq!(formula_bisection(ArrangementKind::Honeycomb, 49), brickwall_bisection(49));
    }
}
