//! Human-readable design reports: a one-page "datasheet" for an arrangement
//! at a given design point, combining the §IV proxies, §IV-B shape, and §V
//! link model — what an architect would pin to the wall before tape-out.

use std::fmt::Write as _;

use chiplet_partition::BisectionConfig;

use crate::arrangement::Arrangement;
use crate::eval::{link_budget, EvalError, EvalParams};
use crate::proxies;
use crate::shape::{self, ShapeParams};

/// Renders a plain-text datasheet for `arrangement` under `params`.
///
/// The report contains: identity (kind, regularity, N), ICI graph statistics
/// (neighbours, diameter, bisection), chiplet geometry (dimensions, bump
/// sectors, link length), and the link budget (wires, per-link and full
/// global bandwidth).
///
/// # Errors
///
/// Propagates [`EvalError`] from the shape/link computations (e.g. the
/// honeycomb has no rectangular shape, `N = 1` has no links).
pub fn datasheet(arrangement: &Arrangement, params: &EvalParams) -> Result<String, EvalError> {
    let n = arrangement.num_chiplets();
    let stats = arrangement.degree_stats();
    let budget = link_budget(arrangement, params)?;
    let shape_params = ShapeParams::new(budget.chiplet_area_mm2, params.power_fraction)?;
    let chiplet_shape = shape::shape_for(arrangement.kind(), &shape_params)?;
    let diameter = proxies::measured_diameter(arrangement).expect("arrangements are connected");
    let bisection = proxies::paper_bisection(arrangement, &BisectionConfig::default());

    let mut out = String::new();
    let mut line = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };
    line(format!(
        "═══ {} arrangement — {} chiplets ({}) ═══",
        arrangement.kind(),
        n,
        arrangement.regularity()
    ));
    line(String::new());
    line("── Inter-chiplet interconnect ──".to_owned());
    line(format!(
        "  neighbours/chiplet   min {} / max {} / avg {:.2}",
        stats.min, stats.max, stats.average
    ));
    line(format!("  D2D links            {}", arrangement.graph().num_edges()));
    line(format!("  network diameter     {diameter} hops"));
    line(format!("  bisection bandwidth  {bisection:.1} links"));
    line(String::new());
    line("── Chiplet geometry ──".to_owned());
    line(format!("  area                 {:.2} mm²", budget.chiplet_area_mm2));
    line(format!(
        "  dimensions           {:.2} x {:.2} mm (aspect {:.2})",
        chiplet_shape.width,
        chiplet_shape.height,
        chiplet_shape.aspect_ratio()
    ));
    line(format!(
        "  bump sectors         {} link sectors of {:.2} mm² + power sector",
        chiplet_shape.link_sectors, chiplet_shape.link_sector_area
    ));
    line(format!(
        "  max bump distance    {:.2} mm (link length ~{:.2} mm)",
        chiplet_shape.max_bump_distance,
        shape::paper_link_length(&chiplet_shape)
    ));
    line(String::new());
    line("── D2D link budget (§V model) ──".to_owned());
    line(format!(
        "  sector area used     {:.2} mm² {}",
        budget.link_sector_area_mm2,
        if n <= params.hand_optimize_threshold { "(hand-optimised, N ≤ 7)" } else { "" }
    ));
    line(format!(
        "  wires                {} total, {} data",
        budget.estimate.wires, budget.estimate.data_wires
    ));
    line(format!(
        "  per-link bandwidth   {:.0} Gb/s @ {:.0} GHz",
        budget.estimate.bandwidth_gbps(),
        params.frequency_ghz
    ));
    line(format!(
        "  full global bandwidth {:.1} Tb/s ({} chiplets x {} endpoints)",
        budget.full_global_bandwidth_tbps, n, params.sim.endpoints_per_router
    ));
    let _ = write!(out, "");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrangement::ArrangementKind;

    #[test]
    fn datasheet_contains_key_sections() {
        let a = Arrangement::build(ArrangementKind::HexaMesh, 37).unwrap();
        let text = datasheet(&a, &EvalParams::paper_defaults()).unwrap();
        assert!(text.contains("HexaMesh arrangement — 37 chiplets (regular)"));
        assert!(text.contains("Inter-chiplet interconnect"));
        assert!(text.contains("Chiplet geometry"));
        assert!(text.contains("D2D link budget"));
        assert!(text.contains("network diameter     6 hops"));
        assert!(text.contains("bisection bandwidth  13.0 links"));
    }

    #[test]
    fn datasheet_marks_hand_optimized_small_n() {
        let a = Arrangement::build(ArrangementKind::Grid, 4).unwrap();
        let text = datasheet(&a, &EvalParams::paper_defaults()).unwrap();
        assert!(text.contains("hand-optimised"));
    }

    #[test]
    fn honeycomb_has_no_datasheet() {
        let a = Arrangement::build(ArrangementKind::Honeycomb, 9).unwrap();
        assert!(datasheet(&a, &EvalParams::paper_defaults()).is_err());
    }

    #[test]
    fn single_chiplet_has_no_datasheet() {
        let a = Arrangement::build(ArrangementKind::Grid, 1).unwrap();
        assert!(datasheet(&a, &EvalParams::paper_defaults()).is_err());
    }
}
