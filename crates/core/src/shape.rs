//! Chiplet shape and bump-sector optimisation (§IV-B, Fig. 5).
//!
//! Each chiplet's C4-bump/micro-bump field is divided into sectors: one
//! central sector powers the chiplet (fraction `p_p` of all bumps) and the
//! remaining sectors feed the D2D links. The shape of the chiplet is chosen
//! so that all link sectors have equal area `A_B` and equal maximum
//! bump-to-edge distance `D_B`:
//!
//! * **Grid** (Fig. 5a): square chiplets, four link sectors,
//!   `A_B = (1 − p_p)·A_C / 4`.
//! * **Brickwall / HexaMesh** (Fig. 5b): 2:1-ish rectangles from the system
//!   of equations (1)–(5), six link sectors, `A_B = (1 − p_p)·A_C / 6`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::arrangement::{Arrangement, ArrangementKind};

/// Errors from shape computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShapeError {
    /// Chiplet area must be positive and finite.
    InvalidArea(f64),
    /// Power fraction must lie in `[0, 1)` — `p_p = 1` leaves no bumps for
    /// links.
    InvalidPowerFraction(f64),
    /// The honeycomb has no rectangular shape solution.
    NonRectangularKind(ArrangementKind),
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::InvalidArea(a) => write!(f, "chiplet area {a} must be positive"),
            ShapeError::InvalidPowerFraction(p) => {
                write!(f, "power fraction {p} must be in [0, 1)")
            }
            ShapeError::NonRectangularKind(kind) => {
                write!(f, "{kind} chiplets are not rectangular; no shape solution")
            }
        }
    }
}

impl std::error::Error for ShapeError {}

/// Inputs to the shape solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShapeParams {
    /// Chiplet area `A_C` in mm².
    pub chiplet_area: f64,
    /// Fraction `p_p ∈ [0, 1)` of bumps used for the power supply.
    pub power_fraction: f64,
}

impl ShapeParams {
    /// Validates and constructs shape parameters.
    ///
    /// # Errors
    ///
    /// [`ShapeError::InvalidArea`] or [`ShapeError::InvalidPowerFraction`].
    pub fn new(chiplet_area: f64, power_fraction: f64) -> Result<Self, ShapeError> {
        if !(chiplet_area.is_finite() && chiplet_area > 0.0) {
            return Err(ShapeError::InvalidArea(chiplet_area));
        }
        if !(0.0..1.0).contains(&power_fraction) {
            return Err(ShapeError::InvalidPowerFraction(power_fraction));
        }
        Ok(Self { chiplet_area, power_fraction })
    }
}

/// A solved chiplet shape with its bump-sector geometry (all lengths mm,
/// areas mm²).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipletShape {
    /// Chiplet width `W_C`.
    pub width: f64,
    /// Chiplet height `H_C`.
    pub height: f64,
    /// Number of D2D-link bump sectors (4 for grid, 6 for BW/HM).
    pub link_sectors: usize,
    /// Area `A_B` of each link sector.
    pub link_sector_area: f64,
    /// Maximum distance `D_B` between a link bump and the chiplet edge.
    pub max_bump_distance: f64,
    /// Width `W_P` of the central power sector.
    pub power_width: f64,
    /// Height `H_P` of the central power sector.
    pub power_height: f64,
}

impl ChipletShape {
    /// Aspect ratio `W_C / H_C`.
    #[must_use]
    pub fn aspect_ratio(&self) -> f64 {
        self.width / self.height
    }

    /// Area check: `W_C · H_C` (equals `A_C` up to rounding).
    #[must_use]
    pub fn area(&self) -> f64 {
        self.width * self.height
    }
}

/// Shape of a grid-arrangement chiplet (Fig. 5a): a square with the power
/// sector centred and one link sector per side.
///
/// # Errors
///
/// Never fails for validated [`ShapeParams`]; signature kept fallible for
/// API uniformity with [`shape_for`].
pub fn grid_shape(params: &ShapeParams) -> Result<ChipletShape, ShapeError> {
    let ac = params.chiplet_area;
    let pp = params.power_fraction;
    let wc = ac.sqrt();
    let wp = (pp * ac).sqrt();
    Ok(ChipletShape {
        width: wc,
        height: wc,
        link_sectors: 4,
        link_sector_area: 0.25 * (1.0 - pp) * ac,
        max_bump_distance: 0.5 * (wc - wp),
        power_width: wp,
        power_height: wp,
    })
}

/// Shape of a brickwall/HexaMesh chiplet (Fig. 5b): the solution of the
/// system of equations (1)–(5):
///
/// ```text
/// W_C = √(A_C (2 + 4 p_p) / 3)      H_C = A_C / W_C
/// D_B = (1 − p_p) A_C / √(A_C (6 + 12 p_p))
/// ```
///
/// # Errors
///
/// Never fails for validated [`ShapeParams`]; signature kept fallible for
/// API uniformity with [`shape_for`].
pub fn brickwall_shape(params: &ShapeParams) -> Result<ChipletShape, ShapeError> {
    let ac = params.chiplet_area;
    let pp = params.power_fraction;
    let wc = (ac * (2.0 + 4.0 * pp) / 3.0).sqrt();
    let hc = ac / wc;
    let db = (1.0 - pp) * ac / (ac * (6.0 + 12.0 * pp)).sqrt();
    let lb = wc / 2.0;
    let wp = wc - 2.0 * db;
    Ok(ChipletShape {
        width: wc,
        height: hc,
        link_sectors: 6,
        link_sector_area: (1.0 - pp) * ac / 6.0,
        max_bump_distance: db,
        power_width: wp,
        power_height: lb,
    })
}

/// Shape solution for an arrangement kind.
///
/// # Errors
///
/// [`ShapeError::NonRectangularKind`] for the honeycomb.
pub fn shape_for(
    kind: ArrangementKind,
    params: &ShapeParams,
) -> Result<ChipletShape, ShapeError> {
    match kind {
        ArrangementKind::Grid => grid_shape(params),
        ArrangementKind::Brickwall | ArrangementKind::HexaMesh => brickwall_shape(params),
        ArrangementKind::Honeycomb => Err(ShapeError::NonRectangularKind(kind)),
    }
}

/// The paper's §V link-length proxy: the worst-case distance `D_B` from a
/// link bump to the chiplet edge (the partner bump is assumed staggered near
/// the boundary). At the paper's 800 mm² total area this stays "below 4 mm
/// in general, for N ≥ 10 chiplets even below 2 mm" — verified in tests.
#[must_use]
pub fn paper_link_length(shape: &ChipletShape) -> f64 {
    shape.max_bump_distance
}

/// Conservative worst-case D2D link length: both endpoint bumps sit at the
/// maximal distance `D_B` from the shared edge, so the wire spans `2 · D_B`.
/// Twice [`paper_link_length`]; useful as an upper bound when budgeting
/// insertion loss.
#[must_use]
pub fn estimated_link_length(shape: &ChipletShape) -> f64 {
    2.0 * shape.max_bump_distance
}

/// Hand-optimised link-sector area for tiny arrangements (§VI-B: "except
/// for arrangements with N ≤ 7 chiplets which are hand-optimized"): all
/// non-power bump area is split across the links of the busiest chiplet, so
/// no bump area lies fallow. Returns `None` when the arrangement has no
/// links at all (`N = 1`).
#[must_use]
pub fn hand_optimized_sector_area(
    arrangement: &Arrangement,
    params: &ShapeParams,
) -> Option<f64> {
    let max_degree = arrangement.degree_stats().max;
    (max_degree > 0)
        .then(|| (1.0 - params.power_fraction) * params.chiplet_area / max_degree as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrangement::Regularity;

    fn params(ac: f64, pp: f64) -> ShapeParams {
        ShapeParams::new(ac, pp).expect("valid test params")
    }

    #[test]
    fn validation() {
        assert!(matches!(ShapeParams::new(0.0, 0.4), Err(ShapeError::InvalidArea(_))));
        assert!(matches!(ShapeParams::new(-1.0, 0.4), Err(ShapeError::InvalidArea(_))));
        assert!(matches!(
            ShapeParams::new(16.0, 1.0),
            Err(ShapeError::InvalidPowerFraction(_))
        ));
        assert!(matches!(
            ShapeParams::new(16.0, -0.1),
            Err(ShapeError::InvalidPowerFraction(_))
        ));
        assert!(ShapeParams::new(16.0, 0.0).is_ok());
    }

    #[test]
    fn paper_worked_example() {
        // §IV-B: A_C = 16 mm², p_p = 0.4 ⇒ W_C = 4.38, H_C = 3.65,
        // D_B = 0.73 (mm).
        let shape = brickwall_shape(&params(16.0, 0.4)).unwrap();
        assert!((shape.width - 4.38).abs() < 0.01, "W_C = {}", shape.width);
        assert!((shape.height - 3.65).abs() < 0.01, "H_C = {}", shape.height);
        assert!(
            (shape.max_bump_distance - 0.73).abs() < 0.01,
            "D_B = {}",
            shape.max_bump_distance
        );
    }

    #[test]
    fn grid_shape_is_square() {
        let shape = grid_shape(&params(16.0, 0.4)).unwrap();
        assert_eq!(shape.width, shape.height);
        assert_eq!(shape.width, 4.0);
        assert_eq!(shape.link_sectors, 4);
        // A_B = (1 − 0.4) · 16 / 4 = 2.4.
        assert!((shape.link_sector_area - 2.4).abs() < 1e-12);
    }

    #[test]
    fn sector_areas_tile_the_chiplet() {
        for pp in [0.0, 0.2, 0.4, 0.6, 0.8] {
            let p = params(20.0, pp);
            let g = grid_shape(&p).unwrap();
            let total_g = g.link_sectors as f64 * g.link_sector_area + pp * p.chiplet_area;
            assert!((total_g - p.chiplet_area).abs() < 1e-9, "grid pp={pp}");
            let b = brickwall_shape(&p).unwrap();
            let total_b = b.link_sectors as f64 * b.link_sector_area + pp * p.chiplet_area;
            assert!((total_b - p.chiplet_area).abs() < 1e-9, "bw pp={pp}");
        }
    }

    #[test]
    fn equation_system_identities_hold() {
        // Check Eqs. (1)–(5) of §IV-B on the solved shape.
        for (ac, pp) in [(16.0, 0.4), (8.0, 0.25), (32.0, 0.6), (5.0, 0.0)] {
            let p = params(ac, pp);
            let s = brickwall_shape(&p).unwrap();
            let lb = s.width / 2.0; // Eq. (2): W_C = 2 L_B
                                    // Eq. (1): H_C = 2 D_B + L_B.
            assert!(
                (s.height - (2.0 * s.max_bump_distance + lb)).abs() < 1e-9,
                "eq1 ac={ac} pp={pp}"
            );
            // Eq. (3): W_P = W_C − 2 D_B.
            assert!(
                (s.power_width - (s.width - 2.0 * s.max_bump_distance)).abs() < 1e-9,
                "eq3 ac={ac} pp={pp}"
            );
            // Eq. (4): H_C · W_C = A_C.
            assert!((s.area() - ac).abs() < 1e-9, "eq4 ac={ac} pp={pp}");
            // Eq. (5): W_P · L_B = A_C · p_p.
            assert!((s.power_width * lb - ac * pp).abs() < 1e-9, "eq5 ac={ac} pp={pp}");
        }
    }

    #[test]
    fn bump_distances_comparable_between_layouts() {
        // For the paper's parameters both layouts keep D_B well below 1 mm,
        // enabling short (high-frequency) D2D links.
        let p = params(16.0, 0.4);
        assert!(grid_shape(&p).unwrap().max_bump_distance < 1.0);
        assert!(brickwall_shape(&p).unwrap().max_bump_distance < 1.0);
    }

    #[test]
    fn honeycomb_has_no_shape() {
        let err = shape_for(ArrangementKind::Honeycomb, &params(16.0, 0.4)).unwrap_err();
        assert!(matches!(err, ShapeError::NonRectangularKind(_)));
    }

    #[test]
    fn hand_optimized_area_uses_max_degree() {
        let p = params(100.0, 0.4);
        // N = 2 grid: each chiplet has one link; all 60 mm² of link bump
        // area feeds it.
        let a2 = Arrangement::build(ArrangementKind::Grid, 2).unwrap();
        assert!((hand_optimized_sector_area(&a2, &p).unwrap() - 60.0).abs() < 1e-9);
        // N = 7 HexaMesh: centre chiplet has 6 links.
        let a7 = Arrangement::build(ArrangementKind::HexaMesh, 7).unwrap();
        assert!((hand_optimized_sector_area(&a7, &p).unwrap() - 10.0).abs() < 1e-9);
        // N = 1: no links.
        let a1 =
            Arrangement::build_with_regularity(ArrangementKind::Grid, 1, Regularity::Regular)
                .unwrap();
        assert!(hand_optimized_sector_area(&a1, &p).is_none());
    }

    #[test]
    fn paper_link_length_claim_holds() {
        // §V: at A_all = 800 mm², link lengths are below 4 mm for all N >= 2
        // and below 2 mm for N >= 10 — for both bump layouts.
        for n in 2..=100usize {
            let ac = 800.0 / n as f64;
            let p = params(ac, 0.4);
            for shape in [grid_shape(&p).unwrap(), brickwall_shape(&p).unwrap()] {
                let length = paper_link_length(&shape);
                assert!(length < 4.0, "n={n}: link length {length:.2} mm");
                if n >= 10 {
                    assert!(length < 2.0, "n={n}: link length {length:.2} mm");
                }
                // The conservative two-sided bound is exactly twice that.
                assert!((estimated_link_length(&shape) - 2.0 * length).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn link_length_shrinks_with_chiplet_count() {
        let mut last = f64::INFINITY;
        for n in [2usize, 10, 50, 100, 200] {
            let p = params(800.0 / n as f64, 0.4);
            let length = paper_link_length(&brickwall_shape(&p).unwrap());
            assert!(length < last, "n={n}");
            last = length;
        }
    }

    #[test]
    fn zero_power_fraction_extremes() {
        let s = brickwall_shape(&params(12.0, 0.0)).unwrap();
        // With no power bumps, W_P = 0 and everything feeds links.
        assert!(s.power_width.abs() < 1e-9);
        assert!((s.link_sector_area * 6.0 - 12.0).abs() < 1e-9);
    }

    #[test]
    fn error_display() {
        assert!(ShapeError::InvalidArea(-3.0).to_string().contains("-3"));
        assert!(ShapeError::InvalidPowerFraction(2.0).to_string().contains('2'));
    }
}
