//! Property-based tests for arrangement generators: the §III/§IV invariants
//! must hold for *every* chiplet count, not just the ones in the paper's
//! figures.

use chiplet_graph::metrics;
use hexamesh::arrangement::{
    classify, hexamesh_count, Arrangement, ArrangementKind, Regularity,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_arrangement_is_connected_and_planar(
        n in 1usize..=130,
        kind_idx in 0usize..4,
    ) {
        let kind = ArrangementKind::ALL[kind_idx];
        let a = Arrangement::build(kind, n).expect("n >= 1 builds");
        prop_assert_eq!(a.graph().num_vertices(), n);
        prop_assert!(n == 1 || metrics::is_connected(a.graph()));
        prop_assert!(metrics::satisfies_planar_edge_bound(a.graph()));
    }

    #[test]
    fn grid_degree_never_exceeds_four(n in 2usize..=130) {
        let a = Arrangement::build(ArrangementKind::Grid, n).expect("builds");
        prop_assert!(a.degree_stats().max <= 4);
    }

    #[test]
    fn brickwall_and_hexamesh_degree_never_exceeds_six(
        n in 2usize..=130,
        hex in proptest::bool::ANY,
    ) {
        let kind = if hex { ArrangementKind::HexaMesh } else { ArrangementKind::Brickwall };
        let a = Arrangement::build(kind, n).expect("builds");
        prop_assert!(a.degree_stats().max <= 6);
    }

    #[test]
    fn average_degree_respects_planar_bound(n in 3usize..=130, kind_idx in 0usize..4) {
        let kind = ArrangementKind::ALL[kind_idx];
        let a = Arrangement::build(kind, n).expect("builds");
        let bound = metrics::planar_average_degree_bound(n).expect("n >= 3");
        prop_assert!(a.degree_stats().average <= bound + 1e-9);
    }

    #[test]
    fn irregular_hexamesh_min_degree_two(n in 8usize..=130) {
        prop_assume!(classify(ArrangementKind::HexaMesh, n) == Regularity::Irregular);
        let a = Arrangement::build(ArrangementKind::HexaMesh, n).expect("builds");
        prop_assert!(a.degree_stats().min >= 2, "n={} min={}", n, a.degree_stats().min);
    }

    #[test]
    fn placements_never_overlap_and_match_count(n in 1usize..=100, kind_idx in 0usize..3) {
        // Placement::push would have rejected overlaps; re-validate area
        // bookkeeping: total area == n * brick area.
        let kind = [ArrangementKind::Grid, ArrangementKind::Brickwall, ArrangementKind::HexaMesh]
            [kind_idx];
        let a = Arrangement::build(kind, n).expect("builds");
        let placement = a.placement().expect("rectangular kinds have placements");
        prop_assert_eq!(placement.compute_count(), n);
        let per_chiplet = placement.chiplets()[0].rect.area();
        prop_assert_eq!(placement.total_area(), per_chiplet * n as i64);
    }

    #[test]
    fn diameter_ordering_holds_for_all_counts(n in 10usize..=130) {
        let d = |kind| {
            let a = Arrangement::build(kind, n).expect("builds");
            metrics::diameter(a.graph()).expect("connected")
        };
        // HexaMesh never loses to the grid; brickwall never loses to the
        // grid. (HM vs BW can tie or swap by one at awkward irregular
        // counts, so only the vs-grid ordering is asserted universally.)
        prop_assert!(d(ArrangementKind::HexaMesh) <= d(ArrangementKind::Grid));
        prop_assert!(d(ArrangementKind::Brickwall) <= d(ArrangementKind::Grid));
    }

    #[test]
    fn classification_is_stable_and_buildable(n in 1usize..=130, kind_idx in 0usize..4) {
        let kind = ArrangementKind::ALL[kind_idx];
        let regularity = classify(kind, n);
        // The canonical classification must always be buildable.
        let a = Arrangement::build_with_regularity(kind, n, regularity).expect("canonical");
        prop_assert_eq!(a.regularity(), regularity);
        prop_assert_eq!(a.kind(), kind);
    }
}

#[test]
fn regular_hexamesh_counts_are_exactly_the_formula() {
    let regular: Vec<usize> = (1..=200)
        .filter(|&n| classify(ArrangementKind::HexaMesh, n) == Regularity::Regular)
        .collect();
    let expected: Vec<usize> = (0..8).map(hexamesh_count).filter(|&n| n <= 200).collect();
    assert_eq!(regular, expected);
}
