//! `name()`/`label()`/`Display` ↔ `FromStr` round-trip contract for
//! [`ArrangementKind`] — the kinds axis of study specs and `--kinds`
//! flags. Pinned over the whole (finite) domain plus random case
//! variation, so spec files and output labels can never drift apart.

use std::str::FromStr;

use hexamesh::arrangement::ArrangementKind;
use proptest::prelude::*;

#[test]
fn every_kind_round_trips_through_all_three_spellings() {
    for kind in ArrangementKind::ALL {
        assert_eq!(ArrangementKind::from_str(kind.name()).unwrap(), kind);
        assert_eq!(ArrangementKind::from_str(kind.label()).unwrap(), kind);
        assert_eq!(ArrangementKind::from_str(&kind.to_string()).unwrap(), kind);
    }
    assert!(ArrangementKind::from_str("squircle").is_err());
    assert!(ArrangementKind::from_str("").is_err());
}

proptest! {
    #[test]
    fn parsing_is_case_insensitive(
        idx in 0usize..4,
        flips in proptest::collection::vec(proptest::bool::ANY, 16usize),
    ) {
        let kind = ArrangementKind::ALL[idx];
        let mangled: String = kind
            .name()
            .chars()
            .zip(flips.iter().cycle())
            .map(|(c, &up)| if up { c.to_ascii_uppercase() } else { c })
            .collect();
        prop_assert_eq!(ArrangementKind::from_str(&mangled).unwrap(), kind);
    }

    #[test]
    fn noise_never_parses_to_a_wrong_kind(
        letters in proptest::collection::vec(0u8..52, 1usize..10),
    ) {
        let noise: String = letters
            .iter()
            .map(|&l| if l < 26 { char::from(b'a' + l) } else { char::from(b'A' + l - 26) })
            .collect();
        if let Ok(parsed) = ArrangementKind::from_str(&noise) {
            let lower = noise.to_ascii_lowercase();
            prop_assert!(
                lower == parsed.name() || lower == parsed.label().to_ascii_lowercase(),
                "{:?} parsed to {:?} without matching a spelling", noise, parsed
            );
        }
    }
}
