//! Frequency-binning revenue: the per-chiplet binning advantage.
//!
//! §I of the paper: "In binning, chips are grouped into different bins
//! (e.g., based on power consumption or maximum clock frequency) which are
//! then priced differently. In 2.5D integration, binning is done on a
//! per-chiplet scale, increasing the total revenue."
//!
//! The mechanism: a die's maximum frequency is a random variable
//! (parametric variation). A monolithic chip containing `m` compute blocks
//! clocks at the *slowest* block — the minimum of `m` samples — while
//! disaggregated chiplets are binned individually before assembly and can
//! be matched into same-bin systems. Since the minimum of `m` samples is
//! stochastically dominated by a single sample, per-chiplet binning always
//! earns at least as much per compute unit, and the gap grows with `m` and
//! with process variation.

use serde::{Deserialize, Serialize};

use crate::CostError;

/// One price bin: sold at `price` if the unit clocks at `min_ghz` or above.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrequencyBin {
    /// Lower frequency edge of the bin in GHz.
    pub min_ghz: f64,
    /// Selling price per compute unit in dollars.
    pub price: f64,
}

/// Parametric-variation and price-ladder inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinningParams {
    /// Mean maximum frequency of one compute unit in GHz.
    pub mean_ghz: f64,
    /// Standard deviation of the maximum frequency in GHz.
    pub sigma_ghz: f64,
    /// Price ladder, strictly descending in `min_ghz`; a unit sells in the
    /// first bin whose threshold it meets.
    pub bins: Vec<FrequencyBin>,
    /// Revenue for units below every bin (scrap/salvage).
    pub salvage_price: f64,
}

impl BinningParams {
    /// A laptop-CPU-flavoured ladder around a 3 GHz mean with 150 MHz
    /// sigma: premium, standard, and value bins.
    #[must_use]
    pub fn consumer_cpu() -> Self {
        Self {
            mean_ghz: 3.0,
            sigma_ghz: 0.15,
            bins: vec![
                FrequencyBin { min_ghz: 3.2, price: 450.0 },
                FrequencyBin { min_ghz: 3.0, price: 320.0 },
                FrequencyBin { min_ghz: 2.7, price: 220.0 },
            ],
            salvage_price: 40.0,
        }
    }

    /// Validates ordering and ranges.
    ///
    /// # Errors
    ///
    /// [`CostError::NonPositive`] naming the offending field; the bin
    /// ladder must be non-empty, strictly descending in threshold, with
    /// non-negative prices.
    pub fn validated(&self) -> Result<(), CostError> {
        if !(self.mean_ghz.is_finite() && self.mean_ghz > 0.0) {
            return Err(CostError::NonPositive("mean frequency"));
        }
        if !(self.sigma_ghz.is_finite() && self.sigma_ghz >= 0.0) {
            return Err(CostError::NonPositive("frequency sigma"));
        }
        if self.bins.is_empty() {
            return Err(CostError::NonPositive("bin count"));
        }
        for w in self.bins.windows(2) {
            if w[1].min_ghz >= w[0].min_ghz {
                return Err(CostError::NonPositive("bin ladder ordering"));
            }
        }
        for b in &self.bins {
            if !(b.price.is_finite() && b.price >= 0.0 && b.min_ghz.is_finite()) {
                return Err(CostError::NonPositive("bin price/threshold"));
            }
        }
        if !(self.salvage_price.is_finite() && self.salvage_price >= 0.0) {
            return Err(CostError::NonPositive("salvage price"));
        }
        Ok(())
    }

    /// `P[unit frequency ≥ f]` for a single compute unit.
    fn survival(&self, f_ghz: f64) -> f64 {
        if self.sigma_ghz == 0.0 {
            return if self.mean_ghz >= f_ghz { 1.0 } else { 0.0 };
        }
        let z = (f_ghz - self.mean_ghz) / self.sigma_ghz;
        1.0 - normal_cdf(z)
    }

    /// Expected revenue per compute unit when units are binned
    /// **individually** (the 2.5D case: each chiplet is tested and binned
    /// before assembly, and same-bin chiplets are matched).
    ///
    /// # Errors
    ///
    /// See [`BinningParams::validated`].
    pub fn per_unit_revenue_individual(&self) -> Result<f64, CostError> {
        self.validated()?;
        Ok(self.expected_revenue(|f| self.survival(f)))
    }

    /// Expected revenue per compute unit when `m` units share one die (the
    /// monolithic case): the die clocks at the slowest of `m` samples, so
    /// every unit sells in the bin of the *minimum*.
    ///
    /// # Errors
    ///
    /// [`CostError::NonPositive`] for `m == 0` or invalid parameters.
    pub fn per_unit_revenue_monolithic(&self, m: u32) -> Result<f64, CostError> {
        self.validated()?;
        if m == 0 {
            return Err(CostError::NonPositive("compute units per die"));
        }
        // P[min of m ≥ f] = P[single ≥ f]^m.
        Ok(self.expected_revenue(|f| self.survival(f).powi(m as i32)))
    }

    /// Expected revenue given the survival function `P[frequency ≥ f]`.
    fn expected_revenue(&self, survival: impl Fn(f64) -> f64) -> f64 {
        let mut revenue = 0.0;
        let mut prob_higher = 0.0; // P[selling in a better bin already]
        for bin in &self.bins {
            let p_at_least = survival(bin.min_ghz);
            let p_this_bin = (p_at_least - prob_higher).max(0.0);
            revenue += p_this_bin * bin.price;
            prob_higher = p_at_least.max(prob_higher);
        }
        revenue + (1.0 - prob_higher).max(0.0) * self.salvage_price
    }
}

/// The binning comparison for an `m`-unit product.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinningComparison {
    /// Per-compute-unit revenue with per-chiplet binning.
    pub individual: f64,
    /// Per-compute-unit revenue with monolithic (min-of-m) binning.
    pub monolithic: f64,
}

impl BinningComparison {
    /// Relative revenue uplift of per-chiplet binning (`≥ 0`).
    #[must_use]
    pub fn uplift_fraction(&self) -> f64 {
        if self.monolithic <= 0.0 {
            return 0.0;
        }
        self.individual / self.monolithic - 1.0
    }
}

/// Compares per-chiplet and monolithic binning revenue for a product with
/// `m` compute units.
///
/// # Errors
///
/// Propagates parameter validation failures.
pub fn binning_comparison(
    params: &BinningParams,
    m: u32,
) -> Result<BinningComparison, CostError> {
    Ok(BinningComparison {
        individual: params.per_unit_revenue_individual()?,
        monolithic: params.per_unit_revenue_monolithic(m)?,
    })
}

/// Standard normal CDF via the Abramowitz–Stegun 7.1.26 `erf`
/// approximation (absolute error ≤ 1.5e−7 — ample for revenue fractions).
fn normal_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    let erf = |x: f64| -> f64 {
        let sign = if x < 0.0 { -1.0 } else { 1.0 };
        let x = x.abs();
        const P: f64 = 0.327_591_1;
        const A: [f64; 5] =
            [0.254_829_592, -0.284_496_736, 1.421_413_741, -1.453_152_027, 1.061_405_429];
        let t = 1.0 / (1.0 + P * x);
        let poly = t * (A[0] + t * (A[1] + t * (A[2] + t * (A[3] + t * A[4]))));
        sign * (1.0 - poly * (-x * x).exp())
    };
    0.5 * (1.0 + erf(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_bad_ladders() {
        let mut p = BinningParams::consumer_cpu();
        p.bins[0].min_ghz = 2.0; // no longer descending
        assert!(p.validated().is_err());
        let mut p = BinningParams::consumer_cpu();
        p.bins.clear();
        assert!(p.validated().is_err());
        let mut p = BinningParams::consumer_cpu();
        p.bins[1].price = -5.0;
        assert!(p.validated().is_err());
        let mut p = BinningParams::consumer_cpu();
        p.sigma_ghz = f64::NAN;
        assert!(p.validated().is_err());
        assert!(BinningParams::consumer_cpu().validated().is_ok());
    }

    #[test]
    fn zero_variation_equalises_the_two_schemes() {
        let p = BinningParams { sigma_ghz: 0.0, ..BinningParams::consumer_cpu() };
        let cmp = binning_comparison(&p, 8).unwrap();
        assert!((cmp.individual - cmp.monolithic).abs() < 1e-12);
        assert_eq!(cmp.uplift_fraction(), 0.0);
        // Every die clocks exactly at the 3.0 GHz mean: the standard bin.
        assert!((cmp.individual - 320.0).abs() < 1e-9);
    }

    #[test]
    fn single_bin_at_mean_checkpoint() {
        // One bin at exactly the mean: a single sample passes with
        // probability ½; the min of two with probability ¼.
        let p = BinningParams {
            mean_ghz: 3.0,
            sigma_ghz: 0.2,
            bins: vec![FrequencyBin { min_ghz: 3.0, price: 100.0 }],
            salvage_price: 0.0,
        };
        let single = p.per_unit_revenue_individual().unwrap();
        let duo = p.per_unit_revenue_monolithic(2).unwrap();
        assert!((single - 50.0).abs() < 1e-3, "{single}");
        assert!((duo - 25.0).abs() < 1e-3, "{duo}");
    }

    #[test]
    fn uplift_is_nonnegative_and_grows_with_m() {
        let p = BinningParams::consumer_cpu();
        let mut last = 0.0;
        for m in [1u32, 2, 4, 8, 16] {
            let cmp = binning_comparison(&p, m).unwrap();
            let uplift = cmp.uplift_fraction();
            assert!(uplift >= last - 1e-12, "uplift shrank at m={m}");
            assert!(uplift >= 0.0);
            last = uplift;
        }
        // m = 1: the two schemes coincide.
        let cmp = binning_comparison(&p, 1).unwrap();
        assert!(cmp.uplift_fraction().abs() < 1e-12);
    }

    #[test]
    fn more_variation_more_uplift() {
        let narrow = BinningParams { sigma_ghz: 0.05, ..BinningParams::consumer_cpu() };
        let wide = BinningParams { sigma_ghz: 0.30, ..BinningParams::consumer_cpu() };
        let u_narrow = binning_comparison(&narrow, 8).unwrap().uplift_fraction();
        let u_wide = binning_comparison(&wide, 8).unwrap().uplift_fraction();
        assert!(u_wide > u_narrow, "wide {u_wide} !> narrow {u_narrow}");
    }

    #[test]
    fn revenue_bounded_by_ladder_extremes() {
        let p = BinningParams::consumer_cpu();
        for m in [1u32, 4, 32] {
            let cmp = binning_comparison(&p, m).unwrap();
            for r in [cmp.individual, cmp.monolithic] {
                assert!(r >= p.salvage_price - 1e-9);
                assert!(r <= p.bins[0].price + 1e-9);
            }
        }
    }

    #[test]
    fn zero_units_rejected() {
        let p = BinningParams::consumer_cpu();
        assert!(p.per_unit_revenue_monolithic(0).is_err());
    }
}
