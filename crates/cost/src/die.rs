//! Recurring die cost: silicon, yield loss, and known-good-die testing.

use serde::Deserialize;
use serde::Serialize;

use crate::wafer::{dies_per_wafer, Wafer};
use crate::yield_model::YieldModel;
use crate::CostError;

/// A fabrication process node for costing purposes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ProcessNode {
    /// Human-readable name ("5nm", "14nm", …) — informational only.
    pub name: &'static str,
    /// Processed wafer specification.
    pub wafer: Wafer,
    /// Defect density in defects/mm².
    pub defect_density: f64,
    /// Yield model used for dies on this node.
    pub yield_model: YieldModel,
}

/// Cost breakdown for one die type.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DieCost {
    /// Gross die candidates per wafer.
    pub dies_per_wafer: u64,
    /// Fabrication yield of this die.
    pub fab_yield: f64,
    /// Cost of a raw (untested) die: wafer cost spread over gross dies.
    pub raw_die: f64,
    /// Cost of a *good* die before testing: raw cost divided by yield.
    pub good_die: f64,
    /// Cost of a known-good die: good-die cost plus test cost.
    pub known_good_die: f64,
}

/// Computes the die cost on a node, with `test_cost` dollars of wafer-level
/// test per die (known-good-die testing; §I's binning/reuse economics assume
/// chiplets are tested before assembly).
///
/// # Errors
///
/// Propagates wafer-geometry and yield-model errors.
pub fn die_cost(
    node: &ProcessNode,
    die_area: f64,
    test_cost: f64,
) -> Result<DieCost, CostError> {
    if !(test_cost.is_finite() && test_cost >= 0.0) {
        return Err(CostError::NonPositive("test cost"));
    }
    let dpw = dies_per_wafer(&node.wafer, die_area)?;
    let fab_yield = node.yield_model.die_yield(node.defect_density, die_area)?;
    let raw = node.wafer.cost / dpw as f64;
    // Yield loss: a good die carries the cost of the bad ones diced with it.
    let good = raw / fab_yield.max(f64::MIN_POSITIVE);
    Ok(DieCost {
        dies_per_wafer: dpw,
        fab_yield,
        raw_die: raw,
        good_die: good,
        known_good_die: good + test_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node_5nm() -> ProcessNode {
        ProcessNode {
            name: "5nm",
            wafer: Wafer::mm300(17_000.0).expect("valid"),
            defect_density: 0.002,
            yield_model: YieldModel::NegativeBinomial { alpha: 3.0 },
        }
    }

    #[test]
    fn cost_components_ordered() {
        let c = die_cost(&node_5nm(), 100.0, 5.0).unwrap();
        assert!(c.raw_die < c.good_die);
        assert!(c.good_die < c.known_good_die);
        assert!((c.known_good_die - c.good_die - 5.0).abs() < 1e-12);
    }

    #[test]
    fn per_area_cost_grows_superlinearly_with_die_size() {
        // The whole economic argument of §I: $/mm² of *good* silicon grows
        // with die area because yield falls.
        let node = node_5nm();
        let per_mm2 = |area: f64| die_cost(&node, area, 0.0).unwrap().good_die / area;
        assert!(per_mm2(200.0) > per_mm2(50.0));
        assert!(per_mm2(800.0) > 1.5 * per_mm2(50.0));
    }

    #[test]
    fn mature_node_cheaper_for_same_die() {
        let advanced = node_5nm();
        let mature = ProcessNode {
            name: "28nm",
            wafer: Wafer::mm300(3_000.0).expect("valid"),
            defect_density: 0.0005,
            yield_model: YieldModel::NegativeBinomial { alpha: 3.0 },
        };
        let a = die_cost(&advanced, 150.0, 0.0).unwrap();
        let m = die_cost(&mature, 150.0, 0.0).unwrap();
        assert!(m.good_die < a.good_die);
        assert!(m.fab_yield > a.fab_yield);
    }

    #[test]
    fn negative_test_cost_rejected() {
        assert!(die_cost(&node_5nm(), 100.0, -1.0).is_err());
    }
}
