//! A quantitative cost model for 2.5D integration, in the spirit of
//! *Chiplet Actuary* (Feng & Ma, 2022), which the HexaMesh paper names as
//! the complementary methodology to its performance analysis (§VII): "This
//! cost model could be applied together with our evaluation methodology to
//! compare architectures both in terms of cost and performance."
//!
//! The model covers the recurring and non-recurring cost mechanics §I of the
//! paper argues motivate disaggregation:
//!
//! * [`wafer`] — wafer geometry: gross dies per wafer,
//! * [`yield_model`] — fabrication yield vs. die area (Poisson, Murphy,
//!   negative-binomial clustering),
//! * [`die`] — recurring die cost including known-good-die (KGD) testing,
//! * [`packaging`] — package substrate / silicon interposer and bonding
//!   yield,
//! * [`nre`] — non-recurring engineering: mask sets and design cost,
//!   amortised over volume, with chiplet-reuse discounts,
//! * [`system`] — putting it together: monolithic vs. 2.5D system cost and
//!   the disaggregation break-even.
//!
//! # Example
//!
//! ```
//! use chiplet_cost::system::{CostParams, system_cost_comparison};
//!
//! let params = CostParams::default_5nm();
//! let cmp = system_cost_comparison(&params, 800.0, 16)?;
//! // An 800 mm² system at 5 nm defect densities: disaggregation wins.
//! assert!(cmp.mcm_total < cmp.monolithic_total);
//! # Ok::<(), chiplet_cost::CostError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binning;
pub mod die;
pub mod nre;
pub mod packaging;
pub mod portfolio;
pub mod system;
pub mod wafer;
pub mod yield_model;

use std::fmt;

/// Errors from cost-model computations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostError {
    /// A parameter that must be positive (area, diameter, cost, volume…)
    /// was not. The message names it.
    NonPositive(&'static str),
    /// The die is too large to fit the wafer at all.
    DieLargerThanWafer {
        /// Die area in mm².
        die_area: f64,
        /// Wafer diameter in mm.
        wafer_diameter: f64,
    },
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::NonPositive(what) => write!(f, "{what} must be positive"),
            CostError::DieLargerThanWafer { die_area, wafer_diameter } => write!(
                f,
                "die of {die_area} mm² cannot be cut from a {wafer_diameter} mm wafer"
            ),
        }
    }
}

impl std::error::Error for CostError {}
