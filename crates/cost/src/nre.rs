//! Non-recurring engineering cost: mask sets and design effort, amortised
//! over production volume.
//!
//! Section I of the paper: "the non-recurring cost almost doubles whenever
//! we transition to a more advanced technology node", and chiplet **reuse**
//! "avoids redesigning components, further reducing the non-recurring cost".

use serde::{Deserialize, Serialize};

use crate::CostError;

/// NRE inputs for one die design.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NreParams {
    /// Mask-set cost for the node, dollars.
    pub mask_set: f64,
    /// Design/verification cost for the die, dollars.
    pub design: f64,
    /// Number of products (SKUs) this die is reused across (§I "Reuse");
    /// the NRE is split across them.
    pub reuse_products: u32,
    /// Production volume per product (units) the NRE amortises over.
    pub volume_per_product: u64,
}

impl NreParams {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// [`CostError::NonPositive`] for zero volumes/products or negative
    /// costs.
    pub fn validated(self) -> Result<Self, CostError> {
        if !(self.mask_set.is_finite() && self.mask_set >= 0.0) {
            return Err(CostError::NonPositive("mask-set cost"));
        }
        if !(self.design.is_finite() && self.design >= 0.0) {
            return Err(CostError::NonPositive("design cost"));
        }
        if self.reuse_products == 0 {
            return Err(CostError::NonPositive("reuse product count"));
        }
        if self.volume_per_product == 0 {
            return Err(CostError::NonPositive("production volume"));
        }
        Ok(self)
    }

    /// NRE dollars attributed to each unit shipped.
    ///
    /// # Errors
    ///
    /// See [`NreParams::validated`].
    pub fn per_unit(&self) -> Result<f64, CostError> {
        let p = self.validated()?;
        let total_units = u128::from(p.reuse_products) * u128::from(p.volume_per_product);
        Ok((p.mask_set + p.design) / total_units as f64)
    }
}

/// Per-unit NRE of a full system built from several die designs.
///
/// # Errors
///
/// Propagates per-die validation errors.
pub fn system_nre_per_unit(designs: &[NreParams]) -> Result<f64, CostError> {
    designs.iter().map(NreParams::per_unit).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> NreParams {
        NreParams {
            mask_set: 30.0e6,
            design: 100.0e6,
            reuse_products: 1,
            volume_per_product: 1_000_000,
        }
    }

    #[test]
    fn per_unit_amortization() {
        // (30M + 100M) / 1M units = $130/unit.
        assert!((base().per_unit().unwrap() - 130.0).abs() < 1e-9);
    }

    #[test]
    fn reuse_divides_nre() {
        // §I "Reuse": the same compute chiplet in 4 products quarters the
        // per-unit NRE.
        let reused = NreParams { reuse_products: 4, ..base() };
        assert!((reused.per_unit().unwrap() - 32.5).abs() < 1e-9);
    }

    #[test]
    fn system_nre_sums_designs() {
        // A 2.5D system: one reused compute chiplet + one cheap IO chiplet
        // on a mature node vs. one monolithic design.
        let compute = NreParams { reuse_products: 4, ..base() };
        let io = NreParams {
            mask_set: 5.0e6,
            design: 20.0e6,
            reuse_products: 8,
            volume_per_product: 1_000_000,
        };
        let mcm = system_nre_per_unit(&[compute, io]).unwrap();
        let monolithic = system_nre_per_unit(&[base()]).unwrap();
        assert!(mcm < monolithic, "mcm {mcm} !< monolithic {monolithic}");
    }

    #[test]
    fn validation() {
        assert!(NreParams { reuse_products: 0, ..base() }.validated().is_err());
        assert!(NreParams { volume_per_product: 0, ..base() }.validated().is_err());
        assert!(NreParams { mask_set: -1.0, ..base() }.validated().is_err());
    }
}
