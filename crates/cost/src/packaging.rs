//! Packaging cost: organic substrate or silicon interposer, die bonding,
//! and assembly yield (§II of the paper describes both integration styles).

use serde::Deserialize;
use serde::Serialize;

use crate::die::{die_cost, ProcessNode};
use crate::CostError;

/// 2.5D integration carrier (Fig. 1b vs 1c).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum Carrier {
    /// Organic package substrate: cheap, coarser wiring (C4 bumps).
    OrganicSubstrate {
        /// Cost per mm² of substrate.
        cost_per_mm2: f64,
    },
    /// Passive silicon interposer: a large die on a mature node
    /// (micro-bumps, finer wiring, §II: higher cost and its own yield).
    SiliconInterposer {
        /// The mature node the interposer is fabricated on.
        node: ProcessNode,
    },
}

/// Assembly parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AssemblyParams {
    /// Probability one die-attach (bonding) step succeeds.
    pub bond_yield: f64,
    /// Fixed cost per bonding step.
    pub bond_cost: f64,
    /// Fixed per-package cost (lid, balls, final test).
    pub package_base_cost: f64,
}

impl AssemblyParams {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// [`CostError::NonPositive`] for yields outside `(0, 1]` or negative
    /// costs.
    pub fn validated(self) -> Result<Self, CostError> {
        if !(self.bond_yield > 0.0 && self.bond_yield <= 1.0) {
            return Err(CostError::NonPositive("bond yield (must be in (0, 1])"));
        }
        if !(self.bond_cost.is_finite() && self.bond_cost >= 0.0) {
            return Err(CostError::NonPositive("bond cost"));
        }
        if !(self.package_base_cost.is_finite() && self.package_base_cost >= 0.0) {
            return Err(CostError::NonPositive("package base cost"));
        }
        Ok(self)
    }
}

/// Cost of the carrier for a package whose dies cover `footprint_mm2`
/// (the carrier is sized ~1.1× the die footprint for routing margin).
///
/// # Errors
///
/// Propagates parameter and wafer-geometry errors.
pub fn carrier_cost(carrier: &Carrier, footprint_mm2: f64) -> Result<f64, CostError> {
    if !(footprint_mm2.is_finite() && footprint_mm2 > 0.0) {
        return Err(CostError::NonPositive("package footprint"));
    }
    let carrier_area = footprint_mm2 * 1.1;
    match carrier {
        Carrier::OrganicSubstrate { cost_per_mm2 } => {
            if !(cost_per_mm2.is_finite() && *cost_per_mm2 >= 0.0) {
                return Err(CostError::NonPositive("substrate cost per mm²"));
            }
            Ok(cost_per_mm2 * carrier_area)
        }
        Carrier::SiliconInterposer { node } => {
            // The interposer is a die in its own right: wafer cost, yield.
            Ok(die_cost(node, carrier_area, 0.0)?.good_die)
        }
    }
}

/// Expected assembly cost for bonding `num_dies` known-good dies onto a
/// carrier, accounting for whole-package loss when any bond fails
/// (an MCM that loses one bond is scrap — dies and carrier included).
///
/// Returns `(assembly_yield, expected_cost_multiplier)`: the multiplier is
/// `1 / assembly_yield`, applied to the sum of die + carrier + bonding costs.
///
/// # Errors
///
/// [`CostError::NonPositive`] if `num_dies == 0` or parameters are invalid.
pub fn assembly_yield(
    params: &AssemblyParams,
    num_dies: usize,
) -> Result<(f64, f64), CostError> {
    let params = params.validated()?;
    if num_dies == 0 {
        return Err(CostError::NonPositive("number of dies"));
    }
    let y = params.bond_yield.powi(num_dies as i32);
    Ok((y, 1.0 / y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wafer::Wafer;
    use crate::yield_model::YieldModel;

    fn assembly() -> AssemblyParams {
        AssemblyParams { bond_yield: 0.99, bond_cost: 2.0, package_base_cost: 20.0 }
    }

    fn interposer_node() -> ProcessNode {
        ProcessNode {
            name: "65nm-interposer",
            wafer: Wafer::mm300(2_000.0).expect("valid"),
            defect_density: 0.0003,
            yield_model: YieldModel::Poisson,
        }
    }

    #[test]
    fn organic_substrate_scales_with_area() {
        let carrier = Carrier::OrganicSubstrate { cost_per_mm2: 0.02 };
        let small = carrier_cost(&carrier, 100.0).unwrap();
        let large = carrier_cost(&carrier, 800.0).unwrap();
        assert!((large / small - 8.0).abs() < 1e-9);
    }

    #[test]
    fn interposer_costs_more_than_substrate() {
        // §II: "Besides increased design and manufacturing cost…"
        let organic = Carrier::OrganicSubstrate { cost_per_mm2: 0.02 };
        let silicon = Carrier::SiliconInterposer { node: interposer_node() };
        let area = 850.0;
        assert!(carrier_cost(&silicon, area).unwrap() > carrier_cost(&organic, area).unwrap());
    }

    #[test]
    fn assembly_yield_decays_with_die_count() {
        let (y1, _) = assembly_yield(&assembly(), 1).unwrap();
        let (y16, m16) = assembly_yield(&assembly(), 16).unwrap();
        assert!((y1 - 0.99).abs() < 1e-12);
        assert!((y16 - 0.99f64.powi(16)).abs() < 1e-12);
        assert!(y16 < y1);
        assert!((m16 - 1.0 / y16).abs() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        assert!(AssemblyParams { bond_yield: 0.0, ..assembly() }.validated().is_err());
        assert!(AssemblyParams { bond_yield: 1.2, ..assembly() }.validated().is_err());
        assert!(AssemblyParams { bond_cost: -1.0, ..assembly() }.validated().is_err());
        assert!(assembly_yield(&assembly(), 0).is_err());
        assert!(carrier_cost(&Carrier::OrganicSubstrate { cost_per_mm2: -0.1 }, 10.0).is_err());
        assert!(carrier_cost(&Carrier::OrganicSubstrate { cost_per_mm2: 0.1 }, 0.0).is_err());
    }
}
