//! Product-portfolio economics: chiplet reuse across SKUs.
//!
//! §VII of the paper points at AMD's EPYC/RYZEN line as the production
//! proof of 2.5D economics: *one* compute-chiplet design spans products
//! with widely varying core counts. This module composes the workspace's
//! recurring-cost ([`crate::system`]) and NRE ([`crate::nre`]) models into
//! that scenario: a portfolio of products, each needing a different amount
//! of compute silicon, built either as
//!
//! * **monolithic** — one dedicated die design per product (its own mask
//!   set, its own NRE), or
//! * **chiplet-based** — every product assembles `k` copies of one shared
//!   compute-chiplet design (plus the 2.5D packaging costs).

use serde::{Deserialize, Serialize};

use crate::die::die_cost;
use crate::nre::NreParams;
use crate::packaging::{assembly_yield, carrier_cost};
use crate::system::CostParams;
use crate::CostError;

/// One product (SKU) in the portfolio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Product {
    /// Compute silicon the product needs, mm² (before PHY overhead).
    pub compute_area_mm2: f64,
    /// Production volume in units.
    pub volume: u64,
}

/// NRE rates used for every die design in the portfolio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PortfolioNre {
    /// Mask-set cost per design on the compute node, dollars.
    pub mask_set: f64,
    /// Design/verification cost per mm² of a new die design, dollars.
    /// (Design effort scales with area; a 600 mm² flagship costs more to
    /// verify than an 80 mm² chiplet.)
    pub design_per_mm2: f64,
}

impl PortfolioNre {
    /// Leading-node ballpark: $30M masks, $300k/mm² design+verification.
    #[must_use]
    pub fn default_5nm() -> Self {
        Self { mask_set: 30.0e6, design_per_mm2: 0.3e6 }
    }
}

/// Cost breakdown of one strategy over the whole portfolio.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrategyCost {
    /// Total recurring cost over all units, dollars.
    pub recurring: f64,
    /// Total NRE over all designs, dollars.
    pub nre: f64,
}

impl StrategyCost {
    /// Recurring + NRE.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.recurring + self.nre
    }
}

/// Portfolio comparison: monolithic-per-SKU vs. shared-chiplet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PortfolioComparison {
    /// One dedicated monolithic design per product.
    pub monolithic: StrategyCost,
    /// One shared chiplet design, products differ only in chiplet count.
    pub chiplet: StrategyCost,
    /// The shared chiplet's area in mm² (including PHY overhead).
    pub chiplet_area_mm2: f64,
}

impl PortfolioComparison {
    /// Ratio `monolithic total / chiplet total` (> 1: reuse wins).
    #[must_use]
    pub fn monolithic_over_chiplet(&self) -> f64 {
        self.monolithic.total() / self.chiplet.total()
    }
}

/// Compares the two portfolio strategies. `chiplet_area` is the shared
/// compute-chiplet's logic area in mm² (PHY overhead from `params` is added
/// on top); each product uses `⌈compute_area / chiplet_area⌉` chiplets.
///
/// # Errors
///
/// Propagates cost-model validation errors; rejects an empty portfolio and
/// non-positive chiplet areas.
pub fn portfolio_comparison(
    params: &CostParams,
    nre: &PortfolioNre,
    products: &[Product],
    chiplet_area: f64,
) -> Result<PortfolioComparison, CostError> {
    if products.is_empty() {
        return Err(CostError::NonPositive("product count"));
    }
    if !(chiplet_area.is_finite() && chiplet_area > 0.0) {
        return Err(CostError::NonPositive("chiplet area"));
    }
    for p in products {
        if !(p.compute_area_mm2.is_finite() && p.compute_area_mm2 > 0.0) {
            return Err(CostError::NonPositive("product compute area"));
        }
        if p.volume == 0 {
            return Err(CostError::NonPositive("product volume"));
        }
    }
    let assembly = params.assembly.validated()?;

    // ── Monolithic strategy: one design per product ─────────────────────
    let mut mono_recurring = 0.0;
    let mut mono_nre = 0.0;
    for p in products {
        let die = die_cost(&params.compute_node, p.compute_area_mm2, 0.0)?;
        mono_recurring += (die.good_die + assembly.package_base_cost) * p.volume as f64;
        let design = NreParams {
            mask_set: nre.mask_set,
            design: nre.design_per_mm2 * p.compute_area_mm2,
            reuse_products: 1,
            volume_per_product: p.volume,
        }
        .validated()?;
        mono_nre += design.mask_set + design.design;
    }

    // ── Chiplet strategy: one shared design, k copies per product ───────
    let physical_chiplet_area = chiplet_area * (1.0 + params.phy_area_overhead);
    let chiplet_die =
        die_cost(&params.compute_node, physical_chiplet_area, params.kgd_test_cost)?;
    let mut chip_recurring = 0.0;
    for p in products {
        let k = (p.compute_area_mm2 / chiplet_area).ceil() as usize;
        let dies = chiplet_die.known_good_die * k as f64;
        let footprint = physical_chiplet_area * k as f64;
        let carrier = carrier_cost(&params.carrier, footprint)?;
        let bonding = assembly.bond_cost * k as f64;
        let (_, multiplier) = assembly_yield(&assembly, k)?;
        let unit = (dies + carrier + bonding) * multiplier + assembly.package_base_cost;
        chip_recurring += unit * p.volume as f64;
    }
    // One mask set and one design, shared by the whole portfolio.
    let chip_nre = nre.mask_set + nre.design_per_mm2 * physical_chiplet_area;

    Ok(PortfolioComparison {
        monolithic: StrategyCost { recurring: mono_recurring, nre: mono_nre },
        chiplet: StrategyCost { recurring: chip_recurring, nre: chip_nre },
        chiplet_area_mm2: physical_chiplet_area,
    })
}

/// An AMD-flavoured example portfolio: desktop (1 chiplet of compute),
/// workstation (4), server flagship (8), with server volumes an order of
/// magnitude below desktop.
#[must_use]
pub fn epyc_like_portfolio(chiplet_area: f64) -> Vec<Product> {
    vec![
        Product { compute_area_mm2: chiplet_area, volume: 5_000_000 },
        Product { compute_area_mm2: 4.0 * chiplet_area, volume: 1_000_000 },
        Product { compute_area_mm2: 8.0 * chiplet_area, volume: 400_000 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHIPLET_AREA: f64 = 80.0;

    fn params() -> CostParams {
        CostParams::default_5nm()
    }

    #[test]
    fn reuse_wins_on_an_epyc_like_portfolio() {
        // Three SKUs sharing one 80 mm² chiplet design vs. three dedicated
        // monolithic designs (80/320/640 mm²): reuse must win on both NRE
        // (one mask set instead of three) and recurring cost (yield of
        // small dies).
        let cmp = portfolio_comparison(
            &params(),
            &PortfolioNre::default_5nm(),
            &epyc_like_portfolio(CHIPLET_AREA),
            CHIPLET_AREA,
        )
        .unwrap();
        assert!(cmp.chiplet.nre < cmp.monolithic.nre, "NRE: {cmp:?}");
        assert!(
            cmp.monolithic_over_chiplet() > 1.0,
            "portfolio ratio {:.3}",
            cmp.monolithic_over_chiplet()
        );
    }

    #[test]
    fn single_small_product_prefers_monolithic() {
        // One low-volume small product: the chiplet strategy pays packaging
        // overheads for nothing (1 chiplet per package) and wins no NRE
        // amortisation. Monolithic must be at least competitive.
        let products = [Product { compute_area_mm2: 60.0, volume: 100_000 }];
        let cmp =
            portfolio_comparison(&params(), &PortfolioNre::default_5nm(), &products, 60.0)
                .unwrap();
        assert!(
            cmp.monolithic.total() <= cmp.chiplet.total(),
            "monolithic {} vs chiplet {}",
            cmp.monolithic.total(),
            cmp.chiplet.total()
        );
    }

    #[test]
    fn nre_is_portfolio_size_invariant_for_chiplets() {
        // Adding SKUs leaves the chiplet NRE unchanged (one design) but
        // grows the monolithic NRE linearly.
        let nre = PortfolioNre::default_5nm();
        let small = epyc_like_portfolio(CHIPLET_AREA);
        let mut large = small.clone();
        large.push(Product { compute_area_mm2: 2.0 * CHIPLET_AREA, volume: 2_000_000 });
        large.push(Product { compute_area_mm2: 6.0 * CHIPLET_AREA, volume: 300_000 });
        let a = portfolio_comparison(&params(), &nre, &small, CHIPLET_AREA).unwrap();
        let b = portfolio_comparison(&params(), &nre, &large, CHIPLET_AREA).unwrap();
        assert!((a.chiplet.nre - b.chiplet.nre).abs() < 1e-6);
        assert!(b.monolithic.nre > a.monolithic.nre);
    }

    #[test]
    fn validation_rejects_degenerate_inputs() {
        let nre = PortfolioNre::default_5nm();
        assert!(portfolio_comparison(&params(), &nre, &[], CHIPLET_AREA).is_err());
        assert!(portfolio_comparison(
            &params(),
            &nre,
            &[Product { compute_area_mm2: 0.0, volume: 1 }],
            CHIPLET_AREA
        )
        .is_err());
        assert!(portfolio_comparison(
            &params(),
            &nre,
            &[Product { compute_area_mm2: 100.0, volume: 0 }],
            CHIPLET_AREA
        )
        .is_err());
        assert!(portfolio_comparison(
            &params(),
            &nre,
            &epyc_like_portfolio(CHIPLET_AREA),
            -1.0
        )
        .is_err());
    }

    #[test]
    fn phy_overhead_inflates_the_shared_chiplet() {
        let cmp = portfolio_comparison(
            &params(),
            &PortfolioNre::default_5nm(),
            &epyc_like_portfolio(CHIPLET_AREA),
            CHIPLET_AREA,
        )
        .unwrap();
        assert!(
            (cmp.chiplet_area_mm2 - CHIPLET_AREA * 1.10).abs() < 1e-9,
            "{}",
            cmp.chiplet_area_mm2
        );
    }
}
