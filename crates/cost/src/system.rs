//! System-level comparison: monolithic vs. 2.5D-disaggregated cost for the
//! same total silicon area — quantifying §I's economic argument.

use serde::Deserialize;
use serde::Serialize;

use crate::die::{die_cost, ProcessNode};
use crate::packaging::{assembly_yield, carrier_cost, AssemblyParams, Carrier};
use crate::wafer::Wafer;
use crate::yield_model::YieldModel;
use crate::CostError;

/// All parameters of the system cost comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CostParams {
    /// Node the compute silicon is fabricated on.
    pub compute_node: ProcessNode,
    /// Per-die wafer-level test cost (known-good-die).
    pub kgd_test_cost: f64,
    /// PHY area overhead per chiplet as a fraction of chiplet area
    /// (§I: D2D PHYs make combined chiplet area exceed the monolith's).
    pub phy_area_overhead: f64,
    /// Carrier used for the 2.5D assembly.
    pub carrier: Carrier,
    /// Assembly (bonding) parameters.
    pub assembly: AssemblyParams,
}

impl CostParams {
    /// Representative leading-node defaults: 300 mm wafers at $17k, defect
    /// density 0.002 /mm² with negative-binomial clustering (α = 3), $5 KGD
    /// test, 10% PHY overhead, organic substrate at $0.02/mm², 99% bond
    /// yield.
    #[must_use]
    pub fn default_5nm() -> Self {
        Self {
            compute_node: ProcessNode {
                name: "5nm",
                wafer: Wafer { diameter_mm: 300.0, cost: 17_000.0 },
                defect_density: 0.002,
                yield_model: YieldModel::NegativeBinomial { alpha: 3.0 },
            },
            kgd_test_cost: 5.0,
            phy_area_overhead: 0.10,
            carrier: Carrier::OrganicSubstrate { cost_per_mm2: 0.02 },
            assembly: AssemblyParams {
                bond_yield: 0.99,
                bond_cost: 2.0,
                package_base_cost: 20.0,
            },
        }
    }
}

/// Outcome of a monolithic-vs-2.5D comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostComparison {
    /// Total silicon area of the monolithic reference, mm².
    pub total_area_mm2: f64,
    /// Number of compute chiplets in the 2.5D variant.
    pub num_chiplets: usize,
    /// Recurring cost of the monolithic chip (die + package base).
    pub monolithic_total: f64,
    /// Recurring cost of the 2.5D assembly (dies + carrier + bonding,
    /// scaled by assembly yield, + package base).
    pub mcm_total: f64,
    /// Fabrication yield of the monolithic die.
    pub monolithic_yield: f64,
    /// Fabrication yield of one chiplet.
    pub chiplet_yield: f64,
    /// Assembly yield of the 2.5D package.
    pub assembly_yield: f64,
}

impl CostComparison {
    /// Ratio `monolithic / MCM` (> 1 means disaggregation is cheaper).
    #[must_use]
    pub fn monolithic_over_mcm(&self) -> f64 {
        self.monolithic_total / self.mcm_total
    }
}

/// Compares a monolithic die of `total_area` mm² against `num_chiplets`
/// equal chiplets carrying the same logic (each inflated by the PHY
/// overhead), assembled on the configured carrier.
///
/// # Errors
///
/// Propagates parameter validation, wafer-geometry and yield errors
/// ([`CostError`]).
pub fn system_cost_comparison(
    params: &CostParams,
    total_area: f64,
    num_chiplets: usize,
) -> Result<CostComparison, CostError> {
    if num_chiplets == 0 {
        return Err(CostError::NonPositive("chiplet count"));
    }
    if !(params.phy_area_overhead.is_finite() && params.phy_area_overhead >= 0.0) {
        return Err(CostError::NonPositive("PHY area overhead"));
    }
    let assembly = params.assembly.validated()?;

    // Monolithic reference: one big die, no KGD test needed (package test
    // folded into package_base_cost for both variants).
    let mono = die_cost(&params.compute_node, total_area, 0.0)?;
    let monolithic_total = mono.good_die + assembly.package_base_cost;

    // 2.5D variant: chiplets carry a PHY area tax (§I).
    let chiplet_area = total_area / num_chiplets as f64 * (1.0 + params.phy_area_overhead);
    let chiplet = die_cost(&params.compute_node, chiplet_area, params.kgd_test_cost)?;
    let dies = chiplet.known_good_die * num_chiplets as f64;
    let footprint = chiplet_area * num_chiplets as f64;
    let carrier = carrier_cost(&params.carrier, footprint)?;
    let bonding = assembly.bond_cost * num_chiplets as f64;
    let (asm_yield, multiplier) = assembly_yield(&assembly, num_chiplets)?;
    let mcm_total = (dies + carrier + bonding) * multiplier + assembly.package_base_cost;

    Ok(CostComparison {
        total_area_mm2: total_area,
        num_chiplets,
        monolithic_total,
        mcm_total,
        monolithic_yield: mono.fab_yield,
        chiplet_yield: chiplet.fab_yield,
        assembly_yield: asm_yield,
    })
}

/// Sweeps chiplet counts and returns the count minimising 2.5D cost for a
/// given total area (`None` if every count errors, e.g. zero counts asked).
#[must_use]
pub fn best_chiplet_count(
    params: &CostParams,
    total_area: f64,
    counts: &[usize],
) -> Option<(usize, f64)> {
    counts
        .iter()
        .filter_map(|&n| {
            system_cost_comparison(params, total_area, n).ok().map(|c| (n, c.mcm_total))
        })
        .min_by(|a, b| a.1.total_cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_systems_favor_disaggregation() {
        // §I: at reticle-scale area and leading-node defect density the MCM
        // must win clearly.
        let cmp = system_cost_comparison(&CostParams::default_5nm(), 800.0, 16).unwrap();
        assert!(cmp.mcm_total < cmp.monolithic_total, "{cmp:?}");
        assert!(cmp.monolithic_over_mcm() > 1.3);
        assert!(cmp.chiplet_yield > cmp.monolithic_yield);
    }

    #[test]
    fn small_dies_favor_monolithic() {
        // For a small die, packaging overheads dominate: the monolith wins.
        let cmp = system_cost_comparison(&CostParams::default_5nm(), 50.0, 4).unwrap();
        assert!(cmp.monolithic_total < cmp.mcm_total, "{cmp:?}");
    }

    #[test]
    fn crossover_exists_between_50_and_800_mm2() {
        let params = CostParams::default_5nm();
        let ratio =
            |area: f64| system_cost_comparison(&params, area, 8).unwrap().monolithic_over_mcm();
        assert!(ratio(50.0) < 1.0);
        assert!(ratio(800.0) > 1.0);
        // Monotone increase across the sweep.
        let mut last = 0.0;
        for area in [50.0, 100.0, 200.0, 400.0, 800.0] {
            let r = ratio(area);
            assert!(r > last, "area {area}: ratio {r}");
            last = r;
        }
    }

    #[test]
    fn too_many_chiplets_hurt() {
        // Bonding cost/yield and PHY overhead eventually outweigh the yield
        // benefit: cost is U-shaped in chiplet count.
        let params = CostParams::default_5nm();
        let at = |n: usize| system_cost_comparison(&params, 800.0, n).unwrap().mcm_total;
        let best = best_chiplet_count(&params, 800.0, &[1, 2, 4, 8, 16, 32, 64, 128])
            .expect("valid sweep");
        assert!(best.0 >= 4, "optimum {best:?}");
        assert!(best.0 <= 64, "optimum {best:?}");
        assert!(at(128) > best.1);
        assert!(at(1) > best.1);
    }

    #[test]
    fn interposer_variant_costs_more_than_substrate() {
        let organic = CostParams::default_5nm();
        let interposer = CostParams {
            carrier: Carrier::SiliconInterposer {
                node: ProcessNode {
                    name: "65nm-interposer",
                    wafer: Wafer { diameter_mm: 300.0, cost: 2_000.0 },
                    defect_density: 0.0003,
                    yield_model: YieldModel::Poisson,
                },
            },
            ..organic
        };
        let a = system_cost_comparison(&organic, 600.0, 12).unwrap();
        let b = system_cost_comparison(&interposer, 600.0, 12).unwrap();
        assert!(b.mcm_total > a.mcm_total);
    }

    #[test]
    fn zero_chiplets_rejected() {
        assert!(system_cost_comparison(&CostParams::default_5nm(), 100.0, 0).is_err());
    }
}
