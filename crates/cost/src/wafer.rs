//! Wafer geometry: how many die candidates a wafer yields.

use serde::{Deserialize, Serialize};

use crate::CostError;

/// A wafer specification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Wafer {
    /// Diameter in mm (300 for the mainstream line).
    pub diameter_mm: f64,
    /// Cost of one processed wafer in dollars.
    pub cost: f64,
}

impl Wafer {
    /// A 300 mm wafer at the given processed-wafer cost.
    ///
    /// # Errors
    ///
    /// [`CostError::NonPositive`] if `cost` is not positive.
    pub fn mm300(cost: f64) -> Result<Self, CostError> {
        if !(cost.is_finite() && cost > 0.0) {
            return Err(CostError::NonPositive("wafer cost"));
        }
        Ok(Self { diameter_mm: 300.0, cost })
    }
}

/// Gross dies per wafer for square-ish dies of `die_area` mm², using the
/// standard estimate
///
/// ```text
/// DPW = π (d/2)² / A  −  π d / √(2 A)
/// ```
///
/// (usable wafer area divided by die area, minus the edge loss along the
/// circumference).
///
/// # Errors
///
/// * [`CostError::NonPositive`] for non-positive area or diameter,
/// * [`CostError::DieLargerThanWafer`] if the estimate rounds to zero dies.
pub fn dies_per_wafer(wafer: &Wafer, die_area: f64) -> Result<u64, CostError> {
    if !(die_area.is_finite() && die_area > 0.0) {
        return Err(CostError::NonPositive("die area"));
    }
    if !(wafer.diameter_mm.is_finite() && wafer.diameter_mm > 0.0) {
        return Err(CostError::NonPositive("wafer diameter"));
    }
    let d = wafer.diameter_mm;
    let gross = std::f64::consts::PI * (d / 2.0) * (d / 2.0) / die_area
        - std::f64::consts::PI * d / (2.0 * die_area).sqrt();
    if gross < 1.0 {
        return Err(CostError::DieLargerThanWafer {
            die_area,
            wafer_diameter: wafer.diameter_mm,
        });
    }
    Ok(gross.floor() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wafer() -> Wafer {
        Wafer::mm300(17_000.0).expect("valid wafer")
    }

    #[test]
    fn textbook_dpw_values() {
        // 100 mm² dies on 300 mm wafer: π·22500/100 − π·300/√200 ≈ 640.
        let dpw = dies_per_wafer(&wafer(), 100.0).unwrap();
        assert!((600..680).contains(&dpw), "dpw {dpw}");
        // 800 mm² (reticle-limit class): ≈ 250 − 23.6 → ~253... compute:
        // π·22500/800 = 88.36; edge loss π·300/40 = 23.56 → 64.
        let dpw = dies_per_wafer(&wafer(), 800.0).unwrap();
        assert!((60..70).contains(&dpw), "dpw {dpw}");
    }

    #[test]
    fn smaller_dies_mean_more_dies() {
        let mut last = 0;
        for area in [800.0, 400.0, 200.0, 100.0, 50.0, 25.0] {
            let dpw = dies_per_wafer(&wafer(), area).unwrap();
            assert!(dpw > last, "area {area}");
            last = dpw;
        }
    }

    #[test]
    fn area_conservation_with_edge_loss() {
        // Total die area never exceeds wafer area, and smaller dies waste
        // less edge (higher utilisation).
        let wafer_area = std::f64::consts::PI * 150.0 * 150.0;
        let util =
            |area: f64| dies_per_wafer(&wafer(), area).unwrap() as f64 * area / wafer_area;
        assert!(util(25.0) <= 1.0);
        assert!(util(25.0) > util(400.0));
    }

    #[test]
    fn absurd_die_rejected() {
        let err = dies_per_wafer(&wafer(), 70_000.0).unwrap_err();
        assert!(matches!(err, CostError::DieLargerThanWafer { .. }));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Wafer::mm300(0.0).is_err());
        assert!(dies_per_wafer(&wafer(), -3.0).is_err());
        assert!(dies_per_wafer(&wafer(), f64::NAN).is_err());
    }
}
