//! Fabrication yield as a function of die area and defect density.
//!
//! Section I of the paper: "Another challenge of manufacturing chips in
//! advanced technology nodes is the high defect rate which diminishes the
//! yield" — smaller chiplets lose less area to each defect, which is the
//! quantitative heart of the disaggregation argument.

use serde::{Deserialize, Serialize};

use crate::CostError;

/// Die yield model (probability a die is defect-free).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum YieldModel {
    /// Poisson: `Y = e^(−D·A)` — pessimistic, no defect clustering.
    Poisson,
    /// Murphy's model: `Y = ((1 − e^(−D·A)) / (D·A))²` — the classic
    /// industry compromise.
    Murphy,
    /// Negative binomial: `Y = (1 + D·A/α)^(−α)` with clustering parameter
    /// `α` (typically 2–4; `α → ∞` recovers Poisson).
    NegativeBinomial {
        /// Clustering parameter `α > 0`.
        alpha: f64,
    },
}

impl YieldModel {
    /// Yield for a die of `area` mm² at `defect_density` defects/mm².
    ///
    /// # Errors
    ///
    /// [`CostError::NonPositive`] for negative area/density or non-positive
    /// `α`. Zero area or density is allowed and yields 1.0.
    pub fn die_yield(&self, defect_density: f64, area: f64) -> Result<f64, CostError> {
        if !(area.is_finite() && area >= 0.0) {
            return Err(CostError::NonPositive("die area"));
        }
        if !(defect_density.is_finite() && defect_density >= 0.0) {
            return Err(CostError::NonPositive("defect density"));
        }
        let da = defect_density * area;
        let y = match *self {
            YieldModel::Poisson => (-da).exp(),
            YieldModel::Murphy => {
                if da == 0.0 {
                    1.0
                } else {
                    let t = (1.0 - (-da).exp()) / da;
                    t * t
                }
            }
            YieldModel::NegativeBinomial { alpha } => {
                if !(alpha.is_finite() && alpha > 0.0) {
                    return Err(CostError::NonPositive("clustering parameter alpha"));
                }
                (1.0 + da / alpha).powf(-alpha)
            }
        };
        debug_assert!((0.0..=1.0).contains(&y), "yield {y} out of range");
        Ok(y)
    }
}

/// Convenience: the expected number of good dies among `gross` candidates.
#[must_use]
pub fn good_dies(gross: u64, die_yield: f64) -> f64 {
    gross as f64 * die_yield.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    const D: f64 = 0.002; // defects/mm², a realistic leading-node density

    #[test]
    fn zero_area_or_density_is_perfect_yield() {
        for model in [
            YieldModel::Poisson,
            YieldModel::Murphy,
            YieldModel::NegativeBinomial { alpha: 3.0 },
        ] {
            assert_eq!(model.die_yield(D, 0.0).unwrap(), 1.0);
            assert_eq!(model.die_yield(0.0, 500.0).unwrap(), 1.0);
        }
    }

    #[test]
    fn yield_decreases_with_area() {
        for model in [
            YieldModel::Poisson,
            YieldModel::Murphy,
            YieldModel::NegativeBinomial { alpha: 2.5 },
        ] {
            let mut last = 1.0;
            for area in [25.0, 100.0, 400.0, 800.0] {
                let y = model.die_yield(D, area).unwrap();
                assert!(y < last, "{model:?} area {area}");
                last = y;
            }
        }
    }

    #[test]
    fn poisson_hand_values() {
        // D·A = 0.002 · 500 = 1 ⇒ Y = e^(−1).
        let y = YieldModel::Poisson.die_yield(D, 500.0).unwrap();
        assert!((y - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn murphy_between_poisson_and_negbin_low_alpha() {
        // Ordering at equal D·A: Poisson ≤ Murphy ≤ strongly-clustered NB.
        let area = 600.0;
        let poisson = YieldModel::Poisson.die_yield(D, area).unwrap();
        let murphy = YieldModel::Murphy.die_yield(D, area).unwrap();
        let clustered = YieldModel::NegativeBinomial { alpha: 1.0 }.die_yield(D, area).unwrap();
        assert!(poisson < murphy, "{poisson} !< {murphy}");
        assert!(murphy < clustered, "{murphy} !< {clustered}");
    }

    #[test]
    fn negative_binomial_converges_to_poisson() {
        let area = 400.0;
        let poisson = YieldModel::Poisson.die_yield(D, area).unwrap();
        let nb = YieldModel::NegativeBinomial { alpha: 1e6 }.die_yield(D, area).unwrap();
        assert!((poisson - nb).abs() < 1e-4, "poisson {poisson} nb {nb}");
    }

    #[test]
    fn disaggregation_yield_advantage() {
        // §I "Improved Yield": 16 chiplets of 50 mm² keep far more silicon
        // alive than one 800 mm² monolith.
        let model = YieldModel::NegativeBinomial { alpha: 3.0 };
        let monolith = model.die_yield(D, 800.0).unwrap();
        let chiplet = model.die_yield(D, 50.0).unwrap();
        // Good-silicon fraction: chiplets win even accounting for needing
        // all 16 (with KGD testing you only pay for good ones).
        assert!(chiplet > monolith);
        assert!(chiplet > 0.9, "50 mm² chiplet yield {chiplet}");
        assert!(monolith < 0.35, "800 mm² monolith yield {monolith}");
    }

    #[test]
    fn invalid_parameters() {
        assert!(YieldModel::Poisson.die_yield(-0.1, 10.0).is_err());
        assert!(YieldModel::Poisson.die_yield(0.1, f64::NAN).is_err());
        assert!(YieldModel::NegativeBinomial { alpha: 0.0 }.die_yield(D, 10.0).is_err());
    }

    #[test]
    fn good_dies_scales() {
        assert_eq!(good_dies(100, 0.5), 50.0);
        assert_eq!(good_dies(0, 0.9), 0.0);
        assert_eq!(good_dies(10, 1.5), 10.0); // clamped
    }
}
