//! Property-based tests for the cost model's economic invariants.

use chiplet_cost::die::{die_cost, ProcessNode};
use chiplet_cost::system::{system_cost_comparison, CostParams};
use chiplet_cost::wafer::{dies_per_wafer, Wafer};
use chiplet_cost::yield_model::YieldModel;
use proptest::prelude::*;

fn node(defect_density: f64) -> ProcessNode {
    ProcessNode {
        name: "test",
        wafer: Wafer { diameter_mm: 300.0, cost: 10_000.0 },
        defect_density,
        yield_model: YieldModel::NegativeBinomial { alpha: 3.0 },
    }
}

proptest! {
    #[test]
    fn yield_always_in_unit_interval(
        d in 0.0f64..0.05,
        area in 0.0f64..1000.0,
        alpha in 0.5f64..20.0,
    ) {
        for model in [
            YieldModel::Poisson,
            YieldModel::Murphy,
            YieldModel::NegativeBinomial { alpha },
        ] {
            let y = model.die_yield(d, area).expect("valid inputs");
            prop_assert!((0.0..=1.0).contains(&y), "{model:?}: {y}");
        }
    }

    #[test]
    fn yield_monotone_in_defect_density(
        area in 1.0f64..900.0,
        d_low in 0.0001f64..0.01,
        factor in 1.1f64..10.0,
    ) {
        let d_high = d_low * factor;
        for model in [YieldModel::Poisson, YieldModel::Murphy] {
            let low = model.die_yield(d_low, area).expect("valid");
            let high = model.die_yield(d_high, area).expect("valid");
            prop_assert!(high <= low);
        }
    }

    #[test]
    fn dpw_monotone_decreasing_in_area(
        a in 10.0f64..400.0,
        factor in 1.1f64..4.0,
    ) {
        let wafer = Wafer { diameter_mm: 300.0, cost: 1.0 };
        let small = dies_per_wafer(&wafer, a).expect("fits");
        let large = dies_per_wafer(&wafer, a * factor).expect("fits");
        prop_assert!(large <= small);
    }

    #[test]
    fn die_cost_positive_and_ordered(
        area in 5.0f64..800.0,
        d in 0.0005f64..0.01,
        test_cost in 0.0f64..50.0,
    ) {
        let c = die_cost(&node(d), area, test_cost).expect("valid");
        prop_assert!(c.raw_die > 0.0);
        prop_assert!(c.good_die >= c.raw_die);
        prop_assert!(c.known_good_die >= c.good_die);
    }

    #[test]
    fn comparison_components_positive(
        area in 100.0f64..800.0,
        n in 2usize..64,
    ) {
        let cmp = system_cost_comparison(&CostParams::default_5nm(), area, n)
            .expect("valid point");
        prop_assert!(cmp.monolithic_total > 0.0);
        prop_assert!(cmp.mcm_total > 0.0);
        prop_assert!((0.0..=1.0).contains(&cmp.assembly_yield));
        prop_assert!(cmp.chiplet_yield >= cmp.monolithic_yield);
    }

    #[test]
    fn higher_defect_density_widens_mcm_advantage(
        n in 4usize..32,
    ) {
        let mut clean = CostParams::default_5nm();
        clean.compute_node = node(0.0005);
        let mut dirty = CostParams::default_5nm();
        dirty.compute_node = node(0.004);
        let area = 700.0;
        let r_clean =
            system_cost_comparison(&clean, area, n).expect("valid").monolithic_over_mcm();
        let r_dirty =
            system_cost_comparison(&dirty, area, n).expect("valid").monolithic_over_mcm();
        prop_assert!(r_dirty > r_clean, "dirty {r_dirty} !> clean {r_clean}");
    }
}
