//! Breadth-first traversal and unweighted shortest-path distances.
//!
//! Every D2D link costs the same (one PHY-to-PHY traversal), so unweighted
//! BFS distance is the hop metric the paper's latency proxy builds on.

use std::collections::VecDeque;

use crate::csr::{Graph, VertexId};

/// Distance value for unreachable vertices.
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances from `source`.
///
/// Returns one entry per vertex; unreachable vertices get [`UNREACHABLE`].
///
/// # Panics
///
/// Panics if `source` is out of range.
///
/// # Example
///
/// ```
/// use chiplet_graph::{bfs, Graph};
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2)])?;
/// let d = bfs::distances(&g, 0);
/// assert_eq!(d, vec![0, 1, 2, bfs::UNREACHABLE]);
/// # Ok::<(), chiplet_graph::GraphError>(())
/// ```
#[must_use]
pub fn distances(g: &Graph, source: VertexId) -> Vec<u32> {
    assert!(source < g.num_vertices(), "source {source} out of range");
    let mut dist = vec![UNREACHABLE; g.num_vertices()];
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u];
        for &v in g.neighbors(u) {
            if dist[v] == UNREACHABLE {
                dist[v] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// BFS distances and, for each vertex, the predecessor on one shortest path.
///
/// The predecessor of the source (and of unreachable vertices) is `None`.
/// Ties are broken toward the lowest-numbered predecessor, making the
/// resulting shortest-path tree deterministic.
///
/// # Panics
///
/// Panics if `source` is out of range.
#[must_use]
pub fn distances_with_parents(
    g: &Graph,
    source: VertexId,
) -> (Vec<u32>, Vec<Option<VertexId>>) {
    let dist = distances(g, source);
    let mut parent = vec![None; g.num_vertices()];
    for v in g.vertices() {
        if v == source || dist[v] == UNREACHABLE {
            continue;
        }
        parent[v] = g.neighbors(v).iter().copied().find(|&u| dist[u] + 1 == dist[v]);
    }
    (dist, parent)
}

/// All-pairs shortest-path distances as a row-major matrix.
///
/// Entry `[u * n + v]` is the hop distance from `u` to `v`
/// ([`UNREACHABLE`] when disconnected). Runs one BFS per vertex: `O(V·(V+E))`.
#[must_use]
pub fn all_pairs_distances(g: &Graph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut matrix = Vec::with_capacity(n * n);
    for source in g.vertices() {
        matrix.extend_from_slice(&distances(g, source));
    }
    matrix
}

/// Vertices reachable from `source`, including `source` itself.
///
/// # Panics
///
/// Panics if `source` is out of range.
#[must_use]
pub fn reachable_set(g: &Graph, source: VertexId) -> Vec<VertexId> {
    distances(g, source)
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != UNREACHABLE)
        .map(|(v, _)| v)
        .collect()
}

/// Reconstructs one shortest path from `source` to `target`
/// (inclusive of both), or `None` if `target` is unreachable.
///
/// # Panics
///
/// Panics if either endpoint is out of range.
#[must_use]
pub fn shortest_path(g: &Graph, source: VertexId, target: VertexId) -> Option<Vec<VertexId>> {
    assert!(target < g.num_vertices(), "target {target} out of range");
    let (dist, parent) = distances_with_parents(g, source);
    if dist[target] == UNREACHABLE {
        return None;
    }
    let mut path = vec![target];
    let mut cur = target;
    while let Some(p) = parent[cur] {
        path.push(p);
        cur = p;
    }
    path.reverse();
    debug_assert_eq!(path[0], source);
    debug_assert_eq!(path.len() as u32, dist[target] + 1);
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn distances_on_path_graph() {
        let g = gen::path(5);
        assert_eq!(distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn distances_on_disconnected_graph() {
        let g = Graph::from_edges(4, &[(0, 1)]).unwrap();
        let d = distances(&g, 0);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn all_pairs_is_symmetric() {
        let g = gen::cycle(7);
        let n = g.num_vertices();
        let m = all_pairs_distances(&g);
        for u in 0..n {
            for v in 0..n {
                assert_eq!(m[u * n + v], m[v * n + u]);
            }
        }
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = gen::grid(3, 3);
        let p = shortest_path(&g, 0, 8).unwrap();
        assert_eq!(p.first(), Some(&0));
        assert_eq!(p.last(), Some(&8));
        assert_eq!(p.len(), 5); // 4 hops across a 3x3 grid corner to corner
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn shortest_path_unreachable_is_none() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert!(shortest_path(&g, 0, 2).is_none());
    }

    #[test]
    fn shortest_path_to_self_is_single_vertex() {
        let g = gen::cycle(4);
        assert_eq!(shortest_path(&g, 1, 1).unwrap(), vec![1]);
    }

    #[test]
    fn reachable_set_of_component() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        assert_eq!(reachable_set(&g, 1), vec![0, 1, 2]);
        assert_eq!(reachable_set(&g, 4), vec![3, 4]);
    }

    #[test]
    fn parents_form_shortest_path_tree() {
        let g = gen::grid(4, 4);
        let (dist, parent) = distances_with_parents(&g, 0);
        for v in g.vertices() {
            if v == 0 {
                assert_eq!(parent[v], None);
            } else {
                let p = parent[v].unwrap();
                assert_eq!(dist[p] + 1, dist[v]);
                assert!(g.has_edge(p, v));
            }
        }
    }
}
