//! Edge betweenness centrality (Brandes' algorithm, unweighted).
//!
//! Under uniform traffic with shortest-path routing, the expected load on a
//! link is proportional to its betweenness — the analytic bridge between the
//! paper's bisection-bandwidth proxy (§III-C) and the channel loads the
//! simulator measures: cut edges of the optimal bisection carry the highest
//! betweenness in mesh-like arrangements.

use std::collections::VecDeque;

use crate::csr::{Graph, VertexId};

/// Edge betweenness for every undirected edge, returned in the same order
/// as [`Graph::edges`] (ascending `(min, max)` pairs).
///
/// The value for edge `e` is the sum over ordered vertex pairs `(s, t)` of
/// the fraction of shortest `s→t` paths passing through `e`. Runs Brandes'
/// accumulation from every source: `O(V·E)`.
///
/// # Example
///
/// ```
/// use chiplet_graph::{centrality, gen};
///
/// let g = gen::path(3); // 0-1-2: both edges carried by the middle vertex
/// let b = centrality::edge_betweenness(&g);
/// // Edge (0,1): pairs (0,1), (0,2) in both directions -> 4 ordered paths.
/// assert_eq!(b, vec![4.0, 4.0]);
/// ```
#[must_use]
pub fn edge_betweenness(g: &Graph) -> Vec<f64> {
    let n = g.num_vertices();
    let edge_ids: std::collections::HashMap<(VertexId, VertexId), usize> =
        g.edges().enumerate().map(|(i, e)| (e, i)).collect();
    let mut centrality = vec![0.0; edge_ids.len()];

    // Brandes' algorithm with per-source accumulation.
    let mut sigma = vec![0.0f64; n]; // shortest-path counts
    let mut dist = vec![i64::MAX; n];
    let mut delta = vec![0.0f64; n]; // dependency accumulators
    let mut order: Vec<VertexId> = Vec::with_capacity(n);

    for s in g.vertices() {
        sigma.fill(0.0);
        dist.fill(i64::MAX);
        delta.fill(0.0);
        order.clear();

        sigma[s] = 1.0;
        dist[s] = 0;
        let mut queue = VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in g.neighbors(u) {
                if dist[v] == i64::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
                if dist[v] == dist[u] + 1 {
                    sigma[v] += sigma[u];
                }
            }
        }

        // Accumulate dependencies in reverse BFS order.
        for &w in order.iter().rev() {
            for &v in g.neighbors(w) {
                if dist[v] + 1 == dist[w] {
                    // v is a predecessor of w on shortest paths from s.
                    let contribution = sigma[v] / sigma[w] * (1.0 + delta[w]);
                    delta[v] += contribution;
                    let key = (v.min(w), v.max(w));
                    centrality[edge_ids[&key]] += contribution;
                }
            }
        }
    }
    // Each undirected pair (s, t) was counted from both endpoints as a
    // source, which is exactly the ordered-pair convention documented above.
    centrality
}

/// The `k` edges with the highest betweenness, as `(edge, value)` sorted
/// descending (ties broken by edge order).
#[must_use]
pub fn top_edges(g: &Graph, k: usize) -> Vec<((VertexId, VertexId), f64)> {
    let values = edge_betweenness(g);
    let mut pairs: Vec<_> = g.edges().zip(values).collect();
    pairs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    pairs.truncate(k);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn path_middle_edges_dominate() {
        let g = gen::path(5);
        let b = edge_betweenness(&g);
        // Edge (1,2) and (2,3) carry the most ordered pairs.
        assert!(b[1] > b[0]);
        assert!(b[2] > b[3]);
        assert_eq!(b[1], b[2]);
    }

    #[test]
    fn symmetric_graph_uniform_betweenness() {
        let g = gen::cycle(6);
        let b = edge_betweenness(&g);
        for w in b.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-9, "{b:?}");
        }
    }

    #[test]
    fn complete_graph_each_edge_carries_its_pair() {
        // In K_n every pair has a direct edge; betweenness = 2 (both
        // orderings) per edge.
        let g = gen::complete(5);
        let b = edge_betweenness(&g);
        for v in b {
            assert!((v - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn total_betweenness_counts_all_pairs() {
        // Sum over edges of betweenness = sum over ordered pairs of average
        // path length = total distance. For a tree, every pair has exactly
        // one path, so the sum equals the sum of all pairwise distances.
        let g = gen::star(4);
        let b: f64 = edge_betweenness(&g).iter().sum();
        // Star distances: centre-leaf 1 (x4 pairs x2) + leaf-leaf 2
        // (x6 pairs x2): 8 + 24 = 32.
        assert!((b - 32.0).abs() < 1e-9);
    }

    #[test]
    fn grid_bisection_edges_have_top_betweenness() {
        // 4x4 grid: the hottest edges are exactly the two symmetric mid-cuts
        // (the vertical cut between columns 1-2 and the horizontal cut
        // between rows 1-2) — the edges the bisection-bandwidth proxy
        // counts.
        let g = gen::grid(4, 4);
        let top = top_edges(&g, 4);
        // Load concentrates on the four central edges, every one a member of
        // one of the two mid-cuts: (5,6), (9,10) vertical; (5,9), (6,10)
        // horizontal.
        let expected = [(5, 6), (5, 9), (6, 10), (9, 10)];
        for ((u, v), _) in &top {
            assert!(expected.contains(&(*u, *v)), "unexpected hot edge ({u}, {v})");
        }
        // And they strictly dominate a corner edge.
        let all = edge_betweenness(&g);
        let corner_idx = g.edges().position(|e| e == (0, 1)).unwrap();
        assert!(top[3].1 > all[corner_idx]);
    }

    #[test]
    fn empty_and_single_vertex() {
        assert!(edge_betweenness(&crate::GraphBuilder::new(0).build()).is_empty());
        assert!(edge_betweenness(&crate::GraphBuilder::new(1).build()).is_empty());
    }

    #[test]
    fn disconnected_components_independent() {
        let g = crate::Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let b = edge_betweenness(&g);
        assert_eq!(b, vec![2.0, 2.0]);
    }
}
