//! Compressed-sparse-row storage for immutable undirected graphs.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Index of a vertex in a [`Graph`].
///
/// Vertices are dense integers `0..num_vertices`. The alias exists so call
/// sites read as graph code rather than arithmetic on bare `usize`s.
pub type VertexId = usize;

/// Errors produced while constructing a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphError {
    /// An endpoint was `>= num_vertices`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// Number of vertices the builder was created with.
        num_vertices: usize,
    },
    /// Both endpoints of an edge were the same vertex.
    SelfLoop(VertexId),
    /// The same undirected edge was added twice.
    DuplicateEdge(VertexId, VertexId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GraphError::VertexOutOfRange { vertex, num_vertices } => {
                write!(f, "vertex {vertex} out of range for graph with {num_vertices} vertices")
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop on vertex {v} is not allowed"),
            GraphError::DuplicateEdge(u, v) => {
                write!(f, "edge ({u}, {v}) was added more than once")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Incremental builder for [`Graph`].
///
/// The vertex count is fixed at construction; edges are added one at a time
/// and validated eagerly (C-VALIDATE).
///
/// # Example
///
/// ```
/// use chiplet_graph::GraphBuilder;
///
/// # fn main() -> Result<(), chiplet_graph::GraphError> {
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// let g = b.build();
/// assert_eq!(g.degree(1), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_vertices` vertices and no edges.
    #[must_use]
    pub fn new(num_vertices: usize) -> Self {
        Self { num_vertices, edges: Vec::new() }
    }

    /// Number of vertices the final graph will have.
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of edges added so far.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// * [`GraphError::VertexOutOfRange`] if an endpoint is out of range,
    /// * [`GraphError::SelfLoop`] if `u == v`,
    /// * [`GraphError::DuplicateEdge`] if `{u, v}` was already added.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<&mut Self, GraphError> {
        for w in [u, v] {
            if w >= self.num_vertices {
                return Err(GraphError::VertexOutOfRange {
                    vertex: w,
                    num_vertices: self.num_vertices,
                });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        let key = (u.min(v), u.max(v));
        if self.edges.contains(&key) {
            return Err(GraphError::DuplicateEdge(key.0, key.1));
        }
        self.edges.push(key);
        Ok(self)
    }

    /// Adds every edge from an iterator of endpoint pairs.
    ///
    /// # Errors
    ///
    /// Stops at, and returns, the first invalid edge (see [`Self::add_edge`]).
    pub fn add_edges<I>(&mut self, edges: I) -> Result<&mut Self, GraphError>
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        for (u, v) in edges {
            self.add_edge(u, v)?;
        }
        Ok(self)
    }

    /// Finalises the builder into an immutable CSR [`Graph`].
    #[must_use]
    pub fn build(&self) -> Graph {
        Graph::from_edges_unchecked(self.num_vertices, &self.edges)
    }
}

/// An immutable undirected graph stored in compressed-sparse-row form.
///
/// Simple graph: no self-loops, no parallel edges. Construct through
/// [`GraphBuilder`] or [`Graph::from_edges`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Graph {
    /// `offsets[v]..offsets[v + 1]` indexes `targets` for vertex `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists.
    targets: Vec<VertexId>,
    /// Number of undirected edges.
    num_edges: usize,
}

impl Graph {
    /// Builds a graph from an explicit edge list.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GraphBuilder::add_edge`].
    ///
    /// # Example
    ///
    /// ```
    /// use chiplet_graph::Graph;
    ///
    /// let g = Graph::from_edges(3, &[(0, 1), (1, 2)])?;
    /// assert_eq!(g.num_edges(), 2);
    /// # Ok::<(), chiplet_graph::GraphError>(())
    /// ```
    pub fn from_edges(
        num_vertices: usize,
        edges: &[(VertexId, VertexId)],
    ) -> Result<Self, GraphError> {
        let mut b = GraphBuilder::new(num_vertices);
        b.add_edges(edges.iter().copied())?;
        Ok(b.build())
    }

    /// Builds without validation; `edges` must already be simple and in range.
    pub(crate) fn from_edges_unchecked(
        num_vertices: usize,
        edges: &[(VertexId, VertexId)],
    ) -> Self {
        let mut degree = vec![0usize; num_vertices];
        for &(u, v) in edges {
            degree[u] += 1;
            degree[v] += 1;
        }
        let mut offsets = Vec::with_capacity(num_vertices + 1);
        offsets.push(0);
        for v in 0..num_vertices {
            offsets.push(offsets[v] + degree[v]);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0; 2 * edges.len()];
        for &(u, v) in edges {
            targets[cursor[u]] = v;
            cursor[u] += 1;
            targets[cursor[v]] = u;
            cursor[v] += 1;
        }
        for v in 0..num_vertices {
            targets[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Self { offsets, targets, num_edges: edges.len() }
    }

    /// Number of vertices.
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// `true` if the graph has no vertices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.num_vertices() == 0
    }

    /// Degree (number of incident edges) of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted neighbours of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// `true` if the undirected edge `{u, v}` exists.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[must_use]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all vertices `0..num_vertices`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices()
    }

    /// Iterator over each undirected edge once, as `(min, max)` pairs in
    /// ascending order of the smaller endpoint.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices()
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
            .filter(|&(u, v)| u < v)
    }

    /// Iterator over the neighbours of `v` (see also [`Graph::neighbors`]).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn neighbor_iter(&self, v: VertexId) -> NeighborIter<'_> {
        NeighborIter { inner: self.neighbors(v).iter() }
    }
}

/// Iterator over the neighbours of a vertex, returned by
/// [`Graph::neighbor_iter`].
#[derive(Debug, Clone)]
pub struct NeighborIter<'a> {
    inner: std::slice::Iter<'a, VertexId>,
}

impl Iterator for NeighborIter<'_> {
    type Item = VertexId;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().copied()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for NeighborIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert!(g.is_empty());
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn single_vertex_no_edges() {
        let g = GraphBuilder::new(1).build();
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.degree(0), 0);
        assert!(g.neighbors(0).is_empty());
    }

    #[test]
    fn triangle_adjacency() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(2, 0));
        assert_eq!(g.neighbors(0), &[1, 2]);
    }

    #[test]
    fn edge_iteration_yields_each_edge_once() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 1), (2, 3), (3, 0)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        let err = b.add_edge(0, 2).unwrap_err();
        assert_eq!(err, GraphError::VertexOutOfRange { vertex: 2, num_vertices: 2 });
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(b.add_edge(1, 1).unwrap_err(), GraphError::SelfLoop(1));
    }

    #[test]
    fn rejects_duplicate_in_either_orientation() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1).unwrap();
        assert_eq!(b.add_edge(1, 0).unwrap_err(), GraphError::DuplicateEdge(0, 1));
    }

    #[test]
    fn neighbor_iter_matches_slice() {
        let g = Graph::from_edges(5, &[(0, 4), (0, 2), (0, 1)]).unwrap();
        let via_iter: Vec<_> = g.neighbor_iter(0).collect();
        assert_eq!(via_iter, g.neighbors(0));
        assert_eq!(g.neighbor_iter(0).len(), 3);
    }

    #[test]
    fn error_display_is_meaningful() {
        let msg = GraphError::SelfLoop(3).to_string();
        assert!(msg.contains("self-loop"));
        let msg = GraphError::DuplicateEdge(1, 2).to_string();
        assert!(msg.contains("(1, 2)"));
    }
}
