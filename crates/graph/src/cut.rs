//! Edge-cut evaluation for vertex bipartitions.
//!
//! The bisection bandwidth proxy (§III-C) is the smallest number of edges
//! whose removal splits the chip into two balanced halves. Finding that cut is
//! the job of `chiplet-partition`; this module provides the shared primitives:
//! representing a bipartition and counting the edges it cuts.

use serde::{Deserialize, Serialize};

use crate::csr::{Graph, VertexId};

/// Side of a bipartition a vertex is assigned to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    /// First part.
    A,
    /// Second part.
    B,
}

impl Side {
    /// The opposite side.
    #[must_use]
    pub fn flipped(self) -> Side {
        match self {
            Side::A => Side::B,
            Side::B => Side::A,
        }
    }
}

/// A bipartition of the vertices of a graph.
///
/// # Example
///
/// ```
/// use chiplet_graph::{cut::{Bipartition, Side}, gen};
///
/// let g = gen::path(4);
/// let p = Bipartition::from_side_of(4, |v| if v < 2 { Side::A } else { Side::B });
/// assert_eq!(p.cut_size(&g), 1); // only edge (1,2) crosses
/// assert_eq!(p.sizes(), (2, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bipartition {
    sides: Vec<Side>,
}

impl Bipartition {
    /// Creates a bipartition with every vertex on side [`Side::A`].
    #[must_use]
    pub fn all_a(num_vertices: usize) -> Self {
        Self { sides: vec![Side::A; num_vertices] }
    }

    /// Creates a bipartition from a per-vertex side function.
    #[must_use]
    pub fn from_side_of<F>(num_vertices: usize, mut side_of: F) -> Self
    where
        F: FnMut(VertexId) -> Side,
    {
        Self { sides: (0..num_vertices).map(&mut side_of).collect() }
    }

    /// Creates a bipartition from an explicit side vector.
    #[must_use]
    pub fn from_sides(sides: Vec<Side>) -> Self {
        Self { sides }
    }

    /// Number of vertices covered by this bipartition.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sides.len()
    }

    /// `true` if the bipartition covers no vertices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sides.is_empty()
    }

    /// Side of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn side(&self, v: VertexId) -> Side {
        self.sides[v]
    }

    /// Moves vertex `v` to the opposite side.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn flip(&mut self, v: VertexId) {
        self.sides[v] = self.sides[v].flipped();
    }

    /// Number of vertices on each side, as `(|A|, |B|)`.
    #[must_use]
    pub fn sizes(&self) -> (usize, usize) {
        let a = self.sides.iter().filter(|&&s| s == Side::A).count();
        (a, self.sides.len() - a)
    }

    /// Absolute size difference `| |A| − |B| |`.
    #[must_use]
    pub fn imbalance(&self) -> usize {
        let (a, b) = self.sizes();
        a.abs_diff(b)
    }

    /// `true` if the parts differ in size by at most `tolerance` vertices.
    ///
    /// The paper's bisection uses `tolerance = 1` for odd vertex counts and
    /// `0` for even ones; see `chiplet-partition` for the search.
    #[must_use]
    pub fn is_balanced(&self, tolerance: usize) -> bool {
        self.imbalance() <= tolerance
    }

    /// Number of edges of `g` whose endpoints lie on different sides.
    ///
    /// # Panics
    ///
    /// Panics if `g` has more vertices than this bipartition covers.
    #[must_use]
    pub fn cut_size(&self, g: &Graph) -> usize {
        assert!(
            g.num_vertices() <= self.sides.len(),
            "bipartition covers {} vertices, graph has {}",
            self.sides.len(),
            g.num_vertices()
        );
        g.edges().filter(|&(u, v)| self.sides[u] != self.sides[v]).count()
    }

    /// Vertices on the given side, in ascending order.
    #[must_use]
    pub fn vertices_on(&self, side: Side) -> Vec<VertexId> {
        self.sides.iter().enumerate().filter(|&(_, &s)| s == side).map(|(v, _)| v).collect()
    }

    /// For vertex `v`, the number of incident edges crossing the cut
    /// (external) and staying inside its part (internal): `(external,
    /// internal)`. The FM *gain* of moving `v` is `external − internal`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range of the graph.
    #[must_use]
    pub fn external_internal_degree(&self, g: &Graph, v: VertexId) -> (usize, usize) {
        let mut external = 0;
        let mut internal = 0;
        for &u in g.neighbors(v) {
            if self.sides[u] == self.sides[v] {
                internal += 1;
            } else {
                external += 1;
            }
        }
        (external, internal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn cut_of_uniform_partition_is_zero() {
        let g = gen::complete(5);
        let p = Bipartition::all_a(5);
        assert_eq!(p.cut_size(&g), 0);
        assert_eq!(p.sizes(), (5, 0));
        assert!(!p.is_balanced(1));
    }

    #[test]
    fn cut_of_grid_bisection_matches_formula() {
        // Vertical bisection of an even k x k grid cuts exactly k edges
        // (B_G = sqrt(N) in the paper).
        for k in [2usize, 4, 6, 8] {
            let g = gen::grid(k, k);
            // gen::grid numbers vertices row-major: v = r*k + c.
            let p =
                Bipartition::from_side_of(
                    k * k,
                    |v| {
                        if v % k < k / 2 {
                            Side::A
                        } else {
                            Side::B
                        }
                    },
                );
            assert!(p.is_balanced(0));
            assert_eq!(p.cut_size(&g), k);
        }
    }

    #[test]
    fn flip_moves_vertex_and_updates_cut() {
        let g = gen::path(3);
        let mut p = Bipartition::from_sides(vec![Side::A, Side::A, Side::B]);
        assert_eq!(p.cut_size(&g), 1);
        p.flip(1);
        assert_eq!(p.side(1), Side::B);
        assert_eq!(p.cut_size(&g), 1); // now edge (0,1) crosses instead
        p.flip(0);
        assert_eq!(p.cut_size(&g), 0);
    }

    #[test]
    fn external_internal_degrees() {
        let g = gen::star(4); // centre 0 with leaves 1..=4
        let p = Bipartition::from_side_of(5, |v| if v <= 2 { Side::A } else { Side::B });
        let (ext, int) = p.external_internal_degree(&g, 0);
        assert_eq!(ext, 2); // leaves 3,4
        assert_eq!(int, 2); // leaves 1,2
    }

    #[test]
    fn vertices_on_side() {
        let p = Bipartition::from_sides(vec![Side::B, Side::A, Side::B]);
        assert_eq!(p.vertices_on(Side::A), vec![1]);
        assert_eq!(p.vertices_on(Side::B), vec![0, 2]);
        assert_eq!(p.imbalance(), 1);
    }

    #[test]
    fn side_flipped_is_involution() {
        assert_eq!(Side::A.flipped(), Side::B);
        assert_eq!(Side::A.flipped().flipped(), Side::A);
    }
}
