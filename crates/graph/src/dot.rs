//! Graphviz DOT export for debugging and figure inspection.

use std::fmt::Write as _;

use crate::csr::Graph;

/// Renders `g` in Graphviz DOT format as an undirected graph.
///
/// Vertices are labelled by index; an optional `name` becomes the graph name.
///
/// # Example
///
/// ```
/// use chiplet_graph::{dot, gen};
///
/// let text = dot::to_dot(&gen::path(3), Some("p3"));
/// assert!(text.starts_with("graph p3 {"));
/// assert!(text.contains("0 -- 1;"));
/// ```
#[must_use]
pub fn to_dot(g: &Graph, name: Option<&str>) -> String {
    let mut out = String::new();
    let graph_name = name.unwrap_or("g");
    writeln!(out, "graph {graph_name} {{").expect("writing to String cannot fail");
    for v in g.vertices() {
        writeln!(out, "  {v};").expect("writing to String cannot fail");
    }
    for (u, v) in g.edges() {
        writeln!(out, "  {u} -- {v};").expect("writing to String cannot fail");
    }
    out.push_str("}\n");
    out
}

/// Renders `g` as a plain adjacency list, one vertex per line:
/// `vertex: n1 n2 ...`.
#[must_use]
pub fn to_adjacency_list(g: &Graph) -> String {
    let mut out = String::new();
    for v in g.vertices() {
        write!(out, "{v}:").expect("writing to String cannot fail");
        for &u in g.neighbors(v) {
            write!(out, " {u}").expect("writing to String cannot fail");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn dot_contains_all_edges_once() {
        let g = gen::cycle(4);
        let text = to_dot(&g, None);
        assert_eq!(text.matches(" -- ").count(), 4);
        assert!(text.contains("graph g {"));
    }

    #[test]
    fn adjacency_list_shape() {
        let g = gen::star(2);
        let text = to_adjacency_list(&g);
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines, vec!["0: 1 2", "1: 0", "2: 0"]);
    }

    #[test]
    fn empty_graph_renders() {
        let g = crate::GraphBuilder::new(0).build();
        assert_eq!(to_dot(&g, Some("e")), "graph e {\n}\n");
        assert_eq!(to_adjacency_list(&g), "");
    }
}
