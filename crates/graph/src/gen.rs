//! Deterministic generators for canonical graphs.
//!
//! Used throughout the workspace for tests and for cross-checking the
//! arrangement generators against known structures.

use crate::csr::{Graph, GraphBuilder};

/// Path graph `P_n`: vertices `0..n` with edges `(i, i+1)`.
///
/// # Example
///
/// ```
/// let g = chiplet_graph::gen::path(4);
/// assert_eq!(g.num_edges(), 3);
/// ```
#[must_use]
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(i - 1, i).expect("path edges are valid");
    }
    b.build()
}

/// Cycle graph `C_n` (`n ≥ 3`); for `n < 3` falls back to [`path`].
#[must_use]
pub fn cycle(n: usize) -> Graph {
    if n < 3 {
        return path(n);
    }
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(i - 1, i).expect("cycle edges are valid");
    }
    b.add_edge(n - 1, 0).expect("closing edge is valid");
    b.build()
}

/// Complete graph `K_n`.
#[must_use]
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v).expect("complete-graph edges are valid");
        }
    }
    b.build()
}

/// Star graph: vertex `0` connected to `leaves` leaf vertices `1..=leaves`.
#[must_use]
pub fn star(leaves: usize) -> Graph {
    let mut b = GraphBuilder::new(leaves + 1);
    for v in 1..=leaves {
        b.add_edge(0, v).expect("star edges are valid");
    }
    b.build()
}

/// `rows × cols` 2D mesh; vertex `(r, c)` is numbered `r * cols + c`.
///
/// This is the graph of the paper's regular/semi-regular **grid (G)**
/// arrangement.
#[must_use]
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                b.add_edge(v, v + 1).expect("grid edges are valid");
            }
            if r + 1 < rows {
                b.add_edge(v, v + cols).expect("grid edges are valid");
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)` random graph from an explicit RNG-free stream.
///
/// To stay deterministic without an RNG dependency in this crate, the
/// caller supplies the randomness: `coin(u, v)` decides whether edge
/// `{u, v}` (with `u < v`) exists.
#[must_use]
pub fn from_coin<F>(n: usize, mut coin: F) -> Graph
where
    F: FnMut(usize, usize) -> bool,
{
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if coin(u, v) {
                b.add_edge(u, v).expect("coin edges are valid");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    #[test]
    fn path_properties() {
        let g = path(6);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(metrics::diameter(&g), Some(5));
        assert_eq!(metrics::degree_stats(&g).unwrap().min, 1);
    }

    #[test]
    fn path_degenerate_cases() {
        assert_eq!(path(0).num_vertices(), 0);
        assert_eq!(path(1).num_edges(), 0);
        assert_eq!(cycle(2).num_edges(), 1); // falls back to path
    }

    #[test]
    fn cycle_properties() {
        let g = cycle(10);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(metrics::diameter(&g), Some(5));
        let s = metrics::degree_stats(&g).unwrap();
        assert_eq!((s.min, s.max), (2, 2));
    }

    #[test]
    fn complete_properties() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(metrics::diameter(&g), Some(1));
    }

    #[test]
    fn grid_edge_count() {
        // rows*(cols-1) + cols*(rows-1) edges.
        let g = grid(3, 4);
        assert_eq!(g.num_edges(), 3 * 3 + 4 * 2);
        assert!(metrics::is_connected(&g));
    }

    #[test]
    fn grid_degenerate() {
        assert_eq!(grid(0, 5).num_vertices(), 0);
        assert_eq!(grid(1, 5).num_edges(), 4); // a path
    }

    #[test]
    fn from_coin_full_and_empty() {
        assert_eq!(from_coin(5, |_, _| true).num_edges(), 10);
        assert_eq!(from_coin(5, |_, _| false).num_edges(), 0);
    }
}
