//! Compact undirected-graph kernel for chiplet-interconnect analysis.
//!
//! The HexaMesh methodology (Iff et al., DAC 2023) models a 2.5D-stacked chip
//! as a planar graph: vertices are chiplets and edges are die-to-die links
//! between chiplets that share a boundary edge. This crate provides the graph
//! substrate every other layer of the reproduction builds on:
//!
//! * [`Graph`] — an immutable undirected graph in compressed sparse row (CSR)
//!   form, built through [`GraphBuilder`],
//! * breadth-first traversal and all-pairs distance helpers ([`bfs`]),
//! * global metrics used as *performance proxies* by the paper: network
//!   diameter, eccentricities, degree statistics ([`metrics`]),
//! * bipartition cut evaluation used by the METIS-substitute partitioner
//!   ([`cut`]),
//! * deterministic generators for canonical test graphs ([`gen`]).
//!
//! # Example
//!
//! ```
//! use chiplet_graph::{Graph, GraphBuilder};
//!
//! # fn main() -> Result<(), chiplet_graph::GraphError> {
//! // A 4-cycle: 0-1-2-3-0.
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1)?;
//! b.add_edge(1, 2)?;
//! b.add_edge(2, 3)?;
//! b.add_edge(3, 0)?;
//! let g: Graph = b.build();
//! assert_eq!(g.num_vertices(), 4);
//! assert_eq!(g.num_edges(), 4);
//! assert_eq!(chiplet_graph::metrics::diameter(&g), Some(2));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod centrality;
pub mod csr;
pub mod cut;
pub mod dot;
pub mod gen;
pub mod metrics;
pub mod resilience;

pub use csr::{Graph, GraphBuilder, GraphError, NeighborIter, VertexId};
