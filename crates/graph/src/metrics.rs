//! Global graph metrics used as inter-chiplet-interconnect performance proxies.
//!
//! Section III-C of the paper uses the graph **diameter** as a latency proxy
//! and the **bisection bandwidth** as a throughput proxy (the latter lives in
//! `chiplet-partition`; the edge-cut primitive is in [`crate::cut`]). This
//! module provides diameter, eccentricities, degree statistics, and the
//! planar-graph degree bound from §IV-A.

use serde::{Deserialize, Serialize};

use crate::bfs::{self, UNREACHABLE};
use crate::csr::{Graph, VertexId};

/// Eccentricity of every vertex: the greatest BFS distance to any other
/// vertex, or `None` for graphs that are disconnected or empty.
#[must_use]
pub fn eccentricities(g: &Graph) -> Option<Vec<u32>> {
    if g.is_empty() {
        return None;
    }
    let mut ecc = Vec::with_capacity(g.num_vertices());
    for v in g.vertices() {
        let d = bfs::distances(g, v);
        let max = *d.iter().max().expect("non-empty distance vector");
        if max == UNREACHABLE {
            return None;
        }
        ecc.push(max);
    }
    Some(ecc)
}

/// Network diameter: the largest shortest-path distance between any vertex
/// pair, or `None` if the graph is disconnected or empty.
///
/// This is the paper's latency proxy (§III-C): each extra hop crosses two
/// PHYs and one D2D link.
///
/// # Example
///
/// ```
/// use chiplet_graph::{gen, metrics};
///
/// let g = gen::grid(4, 4); // 4x4 mesh of chiplets
/// assert_eq!(metrics::diameter(&g), Some(6)); // 2*sqrt(16) - 2
/// ```
#[must_use]
pub fn diameter(g: &Graph) -> Option<u32> {
    eccentricities(g).map(|e| e.into_iter().max().unwrap_or(0))
}

/// Radius: the smallest eccentricity, or `None` if disconnected or empty.
#[must_use]
pub fn radius(g: &Graph) -> Option<u32> {
    eccentricities(g).map(|e| e.into_iter().min().unwrap_or(0))
}

/// Average shortest-path distance over all ordered vertex pairs `u != v`,
/// or `None` if the graph is disconnected, empty, or has a single vertex.
#[must_use]
pub fn average_distance(g: &Graph) -> Option<f64> {
    let n = g.num_vertices();
    if n < 2 {
        return None;
    }
    let mut total: u64 = 0;
    for v in g.vertices() {
        for &d in &bfs::distances(g, v) {
            if d == UNREACHABLE {
                return None;
            }
            total += u64::from(d);
        }
    }
    Some(total as f64 / (n as f64 * (n as f64 - 1.0)))
}

/// `true` if every vertex can reach every other vertex (the empty graph is
/// considered connected).
#[must_use]
pub fn is_connected(g: &Graph) -> bool {
    if g.num_vertices() <= 1 {
        return true;
    }
    bfs::distances(g, 0).iter().all(|&d| d != UNREACHABLE)
}

/// Connected components; each vertex is labelled with a component id in
/// `0..component_count`, in order of first discovery.
#[must_use]
pub fn connected_components(g: &Graph) -> Vec<usize> {
    let mut label = vec![usize::MAX; g.num_vertices()];
    let mut next = 0;
    for v in g.vertices() {
        if label[v] != usize::MAX {
            continue;
        }
        for u in bfs::reachable_set(g, v) {
            label[u] = next;
        }
        next += 1;
    }
    label
}

/// Degree statistics of a graph (min / max / average neighbours per chiplet).
///
/// Section IV of the paper compares arrangements by exactly these numbers:
/// the grid tends to 4 average neighbours, brickwall and HexaMesh to 6, and
/// HexaMesh raises the minimum from 2 to 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Smallest vertex degree.
    pub min: usize,
    /// Largest vertex degree.
    pub max: usize,
    /// Average vertex degree `2E / V`.
    pub average: f64,
}

/// Computes [`DegreeStats`], or `None` for the empty graph.
#[must_use]
pub fn degree_stats(g: &Graph) -> Option<DegreeStats> {
    if g.is_empty() {
        return None;
    }
    let degrees: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
    Some(DegreeStats {
        min: *degrees.iter().min().expect("non-empty"),
        max: *degrees.iter().max().expect("non-empty"),
        average: 2.0 * g.num_edges() as f64 / g.num_vertices() as f64,
    })
}

/// Histogram of vertex degrees; index `d` holds the number of vertices with
/// degree exactly `d`.
#[must_use]
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let max_degree = g.vertices().map(|v| g.degree(v)).max().unwrap_or(0);
    let mut histogram = vec![0usize; max_degree + 1];
    for v in g.vertices() {
        histogram[g.degree(v)] += 1;
    }
    histogram
}

/// Upper bound on the average degree of a *planar* graph with `v ≥ 3`
/// vertices: `d_avg ≤ 6 − 12/v` (from `e ≤ 3v − 6`), as derived in §IV-A.
///
/// Returns `None` for `v < 3` where the bound does not apply.
#[must_use]
pub fn planar_average_degree_bound(num_vertices: usize) -> Option<f64> {
    if num_vertices < 3 {
        return None;
    }
    Some(6.0 - 12.0 / num_vertices as f64)
}

/// `true` if the edge count satisfies the planar-graph bound `e ≤ 3v − 6`
/// (for `v ≥ 3`; smaller graphs are trivially planar).
///
/// A necessary — not sufficient — planarity condition; all chiplet
/// arrangement graphs must satisfy it because they are geometric contact
/// graphs and hence planar.
#[must_use]
pub fn satisfies_planar_edge_bound(g: &Graph) -> bool {
    let v = g.num_vertices();
    if v < 3 {
        return true;
    }
    g.num_edges() <= 3 * v - 6
}

/// Diameter of every connected component; `None` entries never occur, the
/// vector is indexed by component id as assigned by
/// [`connected_components`].
#[must_use]
pub fn component_diameters(g: &Graph) -> Vec<u32> {
    let labels = connected_components(g);
    let count = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut diameters = vec![0u32; count];
    for v in g.vertices() {
        let d = bfs::distances(g, v);
        for (u, &du) in d.iter().enumerate() {
            if du != UNREACHABLE && labels[u] == labels[v] {
                diameters[labels[v]] = diameters[labels[v]].max(du);
            }
        }
        let _: VertexId = v;
    }
    diameters
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn diameter_of_grid_matches_formula() {
        // D_G(N) = 2*sqrt(N) - 2 for a regular sqrt(N) x sqrt(N) grid.
        for side in 1..=10usize {
            let g = gen::grid(side, side);
            let n = side * side;
            let expected = 2 * (n as f64).sqrt() as u32 - 2;
            assert_eq!(diameter(&g), Some(expected), "side {side}");
        }
    }

    #[test]
    fn diameter_of_disconnected_is_none() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(diameter(&g), None);
        assert_eq!(radius(&g), None);
        assert_eq!(average_distance(&g), None);
        assert!(!is_connected(&g));
    }

    #[test]
    fn diameter_of_empty_and_singleton() {
        assert_eq!(diameter(&crate::GraphBuilder::new(0).build()), None);
        assert_eq!(diameter(&crate::GraphBuilder::new(1).build()), Some(0));
    }

    #[test]
    fn radius_le_diameter_le_twice_radius() {
        for g in [gen::grid(3, 5), gen::cycle(9), gen::complete(6)] {
            let r = radius(&g).unwrap();
            let d = diameter(&g).unwrap();
            assert!(r <= d && d <= 2 * r, "r={r} d={d}");
        }
    }

    #[test]
    fn degree_stats_of_cycle() {
        let s = degree_stats(&gen::cycle(8)).unwrap();
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 2);
        assert!((s.average - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degree_histogram_of_star() {
        let g = gen::star(5); // centre + 5 leaves
        let h = degree_histogram(&g);
        assert_eq!(h[1], 5);
        assert_eq!(h[5], 1);
    }

    #[test]
    fn components_labelling() {
        let g = Graph::from_edges(5, &[(0, 1), (3, 4)]).unwrap();
        let labels = connected_components(&g);
        assert_eq!(labels, vec![0, 0, 1, 2, 2]);
        let cd = component_diameters(&g);
        assert_eq!(cd, vec![1, 0, 1]);
    }

    #[test]
    fn planar_bound_applies_to_grid() {
        let g = gen::grid(6, 6);
        assert!(satisfies_planar_edge_bound(&g));
        let bound = planar_average_degree_bound(36).unwrap();
        let avg = degree_stats(&g).unwrap().average;
        assert!(avg <= bound);
    }

    #[test]
    fn planar_bound_rejects_k5() {
        // K5 has 10 edges > 3*5 - 6 = 9.
        let g = gen::complete(5);
        assert!(!satisfies_planar_edge_bound(&g));
    }

    #[test]
    fn planar_bound_small_graphs() {
        assert_eq!(planar_average_degree_bound(2), None);
        assert!(satisfies_planar_edge_bound(&gen::complete(2)));
    }

    #[test]
    fn average_distance_of_path() {
        // Path 0-1-2: pairs (0,1)=1 (0,2)=2 (1,2)=1 -> mean = 8/6.
        let g = gen::path(3);
        let avg = average_distance(&g).unwrap();
        assert!((avg - 8.0 / 6.0).abs() < 1e-12);
    }
}
