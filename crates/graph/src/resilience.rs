//! Fault-tolerance metrics: bridges, articulation points, edge connectivity.
//!
//! §IV of the paper argues for raising the *minimum* number of neighbours
//! per chiplet (HexaMesh: 3 vs. the grid's 2, and §IV-C notes irregular
//! grids can drop to 1). The engineering content of that argument is
//! fault tolerance: a link whose removal disconnects the ICI (a *bridge*)
//! or a chiplet whose failure does (an *articulation point*) is a single
//! point of failure, and the global edge connectivity bounds how many link
//! failures any adversary needs. This module computes all three.

use crate::csr::{Graph, VertexId};

/// All bridges of `g`: edges whose removal disconnects their component.
/// Returned as `(u, v)` pairs with `u < v`, in DFS discovery order.
///
/// Classic Tarjan low-link computation, iterative to survive deep graphs.
#[must_use]
pub fn bridges(g: &Graph) -> Vec<(VertexId, VertexId)> {
    let n = g.num_vertices();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut timer = 0usize;
    let mut out = Vec::new();

    // Iterative DFS frame: (vertex, parent-edge endpoint, neighbor index).
    let mut stack: Vec<(usize, Option<usize>, usize)> = Vec::new();
    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        stack.push((root, None, 0));
        while let Some(&mut (v, parent, ref mut idx)) = stack.last_mut() {
            let neighbors = g.neighbors(v);
            if *idx < neighbors.len() {
                let u = neighbors[*idx];
                *idx += 1;
                if disc[u] == usize::MAX {
                    disc[u] = timer;
                    low[u] = timer;
                    timer += 1;
                    stack.push((u, Some(v), 0));
                } else if Some(u) != parent {
                    low[v] = low[v].min(disc[u]);
                }
            } else {
                stack.pop();
                if let Some(p) = parent {
                    low[p] = low[p].min(low[v]);
                    if low[v] > disc[p] {
                        out.push((p.min(v), p.max(v)));
                    }
                }
            }
        }
    }
    out
}

/// All articulation points of `g`: vertices whose removal disconnects
/// their component. Sorted ascending.
#[must_use]
pub fn articulation_points(g: &Graph) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut is_cut = vec![false; n];
    let mut timer = 0usize;

    let mut stack: Vec<(usize, Option<usize>, usize, usize)> = Vec::new(); // (v, parent, idx, child_count)
    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        stack.push((root, None, 0, 0));
        while let Some(&mut (v, parent, ref mut idx, ref mut children)) = stack.last_mut() {
            let neighbors = g.neighbors(v);
            if *idx < neighbors.len() {
                let u = neighbors[*idx];
                *idx += 1;
                if disc[u] == usize::MAX {
                    *children += 1;
                    disc[u] = timer;
                    low[u] = timer;
                    timer += 1;
                    stack.push((u, Some(v), 0, 0));
                } else if Some(u) != parent {
                    low[v] = low[v].min(disc[u]);
                }
            } else {
                let children = *children;
                stack.pop();
                match parent {
                    Some(p) => {
                        low[p] = low[p].min(low[v]);
                        // A non-root vertex p is a cut vertex if some child
                        // subtree cannot reach above p. The root's rule is
                        // different and handled when its own frame pops.
                        if p != root && low[v] >= disc[p] {
                            is_cut[p] = true;
                        }
                    }
                    None => {
                        // Root: cut vertex iff it has 2+ DFS children.
                        if children >= 2 {
                            is_cut[v] = true;
                        }
                    }
                }
            }
        }
    }
    (0..n).filter(|&v| is_cut[v]).collect()
}

/// Global minimum edge cut of a connected graph (Stoer–Wagner, unit edge
/// weights): the number of link failures that suffice to split the ICI.
/// Returns `None` for graphs with fewer than 2 vertices, `Some(0)` for
/// disconnected graphs.
///
/// # Example
///
/// ```
/// use chiplet_graph::{gen, resilience};
///
/// // A ring survives any single link failure but not two.
/// assert_eq!(resilience::edge_connectivity(&gen::cycle(8)), Some(2));
/// // A path dies with its weakest link.
/// assert_eq!(resilience::edge_connectivity(&gen::path(8)), Some(1));
/// ```
#[must_use]
pub fn edge_connectivity(g: &Graph) -> Option<usize> {
    let n = g.num_vertices();
    if n < 2 {
        return None;
    }
    // Dense adjacency weights; merged vertices accumulate.
    let mut w = vec![vec![0u64; n]; n];
    for (u, v) in g.edges() {
        w[u][v] += 1;
        w[v][u] += 1;
    }
    let mut active: Vec<usize> = (0..n).collect();
    let mut best = u64::MAX;
    while active.len() > 1 {
        // Maximum-adjacency search.
        let m = active.len();
        let mut weights = vec![0u64; m];
        let mut added = vec![false; m];
        let mut prev = 0usize;
        let mut last = 0usize;
        for it in 0..m {
            let mut sel = usize::MAX;
            for i in 0..m {
                if !added[i] && (sel == usize::MAX || weights[i] > weights[sel]) {
                    sel = i;
                }
            }
            added[sel] = true;
            if it == m - 1 {
                best = best.min(weights[sel]);
                prev = last;
                last = sel;
                break;
            }
            last = sel;
            if it == m - 2 {
                prev = sel;
            }
            for i in 0..m {
                if !added[i] {
                    weights[i] += w[active[sel]][active[i]];
                }
            }
        }
        // Merge `last` into `prev`.
        let (a, b) = (active[prev], active[last]);
        #[allow(clippy::needless_range_loop)] // i indexes two matrices symmetrically
        for i in 0..n {
            w[a][i] += w[b][i];
            w[i][a] += w[i][b];
        }
        w[a][a] = 0;
        active.remove(last);
    }
    Some(best as usize)
}

/// A single-link-failure census: how many of the graph's edges are
/// bridges, and the worst-case diameter after any one non-bridge edge
/// fails (`None` when every edge is a bridge or the graph has no edges).
#[must_use]
pub fn single_failure_diameter(g: &Graph) -> Option<u32> {
    use crate::metrics::diameter;
    let bridge_set: std::collections::HashSet<(usize, usize)> =
        bridges(g).into_iter().collect();
    let mut worst = None;
    for (u, v) in g.edges() {
        if bridge_set.contains(&(u.min(v), u.max(v))) {
            continue;
        }
        let pruned: Vec<(usize, usize)> =
            g.edges().filter(|&(a, b)| (a, b) != (u, v) && (a, b) != (v, u)).collect();
        let h = Graph::from_edges(g.num_vertices(), &pruned).expect("still simple");
        if let Some(d) = diameter(&h) {
            worst = Some(worst.map_or(d, |w: u32| w.max(d)));
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn path_is_all_bridges() {
        let g = gen::path(5);
        assert_eq!(bridges(&g).len(), 4);
        assert_eq!(articulation_points(&g), vec![1, 2, 3]);
        assert_eq!(edge_connectivity(&g), Some(1));
    }

    #[test]
    fn cycle_has_no_single_points_of_failure() {
        let g = gen::cycle(8);
        assert!(bridges(&g).is_empty());
        assert!(articulation_points(&g).is_empty());
        assert_eq!(edge_connectivity(&g), Some(2));
    }

    #[test]
    fn complete_graph_connectivity_is_n_minus_1() {
        let g = gen::complete(5);
        assert_eq!(edge_connectivity(&g), Some(4));
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn star_centre_is_the_articulation_point() {
        let g = gen::star(4); // vertex 0 is the hub
        assert_eq!(articulation_points(&g), vec![0]);
        assert_eq!(bridges(&g).len(), 4);
        assert_eq!(edge_connectivity(&g), Some(1));
    }

    #[test]
    fn barbell_bridge_detected() {
        // Two triangles joined by one edge (2, 3).
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)])
            .unwrap();
        assert_eq!(bridges(&g), vec![(2, 3)]);
        let cuts = articulation_points(&g);
        assert_eq!(cuts, vec![2, 3]);
        assert_eq!(edge_connectivity(&g), Some(1));
    }

    #[test]
    fn grid_connectivity_is_corner_degree() {
        let g = gen::grid(4, 4);
        assert!(bridges(&g).is_empty());
        assert!(articulation_points(&g).is_empty());
        // The cheapest cut isolates a corner (degree 2).
        assert_eq!(edge_connectivity(&g), Some(2));
    }

    #[test]
    fn disconnected_graph_has_zero_connectivity() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(edge_connectivity(&g), Some(0));
        // Both component edges are bridges.
        assert_eq!(bridges(&g).len(), 2);
    }

    #[test]
    fn tiny_graphs() {
        let empty = crate::GraphBuilder::new(0).build();
        assert_eq!(edge_connectivity(&empty), None);
        let single = crate::GraphBuilder::new(1).build();
        assert_eq!(edge_connectivity(&single), None);
        assert!(bridges(&single).is_empty());
        assert!(articulation_points(&single).is_empty());
    }

    #[test]
    fn single_failure_diameter_on_cycle() {
        // Removing any one edge of C8 turns it into P8: diameter 7.
        let g = gen::cycle(8);
        assert_eq!(single_failure_diameter(&g), Some(7));
        // A path has only bridges: no survivable single failure.
        assert_eq!(single_failure_diameter(&gen::path(4)), None);
    }

    #[test]
    fn connectivity_bounded_by_min_degree() {
        for g in [gen::grid(3, 5), gen::cycle(7), gen::complete(6)] {
            let min_degree = (0..g.num_vertices()).map(|v| g.degree(v)).min().unwrap();
            let k = edge_connectivity(&g).unwrap();
            assert!(k <= min_degree, "connectivity {k} > min degree {min_degree}");
            assert!(k >= 1);
        }
    }
}
