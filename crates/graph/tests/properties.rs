//! Property-based tests for the graph kernel.

use chiplet_graph::cut::{Bipartition, Side};
use chiplet_graph::{bfs, gen, metrics, Graph};
use proptest::prelude::*;

/// Strategy: a random simple graph with 1..=24 vertices.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..=24).prop_flat_map(|n| {
        let max_edges = n * (n.saturating_sub(1)) / 2;
        proptest::collection::vec(proptest::bool::ANY, max_edges).prop_map(move |coins| {
            let mut k = 0;
            gen::from_coin(n, |_, _| {
                let c = coins[k];
                k += 1;
                c
            })
        })
    })
}

/// Strategy: a random *connected* simple graph (random graph plus a spanning
/// path to guarantee connectivity).
fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    arb_graph().prop_map(|g| {
        let n = g.num_vertices();
        let mut edges: Vec<_> = g.edges().collect();
        for i in 1..n {
            if !g.has_edge(i - 1, i) {
                edges.push((i - 1, i));
            }
        }
        Graph::from_edges(n, &edges).expect("augmented edges stay simple")
    })
}

/// Strategy: a random simple graph with 2..=8 vertices — small enough to
/// brute-force every bipartition. Deliberately *not* forced connected:
/// disconnected samples pin the `Some(0)` contract.
fn arb_small_graph() -> impl Strategy<Value = Graph> {
    (2usize..=8).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec(proptest::bool::ANY, max_edges).prop_map(move |coins| {
            let mut k = 0;
            gen::from_coin(n, |_, _| {
                let c = coins[k];
                k += 1;
                c
            })
        })
    })
}

#[test]
fn edge_connectivity_degenerate_cases() {
    use chiplet_graph::resilience::edge_connectivity;
    // Fewer than two vertices: no cut exists at all.
    assert_eq!(edge_connectivity(&Graph::from_edges(0, &[]).unwrap()), None);
    assert_eq!(edge_connectivity(&Graph::from_edges(1, &[]).unwrap()), None);
    // Already disconnected: the empty cut suffices.
    assert_eq!(edge_connectivity(&Graph::from_edges(2, &[]).unwrap()), Some(0));
    let two_islands = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
    assert_eq!(edge_connectivity(&two_islands), Some(0));
    // An isolated vertex next to a clique still reads as disconnected.
    let stranded = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0)]).unwrap();
    assert_eq!(edge_connectivity(&stranded), Some(0));
}

proptest! {
    #[test]
    fn bfs_distance_is_symmetric(g in arb_graph()) {
        let n = g.num_vertices();
        let m = bfs::all_pairs_distances(&g);
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(m[u * n + v], m[v * n + u]);
            }
        }
    }

    #[test]
    fn bfs_satisfies_triangle_inequality(g in arb_connected_graph()) {
        let n = g.num_vertices();
        let m = bfs::all_pairs_distances(&g);
        for u in 0..n {
            for v in 0..n {
                for w in 0..n {
                    prop_assert!(m[u * n + v] <= m[u * n + w] + m[w * n + v]);
                }
            }
        }
    }

    #[test]
    fn adjacent_vertices_have_distance_one(g in arb_graph()) {
        for (u, v) in g.edges() {
            let d = bfs::distances(&g, u);
            prop_assert_eq!(d[v], 1);
        }
    }

    #[test]
    fn diameter_equals_max_eccentricity(g in arb_connected_graph()) {
        let ecc = metrics::eccentricities(&g).expect("connected");
        let d = metrics::diameter(&g).expect("connected");
        prop_assert_eq!(d, ecc.into_iter().max().unwrap_or(0));
    }

    #[test]
    fn handshake_lemma(g in arb_graph()) {
        let total_degree: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(total_degree, 2 * g.num_edges());
    }

    #[test]
    fn shortest_path_length_matches_distance(g in arb_connected_graph()) {
        let n = g.num_vertices();
        let target = n - 1;
        let d = bfs::distances(&g, 0);
        let p = bfs::shortest_path(&g, 0, target).expect("connected");
        prop_assert_eq!(p.len() as u32, d[target] + 1);
        for w in p.windows(2) {
            prop_assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn cut_size_bounded_by_edge_count(g in arb_graph(), cut_point in 0usize..24) {
        let n = g.num_vertices();
        let split = cut_point % (n + 1);
        let p = Bipartition::from_side_of(n, |v| if v < split { Side::A } else { Side::B });
        prop_assert!(p.cut_size(&g) <= g.num_edges());
    }

    #[test]
    fn flipping_all_vertices_preserves_cut(g in arb_graph()) {
        let n = g.num_vertices();
        let mut p = Bipartition::from_side_of(n, |v| if v % 2 == 0 { Side::A } else { Side::B });
        let before = p.cut_size(&g);
        for v in 0..n {
            p.flip(v);
        }
        prop_assert_eq!(p.cut_size(&g), before);
    }

    #[test]
    fn components_partition_vertices(g in arb_graph()) {
        let labels = metrics::connected_components(&g);
        prop_assert_eq!(labels.len(), g.num_vertices());
        for (u, v) in g.edges() {
            prop_assert_eq!(labels[u], labels[v]);
        }
    }

    #[test]
    fn connectivity_agrees_with_component_count(g in arb_graph()) {
        let labels = metrics::connected_components(&g);
        let count = labels.iter().copied().max().map_or(0, |m| m + 1);
        prop_assert_eq!(metrics::is_connected(&g), count <= 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn removing_a_bridge_disconnects(g in arb_connected_graph()) {
        use chiplet_graph::resilience::bridges;
        for (u, v) in bridges(&g) {
            let pruned: Vec<(usize, usize)> = g
                .edges()
                .filter(|&(a, b)| (a.min(b), a.max(b)) != (u, v))
                .collect();
            let h = Graph::from_edges(g.num_vertices(), &pruned).expect("still simple");
            prop_assert!(!metrics::is_connected(&h), "bridge ({u},{v}) removal kept connectivity");
        }
    }

    #[test]
    fn removing_a_non_bridge_keeps_connectivity(g in arb_connected_graph()) {
        use chiplet_graph::resilience::bridges;
        let bridge_set: std::collections::HashSet<(usize, usize)> =
            bridges(&g).into_iter().collect();
        for (u, v) in g.edges() {
            let key = (u.min(v), u.max(v));
            if bridge_set.contains(&key) {
                continue;
            }
            let pruned: Vec<(usize, usize)> = g
                .edges()
                .filter(|&(a, b)| (a.min(b), a.max(b)) != key)
                .collect();
            let h = Graph::from_edges(g.num_vertices(), &pruned).expect("still simple");
            prop_assert!(metrics::is_connected(&h), "non-bridge ({u},{v}) removal disconnected");
        }
    }

    /// Stoer–Wagner agrees with exhaustive bipartition enumeration: on a
    /// small graph the global minimum edge cut is the minimum, over every
    /// proper vertex subset, of the number of crossing edges.
    #[test]
    fn edge_connectivity_matches_brute_force_min_cut(g in arb_small_graph()) {
        use chiplet_graph::resilience::edge_connectivity;
        let n = g.num_vertices();
        let edges: Vec<(usize, usize)> = g.edges().collect();
        let mut brute = usize::MAX;
        // Fixing vertex 0 on one side halves the symmetric enumeration;
        // mask 0 (empty subset) is the only non-proper case left.
        for mask in 1u32..(1 << (n - 1)) {
            let side = |v: usize| v != 0 && (mask >> (v - 1)) & 1 == 1;
            let crossing = edges.iter().filter(|&&(u, v)| side(u) != side(v)).count();
            brute = brute.min(crossing);
        }
        prop_assert_eq!(edge_connectivity(&g), Some(brute));
    }

    #[test]
    fn edge_connectivity_bounds(g in arb_connected_graph()) {
        use chiplet_graph::resilience::{bridges, edge_connectivity};
        let n = g.num_vertices();
        if n < 2 {
            return Ok(());
        }
        let k = edge_connectivity(&g).expect("n >= 2");
        let min_degree = (0..n).map(|v| g.degree(v)).min().unwrap();
        prop_assert!(k <= min_degree, "k {k} > min degree {min_degree}");
        prop_assert!(k >= 1, "connected graph with zero connectivity");
        // k == 1 exactly when a bridge exists.
        prop_assert_eq!(k == 1, !bridges(&g).is_empty());
    }

    #[test]
    fn articulation_points_disconnect_when_removed(g in arb_connected_graph()) {
        use chiplet_graph::resilience::articulation_points;
        let n = g.num_vertices();
        if n < 3 {
            return Ok(());
        }
        for cut in articulation_points(&g) {
            // Re-index the graph without `cut` and check connectivity.
            let mapped: Vec<(usize, usize)> = g
                .edges()
                .filter(|&(a, b)| a != cut && b != cut)
                .map(|(a, b)| {
                    let shift = |x: usize| if x > cut { x - 1 } else { x };
                    (shift(a), shift(b))
                })
                .collect();
            let h = Graph::from_edges(n - 1, &mapped).expect("still simple");
            prop_assert!(
                !metrics::is_connected(&h),
                "removing articulation point {cut} kept connectivity"
            );
        }
    }
}
