//! Geometric chiplet floorplans and adjacency extraction.
//!
//! The HexaMesh methodology derives the inter-chiplet-interconnect graph from
//! *geometry*: two chiplets may be linked only if they share a boundary edge
//! of positive length (§III-C — a common corner is not enough, it would
//! lengthen the D2D link). This crate provides:
//!
//! * [`Rect`] — axis-aligned rectangles on an integer lattice (exact
//!   arithmetic; no floating-point adjacency bugs),
//! * [`Placement`] — a validated, overlap-free set of placed chiplets,
//! * adjacency-graph extraction ([`Placement::compute_adjacency_graph`]),
//! * perimeter I/O-chiplet placement mirroring Fig. 2 of the paper
//!   ([`perimeter`]).
//!
//! Arrangement *generators* (grid, brickwall, HexaMesh, honeycomb) live in
//! the `hexamesh` core crate; this crate is the geometric substrate they
//! target.
//!
//! # Example
//!
//! ```
//! use chiplet_layout::{PlacedChiplet, Placement, Rect};
//!
//! # fn main() -> Result<(), chiplet_layout::LayoutError> {
//! let mut p = Placement::new();
//! p.push(PlacedChiplet::compute(Rect::new(0, 0, 2, 2)?))?;
//! p.push(PlacedChiplet::compute(Rect::new(2, 0, 2, 2)?))?; // shares an edge
//! p.push(PlacedChiplet::compute(Rect::new(4, 2, 2, 2)?))?; // corner only
//! let g = p.compute_adjacency_graph();
//! assert_eq!(g.num_edges(), 1); // corner contact is not adjacency
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perimeter;
pub mod placement;
pub mod rect;
pub mod svg;

pub use placement::{ChipletKind, LayoutError, PlacedChiplet, Placement};
pub use rect::Rect;
