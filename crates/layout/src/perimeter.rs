//! Perimeter I/O-chiplet placement (Fig. 2 of the paper).
//!
//! The paper arranges the identical compute chiplets in the middle of the
//! package and assumes I/O-driver (and other) chiplets sit on the perimeter,
//! where package solder balls carry signals. Two helpers realise that:
//!
//! * [`surround_with_io`] adds a ring of I/O chiplets around the bounding
//!   box of an existing placement,
//! * [`fill_gaps_with_io`] tiles the uncovered notches *inside* the bounding
//!   box (non-rectangular arrangements such as HexaMesh leave jagged edges
//!   that I/O chiplets fill — Fig. 4 caption).

use crate::placement::{LayoutError, PlacedChiplet, Placement};
use crate::rect::Rect;

/// Adds a ring of `io_w × io_h` I/O chiplets around the bounding box of
/// `placement`, returning the augmented placement.
///
/// Tiles are laid left-to-right along the bottom and top edges and
/// bottom-to-top along the left and right edges; the four corners are
/// covered by the horizontal runs. Partial tiles at the ends are skipped
/// (chiplets must keep their given size — uniformity constraint).
///
/// # Errors
///
/// [`LayoutError::EmptyRect`] if `io_w` or `io_h` is not positive. An empty
/// input placement is returned unchanged.
pub fn surround_with_io(
    placement: &Placement,
    io_w: i64,
    io_h: i64,
) -> Result<Placement, LayoutError> {
    // Validate the tile size eagerly even if the placement is empty.
    let _probe = Rect::new(0, 0, io_w, io_h)?;
    let Some(bb) = placement.bounding_box() else {
        return Ok(placement.clone());
    };
    let mut out = placement.clone();

    // Bottom and top runs span the widened box so corners are filled.
    let x0 = bb.x() - io_w;
    let x1 = bb.right() + io_w;
    let mut x = x0;
    while x + io_w <= x1 {
        for y in [bb.y() - io_h, bb.top()] {
            let rect = Rect::new(x, y, io_w, io_h)?;
            // Ignore tiles that collide (possible when the compute placement
            // is non-convex and pokes past its nominal rows).
            let _ = out.push(PlacedChiplet::io(rect));
        }
        x += io_w;
    }
    // Left and right runs cover the original box height only.
    let mut y = bb.y();
    while y + io_h <= bb.top() {
        for x in [bb.x() - io_w, bb.right()] {
            let rect = Rect::new(x, y, io_w, io_h)?;
            let _ = out.push(PlacedChiplet::io(rect));
        }
        y += io_h;
    }
    Ok(out)
}

/// Tiles the uncovered area inside the bounding box of `placement` with
/// `tile_w × tile_h` I/O chiplets aligned to a lattice anchored at the
/// bounding-box origin. Tiles overlapping existing chiplets are skipped.
///
/// # Errors
///
/// [`LayoutError::EmptyRect`] if `tile_w` or `tile_h` is not positive.
pub fn fill_gaps_with_io(
    placement: &Placement,
    tile_w: i64,
    tile_h: i64,
) -> Result<Placement, LayoutError> {
    let _probe = Rect::new(0, 0, tile_w, tile_h)?;
    let Some(bb) = placement.bounding_box() else {
        return Ok(placement.clone());
    };
    let mut out = placement.clone();
    let mut y = bb.y();
    while y + tile_h <= bb.top() {
        let mut x = bb.x();
        while x + tile_w <= bb.right() {
            let rect = Rect::new(x, y, tile_w, tile_h)?;
            let _ = out.push(PlacedChiplet::io(rect)); // skips on overlap
            x += tile_w;
        }
        y += tile_h;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::ChipletKind;

    fn unit_grid(side: i64) -> Placement {
        let mut p = Placement::new();
        for y in 0..side {
            for x in 0..side {
                p.push(PlacedChiplet::compute(Rect::new(x, y, 1, 1).expect("unit rect")))
                    .expect("no overlap in grid");
            }
        }
        p
    }

    #[test]
    fn surround_square_grid() {
        let p = unit_grid(2);
        let ringed = surround_with_io(&p, 1, 1).unwrap();
        // A 2x2 box ringed by 1x1 tiles: top/bottom runs of 4 each + sides of
        // 2 each = 12 I/O chiplets.
        let io = ringed.chiplets().iter().filter(|c| c.kind == ChipletKind::Io).count();
        assert_eq!(io, 12);
        assert_eq!(ringed.compute_count(), 4);
    }

    #[test]
    fn surround_preserves_compute_graph() {
        let p = unit_grid(3);
        let before = p.compute_adjacency_graph();
        let ringed = surround_with_io(&p, 1, 1).unwrap();
        let after = ringed.compute_adjacency_graph();
        assert_eq!(before, after);
    }

    #[test]
    fn surround_empty_placement_is_noop() {
        let p = Placement::new();
        assert_eq!(surround_with_io(&p, 1, 1).unwrap().len(), 0);
    }

    #[test]
    fn surround_rejects_bad_tile() {
        let p = unit_grid(1);
        assert!(surround_with_io(&p, 0, 1).is_err());
    }

    #[test]
    fn fill_gaps_in_notched_placement() {
        // An L-shape: 3 unit chiplets in a 2x2 bounding box leaves one gap.
        let mut p = Placement::new();
        for (x, y) in [(0, 0), (1, 0), (0, 1)] {
            p.push(PlacedChiplet::compute(Rect::new(x, y, 1, 1).unwrap())).unwrap();
        }
        let filled = fill_gaps_with_io(&p, 1, 1).unwrap();
        assert_eq!(filled.len(), 4);
        let io: Vec<_> =
            filled.chiplets().iter().filter(|c| c.kind == ChipletKind::Io).collect();
        assert_eq!(io.len(), 1);
        assert_eq!((io[0].rect.x(), io[0].rect.y()), (1, 1));
    }

    #[test]
    fn fill_gaps_full_placement_adds_nothing() {
        let p = unit_grid(3);
        let filled = fill_gaps_with_io(&p, 1, 1).unwrap();
        assert_eq!(filled.len(), 9);
    }

    #[test]
    fn filled_utilization_reaches_one() {
        let mut p = Placement::new();
        for (x, y) in [(0, 0), (2, 0)] {
            p.push(PlacedChiplet::compute(Rect::new(x, y, 1, 1).unwrap())).unwrap();
        }
        let filled = fill_gaps_with_io(&p, 1, 1).unwrap();
        assert!((filled.utilization() - 1.0).abs() < 1e-12);
    }
}
