//! Validated chiplet placements and adjacency-graph extraction.

use std::fmt;

use chiplet_graph::{Graph, GraphBuilder};
use serde::{Deserialize, Serialize};

use crate::rect::Rect;

/// Errors produced while building a [`Placement`] or a [`Rect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutError {
    /// A rectangle had a non-positive width or height.
    EmptyRect {
        /// Offending width.
        width: i64,
        /// Offending height.
        height: i64,
    },
    /// A chiplet overlaps an already-placed chiplet.
    Overlap {
        /// Index of the existing chiplet that is overlapped.
        existing: usize,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LayoutError::EmptyRect { width, height } => {
                write!(f, "rectangle extent {width}x{height} must be positive")
            }
            LayoutError::Overlap { existing } => {
                write!(f, "chiplet overlaps already-placed chiplet {existing}")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// Functional role of a placed chiplet.
///
/// The paper optimises the arrangement of identical **compute** chiplets and
/// assumes **I/O** (and other) chiplets sit on the perimeter (Fig. 2); only
/// compute chiplets participate in the optimised ICI graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChipletKind {
    /// One of the identical compute chiplets being arranged.
    Compute,
    /// A perimeter chiplet (I/O drivers or other functions).
    Io,
}

/// A chiplet with a position, extent and role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlacedChiplet {
    /// Footprint on the interposer/package, in layout units.
    pub rect: Rect,
    /// Functional role.
    pub kind: ChipletKind,
}

impl PlacedChiplet {
    /// Convenience constructor for a compute chiplet.
    #[must_use]
    pub fn compute(rect: Rect) -> Self {
        Self { rect, kind: ChipletKind::Compute }
    }

    /// Convenience constructor for an I/O chiplet.
    #[must_use]
    pub fn io(rect: Rect) -> Self {
        Self { rect, kind: ChipletKind::Io }
    }
}

/// An overlap-free collection of placed chiplets.
///
/// Insertion validates against every existing chiplet (O(n) per push; the
/// arrangements in this workspace have at most a few hundred chiplets).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    chiplets: Vec<PlacedChiplet>,
}

impl Placement {
    /// Creates an empty placement.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a chiplet, validating that it does not overlap any existing one.
    ///
    /// Returns the index of the new chiplet.
    ///
    /// # Errors
    ///
    /// [`LayoutError::Overlap`] naming the first overlapped chiplet.
    pub fn push(&mut self, chiplet: PlacedChiplet) -> Result<usize, LayoutError> {
        for (i, existing) in self.chiplets.iter().enumerate() {
            if existing.rect.overlaps(&chiplet.rect) {
                return Err(LayoutError::Overlap { existing: i });
            }
        }
        self.chiplets.push(chiplet);
        Ok(self.chiplets.len() - 1)
    }

    /// All chiplets in insertion order.
    #[must_use]
    pub fn chiplets(&self) -> &[PlacedChiplet] {
        &self.chiplets
    }

    /// Number of chiplets of any kind.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chiplets.len()
    }

    /// `true` if nothing has been placed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chiplets.is_empty()
    }

    /// Number of compute chiplets.
    #[must_use]
    pub fn compute_count(&self) -> usize {
        self.chiplets.iter().filter(|c| c.kind == ChipletKind::Compute).count()
    }

    /// Indices of compute chiplets, in insertion order.
    #[must_use]
    pub fn compute_indices(&self) -> Vec<usize> {
        self.chiplets
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind == ChipletKind::Compute)
            .map(|(i, _)| i)
            .collect()
    }

    /// Adjacency graph over **compute chiplets only** — the paper's ICI graph
    /// (§III-C). Vertex `i` of the result is the `i`-th compute chiplet.
    #[must_use]
    pub fn compute_adjacency_graph(&self) -> Graph {
        let computes = self.compute_indices();
        let mut b = GraphBuilder::new(computes.len());
        for (gi, &i) in computes.iter().enumerate() {
            for (gj, &j) in computes.iter().enumerate().skip(gi + 1) {
                if self.chiplets[i].rect.is_adjacent(&self.chiplets[j].rect) {
                    b.add_edge(gi, gj).expect("pairs are unique and in range");
                }
            }
        }
        b.build()
    }

    /// Adjacency graph over **all** chiplets (compute and I/O).
    #[must_use]
    pub fn full_adjacency_graph(&self) -> Graph {
        let n = self.chiplets.len();
        let mut b = GraphBuilder::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                if self.chiplets[i].rect.is_adjacent(&self.chiplets[j].rect) {
                    b.add_edge(i, j).expect("pairs are unique and in range");
                }
            }
        }
        b.build()
    }

    /// Smallest rectangle containing every chiplet, or `None` when empty.
    #[must_use]
    pub fn bounding_box(&self) -> Option<Rect> {
        self.chiplets.iter().map(|c| c.rect).reduce(|acc, r| acc.union_bounds(&r))
    }

    /// Total area covered by chiplets, in layout units squared.
    #[must_use]
    pub fn total_area(&self) -> i64 {
        self.chiplets.iter().map(|c| c.rect.area()).sum()
    }

    /// Fraction of the bounding box covered by chiplets (`0.0` when empty).
    ///
    /// The grid tiles its bounding box perfectly (utilisation 1.0); HexaMesh
    /// leaves perimeter notches that I/O chiplets fill (Fig. 2 / Fig. 4).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        match self.bounding_box() {
            Some(bb) => self.total_area() as f64 / bb.area() as f64,
            None => 0.0,
        }
    }
}

impl FromIterator<PlacedChiplet> for Result<Placement, LayoutError> {
    fn from_iter<T: IntoIterator<Item = PlacedChiplet>>(iter: T) -> Self {
        let mut p = Placement::new();
        for c in iter {
            p.push(c)?;
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(x: i64, y: i64, w: i64, h: i64) -> Rect {
        Rect::new(x, y, w, h).expect("valid test rect")
    }

    #[test]
    fn push_rejects_overlap() {
        let mut p = Placement::new();
        p.push(PlacedChiplet::compute(rect(0, 0, 4, 4))).unwrap();
        let err = p.push(PlacedChiplet::compute(rect(2, 2, 4, 4))).unwrap_err();
        assert_eq!(err, LayoutError::Overlap { existing: 0 });
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn touching_chiplets_are_legal() {
        let mut p = Placement::new();
        p.push(PlacedChiplet::compute(rect(0, 0, 2, 2))).unwrap();
        assert!(p.push(PlacedChiplet::compute(rect(2, 0, 2, 2))).is_ok());
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn grid_adjacency_graph() {
        // 2x2 grid of unit chiplets -> 4-cycle.
        let mut p = Placement::new();
        for y in 0..2 {
            for x in 0..2 {
                p.push(PlacedChiplet::compute(rect(x, y, 1, 1))).unwrap();
            }
        }
        let g = p.compute_adjacency_graph();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        // Diagonals (corner contact) must not be edges.
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(1, 2));
    }

    #[test]
    fn io_chiplets_excluded_from_compute_graph() {
        let mut p = Placement::new();
        p.push(PlacedChiplet::compute(rect(0, 0, 2, 2))).unwrap();
        p.push(PlacedChiplet::io(rect(2, 0, 2, 2))).unwrap();
        p.push(PlacedChiplet::compute(rect(4, 0, 2, 2))).unwrap();
        let g = p.compute_adjacency_graph();
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.num_edges(), 0); // the two compute chiplets do not touch
        let full = p.full_adjacency_graph();
        assert_eq!(full.num_vertices(), 3);
        assert_eq!(full.num_edges(), 2); // compute-io and io-compute contacts
    }

    #[test]
    fn bounding_box_and_utilization() {
        let mut p = Placement::new();
        assert_eq!(p.bounding_box(), None);
        assert_eq!(p.utilization(), 0.0);
        p.push(PlacedChiplet::compute(rect(0, 0, 2, 2))).unwrap();
        p.push(PlacedChiplet::compute(rect(4, 0, 2, 2))).unwrap();
        let bb = p.bounding_box().unwrap();
        assert_eq!((bb.width(), bb.height()), (6, 2));
        assert_eq!(p.total_area(), 8);
        assert!((p.utilization() - 8.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn from_iterator_collects() {
        let result: Result<Placement, LayoutError> = [
            PlacedChiplet::compute(rect(0, 0, 1, 1)),
            PlacedChiplet::compute(rect(1, 0, 1, 1)),
        ]
        .into_iter()
        .collect();
        assert_eq!(result.unwrap().len(), 2);

        let result: Result<Placement, LayoutError> = [
            PlacedChiplet::compute(rect(0, 0, 2, 2)),
            PlacedChiplet::compute(rect(1, 1, 2, 2)),
        ]
        .into_iter()
        .collect();
        assert!(result.is_err());
    }

    #[test]
    fn compute_indices_ordering() {
        let mut p = Placement::new();
        p.push(PlacedChiplet::io(rect(0, 0, 1, 1))).unwrap();
        p.push(PlacedChiplet::compute(rect(1, 0, 1, 1))).unwrap();
        p.push(PlacedChiplet::io(rect(2, 0, 1, 1))).unwrap();
        p.push(PlacedChiplet::compute(rect(3, 0, 1, 1))).unwrap();
        assert_eq!(p.compute_indices(), vec![1, 3]);
        assert_eq!(p.compute_count(), 2);
    }
}
