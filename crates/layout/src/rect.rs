//! Axis-aligned rectangles on an integer lattice.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::placement::LayoutError;

/// An axis-aligned rectangle with integer corner coordinates and positive
/// extent.
///
/// Coordinates are abstract *layout units*; the `hexamesh` core crate maps
/// them to millimetres once a chiplet area has been chosen. Integer
/// coordinates make adjacency checks exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    x: i64,
    y: i64,
    width: i64,
    height: i64,
}

impl Rect {
    /// Creates a rectangle anchored at its lower-left corner `(x, y)`.
    ///
    /// # Errors
    ///
    /// [`LayoutError::EmptyRect`] if `width` or `height` is not positive.
    ///
    /// # Example
    ///
    /// ```
    /// use chiplet_layout::Rect;
    ///
    /// let r = Rect::new(0, 0, 4, 3)?;
    /// assert_eq!(r.area(), 12);
    /// # Ok::<(), chiplet_layout::LayoutError>(())
    /// ```
    pub fn new(x: i64, y: i64, width: i64, height: i64) -> Result<Self, LayoutError> {
        if width <= 0 || height <= 0 {
            return Err(LayoutError::EmptyRect { width, height });
        }
        Ok(Self { x, y, width, height })
    }

    /// Lower-left x coordinate.
    #[must_use]
    pub fn x(&self) -> i64 {
        self.x
    }

    /// Lower-left y coordinate.
    #[must_use]
    pub fn y(&self) -> i64 {
        self.y
    }

    /// Width (always positive).
    #[must_use]
    pub fn width(&self) -> i64 {
        self.width
    }

    /// Height (always positive).
    #[must_use]
    pub fn height(&self) -> i64 {
        self.height
    }

    /// Exclusive right edge `x + width`.
    #[must_use]
    pub fn right(&self) -> i64 {
        self.x + self.width
    }

    /// Exclusive top edge `y + height`.
    #[must_use]
    pub fn top(&self) -> i64 {
        self.y + self.height
    }

    /// Area in layout units squared.
    #[must_use]
    pub fn area(&self) -> i64 {
        self.width * self.height
    }

    /// Centre point doubled (to stay in integers): `(2cx, 2cy)`.
    #[must_use]
    pub fn center_doubled(&self) -> (i64, i64) {
        (2 * self.x + self.width, 2 * self.y + self.height)
    }

    /// `true` if the two rectangles overlap with positive area.
    #[must_use]
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x < other.right()
            && other.x < self.right()
            && self.y < other.top()
            && other.y < self.top()
    }

    /// Length of the one-dimensional overlap of `[a0, a1)` and `[b0, b1)`.
    fn interval_overlap(a0: i64, a1: i64, b0: i64, b1: i64) -> i64 {
        (a1.min(b1) - a0.max(b0)).max(0)
    }

    /// Length of the boundary segment shared by two *non-overlapping*
    /// rectangles: positive when they touch along an edge, zero when they
    /// touch only at a corner or not at all.
    ///
    /// This is the paper's adjacency test: chiplets are adjacent iff their
    /// shared edge has positive length.
    #[must_use]
    pub fn shared_edge_length(&self, other: &Rect) -> i64 {
        if self.overlaps(other) {
            return 0; // overlapping rectangles are invalid, not adjacent
        }
        // Vertical contact: one's right edge is the other's left edge.
        if self.right() == other.x || other.right() == self.x {
            return Self::interval_overlap(self.y, self.top(), other.y, other.top());
        }
        // Horizontal contact: one's top edge is the other's bottom edge.
        if self.top() == other.y || other.top() == self.y {
            return Self::interval_overlap(self.x, self.right(), other.x, other.right());
        }
        0
    }

    /// `true` if the rectangles share a boundary edge of positive length.
    #[must_use]
    pub fn is_adjacent(&self, other: &Rect) -> bool {
        self.shared_edge_length(other) > 0
    }

    /// Translates the rectangle by `(dx, dy)`.
    #[must_use]
    pub fn translated(&self, dx: i64, dy: i64) -> Rect {
        Rect { x: self.x + dx, y: self.y + dy, ..*self }
    }

    /// Smallest rectangle containing both `self` and `other`.
    #[must_use]
    pub fn union_bounds(&self, other: &Rect) -> Rect {
        let x = self.x.min(other.x);
        let y = self.y.min(other.y);
        Rect {
            x,
            y,
            width: self.right().max(other.right()) - x,
            height: self.top().max(other.top()) - y,
        }
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}] {}x{}", self.x, self.y, self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x: i64, y: i64, w: i64, h: i64) -> Rect {
        Rect::new(x, y, w, h).expect("valid test rect")
    }

    #[test]
    fn rejects_non_positive_extent() {
        assert!(Rect::new(0, 0, 0, 1).is_err());
        assert!(Rect::new(0, 0, 1, -2).is_err());
    }

    #[test]
    fn basic_accessors() {
        let a = r(1, 2, 3, 4);
        assert_eq!((a.x(), a.y(), a.width(), a.height()), (1, 2, 3, 4));
        assert_eq!((a.right(), a.top()), (4, 6));
        assert_eq!(a.area(), 12);
        assert_eq!(a.center_doubled(), (5, 8));
    }

    #[test]
    fn overlap_detection() {
        let a = r(0, 0, 4, 4);
        assert!(a.overlaps(&r(2, 2, 4, 4)));
        assert!(!a.overlaps(&r(4, 0, 4, 4))); // touching edge: no overlap
        assert!(!a.overlaps(&r(4, 4, 1, 1))); // touching corner
        assert!(!a.overlaps(&r(10, 10, 1, 1)));
        assert!(a.overlaps(&r(1, 1, 1, 1))); // containment
    }

    #[test]
    fn edge_adjacency_full_side() {
        let a = r(0, 0, 2, 2);
        let b = r(2, 0, 2, 2);
        assert_eq!(a.shared_edge_length(&b), 2);
        assert!(a.is_adjacent(&b));
        assert!(b.is_adjacent(&a));
    }

    #[test]
    fn edge_adjacency_partial_side() {
        // Brickwall-style half-offset contact.
        let a = r(0, 0, 4, 2);
        let b = r(2, 2, 4, 2);
        assert_eq!(a.shared_edge_length(&b), 2);
        let c = r(4, 2, 4, 2);
        assert_eq!(a.shared_edge_length(&c), 0); // corner only
        assert!(!a.is_adjacent(&c));
    }

    #[test]
    fn corner_contact_is_not_adjacent() {
        let a = r(0, 0, 2, 2);
        let b = r(2, 2, 2, 2);
        assert_eq!(a.shared_edge_length(&b), 0);
        assert!(!a.is_adjacent(&b));
    }

    #[test]
    fn separated_rects_not_adjacent() {
        let a = r(0, 0, 2, 2);
        assert!(!a.is_adjacent(&r(3, 0, 2, 2)));
        assert!(!a.is_adjacent(&r(0, 5, 2, 2)));
    }

    #[test]
    fn vertical_adjacency() {
        let a = r(0, 0, 3, 1);
        let b = r(1, 1, 3, 1);
        assert_eq!(a.shared_edge_length(&b), 2);
    }

    #[test]
    fn overlapping_rects_share_no_edge() {
        let a = r(0, 0, 4, 4);
        let b = r(1, 1, 4, 4);
        assert_eq!(a.shared_edge_length(&b), 0);
    }

    #[test]
    fn translation_and_union() {
        let a = r(0, 0, 2, 2).translated(3, 4);
        assert_eq!((a.x(), a.y()), (3, 4));
        let u = r(0, 0, 1, 1).union_bounds(&r(4, 5, 2, 2));
        assert_eq!((u.x(), u.y(), u.width(), u.height()), (0, 0, 6, 7));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", r(0, 0, 1, 1)).is_empty());
    }
}
