//! SVG rendering of placements, for inspecting floorplans (Fig. 2 / Fig. 4
//! style top views) — plain kind-coloured views via [`to_svg`], and
//! congestion choropleths over the same arrangement via
//! [`to_heatmap_svg`].

use std::fmt::Write as _;

use crate::placement::{ChipletKind, Placement};

/// Rendering options for [`to_svg`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvgStyle {
    /// Pixels per layout unit.
    pub scale: f64,
    /// Margin around the drawing, in pixels.
    pub margin: f64,
    /// Fill colour for compute chiplets.
    pub compute_fill: &'static str,
    /// Fill colour for I/O chiplets.
    pub io_fill: &'static str,
}

impl Default for SvgStyle {
    fn default() -> Self {
        Self { scale: 12.0, margin: 8.0, compute_fill: "#4e79a7", io_fill: "#f28e2b" }
    }
}

/// Renders a placement as a standalone SVG document (y axis flipped so the
/// layout's y-up convention displays naturally).
///
/// # Example
///
/// ```
/// use chiplet_layout::{svg, PlacedChiplet, Placement, Rect};
///
/// # fn main() -> Result<(), chiplet_layout::LayoutError> {
/// let mut p = Placement::new();
/// p.push(PlacedChiplet::compute(Rect::new(0, 0, 2, 2)?))?;
/// let doc = svg::to_svg(&p, &svg::SvgStyle::default());
/// assert!(doc.starts_with("<svg"));
/// assert!(doc.contains("<rect"));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn to_svg(placement: &Placement, style: &SvgStyle) -> String {
    let Some(bb) = placement.bounding_box() else {
        return String::from(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"1\" height=\"1\"/>\n",
        );
    };
    let width = bb.width() as f64 * style.scale + 2.0 * style.margin;
    let height = bb.height() as f64 * style.scale + 2.0 * style.margin;
    let mut out = String::new();
    writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {width:.2} {height:.2}\">"
    )
    .expect("writing to String cannot fail");
    for chiplet in placement.chiplets() {
        let r = chiplet.rect;
        let x = (r.x() - bb.x()) as f64 * style.scale + style.margin;
        // Flip y: SVG y grows downward.
        let y = (bb.top() - r.top()) as f64 * style.scale + style.margin;
        let w = r.width() as f64 * style.scale;
        let h = r.height() as f64 * style.scale;
        let fill = match chiplet.kind {
            ChipletKind::Compute => style.compute_fill,
            ChipletKind::Io => style.io_fill,
        };
        writeln!(
            out,
            "  <rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{h:.2}\" \
             fill=\"{fill}\" stroke=\"#202020\" stroke-width=\"1\"/>"
        )
        .expect("writing to String cannot fail");
    }
    out.push_str("</svg>\n");
    out
}

/// Normalized congestion data overlaid on a placement by
/// [`to_heatmap_svg`].
///
/// Indices refer to **compute-graph vertices**: vertex `i` is the `i`-th
/// compute chiplet of the placement, exactly as in
/// [`Placement::compute_adjacency_graph`]. Loads are expected in
/// `[0, 1]` (values outside are clamped); out-of-range vertex indices
/// are skipped.
#[derive(Debug, Clone, Copy, Default)]
pub struct HeatOverlay<'a> {
    /// Per-compute-vertex load, colouring the chiplet cell fill.
    pub cell_load: &'a [f64],
    /// Per-edge load `(u, v, load)` between compute vertices, drawn as a
    /// line between chiplet centres whose colour and width track the
    /// load.
    pub edge_load: &'a [(usize, usize, f64)],
}

/// Diverging three-stop colour ramp (blue → pale yellow → red) for
/// normalized load `t` in `[0, 1]`; values outside are clamped.
#[must_use]
pub fn heat_color(t: f64) -> String {
    const LOW: (f64, f64, f64) = (0x45 as f64, 0x75 as f64, 0xb4 as f64);
    const MID: (f64, f64, f64) = (0xff as f64, 0xff as f64, 0xbf as f64);
    const HIGH: (f64, f64, f64) = (0xd7 as f64, 0x30 as f64, 0x27 as f64);
    let t = if t.is_finite() { t.clamp(0.0, 1.0) } else { 0.0 };
    let lerp = |a: (f64, f64, f64), b: (f64, f64, f64), s: f64| {
        (a.0 + (b.0 - a.0) * s, a.1 + (b.1 - a.1) * s, a.2 + (b.2 - a.2) * s)
    };
    let (r, g, b) =
        if t < 0.5 { lerp(LOW, MID, t * 2.0) } else { lerp(MID, HIGH, (t - 0.5) * 2.0) };
    format!("#{:02x}{:02x}{:02x}", r.round() as u8, g.round() as u8, b.round() as u8)
}

/// Renders a placement with per-chiplet and per-link congestion colours:
/// compute cells are filled by [`heat_color`] of their load, I/O cells
/// keep the style's I/O fill, and loaded links are drawn as centre-to-
/// centre strokes over the cells. Same geometry conventions as
/// [`to_svg`].
#[must_use]
pub fn to_heatmap_svg(placement: &Placement, style: &SvgStyle, heat: &HeatOverlay) -> String {
    let Some(bb) = placement.bounding_box() else {
        return String::from(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"1\" height=\"1\"/>\n",
        );
    };
    let width = bb.width() as f64 * style.scale + 2.0 * style.margin;
    let height = bb.height() as f64 * style.scale + 2.0 * style.margin;
    let mut out = String::new();
    writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {width:.2} {height:.2}\">"
    )
    .expect("writing to String cannot fail");

    let computes = placement.compute_indices();
    let mut compute_vertex = 0usize;
    for chiplet in placement.chiplets() {
        let r = chiplet.rect;
        let x = (r.x() - bb.x()) as f64 * style.scale + style.margin;
        let y = (bb.top() - r.top()) as f64 * style.scale + style.margin;
        let w = r.width() as f64 * style.scale;
        let h = r.height() as f64 * style.scale;
        let fill = match chiplet.kind {
            ChipletKind::Compute => {
                let load = heat.cell_load.get(compute_vertex).copied().unwrap_or(0.0);
                compute_vertex += 1;
                heat_color(load)
            }
            ChipletKind::Io => style.io_fill.to_string(),
        };
        writeln!(
            out,
            "  <rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{h:.2}\" \
             fill=\"{fill}\" stroke=\"#202020\" stroke-width=\"1\"/>"
        )
        .expect("writing to String cannot fail");
    }

    // Centre of compute vertex `i` in SVG pixel coordinates.
    let center = |i: usize| -> Option<(f64, f64)> {
        let r = placement.chiplets().get(*computes.get(i)?)?.rect;
        let cx = (r.x() - bb.x()) as f64 * style.scale
            + style.margin
            + r.width() as f64 * style.scale / 2.0;
        let cy = (bb.top() - r.top()) as f64 * style.scale
            + style.margin
            + r.height() as f64 * style.scale / 2.0;
        Some((cx, cy))
    };
    for &(u, v, load) in heat.edge_load {
        let (Some((x1, y1)), Some((x2, y2))) = (center(u), center(v)) else { continue };
        let t = if load.is_finite() { load.clamp(0.0, 1.0) } else { 0.0 };
        let stroke = heat_color(t);
        let stroke_width = (0.08 + 0.22 * t) * style.scale;
        writeln!(
            out,
            "  <line x1=\"{x1:.2}\" y1=\"{y1:.2}\" x2=\"{x2:.2}\" y2=\"{y2:.2}\" \
             stroke=\"{stroke}\" stroke-width=\"{stroke_width:.2}\" stroke-linecap=\"round\" \
             opacity=\"0.85\"/>"
        )
        .expect("writing to String cannot fail");
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PlacedChiplet, Rect};

    fn rect(x: i64, y: i64, w: i64, h: i64) -> Rect {
        Rect::new(x, y, w, h).expect("valid")
    }

    #[test]
    fn empty_placement_renders_stub() {
        let doc = to_svg(&Placement::new(), &SvgStyle::default());
        assert!(doc.starts_with("<svg"));
        assert!(!doc.contains("<rect"));
    }

    #[test]
    fn one_rect_per_chiplet() {
        let mut p = Placement::new();
        p.push(PlacedChiplet::compute(rect(0, 0, 2, 2))).unwrap();
        p.push(PlacedChiplet::io(rect(2, 0, 2, 2))).unwrap();
        let doc = to_svg(&p, &SvgStyle::default());
        assert_eq!(doc.matches("<rect").count(), 2);
        assert!(doc.contains("#4e79a7"));
        assert!(doc.contains("#f28e2b"));
    }

    #[test]
    fn y_axis_is_flipped() {
        // The chiplet at the layout's top must appear at the SVG's top
        // (small y).
        let style = SvgStyle { scale: 1.0, margin: 0.0, ..SvgStyle::default() };
        let mut p = Placement::new();
        p.push(PlacedChiplet::compute(rect(0, 0, 1, 1))).unwrap();
        p.push(PlacedChiplet::compute(rect(0, 5, 1, 1))).unwrap();
        let doc = to_svg(&p, &style);
        let lines: Vec<&str> = doc.lines().filter(|l| l.contains("<rect")).collect();
        // First pushed chiplet (layout bottom) has the larger SVG y.
        let y_of = |line: &str| -> f64 {
            let start = line.find("y=\"").expect("y attr") + 3;
            let end = line[start..].find('"').expect("closing quote") + start;
            line[start..end].parse().expect("numeric y")
        };
        assert!(y_of(lines[0]) > y_of(lines[1]));
    }

    #[test]
    fn heat_color_ramp_endpoints_and_clamping() {
        assert_eq!(heat_color(0.0), "#4575b4");
        assert_eq!(heat_color(0.5), "#ffffbf");
        assert_eq!(heat_color(1.0), "#d73027");
        assert_eq!(heat_color(-3.0), heat_color(0.0));
        assert_eq!(heat_color(7.0), heat_color(1.0));
        assert_eq!(heat_color(f64::NAN), heat_color(0.0));
    }

    #[test]
    fn heatmap_colours_compute_cells_and_draws_edges() {
        // Two adjacent compute chiplets plus one I/O chiplet.
        let mut p = Placement::new();
        p.push(PlacedChiplet::compute(rect(0, 0, 2, 2))).unwrap();
        p.push(PlacedChiplet::compute(rect(2, 0, 2, 2))).unwrap();
        p.push(PlacedChiplet::io(rect(4, 0, 2, 2))).unwrap();
        let heat = HeatOverlay { cell_load: &[0.0, 1.0], edge_load: &[(0, 1, 1.0)] };
        let doc = to_heatmap_svg(&p, &SvgStyle::default(), &heat);
        assert_eq!(doc.matches("<rect").count(), 3);
        assert_eq!(doc.matches("<line").count(), 1);
        assert!(doc.contains("#4575b4"), "cold cell: {doc}");
        assert!(doc.contains("#d73027"), "hot cell and edge: {doc}");
        assert!(doc.contains("#f28e2b"), "io keeps its kind colour: {doc}");
    }

    #[test]
    fn heatmap_skips_out_of_range_edges_and_missing_loads() {
        let mut p = Placement::new();
        p.push(PlacedChiplet::compute(rect(0, 0, 1, 1))).unwrap();
        // No cell loads provided, and the edge names a vertex that does
        // not exist: the render must not panic and draws no line.
        let heat = HeatOverlay { cell_load: &[], edge_load: &[(0, 9, 0.5)] };
        let doc = to_heatmap_svg(&p, &SvgStyle::default(), &heat);
        assert_eq!(doc.matches("<rect").count(), 1);
        assert_eq!(doc.matches("<line").count(), 0);
        assert!(doc.contains(&heat_color(0.0)), "missing load defaults cold");
    }

    #[test]
    fn document_dimensions_scale() {
        let style = SvgStyle { scale: 10.0, margin: 0.0, ..SvgStyle::default() };
        let mut p = Placement::new();
        p.push(PlacedChiplet::compute(rect(0, 0, 3, 2))).unwrap();
        let doc = to_svg(&p, &style);
        assert!(doc.contains("width=\"30\""));
        assert!(doc.contains("height=\"20\""));
    }
}
