//! SVG rendering of placements, for inspecting floorplans (Fig. 2 / Fig. 4
//! style top views).

use std::fmt::Write as _;

use crate::placement::{ChipletKind, Placement};

/// Rendering options for [`to_svg`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvgStyle {
    /// Pixels per layout unit.
    pub scale: f64,
    /// Margin around the drawing, in pixels.
    pub margin: f64,
    /// Fill colour for compute chiplets.
    pub compute_fill: &'static str,
    /// Fill colour for I/O chiplets.
    pub io_fill: &'static str,
}

impl Default for SvgStyle {
    fn default() -> Self {
        Self { scale: 12.0, margin: 8.0, compute_fill: "#4e79a7", io_fill: "#f28e2b" }
    }
}

/// Renders a placement as a standalone SVG document (y axis flipped so the
/// layout's y-up convention displays naturally).
///
/// # Example
///
/// ```
/// use chiplet_layout::{svg, PlacedChiplet, Placement, Rect};
///
/// # fn main() -> Result<(), chiplet_layout::LayoutError> {
/// let mut p = Placement::new();
/// p.push(PlacedChiplet::compute(Rect::new(0, 0, 2, 2)?))?;
/// let doc = svg::to_svg(&p, &svg::SvgStyle::default());
/// assert!(doc.starts_with("<svg"));
/// assert!(doc.contains("<rect"));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn to_svg(placement: &Placement, style: &SvgStyle) -> String {
    let Some(bb) = placement.bounding_box() else {
        return String::from(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"1\" height=\"1\"/>\n",
        );
    };
    let width = bb.width() as f64 * style.scale + 2.0 * style.margin;
    let height = bb.height() as f64 * style.scale + 2.0 * style.margin;
    let mut out = String::new();
    writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {width:.2} {height:.2}\">"
    )
    .expect("writing to String cannot fail");
    for chiplet in placement.chiplets() {
        let r = chiplet.rect;
        let x = (r.x() - bb.x()) as f64 * style.scale + style.margin;
        // Flip y: SVG y grows downward.
        let y = (bb.top() - r.top()) as f64 * style.scale + style.margin;
        let w = r.width() as f64 * style.scale;
        let h = r.height() as f64 * style.scale;
        let fill = match chiplet.kind {
            ChipletKind::Compute => style.compute_fill,
            ChipletKind::Io => style.io_fill,
        };
        writeln!(
            out,
            "  <rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{h:.2}\" \
             fill=\"{fill}\" stroke=\"#202020\" stroke-width=\"1\"/>"
        )
        .expect("writing to String cannot fail");
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PlacedChiplet, Rect};

    fn rect(x: i64, y: i64, w: i64, h: i64) -> Rect {
        Rect::new(x, y, w, h).expect("valid")
    }

    #[test]
    fn empty_placement_renders_stub() {
        let doc = to_svg(&Placement::new(), &SvgStyle::default());
        assert!(doc.starts_with("<svg"));
        assert!(!doc.contains("<rect"));
    }

    #[test]
    fn one_rect_per_chiplet() {
        let mut p = Placement::new();
        p.push(PlacedChiplet::compute(rect(0, 0, 2, 2))).unwrap();
        p.push(PlacedChiplet::io(rect(2, 0, 2, 2))).unwrap();
        let doc = to_svg(&p, &SvgStyle::default());
        assert_eq!(doc.matches("<rect").count(), 2);
        assert!(doc.contains("#4e79a7"));
        assert!(doc.contains("#f28e2b"));
    }

    #[test]
    fn y_axis_is_flipped() {
        // The chiplet at the layout's top must appear at the SVG's top
        // (small y).
        let style = SvgStyle { scale: 1.0, margin: 0.0, ..SvgStyle::default() };
        let mut p = Placement::new();
        p.push(PlacedChiplet::compute(rect(0, 0, 1, 1))).unwrap();
        p.push(PlacedChiplet::compute(rect(0, 5, 1, 1))).unwrap();
        let doc = to_svg(&p, &style);
        let lines: Vec<&str> = doc.lines().filter(|l| l.contains("<rect")).collect();
        // First pushed chiplet (layout bottom) has the larger SVG y.
        let y_of = |line: &str| -> f64 {
            let start = line.find("y=\"").expect("y attr") + 3;
            let end = line[start..].find('"').expect("closing quote") + start;
            line[start..end].parse().expect("numeric y")
        };
        assert!(y_of(lines[0]) > y_of(lines[1]));
    }

    #[test]
    fn document_dimensions_scale() {
        let style = SvgStyle { scale: 10.0, margin: 0.0, ..SvgStyle::default() };
        let mut p = Placement::new();
        p.push(PlacedChiplet::compute(rect(0, 0, 3, 2))).unwrap();
        let doc = to_svg(&p, &style);
        assert!(doc.contains("width=\"30\""));
        assert!(doc.contains("height=\"20\""));
    }
}
