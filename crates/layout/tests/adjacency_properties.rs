//! Property-based tests for the geometric adjacency extraction: the §III-C
//! rule (shared edge of positive length, never corners) must behave like a
//! proper contact relation for any overlap-free set of rectangles.

use chiplet_graph::metrics;
use chiplet_layout::{PlacedChiplet, Placement, Rect};
use proptest::prelude::*;

/// A random overlap-free placement: distinct cells of a coarse lattice with
/// random per-cell sizes that never poke out of the cell.
fn arb_placement() -> impl Strategy<Value = Placement> {
    proptest::collection::btree_set((0i64..8, 0i64..8), 1..20).prop_flat_map(|cells| {
        let cells: Vec<(i64, i64)> = cells.into_iter().collect();
        let n = cells.len();
        // For each cell: full-size (fills the cell, may touch neighbours) or
        // shrunken (leaves a gap).
        proptest::collection::vec(proptest::bool::ANY, n).prop_map(move |full| {
            let mut p = Placement::new();
            for (i, &(cx, cy)) in cells.iter().enumerate() {
                let size = if full[i] { 4 } else { 3 };
                let rect = Rect::new(cx * 4, cy * 4, size, size).expect("positive");
                p.push(PlacedChiplet::compute(rect)).expect("cells are disjoint");
            }
            p
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn adjacency_is_symmetric_and_irreflexive(p in arb_placement()) {
        let chiplets = p.chiplets();
        for (i, a) in chiplets.iter().enumerate() {
            prop_assert!(!a.rect.is_adjacent(&a.rect), "self-adjacency");
            for b in chiplets.iter().skip(i + 1) {
                prop_assert_eq!(
                    a.rect.is_adjacent(&b.rect),
                    b.rect.is_adjacent(&a.rect)
                );
            }
        }
    }

    #[test]
    fn adjacency_graph_is_planar_bounded(p in arb_placement()) {
        // Contact graphs of interior-disjoint rectangles are planar.
        let g = p.compute_adjacency_graph();
        prop_assert!(metrics::satisfies_planar_edge_bound(&g));
    }

    #[test]
    fn shared_edge_length_zero_iff_not_adjacent(p in arb_placement()) {
        let chiplets = p.chiplets();
        for (i, a) in chiplets.iter().enumerate() {
            for b in chiplets.iter().skip(i + 1) {
                let len = a.rect.shared_edge_length(&b.rect);
                prop_assert_eq!(len > 0, a.rect.is_adjacent(&b.rect));
                prop_assert!(len >= 0);
            }
        }
    }

    #[test]
    fn adjacent_rects_touch_along_axis(p in arb_placement()) {
        // If adjacent, exactly one axis has coinciding edges and the other
        // has positive interval overlap.
        let chiplets = p.chiplets();
        for (i, a) in chiplets.iter().enumerate() {
            for b in chiplets.iter().skip(i + 1) {
                if !a.rect.is_adjacent(&b.rect) {
                    continue;
                }
                let (ra, rb) = (a.rect, b.rect);
                let vertical_contact = ra.right() == rb.x() || rb.right() == ra.x();
                let horizontal_contact = ra.top() == rb.y() || rb.top() == ra.y();
                prop_assert!(vertical_contact ^ horizontal_contact);
            }
        }
    }

    #[test]
    fn bounding_box_contains_everything(p in arb_placement()) {
        let bb = p.bounding_box().expect("non-empty placement");
        for c in p.chiplets() {
            prop_assert!(c.rect.x() >= bb.x());
            prop_assert!(c.rect.y() >= bb.y());
            prop_assert!(c.rect.right() <= bb.right());
            prop_assert!(c.rect.top() <= bb.top());
        }
        prop_assert!(p.total_area() <= bb.area());
    }

    #[test]
    fn io_fill_never_disturbs_compute_graph(p in arb_placement()) {
        let before = p.compute_adjacency_graph();
        let filled =
            chiplet_layout::perimeter::fill_gaps_with_io(&p, 4, 4).expect("valid tile");
        prop_assert_eq!(filled.compute_adjacency_graph(), before.clone());
        let ringed = chiplet_layout::perimeter::surround_with_io(&p, 4, 4).expect("valid tile");
        prop_assert_eq!(ringed.compute_adjacency_graph(), before);
    }
}
