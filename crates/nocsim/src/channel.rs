//! Fixed-latency delay-line channels for flits and credits.

use std::collections::VecDeque;

use crate::flit::{Flit, VcId};

/// A unidirectional channel that delivers items `latency` cycles after they
/// are pushed, spaced at least `interval` cycles apart. At most one item may
/// be pushed per cycle; `interval == 1` (the default) gives BookSim2's
/// standard full-bandwidth channel, while `interval > 1` models a narrower
/// serialized link that sustains one flit every `interval` cycles.
#[derive(Debug, Clone)]
pub struct DelayLine<T> {
    latency: u64,
    interval: u64,
    queue: VecDeque<(u64, T)>,
    last_push_cycle: Option<u64>,
    last_delivery: Option<u64>,
    /// Cached delivery cycle of the front item (`IDLE` when empty) — the
    /// event-driven simulator keys its wheel on this instead of polling
    /// the queue every cycle.
    next_due: u64,
}

/// Sentinel [`DelayLine::next_due`] value for an empty line.
pub const IDLE: u64 = u64::MAX;

impl<T> DelayLine<T> {
    /// Creates a full-bandwidth channel with the given latency (≥ 1 cycle).
    ///
    /// # Panics
    ///
    /// Panics if `latency == 0`; combinational channels are not modelled.
    #[must_use]
    pub fn new(latency: u64) -> Self {
        Self::with_interval(latency, 1)
    }

    /// Creates a channel delivering at most one item every `interval` cycles
    /// (a link whose bandwidth is `1/interval` flits per cycle).
    ///
    /// # Panics
    ///
    /// Panics if `latency == 0` or `interval == 0`.
    #[must_use]
    pub fn with_interval(latency: u64, interval: u64) -> Self {
        assert!(latency >= 1, "channel latency must be at least 1 cycle");
        assert!(interval >= 1, "channel interval must be at least 1 cycle");
        Self {
            latency,
            interval,
            queue: VecDeque::new(),
            last_push_cycle: None,
            last_delivery: None,
            next_due: IDLE,
        }
    }

    /// Channel latency in cycles.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Minimum spacing between deliveries in cycles.
    #[must_use]
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Reserves queue capacity for at least `items` in-flight items. The
    /// simulator pre-reserves each line's flow-control occupancy bound so
    /// the steady-state hot path never reallocates.
    pub fn reserve(&mut self, items: usize) {
        self.queue.reserve(items);
    }

    /// Pushes an item at `cycle`; it becomes available at `cycle + latency`,
    /// delayed further if the serialization interval requires spacing from
    /// the previous delivery. `extra_delay` adds pipeline stages upstream of
    /// the wire (used to model the router traversal latency without a
    /// separate structure).
    ///
    /// # Panics
    ///
    /// Panics (debug) if two items are pushed in the same cycle — each
    /// channel carries at most one flit per cycle.
    pub fn push(&mut self, cycle: u64, extra_delay: u64, item: T) {
        debug_assert!(
            self.last_push_cycle != Some(cycle),
            "channel accepted two items in cycle {cycle}"
        );
        self.last_push_cycle = Some(cycle);
        let mut deliver_at = cycle + self.latency + extra_delay;
        if let Some(last) = self.last_delivery {
            deliver_at = deliver_at.max(last + self.interval);
        }
        self.last_delivery = Some(deliver_at);
        // Items with extra pipeline delay must still be delivered in order;
        // insertion keeps the queue sorted by delivery time (extra_delay is
        // constant per channel in practice, so this is O(1)).
        debug_assert!(self.queue.back().is_none_or(|(t, _)| *t <= deliver_at));
        if self.queue.is_empty() {
            self.next_due = deliver_at;
        }
        self.queue.push_back((deliver_at, item));
    }

    /// Pops the next item if it is due at `cycle`.
    pub fn pop_due(&mut self, cycle: u64) -> Option<T> {
        if self.next_due > cycle {
            return None;
        }
        let (_, item) = self.queue.pop_front().expect("next_due set implies non-empty");
        self.next_due = self.queue.front().map_or(IDLE, |&(due, _)| due);
        Some(item)
    }

    /// Delivery cycle of the front item, or [`IDLE`] when nothing is in
    /// flight. A push to an empty line sets this; pushes to a non-empty
    /// line never move it (the queue is sorted), so a scheduler only needs
    /// to look at it on push-to-empty and after each pop.
    #[must_use]
    pub fn next_due(&self) -> u64 {
        self.next_due
    }

    /// Removes every in-flight item for which `doomed` returns `true` and
    /// recomputes the cached front delivery cycle. Returns the number
    /// removed. Serialization history (`last_delivery`) is deliberately
    /// kept: a fault does not rewrite the wire's past, and for a dead line
    /// nothing is ever pushed again.
    pub fn purge(&mut self, mut doomed: impl FnMut(&T) -> bool) -> usize {
        let before = self.queue.len();
        self.queue.retain(|(_, item)| !doomed(item));
        self.next_due = self.queue.front().map_or(IDLE, |&(due, _)| due);
        before - self.queue.len()
    }

    /// Iterates over the in-flight items in delivery order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.queue.iter().map(|(_, item)| item)
    }

    /// Number of items in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// `true` if nothing is in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

/// A credit message: one buffer slot freed for `vc` at the downstream input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Credit {
    /// Virtual channel whose buffer slot was freed.
    pub vc: VcId,
}

/// The pair of delay lines that make up one physical link direction:
/// a forward flit wire and a reverse credit wire.
#[derive(Debug, Clone)]
pub struct Link {
    /// Forward direction: flits.
    pub flits: DelayLine<Flit>,
    /// Reverse direction: credits for the upstream sender.
    pub credits: DelayLine<Credit>,
}

impl Link {
    /// Creates a link with symmetric flit/credit latency.
    #[must_use]
    pub fn new(latency: u64) -> Self {
        Self { flits: DelayLine::new(latency), credits: DelayLine::new(latency) }
    }

    /// Creates a link whose forward flit wire sustains one flit every
    /// `interval` cycles (a serialized, narrower D2D link). Credits travel a
    /// dedicated sideband wire and are never serialized.
    #[must_use]
    pub fn with_interval(latency: u64, interval: u64) -> Self {
        Self {
            flits: DelayLine::with_interval(latency, interval),
            credits: DelayLine::new(latency),
        }
    }

    /// `true` if no flit or credit is in flight.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.flits.is_empty() && self.credits.is_empty()
    }

    /// Reserves capacity for `items` in-flight flits and credits each
    /// (see [`DelayLine::reserve`]).
    pub fn reserve(&mut self, items: usize) {
        self.flits.reserve(items);
        self.credits.reserve(items);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_after_latency() {
        let mut c: DelayLine<u32> = DelayLine::new(3);
        c.push(10, 0, 99);
        assert_eq!(c.pop_due(12), None);
        assert_eq!(c.pop_due(13), Some(99));
        assert_eq!(c.pop_due(14), None);
        assert!(c.is_empty());
    }

    #[test]
    fn extra_delay_adds_pipeline_stages() {
        let mut c: DelayLine<u32> = DelayLine::new(2);
        c.push(0, 3, 1);
        assert_eq!(c.pop_due(4), None);
        assert_eq!(c.pop_due(5), Some(1));
    }

    #[test]
    fn preserves_order() {
        let mut c: DelayLine<u32> = DelayLine::new(1);
        c.push(0, 0, 1);
        c.push(1, 0, 2);
        c.push(2, 0, 3);
        assert_eq!(c.pop_due(5), Some(1));
        assert_eq!(c.pop_due(5), Some(2));
        assert_eq!(c.pop_due(5), Some(3));
    }

    #[test]
    #[should_panic(expected = "latency must be at least 1")]
    fn zero_latency_rejected() {
        let _ = DelayLine::<u32>::new(0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "two items")]
    fn double_push_same_cycle_panics() {
        let mut c: DelayLine<u32> = DelayLine::new(1);
        c.push(0, 0, 1);
        c.push(0, 0, 2);
    }

    #[test]
    fn interval_spaces_deliveries() {
        // Three back-to-back flits over an interval-3 link: arrivals at
        // latency, latency + 3, latency + 6.
        let mut c: DelayLine<u32> = DelayLine::with_interval(5, 3);
        c.push(0, 0, 1);
        c.push(1, 0, 2);
        c.push(2, 0, 3);
        assert_eq!(c.pop_due(4), None);
        assert_eq!(c.pop_due(5), Some(1));
        assert_eq!(c.pop_due(7), None);
        assert_eq!(c.pop_due(8), Some(2));
        assert_eq!(c.pop_due(10), None);
        assert_eq!(c.pop_due(11), Some(3));
    }

    #[test]
    fn interval_idle_link_recovers_full_latency() {
        // After a long idle gap the next flit sees only the base latency.
        let mut c: DelayLine<u32> = DelayLine::with_interval(2, 4);
        c.push(0, 0, 1);
        assert_eq!(c.pop_due(2), Some(1));
        c.push(100, 0, 2);
        assert_eq!(c.pop_due(102), Some(2));
    }

    #[test]
    fn interval_one_matches_plain_channel() {
        let mut a: DelayLine<u32> = DelayLine::new(3);
        let mut b: DelayLine<u32> = DelayLine::with_interval(3, 1);
        for t in 0..5 {
            a.push(t, 0, t as u32);
            b.push(t, 0, t as u32);
        }
        for t in 0..20 {
            assert_eq!(a.pop_due(t), b.pop_due(t));
        }
    }

    #[test]
    #[should_panic(expected = "interval must be at least 1")]
    fn zero_interval_rejected() {
        let _ = DelayLine::<u32>::with_interval(1, 0);
    }

    #[test]
    fn serialized_link_keeps_credits_fast() {
        let link = Link::with_interval(27, 4);
        assert_eq!(link.flits.interval(), 4);
        assert_eq!(link.credits.interval(), 1);
        assert_eq!(link.credits.latency(), 27);
    }

    #[test]
    fn purge_removes_matching_items_and_fixes_next_due() {
        let mut c: DelayLine<u32> = DelayLine::new(1);
        c.push(0, 0, 1);
        c.push(1, 0, 2);
        c.push(2, 0, 3);
        assert_eq!(c.purge(|&x| x != 2), 2);
        assert_eq!(c.next_due(), 2);
        assert_eq!(c.pop_due(2), Some(2));
        assert_eq!(c.purge(|_| true), 0);
        assert_eq!(c.next_due(), IDLE);
    }

    #[test]
    fn link_idle_tracking() {
        let mut link = Link::new(2);
        assert!(link.is_idle());
        link.credits.push(0, 0, Credit { vc: 1 });
        assert!(!link.is_idle());
        assert_eq!(link.credits.pop_due(2), Some(Credit { vc: 1 }));
        assert!(link.is_idle());
    }
}
