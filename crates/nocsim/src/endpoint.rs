//! Traffic endpoints: packet sources and sinks.
//!
//! Each chiplet hosts a router and (in the paper's configuration) two
//! endpoints. An endpoint generates packets with a Bernoulli (or bursty
//! on/off) process, queues their flits in a bounded source queue, injects
//! them into its router's injection port under credit flow control, and
//! sinks arriving flits, recording packet latency on tail arrival.
//!
//! Generation is *arrival-scheduled*: instead of flipping a coin every
//! cycle, the endpoint samples the cycle of its next packet with
//! [`InjectionProcess::next_arrival`] (geometric skip-ahead) and is only
//! touched at those cycles — the key to the simulator's O(active
//! components) stepping.
//!
//! Closed-loop drivers (the workload engine) bypass the stochastic
//! generator entirely: [`Endpoint::offer_packet`] enqueues one explicit
//! packet, and the source-queue occupancy integral ([`Endpoint::
//! queue_occupancy`]) is maintained incrementally at queue mutations so
//! per-cycle sampling is never needed.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::channel::IDLE;
use crate::flit::{EndpointId, Flit, Packet, PacketId, VcId};
use crate::traffic::{InjectionProcess, ProcessState, TrafficPattern};

/// Statistics an endpoint accumulates inside the measurement window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EndpointStats {
    /// Packets generated (including ones refused due to a full source queue).
    pub offered_packets: u64,
    /// Packets actually enqueued for injection.
    pub accepted_packets: u64,
    /// Flits delivered to this endpoint.
    pub received_flits: u64,
    /// Packets fully delivered to this endpoint.
    pub received_packets: u64,
    /// Sum of packet latencies (creation → tail arrival), measured packets.
    pub latency_sum: u64,
    /// Number of measured packets (created inside the window).
    pub latency_count: u64,
    /// Largest measured packet latency.
    pub latency_max: u64,
}

/// A packet source/sink attached to one router.
#[derive(Debug, Clone)]
pub struct Endpoint {
    id: EndpointId,
    num_endpoints: usize,
    source_queue: VecDeque<Flit>,
    source_queue_cap_flits: usize,
    /// Credits toward the router's injection-port input VCs.
    credits: Vec<usize>,
    /// VC bound for the packet currently being injected.
    bound_vc: Option<VcId>,
    /// Packets this endpoint has sourced. Packet ids are endpoint-strided
    /// (`id + num_endpoints * seq`): globally unique without any shared
    /// counter, so a sharded run — where each shard generates
    /// independently — assigns every packet the exact id the serial run
    /// does. Fault handling relies on this: the doomed-set union exchanged
    /// at failure barriers identifies packets *by id across shards*.
    next_seq: u64,
    rng: StdRng,
    process_state: ProcessState,
    /// Cycle of the next scheduled packet generation ([`IDLE`] when the
    /// process never fires again).
    next_arrival: u64,
    stats: EndpointStats,
    /// Histogram of measured packet latencies: bucket `i` counts latencies
    /// of exactly `i` cycles; latencies ≥ `LATENCY_HISTOGRAM_BUCKETS` land
    /// in the last bucket (they also update `latency_max`).
    latency_histogram: Vec<u32>,
    /// Cycle at which the measurement window opened (`u64::MAX` = closed).
    window_start: u64,
    /// Time-weighted source-queue occupancy integral (Σ flits · cycles)
    /// since the window opened, maintained incrementally at every queue
    /// mutation — exact even across idle fast-forward, because a skipped
    /// stretch never mutates any queue.
    queue_integral: u64,
    /// Largest source-queue occupancy (flits) seen inside the window.
    queue_max: u64,
    /// Cycle of the last occupancy-integral update.
    queue_mark: u64,
}

/// Number of exact buckets in the per-endpoint latency histogram.
pub const LATENCY_HISTOGRAM_BUCKETS: usize = 4096;

impl Endpoint {
    /// Creates an endpoint.
    ///
    /// `vcs`/`buffer_depth` size the credit counters toward the router;
    /// `source_queue_cap_packets` bounds the source queue (packets generated
    /// while it is full count as offered but are refused — at that point the
    /// network is saturated anyway).
    #[must_use]
    pub fn new(
        id: EndpointId,
        num_endpoints: usize,
        vcs: usize,
        buffer_depth: usize,
        source_queue_cap_packets: usize,
        packet_size: usize,
        seed: u64,
    ) -> Self {
        let cap_flits = source_queue_cap_packets * packet_size;
        Self {
            id,
            num_endpoints,
            // Capacity is a hard bound (offers beyond it are refused), so
            // reserving it up front makes injection allocation-free.
            source_queue: VecDeque::with_capacity(cap_flits),
            source_queue_cap_flits: cap_flits,
            credits: vec![buffer_depth; vcs],
            bound_vc: None,
            next_seq: 0,
            rng: StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            process_state: ProcessState::default(),
            next_arrival: IDLE,
            stats: EndpointStats::default(),
            latency_histogram: Vec::new(),
            window_start: u64::MAX,
            queue_integral: 0,
            queue_max: 0,
            queue_mark: 0,
        }
    }

    /// Endpoint id.
    #[must_use]
    pub fn id(&self) -> EndpointId {
        self.id
    }

    /// Opens the measurement window at `cycle`: latency samples are recorded
    /// for packets created from now on; counters restart.
    ///
    /// The latency histogram is (re)allocated here, once, so the
    /// steady-state measurement path never allocates.
    pub fn open_window(&mut self, cycle: u64) {
        self.window_start = cycle;
        self.stats = EndpointStats::default();
        self.latency_histogram.clear();
        self.latency_histogram.resize(LATENCY_HISTOGRAM_BUCKETS, 0);
        self.queue_integral = 0;
        self.queue_max = self.source_queue.len() as u64;
        self.queue_mark = cycle;
    }

    /// Advances the occupancy integral to `now` at the current queue
    /// length. Call *before* any queue mutation.
    fn note_queue(&mut self, now: u64) {
        let len = self.source_queue.len() as u64;
        self.queue_integral += len * (now - self.queue_mark);
        self.queue_mark = now;
    }

    /// Source-queue occupancy over the measurement window, finalized at
    /// `now`: `(max_flits, flit_cycles)` where `flit_cycles` is the
    /// time-weighted integral Σ len·dt — divide by the window length for
    /// the mean occupancy. Both reset when a window opens.
    #[must_use]
    pub fn queue_occupancy(&self, now: u64) -> (u64, u64) {
        let len = self.source_queue.len() as u64;
        (self.queue_max, self.queue_integral + len * (now - self.queue_mark))
    }

    /// Histogram of measured packet latencies. Empty until a measurement
    /// window is opened; preallocated to [`LATENCY_HISTOGRAM_BUCKETS`]
    /// zeroed buckets from then on (check `stats().latency_count` for
    /// "no samples yet", not emptiness).
    #[must_use]
    pub fn latency_histogram(&self) -> &[u32] {
        &self.latency_histogram
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &EndpointStats {
        &self.stats
    }

    /// Cycle of the next scheduled packet generation, or
    /// [`crate::channel::IDLE`] if none is scheduled.
    #[must_use]
    pub fn next_arrival(&self) -> u64 {
        self.next_arrival
    }

    /// Samples and schedules the first packet arrival at or after `from`.
    /// Endpoints with fewer than two reachable peers never generate.
    pub fn schedule_arrival(&mut self, from: u64, process: InjectionProcess) {
        self.next_arrival = if self.num_endpoints < 2 {
            IDLE
        } else {
            process.next_arrival(from, &mut self.process_state, &mut self.rng).unwrap_or(IDLE)
        };
    }

    /// Generates the packet scheduled for `cycle` (offering it to the
    /// source queue, which may refuse it when full), then samples the next
    /// arrival. Returns the new [`Endpoint::next_arrival`].
    ///
    /// # Panics
    ///
    /// Debug-panics if `cycle` is not the scheduled arrival cycle.
    pub fn generate_due(
        &mut self,
        cycle: u64,
        process: InjectionProcess,
        pattern: TrafficPattern,
    ) -> u64 {
        debug_assert_eq!(cycle, self.next_arrival, "generation fired off schedule");
        if cycle >= self.window_start {
            self.stats.offered_packets += 1;
        }
        if self.source_queue.len() + process.packet_size <= self.source_queue_cap_flits {
            let dest = pattern.destination(self.id, self.num_endpoints, &mut self.rng);
            self.enqueue(cycle, dest, process.packet_size);
            if cycle >= self.window_start {
                self.stats.accepted_packets += 1;
            }
        } // else refused: source queue full (network saturated)
        self.schedule_arrival(cycle + 1, process);
        self.next_arrival
    }

    /// Like [`Self::generate_due`], but for a (potentially) degraded
    /// network. The destination is sampled exactly as in the healthy path —
    /// the RNG consumes the same draws, so a run whose fault plan never
    /// fires stays bit-identical to an unfaulted one — and then checked
    /// against `deliverable`: packets toward a dead or partitioned
    /// destination are *squelched* (never enqueued; the second return value
    /// is `true`). On acceptance, `accepted` receives `(id, dest, size)` so
    /// the simulator can register the packet for retransmission tracking.
    pub fn generate_due_degraded(
        &mut self,
        cycle: u64,
        process: InjectionProcess,
        pattern: TrafficPattern,
        mut deliverable: impl FnMut(EndpointId) -> bool,
        accepted: &mut impl FnMut(PacketId, EndpointId, usize),
    ) -> (u64, bool) {
        debug_assert_eq!(cycle, self.next_arrival, "generation fired off schedule");
        if cycle >= self.window_start {
            self.stats.offered_packets += 1;
        }
        let mut squelched = false;
        if self.source_queue.len() + process.packet_size <= self.source_queue_cap_flits {
            let dest = pattern.destination(self.id, self.num_endpoints, &mut self.rng);
            if deliverable(dest) {
                let id = self.enqueue(cycle, dest, process.packet_size);
                if cycle >= self.window_start {
                    self.stats.accepted_packets += 1;
                }
                accepted(id, dest, process.packet_size);
            } else {
                squelched = true;
            }
        } // else refused: source queue full (network saturated)
        self.schedule_arrival(cycle + 1, process);
        (self.next_arrival, squelched)
    }

    /// Offers one explicit packet to the source queue at `cycle` — the
    /// closed-loop entry point workload drivers use instead of the
    /// stochastic generator. Returns the assigned packet id, or `None`
    /// when the source queue cannot take `size_flits` more flits (the
    /// caller retries once the queue drains).
    ///
    /// Statistics: a refusal is *not* counted as an offered packet —
    /// closed-loop callers re-offer the same logical message until it
    /// fits, so counting attempts would inflate the offered load by the
    /// retry count. Offered and accepted both increment exactly once, on
    /// acceptance.
    ///
    /// # Panics
    ///
    /// Debug-panics on self-traffic or a zero-length packet.
    pub fn offer_packet(
        &mut self,
        cycle: u64,
        dest: EndpointId,
        size_flits: usize,
    ) -> Option<PacketId> {
        debug_assert_ne!(dest, self.id, "self-traffic does not exercise the interconnect");
        debug_assert!(size_flits >= 1, "packets need at least one flit");
        if self.source_queue.len() + size_flits > self.source_queue_cap_flits {
            return None;
        }
        let id = self.enqueue(cycle, dest, size_flits);
        if cycle >= self.window_start {
            self.stats.offered_packets += 1;
            self.stats.accepted_packets += 1;
        }
        Some(id)
    }

    /// Segments one packet into the source queue, maintaining the
    /// occupancy integral. Capacity was checked by the caller. The
    /// assigned id is endpoint-strided (see [`Endpoint::next_seq`]), so
    /// `id % num_endpoints` recovers the source.
    fn enqueue(&mut self, cycle: u64, dest: EndpointId, size_flits: usize) -> PacketId {
        let id = self.id as PacketId + self.num_endpoints as PacketId * self.next_seq;
        self.next_seq += 1;
        let packet = Packet { id, src: self.id, dest, size_flits, created_at: cycle };
        self.note_queue(cycle);
        self.source_queue.extend(packet.flits());
        self.queue_max = self.queue_max.max(self.source_queue.len() as u64);
        packet.id
    }

    /// Attempts to inject one flit at cycle `now`. Returns the flit to
    /// place on the injection link, or `None` if blocked (no flit, or no
    /// credit).
    pub fn try_inject(&mut self, now: u64) -> Option<Flit> {
        let head = *self.source_queue.front()?;
        let vc = match self.bound_vc {
            Some(vc) => vc,
            None => {
                debug_assert!(head.is_head, "unbound endpoint queue must start at a head flit");
                // Bind the VC with the most credits (and at least one).
                let vc = (0..self.credits.len())
                    .filter(|&v| self.credits[v] > 0)
                    .max_by_key(|&v| self.credits[v])?;
                self.bound_vc = Some(vc);
                vc
            }
        };
        if self.credits[vc] == 0 {
            return None;
        }
        self.note_queue(now);
        let mut flit = self.source_queue.pop_front().expect("checked above");
        flit.vc = vc;
        self.credits[vc] -= 1;
        if flit.is_tail {
            self.bound_vc = None;
        }
        Some(flit)
    }

    /// Returns an injection credit for `vc` (one router buffer slot freed).
    pub fn receive_credit(&mut self, vc: VcId) {
        self.credits[vc] += 1;
    }

    /// Sinks an arriving flit, recording statistics. Endpoints consume flits
    /// immediately (infinite ejection bandwidth at the terminal, as in
    /// BookSim2).
    pub fn receive_flit(&mut self, cycle: u64, flit: &Flit) {
        debug_assert_eq!(flit.dest, self.id, "flit delivered to wrong endpoint");
        if cycle >= self.window_start {
            self.stats.received_flits += 1;
        }
        if flit.is_tail {
            if cycle >= self.window_start {
                self.stats.received_packets += 1;
            }
            if flit.created_at >= self.window_start {
                let latency = cycle - flit.created_at;
                self.stats.latency_sum += latency;
                self.stats.latency_count += 1;
                self.stats.latency_max = self.stats.latency_max.max(latency);
                // The histogram was preallocated by `open_window`
                // (created_at >= window_start implies a window is open).
                let bucket = (latency as usize).min(LATENCY_HISTOGRAM_BUCKETS - 1);
                self.latency_histogram[bucket] += 1;
            }
        }
    }

    /// Re-offers a previously accepted packet whose flits were dropped by a
    /// fault (source retransmission). The packet keeps its original id and
    /// `created_at` — a latency sample on eventual delivery then covers the
    /// loss and backoff, which is the honest degraded-network metric — and
    /// no offered/accepted counters move (the packet was counted when first
    /// accepted). Returns `false` when the source queue has no room; the
    /// caller backs off and retries.
    pub fn requeue_packet(
        &mut self,
        now: u64,
        id: PacketId,
        dest: EndpointId,
        size_flits: usize,
        created_at: u64,
    ) -> bool {
        if self.source_queue.len() + size_flits > self.source_queue_cap_flits {
            return false;
        }
        let packet = Packet { id, src: self.id, dest, size_flits, created_at };
        self.note_queue(now);
        self.source_queue.extend(packet.flits());
        self.queue_max = self.queue_max.max(self.source_queue.len() as u64);
        true
    }

    /// Fault handling for a *surviving* endpoint: discards source-queue
    /// flits of packets that are globally doomed (`is_doomed`) and whole
    /// queued packets whose destination died or was partitioned away
    /// (`dest_cut`). The partially injected front packet (bound VC held) is
    /// exempt from the `dest_cut` rule — if it must die, the simulator has
    /// already doomed it globally, which also releases the VC binding here.
    /// Each packet dropped by `dest_cut` alone (its flits never entered the
    /// network) is reported once through `queue_dropped`. Returns flits
    /// removed.
    pub fn purge_faulted(
        &mut self,
        now: u64,
        mut is_doomed: impl FnMut(PacketId) -> bool,
        mut dest_cut: impl FnMut(EndpointId) -> bool,
        mut queue_dropped: impl FnMut(PacketId),
    ) -> usize {
        self.note_queue(now);
        let bound_packet = if self.bound_vc.is_some() {
            self.source_queue.front().map(|f| f.packet)
        } else {
            None
        };
        let before = self.source_queue.len();
        let mut last_reported = None;
        self.source_queue.retain(|flit| {
            if is_doomed(flit.packet) {
                return false;
            }
            if Some(flit.packet) != bound_packet && dest_cut(flit.dest) {
                if last_reported != Some(flit.packet) {
                    last_reported = Some(flit.packet);
                    queue_dropped(flit.packet);
                }
                return false;
            }
            true
        });
        if bound_packet.is_some_and(&mut is_doomed) {
            self.bound_vc = None;
        }
        before - self.source_queue.len()
    }

    /// Fault handling for a *dying* endpoint (its router was killed): the
    /// source queue is abandoned, generation stops for good, and any VC
    /// binding is forgotten. Reports each discarded packet id once through
    /// `dropped`; returns `(flits_removed, partially_injected)` where
    /// `partially_injected` is the id of the front packet if its head had
    /// already entered the network (the simulator must doom those in-flight
    /// flits too).
    pub fn kill(
        &mut self,
        now: u64,
        mut dropped: impl FnMut(PacketId),
    ) -> (usize, Option<PacketId>) {
        self.note_queue(now);
        let partial = if self.bound_vc.is_some() {
            self.source_queue.front().map(|f| f.packet)
        } else {
            None
        };
        let mut last = None;
        for flit in &self.source_queue {
            if last != Some(flit.packet) {
                last = Some(flit.packet);
                dropped(flit.packet);
            }
        }
        let removed = self.source_queue.len();
        self.source_queue.clear();
        self.bound_vc = None;
        self.next_arrival = IDLE;
        (removed, partial)
    }

    /// The front packet's `(id, dest)` when it is partially injected (an
    /// injection VC is bound, so some of its flits are already in the
    /// network), `None` otherwise. Fault handling seeds the doomed set
    /// from this: a half-injected packet cannot simply be dropped from
    /// the queue.
    #[must_use]
    pub fn partially_injected(&self) -> Option<(PacketId, EndpointId)> {
        if self.bound_vc.is_some() {
            self.source_queue.front().map(|f| (f.packet, f.dest))
        } else {
            None
        }
    }

    /// Flits waiting in the source queue.
    #[must_use]
    pub fn backlog_flits(&self) -> usize {
        self.source_queue.len()
    }

    /// `true` if nothing is queued for injection.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.source_queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn endpoint() -> Endpoint {
        Endpoint::new(0, 4, 2, 4, 8, 2, 42)
    }

    fn process(rate: f64) -> InjectionProcess {
        InjectionProcess::bernoulli(rate, 2)
    }

    /// Drives the generator over `cycles` cycles, firing scheduled
    /// arrivals (the per-cycle shape the simulator's reference path uses).
    fn drive(e: &mut Endpoint, proc: InjectionProcess, cycles: u64) {
        e.schedule_arrival(0, proc);
        for cycle in 0..cycles {
            if e.next_arrival() == cycle {
                e.generate_due(cycle, proc, TrafficPattern::UniformRandom);
            }
        }
    }

    #[test]
    fn generates_and_injects_in_order() {
        let mut e = endpoint();
        // Force generation by running many cycles at rate 1.0.
        drive(&mut e, process(1.0), 8);
        assert!(e.backlog_flits() > 0);
        let f0 = e.try_inject(100).expect("credit available");
        assert!(f0.is_head);
        let f1 = e.try_inject(100).expect("credit available");
        assert_eq!(f1.packet, f0.packet);
        assert!(f1.is_tail);
        assert_eq!(f1.vc, f0.vc, "a packet stays on its bound VC");
    }

    #[test]
    fn injection_blocks_without_credits() {
        let mut e = endpoint();
        drive(&mut e, process(1.0), 20);
        // Drain all credits: 2 VCs x 4 slots = 8 flits.
        let mut sent = 0;
        while e.try_inject(100).is_some() {
            sent += 1;
        }
        assert_eq!(sent, 8);
        e.receive_credit(0);
        assert!(e.try_inject(100).is_some());
        assert!(e.try_inject(100).is_none());
    }

    #[test]
    fn source_queue_cap_refuses_packets() {
        let mut e = Endpoint::new(0, 4, 2, 4, 2, 2, 7); // cap: 2 packets = 4 flits
        e.open_window(0);
        drive(&mut e, process(1.0), 100);
        let s = e.stats();
        assert!(s.offered_packets > s.accepted_packets);
        assert_eq!(e.backlog_flits(), 4);
    }

    #[test]
    fn latency_recorded_on_tail_only_inside_window() {
        let mut e = endpoint();
        e.open_window(100);
        let tail = Flit {
            packet: 1,
            index: 1,
            is_head: false,
            is_tail: true,
            dest: 0,
            created_at: 150,
            vc: 0,
            escape: false,
        };
        // Packet created before the window: counted as received, not sampled.
        let early = Flit { created_at: 50, ..tail };
        e.receive_flit(160, &early);
        assert_eq!(e.stats().latency_count, 0);
        assert_eq!(e.stats().received_packets, 1);
        // Packet created inside the window: sampled.
        e.receive_flit(200, &tail);
        assert_eq!(e.stats().latency_count, 1);
        assert_eq!(e.stats().latency_sum, 50);
        assert_eq!(e.stats().latency_max, 50);
    }

    #[test]
    fn purge_and_requeue_round_trip() {
        let mut e = endpoint();
        e.open_window(0);
        // Two 2-flit packets: one to endpoint 1, one to endpoint 2. Ids are
        // endpoint-strided: endpoint 0 of 4 assigns 0, 4, 8, ...
        assert_eq!(e.offer_packet(0, 1, 2), Some(0));
        assert_eq!(e.offer_packet(0, 2, 2), Some(4));
        // Inject one flit of packet 0 so it becomes the bound front packet.
        assert!(e.try_inject(1).is_some());
        // Cutting destination 1 must NOT drop the partially injected front
        // packet; cutting destination 2 drops the queued packet 4 wholesale.
        let mut dropped = Vec::new();
        let removed = e.purge_faulted(2, |_| false, |d| d == 1 || d == 2, |p| dropped.push(p));
        assert_eq!(removed, 2, "only packet 4's two flits leave the queue");
        assert_eq!(dropped, [4]);
        assert_eq!(e.backlog_flits(), 1);
        // Now doom packet 0 globally: its tail leaves, binding released.
        let removed = e.purge_faulted(3, |p| p == 0, |_| false, |_| ());
        assert_eq!(removed, 1);
        assert!(e.is_drained());
        // Retransmission: packet 0 re-offered with its original identity.
        let accepted_before = e.stats().accepted_packets;
        assert!(e.requeue_packet(10, 0, 1, 2, 0));
        assert_eq!(e.stats().accepted_packets, accepted_before, "no double count");
        let f = e.try_inject(11).expect("credits available");
        assert_eq!(f.packet, 0);
        assert_eq!(f.created_at, 0, "original creation time preserved");
    }

    #[test]
    fn kill_reports_queued_packets_and_stops_generation() {
        let mut e = endpoint();
        drive(&mut e, process(1.0), 6);
        assert!(e.backlog_flits() >= 4, "rate-1.0 generation produced packets");
        assert!(e.try_inject(50).is_some(), "head of first packet injected");
        let mut dropped = Vec::new();
        let (removed, partial) = e.kill(50, |p| dropped.push(p));
        assert!(removed > 0);
        assert_eq!(partial, Some(0), "front packet was mid-injection");
        assert!(dropped.contains(&0));
        assert!(e.is_drained());
        assert_eq!(e.next_arrival(), IDLE, "a dead endpoint never generates");
    }

    #[test]
    fn no_traffic_with_single_endpoint() {
        let mut e = Endpoint::new(0, 1, 2, 4, 8, 2, 3);
        e.schedule_arrival(0, process(1.0));
        assert_eq!(e.next_arrival(), IDLE, "single endpoint never generates");
        drive(&mut e, process(1.0), 100);
        assert!(e.is_drained());
    }
}
