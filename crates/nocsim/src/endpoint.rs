//! Traffic endpoints: packet sources and sinks.
//!
//! Each chiplet hosts a router and (in the paper's configuration) two
//! endpoints. An endpoint generates packets with a Bernoulli (or bursty
//! on/off) process, queues their flits in a bounded source queue, injects
//! them into its router's injection port under credit flow control, and
//! sinks arriving flits, recording packet latency on tail arrival.
//!
//! Generation is *arrival-scheduled*: instead of flipping a coin every
//! cycle, the endpoint samples the cycle of its next packet with
//! [`InjectionProcess::next_arrival`] (geometric skip-ahead) and is only
//! touched at those cycles — the key to the simulator's O(active
//! components) stepping.
//!
//! Closed-loop drivers (the workload engine) bypass the stochastic
//! generator entirely: [`Endpoint::offer_packet`] enqueues one explicit
//! packet, and the source-queue occupancy integral ([`Endpoint::
//! queue_occupancy`]) is maintained incrementally at queue mutations so
//! per-cycle sampling is never needed.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::channel::IDLE;
use crate::flit::{EndpointId, Flit, Packet, PacketId, VcId};
use crate::traffic::{InjectionProcess, ProcessState, TrafficPattern};

/// Statistics an endpoint accumulates inside the measurement window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EndpointStats {
    /// Packets generated (including ones refused due to a full source queue).
    pub offered_packets: u64,
    /// Packets actually enqueued for injection.
    pub accepted_packets: u64,
    /// Flits delivered to this endpoint.
    pub received_flits: u64,
    /// Packets fully delivered to this endpoint.
    pub received_packets: u64,
    /// Sum of packet latencies (creation → tail arrival), measured packets.
    pub latency_sum: u64,
    /// Number of measured packets (created inside the window).
    pub latency_count: u64,
    /// Largest measured packet latency.
    pub latency_max: u64,
}

/// A packet source/sink attached to one router.
#[derive(Debug, Clone)]
pub struct Endpoint {
    id: EndpointId,
    num_endpoints: usize,
    source_queue: VecDeque<Flit>,
    source_queue_cap_flits: usize,
    /// Credits toward the router's injection-port input VCs.
    credits: Vec<usize>,
    /// VC bound for the packet currently being injected.
    bound_vc: Option<VcId>,
    rng: StdRng,
    process_state: ProcessState,
    /// Cycle of the next scheduled packet generation ([`IDLE`] when the
    /// process never fires again).
    next_arrival: u64,
    stats: EndpointStats,
    /// Histogram of measured packet latencies: bucket `i` counts latencies
    /// of exactly `i` cycles; latencies ≥ `LATENCY_HISTOGRAM_BUCKETS` land
    /// in the last bucket (they also update `latency_max`).
    latency_histogram: Vec<u32>,
    /// Cycle at which the measurement window opened (`u64::MAX` = closed).
    window_start: u64,
    /// Time-weighted source-queue occupancy integral (Σ flits · cycles)
    /// since the window opened, maintained incrementally at every queue
    /// mutation — exact even across idle fast-forward, because a skipped
    /// stretch never mutates any queue.
    queue_integral: u64,
    /// Largest source-queue occupancy (flits) seen inside the window.
    queue_max: u64,
    /// Cycle of the last occupancy-integral update.
    queue_mark: u64,
}

/// Number of exact buckets in the per-endpoint latency histogram.
pub const LATENCY_HISTOGRAM_BUCKETS: usize = 4096;

impl Endpoint {
    /// Creates an endpoint.
    ///
    /// `vcs`/`buffer_depth` size the credit counters toward the router;
    /// `source_queue_cap_packets` bounds the source queue (packets generated
    /// while it is full count as offered but are refused — at that point the
    /// network is saturated anyway).
    #[must_use]
    pub fn new(
        id: EndpointId,
        num_endpoints: usize,
        vcs: usize,
        buffer_depth: usize,
        source_queue_cap_packets: usize,
        packet_size: usize,
        seed: u64,
    ) -> Self {
        let cap_flits = source_queue_cap_packets * packet_size;
        Self {
            id,
            num_endpoints,
            // Capacity is a hard bound (offers beyond it are refused), so
            // reserving it up front makes injection allocation-free.
            source_queue: VecDeque::with_capacity(cap_flits),
            source_queue_cap_flits: cap_flits,
            credits: vec![buffer_depth; vcs],
            bound_vc: None,
            rng: StdRng::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            process_state: ProcessState::default(),
            next_arrival: IDLE,
            stats: EndpointStats::default(),
            latency_histogram: Vec::new(),
            window_start: u64::MAX,
            queue_integral: 0,
            queue_max: 0,
            queue_mark: 0,
        }
    }

    /// Endpoint id.
    #[must_use]
    pub fn id(&self) -> EndpointId {
        self.id
    }

    /// Opens the measurement window at `cycle`: latency samples are recorded
    /// for packets created from now on; counters restart.
    ///
    /// The latency histogram is (re)allocated here, once, so the
    /// steady-state measurement path never allocates.
    pub fn open_window(&mut self, cycle: u64) {
        self.window_start = cycle;
        self.stats = EndpointStats::default();
        self.latency_histogram.clear();
        self.latency_histogram.resize(LATENCY_HISTOGRAM_BUCKETS, 0);
        self.queue_integral = 0;
        self.queue_max = self.source_queue.len() as u64;
        self.queue_mark = cycle;
    }

    /// Advances the occupancy integral to `now` at the current queue
    /// length. Call *before* any queue mutation.
    fn note_queue(&mut self, now: u64) {
        let len = self.source_queue.len() as u64;
        self.queue_integral += len * (now - self.queue_mark);
        self.queue_mark = now;
    }

    /// Source-queue occupancy over the measurement window, finalized at
    /// `now`: `(max_flits, flit_cycles)` where `flit_cycles` is the
    /// time-weighted integral Σ len·dt — divide by the window length for
    /// the mean occupancy. Both reset when a window opens.
    #[must_use]
    pub fn queue_occupancy(&self, now: u64) -> (u64, u64) {
        let len = self.source_queue.len() as u64;
        (self.queue_max, self.queue_integral + len * (now - self.queue_mark))
    }

    /// Histogram of measured packet latencies. Empty until a measurement
    /// window is opened; preallocated to [`LATENCY_HISTOGRAM_BUCKETS`]
    /// zeroed buckets from then on (check `stats().latency_count` for
    /// "no samples yet", not emptiness).
    #[must_use]
    pub fn latency_histogram(&self) -> &[u32] {
        &self.latency_histogram
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &EndpointStats {
        &self.stats
    }

    /// Cycle of the next scheduled packet generation, or
    /// [`crate::channel::IDLE`] if none is scheduled.
    #[must_use]
    pub fn next_arrival(&self) -> u64 {
        self.next_arrival
    }

    /// Samples and schedules the first packet arrival at or after `from`.
    /// Endpoints with fewer than two reachable peers never generate.
    pub fn schedule_arrival(&mut self, from: u64, process: InjectionProcess) {
        self.next_arrival = if self.num_endpoints < 2 {
            IDLE
        } else {
            process.next_arrival(from, &mut self.process_state, &mut self.rng).unwrap_or(IDLE)
        };
    }

    /// Generates the packet scheduled for `cycle` (offering it to the
    /// source queue, which may refuse it when full), then samples the next
    /// arrival. Returns the new [`Endpoint::next_arrival`].
    ///
    /// # Panics
    ///
    /// Debug-panics if `cycle` is not the scheduled arrival cycle.
    pub fn generate_due(
        &mut self,
        cycle: u64,
        process: InjectionProcess,
        pattern: TrafficPattern,
        next_packet_id: &mut PacketId,
    ) -> u64 {
        debug_assert_eq!(cycle, self.next_arrival, "generation fired off schedule");
        if cycle >= self.window_start {
            self.stats.offered_packets += 1;
        }
        if self.source_queue.len() + process.packet_size <= self.source_queue_cap_flits {
            let dest = pattern.destination(self.id, self.num_endpoints, &mut self.rng);
            self.enqueue(cycle, dest, process.packet_size, next_packet_id);
            if cycle >= self.window_start {
                self.stats.accepted_packets += 1;
            }
        } // else refused: source queue full (network saturated)
        self.schedule_arrival(cycle + 1, process);
        self.next_arrival
    }

    /// Offers one explicit packet to the source queue at `cycle` — the
    /// closed-loop entry point workload drivers use instead of the
    /// stochastic generator. Returns the assigned packet id, or `None`
    /// when the source queue cannot take `size_flits` more flits (the
    /// caller retries once the queue drains).
    ///
    /// Statistics: a refusal is *not* counted as an offered packet —
    /// closed-loop callers re-offer the same logical message until it
    /// fits, so counting attempts would inflate the offered load by the
    /// retry count. Offered and accepted both increment exactly once, on
    /// acceptance.
    ///
    /// # Panics
    ///
    /// Debug-panics on self-traffic or a zero-length packet.
    pub fn offer_packet(
        &mut self,
        cycle: u64,
        dest: EndpointId,
        size_flits: usize,
        next_packet_id: &mut PacketId,
    ) -> Option<PacketId> {
        debug_assert_ne!(dest, self.id, "self-traffic does not exercise the interconnect");
        debug_assert!(size_flits >= 1, "packets need at least one flit");
        if self.source_queue.len() + size_flits > self.source_queue_cap_flits {
            return None;
        }
        let id = self.enqueue(cycle, dest, size_flits, next_packet_id);
        if cycle >= self.window_start {
            self.stats.offered_packets += 1;
            self.stats.accepted_packets += 1;
        }
        Some(id)
    }

    /// Segments one packet into the source queue, maintaining the
    /// occupancy integral. Capacity was checked by the caller.
    fn enqueue(
        &mut self,
        cycle: u64,
        dest: EndpointId,
        size_flits: usize,
        next_packet_id: &mut PacketId,
    ) -> PacketId {
        let packet =
            Packet { id: *next_packet_id, src: self.id, dest, size_flits, created_at: cycle };
        *next_packet_id += 1;
        self.note_queue(cycle);
        self.source_queue.extend(packet.flits());
        self.queue_max = self.queue_max.max(self.source_queue.len() as u64);
        packet.id
    }

    /// Attempts to inject one flit at cycle `now`. Returns the flit to
    /// place on the injection link, or `None` if blocked (no flit, or no
    /// credit).
    pub fn try_inject(&mut self, now: u64) -> Option<Flit> {
        let head = *self.source_queue.front()?;
        let vc = match self.bound_vc {
            Some(vc) => vc,
            None => {
                debug_assert!(head.is_head, "unbound endpoint queue must start at a head flit");
                // Bind the VC with the most credits (and at least one).
                let vc = (0..self.credits.len())
                    .filter(|&v| self.credits[v] > 0)
                    .max_by_key(|&v| self.credits[v])?;
                self.bound_vc = Some(vc);
                vc
            }
        };
        if self.credits[vc] == 0 {
            return None;
        }
        self.note_queue(now);
        let mut flit = self.source_queue.pop_front().expect("checked above");
        flit.vc = vc;
        self.credits[vc] -= 1;
        if flit.is_tail {
            self.bound_vc = None;
        }
        Some(flit)
    }

    /// Returns an injection credit for `vc` (one router buffer slot freed).
    pub fn receive_credit(&mut self, vc: VcId) {
        self.credits[vc] += 1;
    }

    /// Sinks an arriving flit, recording statistics. Endpoints consume flits
    /// immediately (infinite ejection bandwidth at the terminal, as in
    /// BookSim2).
    pub fn receive_flit(&mut self, cycle: u64, flit: &Flit) {
        debug_assert_eq!(flit.dest, self.id, "flit delivered to wrong endpoint");
        if cycle >= self.window_start {
            self.stats.received_flits += 1;
        }
        if flit.is_tail {
            if cycle >= self.window_start {
                self.stats.received_packets += 1;
            }
            if flit.created_at >= self.window_start {
                let latency = cycle - flit.created_at;
                self.stats.latency_sum += latency;
                self.stats.latency_count += 1;
                self.stats.latency_max = self.stats.latency_max.max(latency);
                // The histogram was preallocated by `open_window`
                // (created_at >= window_start implies a window is open).
                let bucket = (latency as usize).min(LATENCY_HISTOGRAM_BUCKETS - 1);
                self.latency_histogram[bucket] += 1;
            }
        }
    }

    /// Flits waiting in the source queue.
    #[must_use]
    pub fn backlog_flits(&self) -> usize {
        self.source_queue.len()
    }

    /// `true` if nothing is queued for injection.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.source_queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn endpoint() -> Endpoint {
        Endpoint::new(0, 4, 2, 4, 8, 2, 42)
    }

    fn process(rate: f64) -> InjectionProcess {
        InjectionProcess::bernoulli(rate, 2)
    }

    /// Drives the generator over `cycles` cycles, firing scheduled
    /// arrivals (the per-cycle shape the simulator's reference path uses).
    fn drive(e: &mut Endpoint, proc: InjectionProcess, cycles: u64, id: &mut u64) {
        e.schedule_arrival(0, proc);
        for cycle in 0..cycles {
            if e.next_arrival() == cycle {
                e.generate_due(cycle, proc, TrafficPattern::UniformRandom, id);
            }
        }
    }

    #[test]
    fn generates_and_injects_in_order() {
        let mut e = endpoint();
        let mut id = 0;
        // Force generation by running many cycles at rate 1.0.
        drive(&mut e, process(1.0), 8, &mut id);
        assert!(id > 0);
        let f0 = e.try_inject(100).expect("credit available");
        assert!(f0.is_head);
        let f1 = e.try_inject(100).expect("credit available");
        assert_eq!(f1.packet, f0.packet);
        assert!(f1.is_tail);
        assert_eq!(f1.vc, f0.vc, "a packet stays on its bound VC");
    }

    #[test]
    fn injection_blocks_without_credits() {
        let mut e = endpoint();
        let mut id = 0;
        drive(&mut e, process(1.0), 20, &mut id);
        // Drain all credits: 2 VCs x 4 slots = 8 flits.
        let mut sent = 0;
        while e.try_inject(100).is_some() {
            sent += 1;
        }
        assert_eq!(sent, 8);
        e.receive_credit(0);
        assert!(e.try_inject(100).is_some());
        assert!(e.try_inject(100).is_none());
    }

    #[test]
    fn source_queue_cap_refuses_packets() {
        let mut e = Endpoint::new(0, 4, 2, 4, 2, 2, 7); // cap: 2 packets = 4 flits
        e.open_window(0);
        let mut id = 0;
        drive(&mut e, process(1.0), 100, &mut id);
        let s = e.stats();
        assert!(s.offered_packets > s.accepted_packets);
        assert_eq!(e.backlog_flits(), 4);
    }

    #[test]
    fn latency_recorded_on_tail_only_inside_window() {
        let mut e = endpoint();
        e.open_window(100);
        let tail = Flit {
            packet: 1,
            index: 1,
            is_head: false,
            is_tail: true,
            dest: 0,
            created_at: 150,
            vc: 0,
            escape: false,
        };
        // Packet created before the window: counted as received, not sampled.
        let early = Flit { created_at: 50, ..tail };
        e.receive_flit(160, &early);
        assert_eq!(e.stats().latency_count, 0);
        assert_eq!(e.stats().received_packets, 1);
        // Packet created inside the window: sampled.
        e.receive_flit(200, &tail);
        assert_eq!(e.stats().latency_count, 1);
        assert_eq!(e.stats().latency_sum, 50);
        assert_eq!(e.stats().latency_max, 50);
    }

    #[test]
    fn no_traffic_with_single_endpoint() {
        let mut e = Endpoint::new(0, 1, 2, 4, 8, 2, 3);
        let mut id = 0;
        e.schedule_arrival(0, process(1.0));
        assert_eq!(e.next_arrival(), IDLE, "single endpoint never generates");
        drive(&mut e, process(1.0), 100, &mut id);
        assert_eq!(id, 0);
        assert!(e.is_drained());
    }
}
