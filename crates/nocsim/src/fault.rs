//! Deterministic fault injection: permanent link and router failures on a
//! cycle schedule, plus an optional source-retransmission policy.
//!
//! A [`FaultSchedule`] is a list of [`FaultEvent`]s sorted by cycle. The
//! simulator applies each event *atomically at the start of its cycle*: the
//! component dies, every flit it holds (and every flit belonging to a packet
//! severed by it) is dropped, routing tables are rebuilt over the surviving
//! topology, and endpoints cut off from a destination stop generating
//! toward it. Because the application point is a pure function of the event
//! cycle, faulted runs stay bit-identical across `--workers` and across
//! [`crate::ShardedSimulator`] shard counts — the sharded engine simply caps
//! its bounded-lag windows so every shard reaches the fault cycle before any
//! shard passes it.

use chiplet_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::flit::RouterId;

/// A component that fails permanently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultTarget {
    /// The undirected link between routers `a` and `b`; both directions die.
    Link {
        /// One incident router.
        a: RouterId,
        /// The other incident router.
        b: RouterId,
    },
    /// Router `r` dies, along with every link incident to it. The endpoints
    /// attached to `r` are cut off: they stop injecting and never eject
    /// again.
    Router(RouterId),
}

/// One scheduled failure: `target` dies at the start of `cycle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulation cycle at which the failure takes effect. The component
    /// behaves normally through cycle `cycle - 1`.
    pub cycle: u64,
    /// The component that fails.
    pub target: FaultTarget,
}

/// A deterministic list of failures, sorted by cycle (stable: same-cycle
/// events apply in the order given, and that order is part of the contract).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Builds a schedule from an explicit event list. Events are stably
    /// sorted by cycle; the relative order of same-cycle events is kept.
    #[must_use]
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.cycle);
        Self { events }
    }

    /// Samples `count` distinct links of `g` uniformly without replacement
    /// (seeded, deterministic) and schedules all of them to fail at
    /// `at_cycle`. If `count` exceeds the number of links, every link fails.
    #[must_use]
    pub fn random_links(g: &Graph, count: usize, at_cycle: u64, seed: u64) -> Self {
        // Undirected edge list in the graph's canonical (sorted CSR) order.
        let mut edges: Vec<(usize, usize)> = g.edges().filter(|&(u, v)| u < v).collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFAC7_0000_0000_0000);
        let picks = count.min(edges.len());
        // Partial Fisher–Yates: the first `picks` entries are the sample.
        for i in 0..picks {
            let j = rng.gen_range(i..edges.len());
            edges.swap(i, j);
        }
        let events = edges[..picks]
            .iter()
            .map(|&(a, b)| FaultEvent { cycle: at_cycle, target: FaultTarget::Link { a, b } })
            .collect();
        Self::new(events)
    }

    /// The events, sorted by cycle.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// `true` if no failures are scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled failures.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

/// Source-retransmission policy: a packet whose flits were dropped by a
/// fault is re-offered by its source after a timeout, with exponential
/// backoff between attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetransmitConfig {
    /// Cycles a source waits after offering a packet before assuming loss
    /// and re-offering it. Attempt `k` (zero-based) waits `timeout << k`,
    /// saturating.
    pub timeout: u64,
    /// Attempts after which the source gives up on a packet (counted from
    /// the first transmission; `max_attempts == 1` means never retransmit).
    pub max_attempts: u32,
}

impl Default for RetransmitConfig {
    fn default() -> Self {
        Self { timeout: 2_048, max_attempts: 16 }
    }
}

impl RetransmitConfig {
    /// Backoff delay before re-offering a packet on zero-based retry
    /// `attempt`: `timeout << attempt`, saturating.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> u64 {
        self.timeout.saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
    }
}

/// Everything a faulted run needs: the failure schedule and, optionally,
/// the retransmission policy. Installed on a built simulator via
/// [`crate::Simulator::install_fault_plan`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// When which components die.
    pub schedule: FaultSchedule,
    /// `Some` enables source retransmission of fault-dropped packets.
    pub retransmit: Option<RetransmitConfig>,
}

impl FaultPlan {
    /// A plan that kills the given links/routers with no retransmission.
    #[must_use]
    pub fn new(schedule: FaultSchedule) -> Self {
        Self { schedule, retransmit: None }
    }

    /// Adds a retransmission policy.
    #[must_use]
    pub fn with_retransmit(mut self, config: RetransmitConfig) -> Self {
        self.retransmit = Some(config);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_graph::gen;

    #[test]
    fn schedule_sorts_stably_by_cycle() {
        let s = FaultSchedule::new(vec![
            FaultEvent { cycle: 9, target: FaultTarget::Router(2) },
            FaultEvent { cycle: 3, target: FaultTarget::Link { a: 0, b: 1 } },
            FaultEvent { cycle: 9, target: FaultTarget::Router(1) },
        ]);
        let cycles: Vec<u64> = s.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, [3, 9, 9]);
        // Same-cycle order preserved (router 2 listed before router 1).
        assert_eq!(s.events()[1].target, FaultTarget::Router(2));
        assert_eq!(s.events()[2].target, FaultTarget::Router(1));
    }

    #[test]
    fn random_links_is_deterministic_and_distinct() {
        let g = gen::grid(4, 4);
        let a = FaultSchedule::random_links(&g, 5, 100, 7);
        let b = FaultSchedule::random_links(&g, 5, 100, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        let mut targets: Vec<_> = a.events().iter().map(|e| e.target).collect();
        targets.sort();
        targets.dedup();
        assert_eq!(targets.len(), 5, "sampled links must be distinct");
        for e in a.events() {
            assert_eq!(e.cycle, 100);
            match e.target {
                FaultTarget::Link { a, b } => assert!(g.has_edge(a, b)),
                FaultTarget::Router(_) => panic!("random_links only kills links"),
            }
        }
    }

    #[test]
    fn random_links_caps_at_edge_count() {
        let g = gen::cycle(4);
        let s = FaultSchedule::random_links(&g, 100, 0, 1);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn backoff_is_exponential_and_saturates() {
        let r = RetransmitConfig { timeout: 100, max_attempts: 8 };
        assert_eq!(r.backoff(0), 100);
        assert_eq!(r.backoff(1), 200);
        assert_eq!(r.backoff(3), 800);
        assert_eq!(r.backoff(200), u64::MAX);
    }
}
