//! A cycle-accurate network-on-chip simulator — the workspace's BookSim2
//! substitute.
//!
//! The HexaMesh paper evaluates chiplet arrangements with BookSim2 [Jiang et
//! al., ISPASS 2013]: each chiplet contributes one router and two endpoints,
//! routers have 3-cycle latency, 8 virtual channels and 8-flit buffers, and
//! every D2D link costs 27 cycles (PHY + wire + PHY). This crate implements
//! that machinery from scratch:
//!
//! * [`flit`] — packets and flow-control units,
//! * [`channel`] — fixed-latency flit/credit delay lines,
//! * [`routing`] — shortest-path tables plus a deadlock-free up*/down*
//!   escape layer for arbitrary topologies,
//! * [`router`] — input-queued virtual-channel routers with credit-based
//!   flow control and separable round-robin allocation,
//! * [`rmodel`] — pluggable router microarchitectures (VC allocation and
//!   output arbitration policies, escape-VC bubble flow control,
//!   crossbar pipeline depth),
//! * [`endpoint`] / [`traffic`] — Bernoulli traffic sources and sinks,
//! * [`fault`] — deterministic link/router failure schedules and
//!   source retransmission,
//! * [`sim`] — the cycle loop and statistics,
//! * [`shard`] — conservative bounded-lag parallel execution of one run,
//! * [`measure`] — zero-load latency and saturation-throughput methodology,
//! * [`obs`] — windowed observability probes (time-series sampling that
//!   never perturbs the run it measures).
//!
//! # Example: latency/throughput of a 4×4 chiplet grid
//!
//! ```
//! use chiplet_graph::gen;
//! use nocsim::{measure, SimConfig};
//!
//! let topology = gen::grid(4, 4);
//! let config = SimConfig::paper_defaults();
//! let zero_load = measure::zero_load_latency(&topology, &config)?;
//! assert!(zero_load > 0.0);
//! # Ok::<(), nocsim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod endpoint;
pub mod fault;
pub mod flit;
pub mod measure;
pub mod obs;
pub mod rmodel;
pub mod router;
pub mod routing;
pub mod shard;
pub mod sim;
pub mod traffic;

pub use fault::{FaultEvent, FaultPlan, FaultSchedule, FaultTarget, RetransmitConfig};
pub use measure::{LoadPointObservation, LoadPointResult, MeasureConfig, SaturationResult};
pub use obs::{Probe, WindowSample};
pub use rmodel::{OutputArbPolicy, RouterModel, RouterModelKind, VcAllocPolicy};
pub use router::StallCounters;
pub use routing::{RoutingError, RoutingKind};
pub use shard::ShardedSimulator;
pub use sim::{Delivery, LinkSpec, NetworkStats, SimConfig, SimError, Simulator};
pub use traffic::TrafficPattern;
