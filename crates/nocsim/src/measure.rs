//! Measurement methodology: zero-load latency and saturation throughput.
//!
//! Mirrors the BookSim2 workflow the paper uses (§VI-A): warm the network up,
//! measure over a window, report average packet latency and accepted
//! throughput; find the saturation point by searching over injection rates.

use chiplet_graph::Graph;
use serde::{Deserialize, Serialize};

use crate::fault::FaultPlan;
use crate::flit::RouterId;
use crate::obs::{Probe, WindowSample};
use crate::routing::RoutingTables;
use crate::shard::ShardedSimulator;
use crate::sim::{LinkSpec, NetworkStats, SimConfig, SimError, Simulator};

/// Warmup/measurement schedule and saturation criteria.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive] // new criteria ride in via Default/mutation, not literals
pub struct MeasureConfig {
    /// Cycles simulated before the measurement window opens.
    pub warmup_cycles: u64,
    /// Cycles in the measurement window.
    pub measure_cycles: u64,
    /// A load point is *saturated* when accepted throughput falls below this
    /// fraction of offered.
    pub accepted_ratio_threshold: f64,
    /// … or when average latency exceeds `latency_guard ×` zero-load latency.
    pub latency_guard: f64,
    /// Binary-search resolution on the injection rate (flits/cycle/endpoint).
    pub rate_resolution: f64,
    /// Worker threads one simulation is sharded across (`1` = the serial
    /// engine; more uses [`ShardedSimulator`], bit-identical results).
    pub shards: usize,
    /// Observability probe attached to every simulation run under this
    /// schedule (`None` — the default — runs probe-free). Probes observe,
    /// never perturb: results are bit-identical either way; collect the
    /// series with [`run_load_point_observed`].
    pub probe: Option<Probe>,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        Self {
            warmup_cycles: 5_000,
            measure_cycles: 10_000,
            accepted_ratio_threshold: 0.95,
            latency_guard: 4.0,
            rate_resolution: 0.01,
            shards: 1,
            probe: None,
        }
    }
}

impl MeasureConfig {
    /// A faster schedule for tests and smoke runs (shorter windows, coarser
    /// rate resolution).
    #[must_use]
    pub fn quick() -> Self {
        Self {
            warmup_cycles: 1_500,
            measure_cycles: 3_000,
            rate_resolution: 0.02,
            ..Self::default()
        }
    }
}

/// Result of simulating one load point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadPointResult {
    /// Offered load (flits/cycle/endpoint) this point was run at.
    pub offered: f64,
    /// Raw network statistics of the measurement window.
    pub stats: NetworkStats,
    /// Whether the point met a saturation criterion.
    pub saturated: bool,
    /// Whether the deadlock watchdog fired.
    pub deadlock: bool,
}

/// Outcome of the saturation search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaturationResult {
    /// Highest stable injection rate found (flits/cycle/endpoint).
    pub rate: f64,
    /// Accepted throughput at that rate (flits/cycle/endpoint). This is the
    /// paper's *saturation throughput* relative to full global bandwidth.
    pub throughput: f64,
    /// Average packet latency at the stable point, if measured.
    pub latency_at_saturation: Option<f64>,
}

/// Structural (contention-free) zero-load packet latency in cycles, averaged
/// over all ordered endpoint pairs.
///
/// A packet between endpoints whose routers are `H` hops apart costs
/// `inj + H·(router + link) + router + inj + (P − 1)` cycles: injection
/// link, `H` router-and-link traversals, the destination router, the
/// ejection link, and tail serialisation. Matches what the simulator
/// measures at vanishing load (validated in the crate's tests).
///
/// # Errors
///
/// Propagates routing-table construction failures for empty or disconnected
/// graphs.
pub fn zero_load_latency(g: &Graph, config: &SimConfig) -> Result<f64, SimError> {
    let tables = RoutingTables::new(g, config.routing)?;
    let epr = config.endpoints_per_router;
    let endpoints = g.num_vertices() * epr;
    if endpoints < 2 {
        return Err(SimError::InvalidConfig("need at least two endpoints"));
    }
    let per_hop = (config.pipeline_cycles() + config.link_latency) as f64;
    let constant = 2.0 * config.injection_latency as f64
        + config.pipeline_cycles() as f64
        + (config.packet_size as f64 - 1.0);
    // Average router-to-router hop distance over ordered endpoint pairs.
    let mut total_hops = 0u64;
    for src in 0..endpoints {
        for dst in 0..endpoints {
            if src == dst {
                continue;
            }
            total_hops += u64::from(tables.distance(src / epr, dst / epr));
        }
    }
    let pairs = (endpoints * (endpoints - 1)) as f64;
    let avg_hops = total_hops as f64 / pairs;
    Ok(constant + avg_hops * per_hop)
}

/// Zero-load latency measured by simulation at a vanishing injection rate.
///
/// The analytic [`zero_load_latency`] assumes every link costs
/// `config.link_latency`; for heterogeneous topologies (per-link specs) the
/// structural latency depends on which physical links the minimal routes
/// take, so we measure it instead: a long window at 1% load.
///
/// # Errors
///
/// Propagates simulator construction failures, and returns
/// [`SimError::InvalidConfig`] if the window measured no packets.
pub fn simulated_zero_load_latency(
    g: &Graph,
    config: &SimConfig,
    spec: impl Fn(RouterId, RouterId) -> LinkSpec,
) -> Result<f64, SimError> {
    let probe = SimConfig { injection_rate: 0.01, ..*config };
    let mut sim = Simulator::with_link_specs(g, probe, spec)?;
    sim.run_to_window(2_000, 30_000)
        .avg_packet_latency
        .ok_or(SimError::InvalidConfig("zero-load probe measured no packets"))
}

/// Simulates one load point: warmup, measure, classify.
///
/// # Errors
///
/// Propagates simulator construction failures.
pub fn run_load_point(
    g: &Graph,
    config: &SimConfig,
    schedule: &MeasureConfig,
) -> Result<LoadPointResult, SimError> {
    let zero_load = zero_load_latency(g, config)?;
    let latency = config.link_latency;
    run_load_point_with_specs(g, config, schedule, |_, _| LinkSpec::uniform(latency), zero_load)
}

/// [`run_load_point`] over heterogeneous links. `zero_load` supplies the
/// latency baseline for the saturation guard (use
/// [`simulated_zero_load_latency`] or an analytic value).
///
/// # Errors
///
/// Propagates simulator construction failures.
pub fn run_load_point_with_specs(
    g: &Graph,
    config: &SimConfig,
    schedule: &MeasureConfig,
    spec: impl Fn(RouterId, RouterId) -> LinkSpec,
    zero_load: f64,
) -> Result<LoadPointResult, SimError> {
    run_load_point_inner(g, config, schedule, spec, zero_load, None, None)
}

/// Windowed time-series and spatial link loads observed during one load
/// point ([`run_load_point_observed`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct LoadPointObservation {
    /// The probe's window series (merged across shards when sharded).
    pub windows: Vec<WindowSample>,
    /// Per-directed-link flit counts over the whole run, `(src, dst,
    /// flits)` — the congestion-heatmap input.
    pub channel_loads: Vec<(RouterId, RouterId, u64)>,
}

/// [`run_load_point`] that also returns what the probe saw. Requires
/// [`MeasureConfig::probe`] to be set for a non-empty window series (the
/// channel loads are collected regardless). The [`LoadPointResult`] is
/// bit-identical to the probe-free [`run_load_point`].
///
/// # Errors
///
/// Propagates simulator construction failures.
pub fn run_load_point_observed(
    g: &Graph,
    config: &SimConfig,
    schedule: &MeasureConfig,
) -> Result<(LoadPointResult, LoadPointObservation), SimError> {
    let zero_load = zero_load_latency(g, config)?;
    let latency = config.link_latency;
    let mut obs = LoadPointObservation::default();
    let point = run_load_point_inner(
        g,
        config,
        schedule,
        |_, _| LinkSpec::uniform(latency),
        zero_load,
        None,
        Some(&mut obs),
    )?;
    Ok((point, obs))
}

/// [`run_load_point`] on a network that suffers the failures in `plan`
/// mid-run. The saturation criteria compare against the *healthy*
/// zero-load latency, so a degraded network saturates earlier — which is
/// exactly the degradation the resilience studies chart. Squelched
/// packets (sources cut off from their sampled destination) count as
/// offered but never accepted, so a partitioned network also reads as
/// degraded throughput rather than wedging the run.
///
/// # Errors
///
/// Propagates simulator construction failures.
pub fn run_load_point_faulted(
    g: &Graph,
    config: &SimConfig,
    schedule: &MeasureConfig,
    plan: &FaultPlan,
) -> Result<LoadPointResult, SimError> {
    let zero_load = zero_load_latency(g, config)?;
    let latency = config.link_latency;
    run_load_point_inner(
        g,
        config,
        schedule,
        |_, _| LinkSpec::uniform(latency),
        zero_load,
        Some(plan),
        None,
    )
}

fn run_load_point_inner(
    g: &Graph,
    config: &SimConfig,
    schedule: &MeasureConfig,
    spec: impl Fn(RouterId, RouterId) -> LinkSpec,
    zero_load: f64,
    plan: Option<&FaultPlan>,
    observe: Option<&mut LoadPointObservation>,
) -> Result<LoadPointResult, SimError> {
    let (stats, deadlock) = if schedule.shards > 1 {
        let mut sim = ShardedSimulator::with_link_specs(g, *config, spec, schedule.shards)?;
        if let Some(plan) = plan {
            sim.install_fault_plan(plan.clone());
        }
        if let Some(probe) = schedule.probe {
            sim.attach_probe(probe);
        }
        let stats = sim.run_to_window(schedule.warmup_cycles, schedule.measure_cycles);
        if let Some(out) = observe {
            out.windows = sim.obs_windows();
            out.channel_loads = sim.channel_loads();
        }
        (stats, sim.deadlock_suspected())
    } else {
        let mut sim = Simulator::with_link_specs(g, *config, spec)?;
        if let Some(plan) = plan {
            sim.install_fault_plan(plan.clone());
        }
        if let Some(probe) = schedule.probe {
            sim.attach_probe(probe);
        }
        let stats = sim.run_to_window(schedule.warmup_cycles, schedule.measure_cycles);
        if let Some(out) = observe {
            out.windows = sim.detach_probe();
            out.channel_loads = sim.channel_loads();
        }
        (stats, sim.deadlock_suspected())
    };

    let accepted_ratio = if stats.offered_flits_per_cycle_per_endpoint > 0.0 {
        stats.accepted_flits_per_cycle_per_endpoint / stats.offered_flits_per_cycle_per_endpoint
    } else {
        1.0
    };
    let latency_blown = match stats.avg_packet_latency {
        Some(l) => l > schedule.latency_guard * zero_load,
        // Offered load but nothing measured: the network is not delivering.
        None => stats.offered_packets > 0,
    };
    let saturated =
        deadlock || accepted_ratio < schedule.accepted_ratio_threshold || latency_blown;
    Ok(LoadPointResult { offered: config.injection_rate, stats, saturated, deadlock })
}

/// Finds the saturation throughput by bisecting the injection rate.
///
/// Returns the highest stable rate (to within
/// [`MeasureConfig::rate_resolution`]) and the accepted throughput there.
///
/// # Errors
///
/// Propagates simulator construction failures.
pub fn saturation_search(
    g: &Graph,
    base: &SimConfig,
    schedule: &MeasureConfig,
) -> Result<SaturationResult, SimError> {
    let zero_load = zero_load_latency(g, base)?;
    let latency = base.link_latency;
    saturation_search_with_specs(
        g,
        base,
        schedule,
        |_, _| LinkSpec::uniform(latency),
        zero_load,
    )
}

/// [`saturation_search`] over heterogeneous links; `zero_load` is the
/// latency-guard baseline, as in [`run_load_point_with_specs`].
///
/// # Errors
///
/// Propagates simulator construction failures.
pub fn saturation_search_with_specs(
    g: &Graph,
    base: &SimConfig,
    schedule: &MeasureConfig,
    spec: impl Fn(RouterId, RouterId) -> LinkSpec + Copy,
    zero_load: f64,
) -> Result<SaturationResult, SimError> {
    saturation_search_batched(schedule.rate_resolution, 1, |rates| {
        rates
            .iter()
            .map(|&rate| {
                let config = SimConfig { injection_rate: rate, ..*base };
                run_load_point_with_specs(g, &config, schedule, spec, zero_load)
            })
            .collect()
    })
}

/// [`saturation_search`] on a network that suffers the failures in `plan`
/// during every probed load point — the degraded-saturation half of the
/// resilience study. The latency-guard baseline is the healthy zero-load
/// latency (see [`run_load_point_faulted`]).
///
/// # Errors
///
/// Propagates simulator construction failures.
pub fn saturation_search_faulted(
    g: &Graph,
    base: &SimConfig,
    schedule: &MeasureConfig,
    plan: &FaultPlan,
) -> Result<SaturationResult, SimError> {
    let zero_load = zero_load_latency(g, base)?;
    let latency = base.link_latency;
    saturation_search_batched(schedule.rate_resolution, 1, |rates| {
        rates
            .iter()
            .map(|&rate| {
                let config = SimConfig { injection_rate: rate, ..*base };
                run_load_point_inner(
                    g,
                    &config,
                    schedule,
                    |_, _| LinkSpec::uniform(latency),
                    zero_load,
                    Some(plan),
                    None,
                )
            })
            .collect()
    })
}

/// The `fanout` equally spaced probe rates of one search round inside the
/// open bracket `(lo, hi)` — all independent simulation jobs.
#[must_use]
pub fn round_rates(lo: f64, hi: f64, fanout: usize) -> Vec<f64> {
    let k = fanout.max(1);
    (1..=k).map(|i| lo + (hi - lo) * i as f64 / (k + 1) as f64).collect()
}

/// The one knee-bracketing algorithm behind every saturation search.
///
/// Each round asks `run_points` to simulate [`round_rates`] — independent
/// jobs the caller may run serially or on any number of workers — then
/// narrows the bracket around the knee. With `fanout = 1` the probe
/// sequence is the classic bisection ([`saturation_search`] is exactly
/// this); larger fanouts trade ~2× total simulation work for fanout-way
/// parallelism inside a single search. The outcome depends only on the
/// returned points, never on how the batch was scheduled.
///
/// `run_points` must return one [`LoadPointResult`] per requested rate,
/// in order.
///
/// # Errors
///
/// Propagates failures from `run_points`.
///
/// # Panics
///
/// Panics if `run_points` returns the wrong number of points.
pub fn saturation_search_batched<E, F>(
    resolution: f64,
    fanout: usize,
    mut run_points: F,
) -> Result<SaturationResult, E>
where
    F: FnMut(&[f64]) -> Result<Vec<LoadPointResult>, E>,
{
    let result = |point: LoadPointResult| SaturationResult {
        rate: point.offered,
        throughput: point.stats.accepted_flits_per_cycle_per_endpoint,
        latency_at_saturation: point.stats.avg_packet_latency,
    };

    // The full-capacity point first: some tiny networks never saturate.
    let top = run_points(&[1.0])?.pop().expect("one point per rate");
    if !top.saturated {
        return Ok(SaturationResult { rate: 1.0, ..result(top) });
    }

    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    let mut best: Option<LoadPointResult> = None;
    while hi - lo > resolution {
        let rates = round_rates(lo, hi, fanout);
        let points = run_points(&rates)?;
        assert_eq!(points.len(), rates.len(), "one point per requested rate");
        // Highest stable prefix: the knee lies between the last stable
        // rate and the first saturated one.
        let stable = points.iter().take_while(|p| !p.saturated).count();
        if stable > 0 {
            lo = rates[stable - 1];
            best = points.get(stable - 1).copied();
        }
        if stable < rates.len() {
            hi = rates[stable];
        }
    }
    match best {
        Some(point) => Ok(result(point)),
        // Saturated even at the smallest probed rate; report the boundary.
        None => {
            let rate = lo.max(resolution / 2.0);
            let point = run_points(&[rate])?.pop().expect("one point per rate");
            Ok(result(point))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_graph::gen;

    fn config(rate: f64) -> SimConfig {
        SimConfig {
            vcs: 4,
            buffer_depth: 4,
            injection_rate: rate,
            seed: 7,
            ..SimConfig::paper_defaults()
        }
    }

    #[test]
    fn zero_load_matches_low_rate_simulation() {
        let g = gen::grid(2, 2);
        let cfg = config(0.01);
        let analytic = zero_load_latency(&g, &cfg).unwrap();
        let mut sim = Simulator::new(&g, cfg).unwrap();
        sim.run(1_000);
        sim.open_measurement_window();
        sim.run(30_000);
        let measured = sim.stats().avg_packet_latency.expect("packets measured");
        let rel_err = (measured - analytic).abs() / analytic;
        assert!(
            rel_err < 0.08,
            "analytic {analytic:.1} vs measured {measured:.1} (err {rel_err:.3})"
        );
    }

    #[test]
    fn zero_load_errors_on_tiny_network() {
        let g = chiplet_graph::GraphBuilder::new(1).build();
        let cfg = SimConfig { endpoints_per_router: 1, ..config(0.1) };
        assert!(zero_load_latency(&g, &cfg).is_err());
    }

    #[test]
    fn light_load_is_stable() {
        let g = gen::grid(3, 3);
        let point = run_load_point(&g, &config(0.03), &MeasureConfig::quick()).unwrap();
        assert!(!point.saturated, "3% load must not saturate a 3x3 grid");
        assert!(!point.deadlock);
    }

    #[test]
    fn absurd_load_saturates() {
        let g = gen::grid(3, 3);
        let point = run_load_point(&g, &config(1.0), &MeasureConfig::quick()).unwrap();
        assert!(point.saturated, "100% load must saturate");
    }

    #[test]
    fn simulated_zero_load_matches_analytic_for_uniform_links() {
        let g = gen::grid(2, 2);
        let cfg = config(0.01);
        let analytic = zero_load_latency(&g, &cfg).unwrap();
        let latency = cfg.link_latency;
        let simulated =
            simulated_zero_load_latency(&g, &cfg, |_, _| LinkSpec::uniform(latency)).unwrap();
        let rel = (simulated - analytic).abs() / analytic;
        assert!(rel < 0.08, "analytic {analytic:.1} vs simulated {simulated:.1}");
    }

    #[test]
    fn heterogeneous_saturation_search_runs() {
        // A 2x2 grid where one link direction is serialized: the search
        // completes and finds a lower knee than the uniform network.
        let g = gen::grid(2, 2);
        let base = config(0.0);
        let spec = |u: usize, v: usize| {
            if (u, v) == (0, 1) || (u, v) == (1, 0) {
                LinkSpec { latency: 27, interval: 4 }
            } else {
                LinkSpec::uniform(27)
            }
        };
        let zero_load = simulated_zero_load_latency(&g, &base, spec).unwrap();
        let hetero =
            saturation_search_with_specs(&g, &base, &MeasureConfig::quick(), spec, zero_load)
                .unwrap();
        let uniform = saturation_search(&g, &base, &MeasureConfig::quick()).unwrap();
        assert!(hetero.rate > 0.0);
        assert!(
            hetero.throughput <= uniform.throughput + 0.02,
            "hetero {} vs uniform {}",
            hetero.throughput,
            uniform.throughput
        );
    }

    #[test]
    fn sharded_schedule_matches_serial_load_point() {
        let g = gen::grid(3, 3);
        let schedule = MeasureConfig::quick();
        let serial = run_load_point(&g, &config(0.1), &schedule).unwrap();
        let sharded =
            run_load_point(&g, &config(0.1), &MeasureConfig { shards: 4, ..schedule }).unwrap();
        assert_eq!(serial, sharded, "sharded load point must be bit-identical");
    }

    #[test]
    fn saturation_search_brackets_the_knee() {
        let g = gen::grid(3, 3);
        let result = saturation_search(&g, &config(0.0), &MeasureConfig::quick()).unwrap();
        assert!(result.rate > 0.0 && result.rate < 1.0, "rate {}", result.rate);
        assert!(result.throughput > 0.0);
        // Accepted throughput at the stable point tracks the offered rate.
        assert!(
            result.throughput >= 0.8 * result.rate,
            "throughput {} vs rate {}",
            result.throughput,
            result.rate
        );
    }
}
