//! Windowed observability probes.
//!
//! A [`Probe`] attached to a [`crate::Simulator`] (or a
//! [`crate::ShardedSimulator`]) samples a fixed-capacity time-series of
//! [`WindowSample`]s: per-window throughput and latency counters plus
//! instantaneous occupancy gauges and the router stall-cause tallies of
//! [`crate::router::StallCounters`].
//!
//! # Zero-perturbation contract
//!
//! Probes observe, never perturb:
//!
//! * every buffer is preallocated at attach time and recording stops when
//!   the capacity is reached, so the steady-state hot path stays
//!   allocation-free (the counting-allocator tests run probe-attached);
//! * samples read counters the simulator already maintains — nothing a
//!   probe records feeds back into simulation decisions, so
//!   [`crate::NetworkStats`] and every golden suite are bit-identical
//!   whether a probe is attached or not;
//! * sampling only clamps idle fast-forward to the next window boundary —
//!   the extra cycles stepped are idle by construction and change no
//!   state.
//!
//! Samples are integer-only deltas and gauges; derived floats (average
//! latency, utilization) are computed at export time, keeping per-shard
//! series mergeable in any order without float drift.

use serde::{Deserialize, Serialize};

use crate::router::StallCounters;
use crate::sim::WindowSums;

/// Attach-time probe configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct Probe {
    /// Window length in cycles between samples.
    pub sample_every: u64,
    /// Maximum number of windows recorded; sampling stops (and idle
    /// fast-forward is no longer clamped) once the series is full.
    pub capacity: usize,
}

impl Probe {
    /// A probe sampling every `sample_every` cycles into a series of at
    /// most `capacity` windows.
    ///
    /// # Panics
    ///
    /// Panics if `sample_every` is 0 or `capacity` is 0.
    #[must_use]
    pub fn new(sample_every: u64, capacity: usize) -> Self {
        assert!(sample_every > 0, "sample_every must be at least 1 cycle");
        assert!(capacity > 0, "a probe needs capacity for at least one window");
        Self { sample_every, capacity }
    }

    /// Capacity covering `cycles` simulated cycles at this probe's rate
    /// (rounded up, minimum 1).
    #[must_use]
    pub fn capacity_for(sample_every: u64, cycles: u64) -> usize {
        usize::try_from(cycles.div_ceil(sample_every.max(1)).max(1)).unwrap_or(usize::MAX)
    }
}

/// One sampled window: integer deltas over `[start_cycle, end_cycle)`
/// plus instantaneous gauges read at `end_cycle`.
///
/// All fields are integers so per-shard samples merge exactly (see
/// [`WindowSample::absorb`]); ratios and averages are derived lazily.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct WindowSample {
    /// Sequential window index (merge key across shards).
    pub window: u64,
    /// First cycle covered by this window's deltas.
    pub start_cycle: u64,
    /// Cycle the sample was taken at (exclusive end of the deltas).
    pub end_cycle: u64,
    /// Packets offered by sources in the window.
    pub offered_packets: u64,
    /// Packets fully accepted into source queues in the window.
    pub accepted_packets: u64,
    /// Flits delivered to destinations in the window.
    pub received_flits: u64,
    /// Packets (tail flits) delivered in the window.
    pub received_packets: u64,
    /// Packets whose latency was measured in the window.
    pub measured_packets: u64,
    /// Sum of measured packet latencies (cycles) in the window.
    pub latency_sum: u64,
    /// Gauge: flits inside the network at `end_cycle` (for a shard, the
    /// flits inside its owned region).
    pub flits_in_network: u64,
    /// Gauge: flits buffered across all router input VCs at `end_cycle`.
    pub buffered_flits: u64,
    /// Router stall-cause deltas over the window.
    pub stalls: StallCounters,
    /// Flits that traversed any router-to-router link in the window.
    pub link_flits: u64,
    /// Maximum per-link flit count over the window (a congestion peak:
    /// `max_link_flits * interval / window` approaches 1 on a saturated
    /// wire).
    pub max_link_flits: u64,
}

impl WindowSample {
    /// Average packet latency over the window, or `None` if nothing was
    /// measured.
    #[must_use]
    pub fn avg_latency(&self) -> Option<f64> {
        (self.measured_packets > 0)
            .then(|| self.latency_sum as f64 / self.measured_packets as f64)
    }

    /// Accepted-throughput gauge: received flits per cycle per endpoint
    /// (`num_endpoints` is the whole network's endpoint count).
    #[must_use]
    pub fn received_flits_per_cycle_per_endpoint(&self, num_endpoints: usize) -> f64 {
        let cycles = self.end_cycle.saturating_sub(self.start_cycle).max(1);
        self.received_flits as f64 / (cycles as f64 * num_endpoints as f64)
    }

    /// Merges another shard's sample for the same window into this one:
    /// counters and gauges sum, `max_link_flits` takes the max.
    ///
    /// # Panics
    ///
    /// Debug-asserts that both samples cover the same window.
    pub fn absorb(&mut self, other: &WindowSample) {
        debug_assert_eq!(self.window, other.window, "merging different windows");
        debug_assert_eq!(self.start_cycle, other.start_cycle);
        debug_assert_eq!(self.end_cycle, other.end_cycle);
        self.offered_packets += other.offered_packets;
        self.accepted_packets += other.accepted_packets;
        self.received_flits += other.received_flits;
        self.received_packets += other.received_packets;
        self.measured_packets += other.measured_packets;
        self.latency_sum += other.latency_sum;
        self.flits_in_network += other.flits_in_network;
        self.buffered_flits += other.buffered_flits;
        self.stalls.absorb(other.stalls);
        self.link_flits += other.link_flits;
        self.max_link_flits = self.max_link_flits.max(other.max_link_flits);
    }
}

/// Live probe state boxed behind `Option` on the simulator (`None` — the
/// default — costs one branch per `run` iteration and no cache space).
///
/// Everything here is preallocated by [`crate::Simulator::attach_probe`];
/// sampling pushes into spare `Vec` capacity and updates `prev_*`
/// snapshots in place, so the hot path never allocates.
#[derive(Debug)]
pub(crate) struct ObsState {
    pub(crate) sample_every: u64,
    /// Absolute cycle of the next sample; `u64::MAX` once full.
    pub(crate) next_sample: u64,
    /// The recorded series (len < capacity ⇒ still recording).
    pub(crate) windows: Vec<WindowSample>,
    /// Cycle the previous sample was taken at (window start for the next).
    pub(crate) last_sample_cycle: u64,
    /// Endpoint-counter snapshot at the previous sample.
    pub(crate) prev: WindowSums,
    /// Stall-counter snapshot at the previous sample.
    pub(crate) prev_stalls: StallCounters,
    /// Per-link flit-count snapshot at the previous sample (updated in
    /// place while diffing).
    pub(crate) prev_links: Vec<u64>,
}

impl ObsState {
    pub(crate) fn new(probe: Probe, now: u64, num_links: usize) -> Self {
        Self {
            sample_every: probe.sample_every,
            // First boundary strictly after the attach cycle, aligned to
            // absolute multiples so serial and sharded runs sample at
            // identical cycles.
            next_sample: (now / probe.sample_every + 1) * probe.sample_every,
            windows: Vec::with_capacity(probe.capacity),
            last_sample_cycle: now,
            prev: WindowSums::default(),
            prev_stalls: StallCounters::default(),
            prev_links: vec![0; num_links],
        }
    }
}

/// Merges per-shard window series (each ascending in `window`) into one,
/// deterministically: samples with the same window index are absorbed in
/// ascending shard order ([`WindowSample::absorb`] — integer sums, so the
/// result is identical however the shards interleaved in wall time).
#[must_use]
pub fn merge_window_series(per_shard: &[&[WindowSample]]) -> Vec<WindowSample> {
    let mut merged: Vec<WindowSample> = Vec::new();
    for series in per_shard {
        for s in *series {
            match merged.binary_search_by_key(&s.window, |m| m.window) {
                Ok(i) => merged[i].absorb(s),
                Err(i) => merged.insert(i, *s),
            }
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_validation() {
        let p = Probe::new(100, 8);
        assert_eq!(p.sample_every, 100);
        assert_eq!(Probe::capacity_for(100, 1_000), 10);
        assert_eq!(Probe::capacity_for(100, 1_001), 11);
        assert_eq!(Probe::capacity_for(100, 0), 1);
    }

    #[test]
    #[should_panic(expected = "sample_every")]
    fn zero_window_rejected() {
        let _ = Probe::new(0, 8);
    }

    #[test]
    fn absorb_sums_counters_and_maxes_peaks() {
        let mut a = WindowSample {
            window: 3,
            start_cycle: 300,
            end_cycle: 400,
            received_flits: 10,
            max_link_flits: 4,
            ..WindowSample::default()
        };
        let b = WindowSample { received_flits: 5, max_link_flits: 9, ..a };
        a.absorb(&b);
        assert_eq!(a.received_flits, 15);
        assert_eq!(a.max_link_flits, 9);
        assert_eq!(a.window, 3);
    }

    #[test]
    fn merge_is_keyed_on_window_index() {
        let s = |w: u64, flits: u64| WindowSample {
            window: w,
            start_cycle: w * 100,
            end_cycle: (w + 1) * 100,
            received_flits: flits,
            ..WindowSample::default()
        };
        let shard0 = [s(0, 1), s(1, 2)];
        let shard1 = [s(0, 10), s(1, 20), s(2, 30)];
        let merged = merge_window_series(&[&shard0, &shard1]);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].received_flits, 11);
        assert_eq!(merged[1].received_flits, 22);
        assert_eq!(merged[2].received_flits, 30);
        assert!(merged.windows(2).all(|w| w[0].window < w[1].window));
    }
}
