//! Pluggable router microarchitectures.
//!
//! The paper fixes a single router design (§VI-A); this module turns the
//! four knobs that distinguish real NoC routers into a configuration
//! axis, [`RouterModel`]:
//!
//! * **VC allocation policy** ([`VcAllocPolicy`]) — how a head flit picks
//!   its output virtual channel: the paper's credit-greedy round-robin,
//!   a seeded uniform-random pick, or occupancy-aware "least-loaded"
//!   port selection.
//! * **Output arbitration policy** ([`OutputArbPolicy`]) — how an output
//!   port breaks ties between competing inputs: round-robin, age-based
//!   oldest-first, or in-transit-priority (network inputs beat local
//!   injection).
//! * **Bubble flow control** on the escape VC — a packet may only
//!   *enter* the escape network when its first escape buffer holds ≥ 2
//!   free slots, so one slot always stays free as a deadlock-breaking
//!   bubble and escape entry never fills the ring solid.
//! * **Crossbar pipeline depth** — extra cycles between switch
//!   allocation and link traversal, modelling deeper-pipelined (higher
//!   frequency, higher latency) switch fabrics.
//!
//! Policies dispatch through plain enum `match`es on the hot path — no
//! trait objects, no per-cycle allocation — and the default model is
//! bit-identical to the pre-axis router, which the golden fixtures pin.
//! [`RouterModelKind`] names the configurations studies sweep; its codes
//! are append-only because they fold into job seeds (see `xp::grid`).

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// How a head flit picks its output virtual channel during VC
/// allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum VcAllocPolicy {
    /// The paper's allocator: among allocatable VCs (and, under adaptive
    /// routing, minimal ports) take the one with the most downstream
    /// credits, first-found winning ties.
    #[default]
    RoundRobin,
    /// Uniform-random pick among the allocatable candidates, drawn from
    /// a per-router deterministic stream seeded by the run seed.
    Random,
    /// Occupancy-aware: under adaptive routing, pick the minimal port
    /// with the most *total* free credits across its adaptive VCs (the
    /// least-loaded direction), then the best VC within it.
    LeastLoaded,
}

impl VcAllocPolicy {
    /// Every policy, in code order.
    pub const ALL: [VcAllocPolicy; 3] =
        [VcAllocPolicy::RoundRobin, VcAllocPolicy::Random, VcAllocPolicy::LeastLoaded];

    /// Canonical lower-case name, as parsed by [`FromStr`].
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            VcAllocPolicy::RoundRobin => "roundrobin",
            VcAllocPolicy::Random => "random",
            VcAllocPolicy::LeastLoaded => "leastloaded",
        }
    }
}

impl fmt::Display for VcAllocPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for VcAllocPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "roundrobin" => Ok(VcAllocPolicy::RoundRobin),
            "random" => Ok(VcAllocPolicy::Random),
            "leastloaded" => Ok(VcAllocPolicy::LeastLoaded),
            other => Err(format!(
                "unknown vc_alloc {other:?} (expected roundrobin|random|leastloaded)"
            )),
        }
    }
}

/// How an output port breaks ties between competing input nominees
/// during switch allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum OutputArbPolicy {
    /// The paper's arbiter: per-output-port round-robin over input
    /// ports.
    #[default]
    RoundRobin,
    /// Age-based: the nominee whose head flit was created earliest wins
    /// (lower input port breaks ties) — bounds worst-case packet age.
    OldestFirst,
    /// In-transit priority: nominees arriving from network ports beat
    /// local injection, round-robin within each class — drains the
    /// network before admitting new traffic.
    TransitFirst,
}

impl OutputArbPolicy {
    /// Every policy, in code order.
    pub const ALL: [OutputArbPolicy; 3] = [
        OutputArbPolicy::RoundRobin,
        OutputArbPolicy::OldestFirst,
        OutputArbPolicy::TransitFirst,
    ];

    /// Canonical lower-case name, as parsed by [`FromStr`].
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            OutputArbPolicy::RoundRobin => "roundrobin",
            OutputArbPolicy::OldestFirst => "oldest",
            OutputArbPolicy::TransitFirst => "transit",
        }
    }
}

impl fmt::Display for OutputArbPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for OutputArbPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "roundrobin" => Ok(OutputArbPolicy::RoundRobin),
            "oldest" => Ok(OutputArbPolicy::OldestFirst),
            "transit" => Ok(OutputArbPolicy::TransitFirst),
            other => Err(format!(
                "unknown output_arb {other:?} (expected roundrobin|oldest|transit)"
            )),
        }
    }
}

/// A complete router-microarchitecture configuration.
///
/// `Default` reproduces the paper's router exactly: round-robin VC
/// allocation, round-robin output arbitration, no bubble restriction,
/// no extra crossbar stages. Every golden fixture pins that the default
/// model's output is byte-identical to the pre-axis simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct RouterModel {
    /// VC allocation policy.
    pub vc_alloc: VcAllocPolicy,
    /// Output arbitration policy.
    pub output_arb: OutputArbPolicy,
    /// Bubble flow control on the escape VC: a packet may only *commit*
    /// to the escape network when the escape buffer it would enter has
    /// at least 2 free slots. Packets already on the escape network
    /// still advance on a single credit, so the escape ring always keeps
    /// one bubble and drains. Requires `buffer_depth >= 2`.
    pub bubble_escape: bool,
    /// Extra pipeline cycles between switch allocation and link
    /// traversal, added on top of the base `router_latency`.
    pub crossbar_depth: u64,
}

impl RouterModel {
    /// `true` when this is the default (paper) model.
    #[must_use]
    pub fn is_default(&self) -> bool {
        *self == RouterModel::default()
    }
}

/// Named router-model configurations — the points studies sweep on the
/// router axis.
///
/// The [`code`](RouterModelKind::code) of each kind folds into job seeds
/// (see `xp::grid`), so the list is **append-only**: new kinds take the
/// next code, existing codes never move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouterModelKind {
    /// The paper's router (the default model).
    Baseline,
    /// Uniform-random VC allocation.
    RandomVc,
    /// Occupancy-aware least-loaded port selection.
    LeastLoaded,
    /// Age-based oldest-first output arbitration.
    OldestFirst,
    /// In-transit-priority output arbitration.
    TransitFirst,
    /// Bubble flow control on the escape VC.
    Bubble,
    /// Two extra crossbar pipeline stages.
    DeepCrossbar,
    /// The "everything on" adaptive configuration: least-loaded VC
    /// allocation + oldest-first arbitration + escape bubble.
    Fortified,
}

impl RouterModelKind {
    /// Every kind, in code order.
    pub const ALL: [RouterModelKind; 8] = [
        RouterModelKind::Baseline,
        RouterModelKind::RandomVc,
        RouterModelKind::LeastLoaded,
        RouterModelKind::OldestFirst,
        RouterModelKind::TransitFirst,
        RouterModelKind::Bubble,
        RouterModelKind::DeepCrossbar,
        RouterModelKind::Fortified,
    ];

    /// Canonical lower-case name, as parsed by [`FromStr`] and accepted
    /// by spec files and `--routers`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RouterModelKind::Baseline => "baseline",
            RouterModelKind::RandomVc => "randomvc",
            RouterModelKind::LeastLoaded => "leastloaded",
            RouterModelKind::OldestFirst => "oldest",
            RouterModelKind::TransitFirst => "transit",
            RouterModelKind::Bubble => "bubble",
            RouterModelKind::DeepCrossbar => "deepxbar",
            RouterModelKind::Fortified => "fortified",
        }
    }

    /// Append-only seed-coordinate code (see `xp::grid`).
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            RouterModelKind::Baseline => 0,
            RouterModelKind::RandomVc => 1,
            RouterModelKind::LeastLoaded => 2,
            RouterModelKind::OldestFirst => 3,
            RouterModelKind::TransitFirst => 4,
            RouterModelKind::Bubble => 5,
            RouterModelKind::DeepCrossbar => 6,
            RouterModelKind::Fortified => 7,
        }
    }

    /// The concrete model this kind names.
    #[must_use]
    pub fn model(self) -> RouterModel {
        let base = RouterModel::default();
        match self {
            RouterModelKind::Baseline => base,
            RouterModelKind::RandomVc => {
                RouterModel { vc_alloc: VcAllocPolicy::Random, ..base }
            }
            RouterModelKind::LeastLoaded => {
                RouterModel { vc_alloc: VcAllocPolicy::LeastLoaded, ..base }
            }
            RouterModelKind::OldestFirst => {
                RouterModel { output_arb: OutputArbPolicy::OldestFirst, ..base }
            }
            RouterModelKind::TransitFirst => {
                RouterModel { output_arb: OutputArbPolicy::TransitFirst, ..base }
            }
            RouterModelKind::Bubble => RouterModel { bubble_escape: true, ..base },
            RouterModelKind::DeepCrossbar => RouterModel { crossbar_depth: 2, ..base },
            RouterModelKind::Fortified => RouterModel {
                vc_alloc: VcAllocPolicy::LeastLoaded,
                output_arb: OutputArbPolicy::OldestFirst,
                bubble_escape: true,
                crossbar_depth: 0,
            },
        }
    }
}

impl fmt::Display for RouterModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for RouterModelKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        RouterModelKind::ALL.into_iter().find(|k| k.name() == s).ok_or_else(|| {
            let names: Vec<&str> = RouterModelKind::ALL.iter().map(|k| k.name()).collect();
            format!("unknown router model {s:?} (expected {})", names.join("|"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_the_paper_router() {
        let m = RouterModel::default();
        assert_eq!(m.vc_alloc, VcAllocPolicy::RoundRobin);
        assert_eq!(m.output_arb, OutputArbPolicy::RoundRobin);
        assert!(!m.bubble_escape);
        assert_eq!(m.crossbar_depth, 0);
        assert!(m.is_default());
        assert_eq!(RouterModelKind::Baseline.model(), m);
    }

    #[test]
    fn kind_codes_are_append_only_and_distinct() {
        // Codes fold into job seeds: they must stay exactly these values.
        let codes: Vec<u64> = RouterModelKind::ALL.iter().map(|k| k.code()).collect();
        assert_eq!(codes, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn every_kind_names_a_distinct_model() {
        for (i, a) in RouterModelKind::ALL.iter().enumerate() {
            for b in &RouterModelKind::ALL[i + 1..] {
                assert_ne!(a.model(), b.model(), "{a} and {b} collapse to one model");
            }
        }
    }

    #[test]
    fn names_round_trip() {
        for kind in RouterModelKind::ALL {
            assert_eq!(kind.name().parse::<RouterModelKind>().unwrap(), kind);
            assert_eq!(kind.to_string().parse::<RouterModelKind>().unwrap(), kind);
        }
        for p in VcAllocPolicy::ALL {
            assert_eq!(p.name().parse::<VcAllocPolicy>().unwrap(), p);
        }
        for p in OutputArbPolicy::ALL {
            assert_eq!(p.name().parse::<OutputArbPolicy>().unwrap(), p);
        }
        assert!("escape".parse::<RouterModelKind>().is_err());
        assert!("rr".parse::<VcAllocPolicy>().is_err());
        assert!("fifo".parse::<OutputArbPolicy>().is_err());
    }
}
