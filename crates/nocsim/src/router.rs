//! Input-queued virtual-channel router.
//!
//! Microarchitecture (per §VI-A of the paper, matching the BookSim2
//! configuration used there):
//!
//! * per-input-port virtual channels with fixed-depth flit buffers,
//! * credit-based flow control toward every downstream buffer,
//! * per-packet VC allocation (wormhole switching: the head flit routes and
//!   allocates; body flits inherit the allocation; the tail releases it),
//! * separable input-first switch allocation with round-robin arbiters,
//! * a configurable pipeline latency applied to every traversing flit.
//!
//! The router never drops flits; credits make buffer overflow impossible and
//! an assertion enforces it.

use crate::channel::Credit;
use crate::flit::{Flit, PacketId, RouterId, VcId};
use crate::rmodel::{OutputArbPolicy, RouterModel, VcAllocPolicy};
use crate::routing::{RoutingKind, RoutingTables};

/// Static router parameters shared by the whole network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterParams {
    /// Virtual channels per port.
    pub vcs: usize,
    /// Buffer depth (flits) per virtual channel.
    pub buffer_depth: usize,
    /// Pipeline latency in cycles added to every flit that traverses the
    /// router (3 in the paper's configuration, plus the model's crossbar
    /// depth).
    pub pipeline_latency: u64,
    /// Microarchitecture policies (see [`crate::rmodel`]).
    pub model: RouterModel,
    /// Run seed; each router derives its own deterministic policy-RNG
    /// stream from it (only the [`VcAllocPolicy::Random`] model draws).
    pub seed: u64,
}

/// Where an output port leads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortTarget {
    /// A link toward another router.
    Router(RouterId),
    /// An ejection link toward a locally attached endpoint.
    Endpoint(usize),
}

/// A flit leaving the router this cycle through `out_port`.
#[derive(Debug, Clone, Copy)]
pub struct SentFlit {
    /// Output port the flit leaves through.
    pub out_port: usize,
    /// The flit itself (with its next-hop VC already assigned).
    pub flit: Flit,
}

/// A credit to return upstream through `in_port`.
#[derive(Debug, Clone, Copy)]
pub struct SentCredit {
    /// Input port whose upstream sender receives the credit.
    pub in_port: usize,
    /// The credit (carries the freed VC).
    pub credit: Credit,
}

/// Per-input-VC state.
#[derive(Debug, Clone)]
struct InputVc {
    buffer: std::collections::VecDeque<Flit>,
    /// Output (port, vc) held by the packet currently at the head.
    bound: Option<(usize, VcId)>,
    /// Id of the packet holding the binding. Kept alongside `bound` so
    /// fault handling can identify the owning packet even when the VC is
    /// momentarily empty (all its flits already forwarded downstream).
    bound_packet: Option<PacketId>,
    /// The bound packet committed to the escape network at this hop.
    escape_committed: bool,
}

impl InputVc {
    fn new(buffer_depth: usize) -> Self {
        // Depth is a hard bound (credits enforce it), so reserving it up
        // front makes the receive/traverse path allocation-free.
        Self {
            buffer: std::collections::VecDeque::with_capacity(buffer_depth),
            bound: None,
            bound_packet: None,
            escape_committed: false,
        }
    }
}

/// Per-output-VC state.
#[derive(Debug, Clone)]
struct OutputVc {
    credits: usize,
    /// Input (port, vc) currently holding this output VC, if any.
    owner: Option<(usize, VcId)>,
}

/// One row of [`Router::occupancy_report`]: `(in_port, vc,
/// buffered_flits, bound_output, escape_committed, head_dest)`.
pub type OccupancyEntry = (usize, VcId, usize, Option<(usize, VcId)>, bool, Option<usize>);

/// Routing context the simulator passes into the allocation phases.
#[derive(Debug, Clone, Copy)]
pub struct RouteContext<'a> {
    /// Shared routing tables.
    pub tables: &'a RoutingTables,
    /// Endpoints attached to every router.
    pub endpoints_per_router: usize,
}

impl RouteContext<'_> {
    /// Router that hosts endpoint `e`.
    #[must_use]
    pub fn router_of(&self, e: usize) -> RouterId {
        e / self.endpoints_per_router
    }
}

/// A switch-allocation nominee: input (port, vc) bound to output
/// (port, vc), plus the head flit's creation cycle so age-based output
/// arbitration can rank nominees without touching the buffers again.
#[derive(Debug, Clone, Copy)]
struct Nominee {
    in_port: u32,
    vc: u32,
    out_port: u32,
    out_vc: u32,
    age: u64,
}

/// Cumulative stall-cause counters, maintained since construction.
///
/// Diagnostic only: probes read them, nothing feeds them back into
/// [`crate::NetworkStats`], so attaching a probe cannot perturb reported
/// results. Each counter is a plain integer increment on a path the
/// allocator already walks, keeping the hot path allocation-free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct StallCounters {
    /// Head flits that found no allocatable output VC during VC
    /// allocation (every candidate port's VCs owned or credit-less).
    pub vc_starved: u64,
    /// Bound input VCs with buffered flits passed over during switch
    /// allocation because their bound output VC held zero credits.
    pub credit_starved: u64,
    /// Switch-allocation nominees that lost output-port arbitration to
    /// another input this cycle.
    pub switch_lost: u64,
}

impl StallCounters {
    /// Field-wise sum (used to aggregate across routers and shards).
    pub fn absorb(&mut self, other: Self) {
        self.vc_starved += other.vc_starved;
        self.credit_starved += other.credit_starved;
        self.switch_lost += other.switch_lost;
    }
}

/// An input-queued VC router.
///
/// Input and output VC state is stored flat (`port * vcs + vc`) for cache
/// locality, and two incremental counters let the allocation phases skip
/// work that cannot do anything: `unbound_heads` (input VCs whose head
/// flit awaits an output binding — VC allocation exits immediately at
/// zero) and `sa_candidates[port]` (bound input VCs with buffered flits —
/// switch allocation skips ports at zero).
#[derive(Debug, Clone)]
pub struct Router {
    id: RouterId,
    params: RouterParams,
    num_net_ports: usize,
    num_ports: usize,
    inputs: Vec<InputVc>,
    outputs: Vec<OutputVc>,
    /// Round-robin pointers: VA start offset, per-input-port SA VC pointer,
    /// per-output-port SA input pointer.
    va_rr: usize,
    sa_vc_rr: Vec<usize>,
    sa_in_rr: Vec<usize>,
    /// Flits currently buffered across all input VCs (incremental; the
    /// active-set scheduler polls this every cycle).
    buffered: usize,
    /// Input VCs that are non-empty and unbound (head awaiting VC
    /// allocation).
    unbound_heads: usize,
    /// Per input port: bound input VCs holding at least one flit (switch
    /// allocation candidates before the credit check).
    sa_candidates: Vec<u16>,
    /// Switch-allocation scratch (reused every cycle so the steady-state
    /// hot path never allocates).
    nominees: Vec<Nominee>,
    /// Cumulative stall-cause tallies (observability only).
    stalls: StallCounters,
    /// Policy-RNG state (splitmix64); a per-router stream derived from
    /// the run seed. Only [`VcAllocPolicy::Random`] draws from it, and
    /// only while a head awaits allocation, so the draw sequence is a
    /// pure function of router state — identical under event-driven,
    /// reference, and sharded stepping.
    rng: u64,
}

impl Router {
    /// Creates a router with `num_net_ports` network ports followed by
    /// `num_endpoint_ports` injection/ejection ports.
    ///
    /// Output credits start at `buffer_depth` for every output VC (paired
    /// buffers are sized identically network-wide).
    #[must_use]
    pub fn new(
        id: RouterId,
        num_net_ports: usize,
        num_endpoint_ports: usize,
        params: RouterParams,
    ) -> Self {
        let num_ports = num_net_ports + num_endpoint_ports;
        let inputs =
            (0..num_ports * params.vcs).map(|_| InputVc::new(params.buffer_depth)).collect();
        let outputs = (0..num_ports * params.vcs)
            .map(|_| OutputVc { credits: params.buffer_depth, owner: None })
            .collect();
        Self {
            id,
            params,
            num_net_ports,
            num_ports,
            inputs,
            outputs,
            va_rr: 0,
            sa_vc_rr: vec![0; num_ports],
            sa_in_rr: vec![0; num_ports],
            buffered: 0,
            unbound_heads: 0,
            sa_candidates: vec![0; num_ports],
            nominees: Vec::with_capacity(num_ports),
            stalls: StallCounters::default(),
            rng: params.seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// One splitmix64 draw from the router's policy-RNG stream.
    fn next_rand(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Router id.
    #[must_use]
    pub fn id(&self) -> RouterId {
        self.id
    }

    /// Number of network (router-to-router) ports.
    #[must_use]
    pub fn num_net_ports(&self) -> usize {
        self.num_net_ports
    }

    /// Total ports (network + endpoint).
    #[must_use]
    pub fn num_ports(&self) -> usize {
        self.num_ports
    }

    /// Ejection/injection port index for local endpoint slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not a valid local endpoint slot.
    #[must_use]
    pub fn endpoint_port(&self, slot: usize) -> usize {
        let port = self.num_net_ports + slot;
        assert!(port < self.num_ports, "endpoint slot {slot} out of range");
        port
    }

    /// Accepts a flit arriving on `in_port`.
    ///
    /// # Panics
    ///
    /// Panics if the VC buffer would overflow — credits upstream must make
    /// this impossible, so an overflow is a flow-control bug.
    pub fn receive_flit(&mut self, in_port: usize, flit: Flit) {
        let idx = in_port * self.params.vcs + flit.vc;
        assert!(
            self.inputs[idx].buffer.len() < self.params.buffer_depth,
            "router {} port {in_port} vc {} buffer overflow",
            self.id,
            flit.vc
        );
        if self.inputs[idx].buffer.is_empty() {
            if self.inputs[idx].bound.is_some() {
                self.sa_candidates[in_port] += 1;
            } else {
                self.unbound_heads += 1;
            }
        }
        self.inputs[idx].buffer.push_back(flit);
        self.buffered += 1;
    }

    /// Accepts a credit for `out_port`.
    ///
    /// # Panics
    ///
    /// Panics if credits would exceed the downstream buffer depth.
    pub fn receive_credit(&mut self, out_port: usize, credit: Credit) {
        let out = &mut self.outputs[out_port * self.params.vcs + credit.vc];
        out.credits += 1;
        assert!(
            out.credits <= self.params.buffer_depth,
            "router {} port {out_port} vc {} credit overflow",
            self.id,
            credit.vc
        );
    }

    /// Virtual-channel allocation: every input VC whose head flit is a
    /// packet head without an output binding tries to claim an output VC.
    ///
    /// Exits immediately when no head awaits a binding (the common steady
    /// state for a busy router streaming body flits), and stops scanning
    /// once every waiting head has been visited.
    pub fn allocate_vcs(&mut self, ctx: RouteContext<'_>) {
        if self.unbound_heads == 0 {
            return;
        }
        let total_vcs = self.num_ports * self.params.vcs;
        let start = self.va_rr;
        self.va_rr += 1;
        if self.va_rr >= total_vcs {
            self.va_rr = 0;
        }
        let mut remaining = self.unbound_heads;
        let mut idx = start;
        for _ in 0..total_vcs {
            let state = &self.inputs[idx];
            if state.bound.is_none() {
                if let Some(&head) = state.buffer.front() {
                    // A packet's allocation is only released by its tail
                    // leaving, so this state is a flow-control bug — abort
                    // in release too rather than route corrupt state.
                    assert!(head.is_head, "body flit at head of an unbound VC");
                    remaining -= 1;
                    if let Some((out_port, out_vc, escape)) = self.select_output(ctx, &head) {
                        let (port, vc) = (idx / self.params.vcs, idx % self.params.vcs);
                        self.outputs[out_port * self.params.vcs + out_vc].owner =
                            Some((port, vc));
                        let packet = head.packet;
                        let state = &mut self.inputs[idx];
                        state.bound = Some((out_port, out_vc));
                        state.bound_packet = Some(packet);
                        state.escape_committed = escape;
                        self.unbound_heads -= 1;
                        self.sa_candidates[port] += 1;
                    } else {
                        self.stalls.vc_starved += 1;
                    }
                    if remaining == 0 {
                        break;
                    }
                }
            }
            idx += 1;
            if idx == total_vcs {
                idx = 0;
            }
        }
    }

    /// Chooses a free output (port, vc) for a head flit, or `None` to stall.
    /// Returns `(port, vc, escape_committed)`.
    ///
    /// `&mut self` only for the policy-RNG stream; the default model
    /// performs the exact pre-axis selection and never draws.
    fn select_output(
        &mut self,
        ctx: RouteContext<'_>,
        head: &Flit,
    ) -> Option<(usize, VcId, bool)> {
        let dest_router = ctx.router_of(head.dest);
        // Ejection at the destination router.
        if dest_router == self.id {
            let slot = head.dest % ctx.endpoints_per_router;
            let port = self.num_net_ports + slot;
            let vc = self.pick_free_vc(port, 0)?;
            return Some((port, vc, false));
        }
        let escape_port = ctx.tables.escape_port(self.id, dest_router);
        match (ctx.tables.kind(), head.escape) {
            // Already committed to the escape network: stay on it (VC 0).
            // A single credit suffices even under bubble flow control —
            // the bubble rule restricts *entry*, never progress.
            (RoutingKind::MinimalAdaptiveEscape, true) => {
                self.free_output(escape_port, 0).then_some((escape_port, 0, true))
            }
            (RoutingKind::MinimalAdaptiveEscape, false) => {
                if let Some((port, vc)) = self.pick_adaptive(ctx, dest_router) {
                    return Some((port, vc, false));
                }
                // No adaptive VC free: commit to escape if possible. Under
                // bubble flow control entry needs two free slots so the
                // escape ring always keeps a deadlock-breaking bubble.
                let need = if self.params.model.bubble_escape { 2 } else { 1 };
                let out = &self.outputs[escape_port * self.params.vcs];
                (out.owner.is_none() && out.credits >= need).then_some((escape_port, 0, true))
            }
            (RoutingKind::MinimalDeterministic, _) => {
                let port =
                    usize::from(*ctx.tables.minimal_ports(self.id, dest_router).first()?);
                let vc = self.pick_free_vc(port, 0)?;
                Some((port, vc, false))
            }
            (RoutingKind::UpDownOnly, _) => {
                let vc = self.pick_free_vc(escape_port, 0)?;
                Some((escape_port, vc, false))
            }
        }
    }

    /// Adaptive output selection among the minimal ports' VCs `1..`,
    /// dispatched on the model's VC-allocation policy.
    fn pick_adaptive(
        &mut self,
        ctx: RouteContext<'_>,
        dest_router: usize,
    ) -> Option<(usize, VcId)> {
        let vcs = self.params.vcs;
        match self.params.model.vc_alloc {
            // The paper's allocator: the (port, vc) with the most
            // downstream credits, first-found winning ties.
            VcAllocPolicy::RoundRobin => {
                let mut best: Option<(usize, VcId, usize)> = None;
                for &p in ctx.tables.minimal_ports(self.id, dest_router) {
                    let port = usize::from(p);
                    if let Some(vc) = self.best_free_vc(port, 1) {
                        let credits = self.outputs[port * vcs + vc].credits;
                        if best.is_none_or(|(_, _, c)| credits > c) {
                            best = Some((port, vc, credits));
                        }
                    }
                }
                best.map(|(port, vc, _)| (port, vc))
            }
            // Uniform-random among all allocatable (port, vc) pairs, by
            // reservoir sampling (one draw per candidate — a pure
            // function of router state, so stepping-mode independent).
            VcAllocPolicy::Random => {
                let mut chosen: Option<(usize, VcId)> = None;
                let mut seen: u64 = 0;
                for &p in ctx.tables.minimal_ports(self.id, dest_router) {
                    let port = usize::from(p);
                    for v in 1..vcs {
                        let out = &self.outputs[port * vcs + v];
                        if out.owner.is_none() && out.credits > 0 {
                            seen += 1;
                            if self.next_rand().is_multiple_of(seen) {
                                chosen = Some((port, v));
                            }
                        }
                    }
                }
                chosen
            }
            // Occupancy-aware: the minimal port with the most total free
            // credits across its adaptive VCs (the least-loaded
            // direction), first-found winning ties; best VC within it.
            VcAllocPolicy::LeastLoaded => {
                let mut best: Option<(usize, usize)> = None;
                for &p in ctx.tables.minimal_ports(self.id, dest_router) {
                    let port = usize::from(p);
                    if self.best_free_vc(port, 1).is_none() {
                        continue;
                    }
                    let free: usize = (1..vcs)
                        .filter(|&v| self.outputs[port * vcs + v].owner.is_none())
                        .map(|v| self.outputs[port * vcs + v].credits)
                        .sum();
                    if best.is_none_or(|(_, f)| free > f) {
                        best = Some((port, free));
                    }
                }
                let (port, _) = best?;
                self.best_free_vc(port, 1).map(|vc| (port, vc))
            }
        }
    }

    /// Policy-dispatched free-VC choice on one port: the default and
    /// least-loaded models take the most-credits VC; the random model
    /// draws uniformly among the allocatable ones.
    fn pick_free_vc(&mut self, port: usize, min_vc: usize) -> Option<VcId> {
        match self.params.model.vc_alloc {
            VcAllocPolicy::RoundRobin | VcAllocPolicy::LeastLoaded => {
                self.best_free_vc(port, min_vc)
            }
            VcAllocPolicy::Random => {
                let base = port * self.params.vcs;
                let mut chosen = None;
                let mut seen: u64 = 0;
                for v in min_vc..self.params.vcs {
                    let out = &self.outputs[base + v];
                    if out.owner.is_none() && out.credits > 0 {
                        seen += 1;
                        if self.next_rand().is_multiple_of(seen) {
                            chosen = Some(v);
                        }
                    }
                }
                chosen
            }
        }
    }

    /// Allocatable output VC on `port` with the most credits, searching
    /// VCs `min_vc..`.
    ///
    /// An output VC is allocatable only when it is unowned **and** holds at
    /// least one credit. Binding a header to a channel whose downstream
    /// buffer is full would anchor the packet to a channel it cannot enter
    /// while `bound.is_some()` suppresses any further allocation — the
    /// header would never again reach the decision point where the escape
    /// VC is offered, voiding Duato's waiting condition. The conservation
    /// property tests caught exactly that: a 4-packet credit cycle over
    /// zero-credit adaptive bindings, deadlocked despite the escape layer.
    fn best_free_vc(&self, port: usize, min_vc: usize) -> Option<VcId> {
        let base = port * self.params.vcs;
        (min_vc..self.params.vcs)
            .filter(|&v| {
                let out = &self.outputs[base + v];
                out.owner.is_none() && out.credits > 0
            })
            .max_by_key(|&v| self.outputs[base + v].credits)
    }

    fn free_output(&self, port: usize, vc: VcId) -> bool {
        let out = &self.outputs[port * self.params.vcs + vc];
        out.owner.is_none() && out.credits > 0
    }

    /// Diagnostic snapshot of every non-empty input VC: `(in_port, vc,
    /// buffered_flits, bound_output, escape_committed, head_dest)`. Used by
    /// [`crate::Simulator::blocked_packet_report`] to explain stalls.
    #[must_use]
    pub fn occupancy_report(&self) -> Vec<OccupancyEntry> {
        let mut out = Vec::new();
        for (idx, state) in self.inputs.iter().enumerate() {
            if state.buffer.is_empty() && state.bound.is_none() {
                continue;
            }
            out.push((
                idx / self.params.vcs,
                idx % self.params.vcs,
                state.buffer.len(),
                state.bound,
                state.escape_committed,
                state.buffer.front().map(|f| f.dest),
            ));
        }
        out
    }

    /// Diagnostic snapshot of owned output VCs: `(out_port, vc, credits,
    /// owner_input)`.
    #[must_use]
    pub fn output_report(&self) -> Vec<(usize, VcId, usize, (usize, VcId))> {
        let mut out = Vec::new();
        for (idx, state) in self.outputs.iter().enumerate() {
            if let Some(owner) = state.owner {
                out.push((idx / self.params.vcs, idx % self.params.vcs, state.credits, owner));
            }
        }
        out
    }

    /// Switch allocation and traversal: up to one flit leaves per output
    /// port (and per input port) per cycle. The flits sent and the credits
    /// to return upstream are appended to the cleared out-params — callers
    /// own (and reuse) those buffers, and the router reuses its own
    /// nomination/grant scratch, so the steady-state hot path is
    /// allocation-free.
    pub fn allocate_switch(&mut self, sent: &mut Vec<SentFlit>, credits: &mut Vec<SentCredit>) {
        self.debug_check_counters();
        sent.clear();
        credits.clear();
        let vcs = self.params.vcs;

        // Phase 1 (input arbitration): each input port nominates one VC —
        // ports without a bound, non-empty VC are skipped outright.
        self.nominees.clear();
        for port in 0..self.num_ports {
            if self.sa_candidates[port] == 0 {
                continue;
            }
            let mut vc = self.sa_vc_rr[port];
            for _ in 0..vcs {
                let ivc = &self.inputs[port * vcs + vc];
                if let Some((out_port, out_vc)) = ivc.bound {
                    if let Some(front) = ivc.buffer.front() {
                        if self.outputs[out_port * vcs + out_vc].credits > 0 {
                            self.nominees.push(Nominee {
                                in_port: port as u32,
                                vc: vc as u32,
                                out_port: out_port as u32,
                                out_vc: out_vc as u32,
                                age: front.created_at,
                            });
                            break;
                        }
                        self.stalls.credit_starved += 1;
                    }
                }
                vc += 1;
                if vc == vcs {
                    vc = 0;
                }
            }
        }

        // Phase 2 (output arbitration) + traversal, per nominated output
        // port: grant the nominee closest to the port's round-robin
        // pointer and move its flit. Only nominated ports are visited —
        // the old all-ports × all-inputs scan did the same grants.
        let mut granted = 0;
        for i in 0..self.nominees.len() {
            let op = self.nominees[i].out_port;
            if self.nominees[..i].iter().any(|n| n.out_port == op) {
                continue; // this output port was already arbitrated
            }
            granted += 1;
            let out_port = op as usize;
            let start = self.sa_in_rr[out_port];
            let p = self.num_ports;
            // Policy-dispatched grant: minimise a per-nominee rank key.
            // Round-robin ranks by distance from the port's pointer;
            // oldest-first by head-flit age (input port breaks ties);
            // transit-first by input class (network beats injection),
            // round-robin within each class.
            let arb = self.params.model.output_arb;
            let net_ports = self.num_net_ports;
            let mut best = ((u64::MAX, usize::MAX), i);
            for (j, n) in self.nominees.iter().enumerate() {
                if n.out_port != op {
                    continue;
                }
                let in_port = n.in_port as usize;
                let rank = (in_port + p - start) % p;
                let key = match arb {
                    OutputArbPolicy::RoundRobin => (rank as u64, in_port),
                    OutputArbPolicy::OldestFirst => (n.age, in_port),
                    OutputArbPolicy::TransitFirst => (u64::from(in_port >= net_ports), rank),
                };
                if key < best.0 {
                    best = (key, j);
                }
            }
            let n = self.nominees[best.1];
            self.sa_in_rr[out_port] = (n.in_port as usize + 1) % p;

            // Traversal: move the granted flit.
            let (in_port, vc) = (n.in_port as usize, n.vc as usize);
            let (out_vc, out_idx) = (n.out_vc as usize, out_port * vcs + n.out_vc as usize);
            let in_idx = in_port * vcs + vc;
            let escape = self.inputs[in_idx].escape_committed;
            let mut flit =
                self.inputs[in_idx].buffer.pop_front().expect("granted VC non-empty");
            self.buffered -= 1;
            self.sa_vc_rr[in_port] = if vc + 1 == vcs { 0 } else { vc + 1 };

            // Rewrite per-hop flit fields.
            let in_vc = flit.vc;
            flit.vc = out_vc;
            flit.escape = escape;
            self.outputs[out_idx].credits -= 1;
            if flit.is_tail {
                self.outputs[out_idx].owner = None;
                self.inputs[in_idx].bound = None;
                self.inputs[in_idx].bound_packet = None;
                self.inputs[in_idx].escape_committed = false;
                self.sa_candidates[in_port] -= 1;
                if !self.inputs[in_idx].buffer.is_empty() {
                    // Wormhole invariant: the flit behind a departed tail
                    // is the next packet's head, now awaiting allocation.
                    self.unbound_heads += 1;
                }
            } else if self.inputs[in_idx].buffer.is_empty() {
                // Bound but starved mid-packet; receive_flit re-arms the
                // candidate count when the next body flit lands.
                self.sa_candidates[in_port] -= 1;
            }
            sent.push(SentFlit { out_port, flit });
            credits.push(SentCredit { in_port, credit: Credit { vc: in_vc } });
        }
        self.stalls.switch_lost += (self.nominees.len() - granted) as u64;
    }

    /// Debug-only audit of the incremental allocation counters against a
    /// full recount.
    fn debug_check_counters(&self) {
        #[cfg(debug_assertions)]
        {
            let vcs = self.params.vcs;
            let heads = self
                .inputs
                .iter()
                .filter(|s| s.bound.is_none() && !s.buffer.is_empty())
                .count();
            debug_assert_eq!(heads, self.unbound_heads, "unbound-head counter out of sync");
            for port in 0..self.num_ports {
                let cands = (0..vcs)
                    .filter(|&v| {
                        let s = &self.inputs[port * vcs + v];
                        s.bound.is_some() && !s.buffer.is_empty()
                    })
                    .count();
                debug_assert_eq!(
                    cands,
                    usize::from(self.sa_candidates[port]),
                    "switch-candidate counter out of sync on port {port}"
                );
            }
        }
    }

    /// Visits every flit buffered in any input VC. Fault handling uses this
    /// to seed the doomed-packet set (e.g. flits inside a dying router, or
    /// flits whose destination just became unreachable).
    pub fn for_each_flit(&self, mut f: impl FnMut(&Flit)) {
        for state in &self.inputs {
            for flit in &state.buffer {
                f(flit);
            }
        }
    }

    /// Visits `(bound_out_port, packet_id, escape_committed)` for every
    /// input VC holding an output binding. A packet severed by a dying link
    /// necessarily holds a binding onto that link's output port at the
    /// router feeding it, so this is how fault handling finds the ids of
    /// packets whose remaining flits are stranded upstream of a failure —
    /// and which packets are committed to the (about to be rebuilt)
    /// escape tree.
    pub fn for_each_bound_packet(&self, mut f: impl FnMut(usize, PacketId, bool)) {
        for state in &self.inputs {
            if let (Some((out_port, _)), Some(packet)) = (state.bound, state.bound_packet) {
                f(out_port, packet, state.escape_committed);
            }
        }
    }

    /// Fault handling: removes every buffered flit whose packet id is
    /// doomed and releases every binding (input side and output owner)
    /// held by a doomed packet, then recounts the incremental allocation
    /// counters from scratch. `removed` is called with `(in_port, flit)`
    /// for each dropped flit so the simulator can return the freed buffer
    /// slot's credit to whoever holds it upstream. Returns the number of
    /// flits removed.
    pub fn purge_doomed(
        &mut self,
        mut is_doomed: impl FnMut(PacketId) -> bool,
        mut removed: impl FnMut(usize, &Flit),
    ) -> usize {
        let vcs = self.params.vcs;
        let mut count = 0;
        for idx in 0..self.inputs.len() {
            let port = idx / vcs;
            let state = &mut self.inputs[idx];
            let before = state.buffer.len();
            state.buffer.retain(|flit| {
                if is_doomed(flit.packet) {
                    removed(port, flit);
                    false
                } else {
                    true
                }
            });
            count += before - state.buffer.len();
            if let Some(packet) = state.bound_packet {
                if is_doomed(packet) {
                    let (out_port, out_vc) = state.bound.expect("bound_packet implies bound");
                    state.bound = None;
                    state.bound_packet = None;
                    state.escape_committed = false;
                    self.outputs[out_port * vcs + out_vc].owner = None;
                }
            }
        }
        self.recount_counters();
        count
    }

    /// Flits currently buffered in input VC `vc` of `port`.
    #[must_use]
    pub fn input_occupancy(&self, port: usize, vc: VcId) -> usize {
        self.inputs[port * self.params.vcs + vc].buffer.len()
    }

    /// Recomputes `buffered`, `unbound_heads` and `sa_candidates` from the
    /// input VC state (the non-debug twin of [`Self::debug_check_counters`],
    /// used after a fault purge invalidates the incremental counts).
    fn recount_counters(&mut self) {
        let vcs = self.params.vcs;
        self.buffered = self.inputs.iter().map(|s| s.buffer.len()).sum();
        self.unbound_heads =
            self.inputs.iter().filter(|s| s.bound.is_none() && !s.buffer.is_empty()).count();
        for port in 0..self.num_ports {
            let cands = (0..vcs)
                .filter(|&v| {
                    let s = &self.inputs[port * vcs + v];
                    s.bound.is_some() && !s.buffer.is_empty()
                })
                .count();
            self.sa_candidates[port] = u16::try_from(cands).expect("candidate count fits u16");
        }
        self.debug_check_counters();
    }

    /// `true` if no flit is buffered in any input VC.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.buffered == 0
    }

    /// Total flits currently buffered (O(1): maintained incrementally on
    /// receive and traversal).
    #[must_use]
    pub fn buffered_flits(&self) -> usize {
        debug_assert_eq!(
            self.buffered,
            self.inputs.iter().map(|vc| vc.buffer.len()).sum::<usize>(),
            "incremental buffered-flit counter out of sync"
        );
        self.buffered
    }

    /// Cumulative stall-cause counters since construction (observability
    /// only; see [`StallCounters`]).
    #[must_use]
    pub fn stall_counters(&self) -> StallCounters {
        self.stalls
    }

    /// `true` while any input VC holds a flit — the router may be able to
    /// make progress and must stay on the simulator's active worklist.
    /// Quiescent routers (no buffered flits) have nothing to nominate in
    /// either allocation phase and are skipped entirely.
    #[must_use]
    pub fn has_buffered(&self) -> bool {
        self.buffered > 0
    }

    /// Pipeline latency applied to traversing flits.
    #[must_use]
    pub fn pipeline_latency(&self) -> u64 {
        self.params.pipeline_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_graph::gen;

    fn params() -> RouterParams {
        RouterParams {
            vcs: 2,
            buffer_depth: 4,
            pipeline_latency: 3,
            model: RouterModel::default(),
            seed: 0xBEEF,
        }
    }

    fn tables(g: &chiplet_graph::Graph, kind: RoutingKind) -> RoutingTables {
        RoutingTables::new(g, kind).expect("valid topology")
    }

    fn head_flit(dest: usize, vc: usize) -> Flit {
        Flit {
            packet: 1,
            index: 0,
            is_head: true,
            is_tail: true,
            dest,
            created_at: 0,
            vc,
            escape: false,
        }
    }

    #[test]
    fn single_flit_packet_traverses() {
        // Path 0-1-2; router 1 has 2 net ports + 1 endpoint port.
        let g = gen::path(3);
        let t = tables(&g, RoutingKind::MinimalDeterministic);
        let ctx = RouteContext { tables: &t, endpoints_per_router: 1 };
        let mut r = Router::new(1, 2, 1, params());

        // Flit destined for endpoint 2 (router 2) arrives on port 0 (from 0).
        r.receive_flit(0, head_flit(2, 0));
        r.allocate_vcs(ctx);
        let (mut sent, mut credits) = (Vec::new(), Vec::new());
        r.allocate_switch(&mut sent, &mut credits);
        assert_eq!(sent.len(), 1);
        // Port 1 is the neighbour list position of router 2 in neighbors(1).
        assert_eq!(sent[0].out_port, 1);
        assert_eq!(credits.len(), 1);
        assert_eq!(credits[0].in_port, 0);
        assert!(r.is_drained());
    }

    #[test]
    fn ejection_at_destination_router() {
        let g = gen::path(3);
        let t = tables(&g, RoutingKind::MinimalDeterministic);
        let ctx = RouteContext { tables: &t, endpoints_per_router: 2 };
        let mut r = Router::new(1, 2, 2, params());

        // Endpoint 3 = router 1, slot 1 -> ejection port 2 + 1 = 3.
        r.receive_flit(0, head_flit(3, 1));
        r.allocate_vcs(ctx);
        let (mut sent, mut credits) = (Vec::new(), Vec::new());
        r.allocate_switch(&mut sent, &mut credits);
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].out_port, 3);
    }

    #[test]
    fn credits_limit_forwarding() {
        let g = gen::path(3);
        let t = tables(&g, RoutingKind::MinimalDeterministic);
        let ctx = RouteContext { tables: &t, endpoints_per_router: 1 };
        let mut r = Router::new(1, 2, 1, params());

        // Drain all credits of the output VCs of port 1.
        let (mut sent, mut credits) = (Vec::new(), Vec::new());
        for _ in 0..4 {
            r.receive_flit(0, head_flit(2, 0));
            r.allocate_vcs(ctx);
            r.allocate_switch(&mut sent, &mut credits);
        }
        // VC 0 and VC 1 of output port 1 now hold 4 fewer credits combined;
        // keep pushing until nothing can move.
        let mut total_sent = 0;
        for _ in 0..8 {
            if r.inputs[0].buffer.len() < 4 {
                r.receive_flit(0, head_flit(2, 0));
            }
            r.allocate_vcs(ctx);
            r.allocate_switch(&mut sent, &mut credits);
            total_sent += sent.len();
        }
        // 2 VCs x 4 credits = 8 flits max through port 1 without credit
        // returns; 4 were sent in the first loop.
        assert_eq!(total_sent, 4);
        // Returning credits unblocks (the head may be bound to either VC, so
        // return one credit per VC).
        r.receive_credit(1, Credit { vc: 0 });
        r.receive_credit(1, Credit { vc: 1 });
        r.allocate_vcs(ctx);
        r.allocate_switch(&mut sent, &mut credits);
        assert_eq!(sent.len(), 1);
    }

    #[test]
    fn one_flit_per_output_port_per_cycle() {
        // Two inputs competing for the same output.
        let g = gen::path(3);
        let t = tables(&g, RoutingKind::MinimalDeterministic);
        let ctx = RouteContext { tables: &t, endpoints_per_router: 1 };
        let mut r = Router::new(1, 2, 1, params());
        // Two different packets on different VCs of port 0, same dest.
        let mut f0 = head_flit(2, 0);
        f0.packet = 10;
        let mut f1 = head_flit(2, 1);
        f1.packet = 11;
        r.receive_flit(0, f0);
        r.receive_flit(0, f1);
        r.allocate_vcs(ctx);
        let (mut sent, mut credits) = (Vec::new(), Vec::new());
        r.allocate_switch(&mut sent, &mut credits);
        assert_eq!(sent.len(), 1, "single input port sends one flit per cycle");
        r.allocate_vcs(ctx);
        r.allocate_switch(&mut sent, &mut credits);
        assert_eq!(sent.len(), 1);
    }

    #[test]
    fn tail_releases_output_vc() {
        let g = gen::path(2);
        let t = tables(&g, RoutingKind::MinimalDeterministic);
        let ctx = RouteContext { tables: &t, endpoints_per_router: 1 };
        let mut r = Router::new(0, 1, 1, params());

        // Two-flit packet destined to endpoint 1 (router 1).
        let mut head = head_flit(1, 0);
        head.is_tail = false;
        let mut tail = head;
        tail.index = 1;
        tail.is_head = false;
        tail.is_tail = true;

        r.receive_flit(1, head); // arrives from local endpoint port
        r.allocate_vcs(ctx);
        let (mut sent, mut credits) = (Vec::new(), Vec::new());
        r.allocate_switch(&mut sent, &mut credits);
        assert_eq!(sent.len(), 1);
        // Output VC still owned between head and tail.
        assert!(r.outputs[sent[0].flit.vc].owner.is_some());
        r.receive_flit(1, tail);
        r.allocate_vcs(ctx);
        r.allocate_switch(&mut sent, &mut credits);
        assert_eq!(sent.len(), 1);
        assert!(r.outputs[sent[0].flit.vc].owner.is_none());
        assert!(r.is_drained());
    }

    #[test]
    #[should_panic(expected = "buffer overflow")]
    fn buffer_overflow_asserts() {
        let mut r = Router::new(0, 1, 1, params());
        for _ in 0..5 {
            r.receive_flit(0, head_flit(1, 0));
        }
    }

    #[test]
    fn adaptive_escape_commitment_sticks() {
        // Cycle topology so escape differs from minimal sometimes.
        let g = gen::cycle(4);
        let t = tables(&g, RoutingKind::MinimalAdaptiveEscape);
        let ctx = RouteContext { tables: &t, endpoints_per_router: 1 };
        let mut r = Router::new(0, 2, 1, params());
        let mut f = head_flit(2, 0);
        f.escape = true; // already committed upstream
        r.receive_flit(2, f);
        r.allocate_vcs(ctx);
        let (mut sent, mut credits) = (Vec::new(), Vec::new());
        r.allocate_switch(&mut sent, &mut credits);
        assert_eq!(sent.len(), 1);
        assert!(sent[0].flit.escape, "escape commitment must persist");
        assert_eq!(sent[0].flit.vc, 0, "escape traffic rides VC 0");
        assert_eq!(sent[0].out_port, t.escape_port(0, 2));
    }

    #[test]
    fn purge_doomed_releases_bindings_and_recounts() {
        let g = gen::path(3);
        let t = tables(&g, RoutingKind::MinimalDeterministic);
        let ctx = RouteContext { tables: &t, endpoints_per_router: 1 };
        let mut r = Router::new(1, 2, 1, params());

        // Packet 10: two flits, head forwarded, body still buffered (binding
        // held). Packet 11: single-flit head queued behind on the same VC.
        let mut head = head_flit(2, 0);
        head.packet = 10;
        head.is_tail = false;
        let mut body = head;
        body.index = 1;
        body.is_head = false;
        body.is_tail = true;
        r.receive_flit(0, head);
        r.allocate_vcs(ctx);
        let (mut sent, mut credits) = (Vec::new(), Vec::new());
        r.allocate_switch(&mut sent, &mut credits);
        assert_eq!(sent.len(), 1, "head forwarded");
        r.receive_flit(0, body);
        let mut queued = head_flit(2, 0);
        queued.packet = 11;
        r.receive_flit(0, queued);

        let mut seen = Vec::new();
        r.for_each_bound_packet(|out_port, packet, _| seen.push((out_port, packet)));
        assert_eq!(seen, [(1, 10)]);

        // Dooming packet 10 removes its body, frees the output VC, and
        // leaves packet 11's head as a fresh unbound head.
        let mut freed = Vec::new();
        assert_eq!(r.purge_doomed(|p| p == 10, |port, flit| freed.push((port, flit.vc))), 1);
        assert_eq!(freed.len(), 1);
        assert_eq!(r.buffered_flits(), 1);
        assert!(r.output_report().is_empty(), "output VC released");
        r.allocate_vcs(ctx);
        r.allocate_switch(&mut sent, &mut credits);
        assert_eq!(sent.len(), 1);
        assert_eq!(sent[0].flit.packet, 11);
        assert!(r.is_drained());
    }

    #[test]
    fn adaptive_prefers_non_escape_vcs() {
        let g = gen::cycle(4);
        let t = tables(&g, RoutingKind::MinimalAdaptiveEscape);
        let ctx = RouteContext { tables: &t, endpoints_per_router: 1 };
        let mut r = Router::new(0, 2, 1, params());
        r.receive_flit(2, head_flit(1, 0));
        r.allocate_vcs(ctx);
        let (mut sent, mut credits) = (Vec::new(), Vec::new());
        r.allocate_switch(&mut sent, &mut credits);
        assert_eq!(sent.len(), 1);
        assert!(!sent[0].flit.escape);
        assert!(sent[0].flit.vc >= 1, "adaptive traffic avoids the escape VC");
    }
}
