//! Routing tables for arbitrary router graphs.
//!
//! BookSim2's `anynet` computes shortest-path tables over an arbitrary
//! topology. We do the same, plus a deadlock-free *escape* table:
//!
//! * **Minimal deterministic** — a single lowest-index shortest-path next hop
//!   per (router, destination). Matches `anynet`; may deadlock on cyclic
//!   topologies under heavy load (kept for the routing ablation).
//! * **Minimal adaptive + escape** (default) — all shortest-path next hops
//!   are candidates on the adaptive VCs (1..V); when none is free the packet
//!   commits to the escape VC (0) routed on a BFS spanning tree (a classical
//!   up*/down* network), which is provably deadlock-free. This lets the
//!   unattended evaluation sweep run at and beyond saturation safely.
//! * **Up/down only** — everything on the spanning tree (baseline for the
//!   ablation).

use chiplet_graph::{bfs, metrics, Graph};
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::flit::RouterId;

/// Routing algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum RoutingKind {
    /// Single deterministic shortest path (BookSim2 `anynet`-style).
    MinimalDeterministic,
    /// Minimal adaptive on VCs ≥ 1 with an up*/down* escape on VC 0.
    #[default]
    MinimalAdaptiveEscape,
    /// Spanning-tree up*/down* routing only.
    UpDownOnly,
}

impl RoutingKind {
    /// Canonical name, as accepted by the [`std::str::FromStr`] parser
    /// and by `--routing` flags / study-spec files: `deterministic`,
    /// `adaptive`, `updown`. Round-trips through `parse`.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            RoutingKind::MinimalDeterministic => "deterministic",
            RoutingKind::MinimalAdaptiveEscape => "adaptive",
            RoutingKind::UpDownOnly => "updown",
        }
    }
}

impl fmt::Display for RoutingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for RoutingKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "deterministic" => Ok(RoutingKind::MinimalDeterministic),
            "adaptive" => Ok(RoutingKind::MinimalAdaptiveEscape),
            "updown" => Ok(RoutingKind::UpDownOnly),
            other => Err(format!(
                "unknown routing {other:?} (expected adaptive|deterministic|updown)"
            )),
        }
    }
}

/// Errors from routing-table construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingError {
    /// The router graph must be connected for any routing to exist.
    DisconnectedTopology,
    /// The router graph has no vertices.
    EmptyTopology,
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingError::DisconnectedTopology => {
                write!(f, "router topology must be connected")
            }
            RoutingError::EmptyTopology => write!(f, "router topology has no routers"),
        }
    }
}

impl std::error::Error for RoutingError {}

/// Precomputed routing tables for one topology.
///
/// Output *ports* index into the sorted neighbour list of each router, which
/// is exactly how the simulator numbers its network ports.
#[derive(Debug, Clone)]
pub struct RoutingTables {
    kind: RoutingKind,
    num_routers: usize,
    /// Row-major `dist[r * n + d]`: hop distance.
    dist: Vec<u32>,
    /// `minimal[r * n + d]`: output ports on minimal paths (sorted).
    minimal: Vec<Vec<u16>>,
    /// `escape[r * n + d]`: output port toward `d` on the spanning tree
    /// (`u16::MAX` for `r == d`).
    escape: Vec<u16>,
}

impl RoutingTables {
    /// Builds tables for `g` under the chosen algorithm.
    ///
    /// # Errors
    ///
    /// * [`RoutingError::EmptyTopology`] for a graph without vertices,
    /// * [`RoutingError::DisconnectedTopology`] if some router pair has no
    ///   path.
    pub fn new(g: &Graph, kind: RoutingKind) -> Result<Self, RoutingError> {
        let n = g.num_vertices();
        if n == 0 {
            return Err(RoutingError::EmptyTopology);
        }
        if !metrics::is_connected(g) {
            return Err(RoutingError::DisconnectedTopology);
        }

        let dist = bfs::all_pairs_distances(g);

        // Minimal next-hop ports: neighbour u of r is on a minimal path to d
        // iff dist(u, d) + 1 == dist(r, d).
        let mut minimal = vec![Vec::new(); n * n];
        for r in 0..n {
            for d in 0..n {
                if r == d {
                    continue;
                }
                let target = dist[r * n + d];
                let ports = g
                    .neighbors(r)
                    .iter()
                    .enumerate()
                    .filter(|&(_, &u)| dist[u * n + d] + 1 == target)
                    .map(|(p, _)| u16::try_from(p).expect("port fits u16"))
                    .collect();
                minimal[r * n + d] = ports;
            }
        }

        // Spanning tree rooted at router 0 (BFS parents), then per-destination
        // next hops along the unique tree path.
        let (_, parent) = bfs::distances_with_parents(g, 0);
        let mut tree_adj: Vec<Vec<RouterId>> = vec![Vec::new(); n];
        for v in 1..n {
            let p = parent[v].expect("connected graph has full parent array");
            tree_adj[v].push(p);
            tree_adj[p].push(v);
        }
        let mut escape = vec![u16::MAX; n * n];
        for d in 0..n {
            // BFS from d over the tree; first hop back toward d is the parent
            // in this BFS.
            let mut next_toward_d: Vec<Option<RouterId>> = vec![None; n];
            let mut queue = std::collections::VecDeque::from([d]);
            let mut seen = vec![false; n];
            seen[d] = true;
            while let Some(u) = queue.pop_front() {
                for &w in &tree_adj[u] {
                    if !seen[w] {
                        seen[w] = true;
                        next_toward_d[w] = Some(u);
                        queue.push_back(w);
                    }
                }
            }
            for r in 0..n {
                if r == d {
                    continue;
                }
                let hop = next_toward_d[r].expect("tree spans all routers");
                let port =
                    g.neighbors(r).binary_search(&hop).expect("tree edge exists in graph");
                escape[r * n + d] = u16::try_from(port).expect("port fits u16");
            }
        }

        Ok(Self { kind, num_routers: n, dist, minimal, escape })
    }

    /// Builds tables over the *surviving* subgraph of `g`: routers with
    /// `dead_router[r]` set, and edges for which `dead_link(u, v)` returns
    /// `true`, are excluded. Unlike [`RoutingTables::new`] this never fails:
    /// an unreachable pair simply gets `u32::MAX` distance, no minimal
    /// ports, and no escape port — callers must check
    /// [`RoutingTables::reachable`] before asking for a port. Output ports
    /// keep their numbering from the *full* graph's sorted neighbour lists,
    /// matching the simulator's physical port wiring; each surviving
    /// connected component gets its own up*/down* escape tree rooted at the
    /// component's lowest live router id.
    #[must_use]
    pub fn new_degraded(
        g: &Graph,
        kind: RoutingKind,
        dead_router: &[bool],
        mut dead_link: impl FnMut(RouterId, RouterId) -> bool,
    ) -> Self {
        let n = g.num_vertices();
        assert_eq!(dead_router.len(), n, "dead_router mask length mismatch");
        // Liveness of each directed port, aligned with g.neighbors(r).
        let live_port: Vec<Vec<bool>> = (0..n)
            .map(|r| {
                g.neighbors(r)
                    .iter()
                    .map(|&u| !dead_router[r] && !dead_router[u] && !dead_link(r, u))
                    .collect()
            })
            .collect();

        // All-pairs BFS over live edges; u32::MAX marks unreachable (every
        // pair involving a dead router stays unreachable, including (r, r)).
        let mut dist = vec![u32::MAX; n * n];
        let mut queue = std::collections::VecDeque::new();
        for r in 0..n {
            if dead_router[r] {
                continue;
            }
            dist[r * n + r] = 0;
            queue.clear();
            queue.push_back(r);
            while let Some(v) = queue.pop_front() {
                let dv = dist[r * n + v];
                for (&u, &live) in g.neighbors(v).iter().zip(&live_port[v]) {
                    if live && dist[r * n + u] == u32::MAX {
                        dist[r * n + u] = dv + 1;
                        queue.push_back(u);
                    }
                }
            }
        }

        let mut minimal = vec![Vec::new(); n * n];
        for r in 0..n {
            for d in 0..n {
                if r == d || dist[r * n + d] == u32::MAX {
                    continue;
                }
                let target = dist[r * n + d];
                let ports = g
                    .neighbors(r)
                    .iter()
                    .zip(&live_port[r])
                    .enumerate()
                    .filter(|&(_, (&u, &live))| {
                        live && dist[u * n + d] != u32::MAX && dist[u * n + d] + 1 == target
                    })
                    .map(|(p, _)| u16::try_from(p).expect("port fits u16"))
                    .collect();
                minimal[r * n + d] = ports;
            }
        }

        // Per-component spanning forest: each component's tree is rooted at
        // its lowest live router id (BFS parents over live edges).
        let mut tree_adj: Vec<Vec<RouterId>> = vec![Vec::new(); n];
        let mut in_tree = vec![false; n];
        for root in 0..n {
            if dead_router[root] || in_tree[root] {
                continue;
            }
            in_tree[root] = true;
            queue.clear();
            queue.push_back(root);
            while let Some(v) = queue.pop_front() {
                for (&u, &live) in g.neighbors(v).iter().zip(&live_port[v]) {
                    if live && !in_tree[u] {
                        in_tree[u] = true;
                        tree_adj[v].push(u);
                        tree_adj[u].push(v);
                        queue.push_back(u);
                    }
                }
            }
        }
        let mut escape = vec![u16::MAX; n * n];
        let mut next_toward_d: Vec<Option<RouterId>> = vec![None; n];
        let mut seen = vec![false; n];
        for d in 0..n {
            if dead_router[d] {
                continue;
            }
            next_toward_d.iter_mut().for_each(|x| *x = None);
            seen.iter_mut().for_each(|x| *x = false);
            seen[d] = true;
            queue.clear();
            queue.push_back(d);
            while let Some(u) = queue.pop_front() {
                for &w in &tree_adj[u] {
                    if !seen[w] {
                        seen[w] = true;
                        next_toward_d[w] = Some(u);
                        queue.push_back(w);
                    }
                }
            }
            for r in 0..n {
                if r == d {
                    continue;
                }
                let Some(hop) = next_toward_d[r] else { continue };
                let port =
                    g.neighbors(r).binary_search(&hop).expect("tree edge exists in graph");
                escape[r * n + d] = u16::try_from(port).expect("port fits u16");
            }
        }

        Self { kind, num_routers: n, dist, minimal, escape }
    }

    /// `true` if a path from `r` to `d` exists in the (possibly degraded)
    /// topology these tables were built over. Tables from
    /// [`RoutingTables::new`] are fully reachable; in
    /// [`RoutingTables::new_degraded`] tables a dead router reaches nothing,
    /// not even itself.
    #[must_use]
    pub fn reachable(&self, r: RouterId, d: RouterId) -> bool {
        self.dist[r * self.num_routers + d] != u32::MAX
    }

    /// The algorithm these tables were built for.
    #[must_use]
    pub fn kind(&self) -> RoutingKind {
        self.kind
    }

    /// Number of routers.
    #[must_use]
    pub fn num_routers(&self) -> usize {
        self.num_routers
    }

    /// Hop distance between two routers.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    #[must_use]
    pub fn distance(&self, r: RouterId, d: RouterId) -> u32 {
        self.dist[r * self.num_routers + d]
    }

    /// Output ports of `r` on minimal paths toward `d` (empty iff `r == d`).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    #[must_use]
    pub fn minimal_ports(&self, r: RouterId, d: RouterId) -> &[u16] {
        &self.minimal[r * self.num_routers + d]
    }

    /// Escape (spanning-tree) output port of `r` toward `d`.
    ///
    /// # Panics
    ///
    /// Panics if `r == d` or an id is out of range.
    #[must_use]
    pub fn escape_port(&self, r: RouterId, d: RouterId) -> usize {
        let p = self.escape[r * self.num_routers + d];
        assert!(p != u16::MAX, "no escape port from a router to itself");
        usize::from(p)
    }

    /// Average hop distance over ordered router pairs `r != d`.
    #[must_use]
    pub fn average_distance(&self) -> f64 {
        let n = self.num_routers;
        if n < 2 {
            return 0.0;
        }
        let total: u64 = self.dist.iter().map(|&d| u64::from(d)).sum();
        total as f64 / (n as f64 * (n as f64 - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_graph::gen;

    #[test]
    fn rejects_bad_topologies() {
        let empty = chiplet_graph::GraphBuilder::new(0).build();
        assert_eq!(
            RoutingTables::new(&empty, RoutingKind::default()).unwrap_err(),
            RoutingError::EmptyTopology
        );
        let disconnected = Graph::from_edges(4, &[(0, 1)]).unwrap();
        assert_eq!(
            RoutingTables::new(&disconnected, RoutingKind::default()).unwrap_err(),
            RoutingError::DisconnectedTopology
        );
    }

    #[test]
    fn minimal_ports_reduce_distance() {
        let g = gen::grid(4, 4);
        let t = RoutingTables::new(&g, RoutingKind::MinimalAdaptiveEscape).unwrap();
        for r in 0..16 {
            for d in 0..16 {
                if r == d {
                    assert!(t.minimal_ports(r, d).is_empty());
                    continue;
                }
                assert!(!t.minimal_ports(r, d).is_empty());
                for &p in t.minimal_ports(r, d) {
                    let u = g.neighbors(r)[usize::from(p)];
                    assert_eq!(t.distance(u, d) + 1, t.distance(r, d));
                }
            }
        }
    }

    #[test]
    fn corner_to_corner_grid_has_two_minimal_ports() {
        let g = gen::grid(3, 3);
        let t = RoutingTables::new(&g, RoutingKind::MinimalAdaptiveEscape).unwrap();
        // Router 0 (corner) to router 8 (opposite corner): both neighbours
        // lie on minimal paths.
        assert_eq!(t.minimal_ports(0, 8).len(), 2);
        assert_eq!(t.distance(0, 8), 4);
    }

    #[test]
    fn escape_paths_reach_destination() {
        let g = gen::grid(4, 5);
        let t = RoutingTables::new(&g, RoutingKind::MinimalAdaptiveEscape).unwrap();
        for r in 0..20usize {
            for d in 0..20usize {
                if r == d {
                    continue;
                }
                // Follow escape ports; must reach d within n hops (tree path).
                let mut cur = r;
                let mut hops = 0;
                while cur != d {
                    let port = t.escape_port(cur, d);
                    cur = g.neighbors(cur)[port];
                    hops += 1;
                    assert!(hops <= 20, "escape path loops: {r} -> {d}");
                }
            }
        }
    }

    #[test]
    fn escape_paths_follow_a_tree() {
        // On a cycle, tree routing must avoid one (chord) edge entirely:
        // the path from 3 to 4 on C8 with root 0 goes the long way around if
        // the tree omits edge (3,4)... whichever tree BFS picked, escape
        // paths never use more distinct edges than n-1.
        let g = gen::cycle(8);
        let t = RoutingTables::new(&g, RoutingKind::UpDownOnly).unwrap();
        let mut used_edges = std::collections::HashSet::new();
        for r in 0..8usize {
            for d in 0..8usize {
                if r == d {
                    continue;
                }
                let mut cur = r;
                while cur != d {
                    let next = g.neighbors(cur)[t.escape_port(cur, d)];
                    used_edges.insert((cur.min(next), cur.max(next)));
                    cur = next;
                }
            }
        }
        assert!(used_edges.len() <= 7, "tree uses at most n-1 edges");
    }

    #[test]
    fn average_distance_of_complete_graph_is_one() {
        let t = RoutingTables::new(&gen::complete(5), RoutingKind::default()).unwrap();
        assert!((t.average_distance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_router_topology() {
        let g = chiplet_graph::GraphBuilder::new(1).build();
        let t = RoutingTables::new(&g, RoutingKind::default()).unwrap();
        assert_eq!(t.num_routers(), 1);
        assert_eq!(t.distance(0, 0), 0);
        assert_eq!(t.average_distance(), 0.0);
    }

    #[test]
    fn error_display() {
        assert!(RoutingError::DisconnectedTopology.to_string().contains("connected"));
    }

    #[test]
    fn degraded_with_no_faults_matches_pristine_tables() {
        let g = gen::grid(4, 4);
        let dead = vec![false; 16];
        let a = RoutingTables::new(&g, RoutingKind::MinimalAdaptiveEscape).unwrap();
        let b = RoutingTables::new_degraded(
            &g,
            RoutingKind::MinimalAdaptiveEscape,
            &dead,
            |_, _| false,
        );
        assert_eq!(a.dist, b.dist);
        assert_eq!(a.minimal, b.minimal);
        assert_eq!(a.escape, b.escape);
    }

    #[test]
    fn degraded_routes_around_a_dead_link() {
        // Cycle of 6 with edge (0, 1) dead: distance 0 -> 1 becomes 5 and
        // the only minimal port from 0 avoids the dead edge.
        let g = gen::cycle(6);
        let dead = vec![false; 6];
        let t = RoutingTables::new_degraded(&g, RoutingKind::default(), &dead, |u, v| {
            (u.min(v), u.max(v)) == (0, 1)
        });
        assert_eq!(t.distance(0, 1), 5);
        assert!(t.reachable(0, 1));
        let ports = t.minimal_ports(0, 1);
        assert_eq!(ports.len(), 1);
        assert_eq!(g.neighbors(0)[usize::from(ports[0])], 5);
        // Escape paths still reach every destination.
        for r in 0..6usize {
            for d in 0..6usize {
                if r == d {
                    continue;
                }
                let mut cur = r;
                let mut hops = 0;
                while cur != d {
                    cur = g.neighbors(cur)[t.escape_port(cur, d)];
                    hops += 1;
                    assert!(hops <= 6, "escape path loops");
                }
            }
        }
    }

    #[test]
    fn degraded_marks_partitions_unreachable() {
        // Path 0-1-2-3 with edge (1, 2) dead: {0,1} and {2,3} split.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let dead = vec![false; 4];
        let t = RoutingTables::new_degraded(&g, RoutingKind::default(), &dead, |u, v| {
            (u.min(v), u.max(v)) == (1, 2)
        });
        assert!(t.reachable(0, 1) && t.reachable(2, 3));
        assert!(!t.reachable(0, 2) && !t.reachable(1, 3));
        assert!(t.minimal_ports(0, 2).is_empty());
        // Each side keeps a working escape tree.
        assert_eq!(g.neighbors(0)[t.escape_port(0, 1)], 1);
        assert_eq!(g.neighbors(3)[t.escape_port(3, 2)], 2);
    }

    #[test]
    fn degraded_dead_router_reaches_nothing() {
        let g = gen::grid(3, 3);
        let mut dead = vec![false; 9];
        dead[4] = true; // centre router
        let t = RoutingTables::new_degraded(&g, RoutingKind::default(), &dead, |_, _| false);
        for d in 0..9 {
            assert!(!t.reachable(4, d));
            assert!(!t.reachable(d, 4));
        }
        // The ring around the centre stays connected.
        assert!(t.reachable(0, 8));
        assert_eq!(t.distance(0, 8), 4);
    }
}
