//! Conservative bounded-lag parallel simulation: one run sharded across
//! cores, bit-identical to the serial event path.
//!
//! The mesh is cut into contiguous router-id ranges — one worker thread
//! per shard, each running a full [`Simulator`] that owns its range's
//! routers and endpoints. Inter-shard links give the lookahead: a flit
//! pushed onto a boundary link at cycle `t` cannot be delivered before
//! `t + link_latency`, so every shard can safely advance a bounded-lag
//! window of `W = min_boundary_link_latency` cycles before exchanging
//! boundary messages at a barrier.
//!
//! **Determinism contract.** For every reported statistic —
//! [`NetworkStats`], latency percentiles, channel loads, drain outcome,
//! the deadlock watchdog — a sharded run is *bit-identical* to the serial
//! [`Simulator`], for any contiguous partition and any shard count. Two
//! properties carry the proof: (1) all cross-shard influence flows
//! through delay lines, and boundary pushes are *replayed* on the owning
//! side with their original push cycle, in (cycle, source link id) order,
//! so every delivery cycle and serialization decision is exactly the
//! serial one; (2) within a cycle, deliveries on distinct lines commute
//! (each input port has exactly one feeding line, and allocation runs
//! after all deliveries) — the same argument the event wheel's golden
//! equivalence against reference stepping already pins down.
//!
//! Worker threads are persistent (spawned at construction) and boundary
//! buffers are preallocated from the window bound, so the sharded steady
//! state performs zero heap allocations — the same contract as the serial
//! hot path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use chiplet_graph::Graph;

use crate::channel::Credit;
use crate::endpoint::LATENCY_HISTOGRAM_BUCKETS;
use crate::fault::FaultPlan;
use crate::flit::{Flit, PacketId, RouterId};
use crate::obs::{merge_window_series, Probe, WindowSample};
use crate::router::StallCounters;
use crate::sim::{
    percentiles_from_histogram, stats_from_sums, LinkSpec, NetworkStats, SimConfig, SimError,
    Simulator, WindowSums,
};

/// Commands the coordinator hands to the shard workers.
#[derive(Debug, Clone, Copy)]
enum Command {
    /// Advance to the absolute cycle `target` in bounded-lag windows.
    Run { target: u64 },
    /// Stop generation; run until globally drained or `deadline`.
    Drain { deadline: u64 },
    /// Exit the worker loop.
    Stop,
}

/// A reusable rendezvous barrier that can be *poisoned*: when any worker
/// panics, every current and future waiter panics too instead of hanging
/// the run. (`std::sync::Barrier` would deadlock the survivors.)
struct PoisonBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
    parties: usize,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

impl PoisonBarrier {
    fn new(parties: usize) -> Self {
        Self {
            state: Mutex::new(BarrierState { arrived: 0, generation: 0, poisoned: false }),
            cv: Condvar::new(),
            parties,
        }
    }

    fn wait(&self) {
        let mut st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        assert!(!st.poisoned, "a shard worker panicked");
        st.arrived += 1;
        if st.arrived == self.parties {
            st.arrived = 0;
            st.generation += 1;
            self.cv.notify_all();
            return;
        }
        let generation = st.generation;
        while st.generation == generation && !st.poisoned {
            st = self.cv.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        assert!(!st.poisoned, "a shard worker panicked");
    }

    fn poison(&self) {
        let mut st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        st.poisoned = true;
        self.cv.notify_all();
    }

    fn is_poisoned(&self) -> bool {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner).poisoned
    }
}

/// State shared between the coordinator and the shard workers.
struct Shared {
    /// Command slot: written by the coordinator before `start`.
    command: Mutex<Command>,
    /// Coordinator + workers rendezvous delimiting one command.
    start: PoisonBarrier,
    done: PoisonBarrier,
    /// Workers-only barrier inside windows (two per window: end-of-
    /// compute and end-of-post).
    sync: PoisonBarrier,
    /// One mailbox per boundary link and direction, preallocated to the
    /// window bound; posted and drained by O(1) buffer swaps.
    flit_mail: Vec<Mutex<Vec<(u64, Flit)>>>,
    credit_mail: Vec<Mutex<Vec<(u64, Credit)>>>,
    /// Per-shard drain status, published at drain barriers.
    in_flight: Vec<AtomicU64>,
    last_progress: Vec<AtomicU64>,
    local_drained: Vec<AtomicBool>,
    /// Per-shard fault-exchange slots: at a failure barrier each shard
    /// publishes the doomed packet ids it can see locally, then the
    /// credit returns it owes routers owned by other shards.
    fault_seeds: Vec<Mutex<Vec<PacketId>>>,
    fault_credits: Vec<Mutex<Vec<(u32, u32)>>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One worker's wiring: its shard plus precomputed (slot, mailbox) and
/// (link, mailbox) pairs, all in ascending global link id order — the
/// boundary handoff ordering the determinism contract specifies.
struct Worker {
    index: usize,
    sim: Arc<Mutex<Simulator>>,
    shared: Arc<Shared>,
    /// Bounded-lag window length `W` in cycles.
    window: u64,
    /// `(outbox slot, mailbox index)` per outgoing boundary line.
    out_flits: Vec<(usize, usize)>,
    out_credits: Vec<(usize, usize)>,
    /// `(link id, mailbox index)` per owned boundary line, ascending.
    in_flits: Vec<(usize, usize)>,
    in_credits: Vec<(usize, usize)>,
}

impl Worker {
    fn run(&mut self) {
        loop {
            self.shared.start.wait();
            let command = *lock(&self.shared.command);
            match command {
                Command::Run { target } => self.advance(target),
                Command::Drain { deadline } => self.drain(deadline),
                Command::Stop => {
                    self.shared.done.wait();
                    return;
                }
            }
            self.shared.done.wait();
        }
    }

    /// Swaps every filled outbox into its mailbox.
    fn post(&self, sim: &mut Simulator) {
        for &(slot, m) in &self.out_flits {
            sim.post_flit_outbox(slot, &mut lock(&self.shared.flit_mail[m]));
        }
        for &(slot, m) in &self.out_credits {
            sim.post_credit_outbox(slot, &mut lock(&self.shared.credit_mail[m]));
        }
    }

    /// Replays every owned mailbox onto its delay line, in ascending
    /// link id order (messages within a line are already cycle-ordered).
    fn apply(&self, sim: &mut Simulator) {
        for &(l, m) in &self.in_flits {
            sim.apply_boundary_flits(l, &mut lock(&self.shared.flit_mail[m]));
        }
        for &(l, m) in &self.in_credits {
            sim.apply_boundary_credits(l, &mut lock(&self.shared.credit_mail[m]));
        }
    }

    /// One bounded-lag window: compute, barrier, post, barrier, apply.
    /// The next window's posts are gated by its own compute barrier, so
    /// no third barrier is needed before looping.
    fn window(&self, sim: &mut Simulator, to: u64) {
        sim.run(to - sim.cycle());
        self.shared.sync.wait();
        self.post(sim);
        self.shared.sync.wait();
        self.apply(sim);
    }

    /// Applies every failure event due at the current cycle, in lockstep
    /// across shards: each shard publishes the doomed packet ids it can
    /// see locally, every shard unions all published sets (sorted and
    /// deduplicated, so the result is identical everywhere), every shard
    /// purges that same set, and the credit returns owed across shard
    /// boundaries are exchanged. Two `sync` barriers per event; same-cycle
    /// events replay sequentially in schedule order, exactly mirroring the
    /// serial `service_faults` loop. Windows are capped at the next
    /// failure cycle, so when an event is due *all* shards sit at its
    /// cycle and execute the same barrier sequence.
    fn exchange_faults(&self, sim: &mut Simulator) {
        while sim.next_fault_cycle() <= sim.cycle() {
            let seeds = sim.fault_begin();
            *lock(&self.shared.fault_seeds[self.index]) = seeds;
            self.shared.sync.wait();
            let mut doomed: Vec<PacketId> = Vec::new();
            for slot in &self.shared.fault_seeds {
                doomed.extend_from_slice(&lock(slot));
            }
            doomed.sort_unstable();
            doomed.dedup();
            // Exactly one shard accounts the agreed doomed set, so the
            // cross-shard sum matches the serial drop counter.
            let credits = sim.fault_commit(&doomed, self.index == 0);
            *lock(&self.shared.fault_credits[self.index]) = credits;
            self.shared.sync.wait();
            for (k, slot) in self.shared.fault_credits.iter().enumerate() {
                if k != self.index {
                    sim.apply_foreign_fault_credits(&lock(slot));
                }
            }
        }
    }

    fn advance(&self, target: u64) {
        let sim = &mut *lock(&self.sim);
        while sim.cycle() < target {
            self.exchange_faults(sim);
            let to =
                sim.cycle().saturating_add(self.window).min(target).min(sim.next_fault_cycle());
            self.window(sim, to);
        }
    }

    /// The sharded half of [`Simulator::drain`]: windows until every
    /// shard is drained, then rewind to the exact cycle the serial drain
    /// loop would have stopped at — one past the last flit movement
    /// anywhere (the unwound cycles carried only residual credit
    /// deliveries, which no reported stat observes).
    fn drain(&self, deadline: u64) {
        let sim = &mut *lock(&self.sim);
        let entry = sim.cycle();
        sim.stop_generation();
        loop {
            let me = self.index;
            self.shared.in_flight[me].store(sim.flits_in_network() as u64, Ordering::SeqCst);
            self.shared.last_progress[me].store(sim.last_progress_cycle(), Ordering::SeqCst);
            self.shared.local_drained[me].store(sim.is_fully_drained(), Ordering::SeqCst);
            self.shared.sync.wait();
            // Every worker reads the same published snapshot, so every
            // worker reaches the same verdict without another barrier.
            let mut drained = true;
            let mut last_progress = 0u64;
            for k in 0..self.shared.local_drained.len() {
                drained &= self.shared.local_drained[k].load(Ordering::SeqCst);
                last_progress =
                    last_progress.max(self.shared.last_progress[k].load(Ordering::SeqCst));
            }
            if drained {
                let stop = (last_progress + 1).max(entry);
                debug_assert!(stop <= sim.cycle(), "drain cycle ahead of the run");
                sim.rewind_cycle(stop);
                return;
            }
            if sim.cycle() >= deadline {
                return;
            }
            // Mirrors the serial drain loop: the drained verdict comes
            // first, then due failure events apply, then the network runs.
            self.exchange_faults(sim);
            let to = sim
                .cycle()
                .saturating_add(self.window)
                .min(deadline)
                .min(sim.next_fault_cycle());
            self.window(sim, to);
        }
    }
}

/// A [`Simulator`]-compatible front end that runs one simulation as a
/// conservative bounded-lag parallel discrete-event simulation across
/// `shards` worker threads, producing bit-identical statistics.
///
/// With `shards = 1` no threads are spawned and calls go straight to the
/// underlying serial simulator. The closed-loop driver interface
/// ([`Simulator::offer_packet`] / the delivery log) is not available on
/// the sharded path.
///
/// # Example
///
/// ```
/// use chiplet_graph::gen;
/// use nocsim::{ShardedSimulator, SimConfig, Simulator};
///
/// let g = gen::grid(4, 4);
/// let mut config = SimConfig::paper_defaults();
/// config.injection_rate = 0.05;
/// let mut serial = Simulator::new(&g, config)?;
/// let mut sharded = ShardedSimulator::new(&g, config, 4)?;
/// assert_eq!(sharded.run_to_window(500, 1_000), serial.run_to_window(500, 1_000));
/// # Ok::<(), nocsim::SimError>(())
/// ```
pub struct ShardedSimulator {
    config: SimConfig,
    shards: Vec<Arc<Mutex<Simulator>>>,
    /// `None` in single-shard inline mode.
    shared: Option<Arc<Shared>>,
    workers: Vec<JoinHandle<()>>,
    /// Shard `k` owns routers `cuts[k]..cuts[k + 1]`.
    cuts: Vec<usize>,
    /// Bounded-lag window `W` (minimum boundary link latency).
    window: u64,
    cycle: u64,
    window_start: u64,
    num_endpoints: usize,
}

impl std::fmt::Debug for ShardedSimulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSimulator")
            .field("shards", &self.shards.len())
            .field("cuts", &self.cuts)
            .field("window", &self.window)
            .field("cycle", &self.cycle)
            .finish_non_exhaustive()
    }
}

impl ShardedSimulator {
    /// Builds a sharded simulator over `shards` balanced contiguous
    /// router-id ranges (clamped to the router count).
    ///
    /// # Errors
    ///
    /// As [`Simulator::new`].
    pub fn new(g: &Graph, config: SimConfig, shards: usize) -> Result<Self, SimError> {
        let latency = config.link_latency;
        Self::with_link_specs(g, config, |_, _| LinkSpec::uniform(latency), shards)
    }

    /// [`ShardedSimulator::new`] over heterogeneous links (the sharded
    /// sibling of [`Simulator::with_link_specs`]).
    ///
    /// # Errors
    ///
    /// As [`Simulator::with_link_specs`].
    pub fn with_link_specs(
        g: &Graph,
        config: SimConfig,
        spec: impl Fn(RouterId, RouterId) -> LinkSpec,
        shards: usize,
    ) -> Result<Self, SimError> {
        let n = g.num_vertices();
        let k = shards.clamp(1, n.max(1));
        let cuts: Vec<usize> = (0..=k).map(|i| i * n / k).collect();
        Self::with_partition(g, config, spec, &cuts)
    }

    /// Builds a sharded simulator over an explicit contiguous partition:
    /// shard `k` owns routers `cuts[k]..cuts[k + 1]`. `cuts` must start
    /// at 0, end at the router count, and be strictly increasing.
    ///
    /// # Errors
    ///
    /// As [`Simulator::with_link_specs`], plus
    /// [`SimError::InvalidConfig`] for a malformed partition.
    pub fn with_partition(
        g: &Graph,
        config: SimConfig,
        spec: impl Fn(RouterId, RouterId) -> LinkSpec,
        cuts: &[usize],
    ) -> Result<Self, SimError> {
        let n = g.num_vertices();
        let valid = cuts.len() >= 2
            && cuts.first() == Some(&0)
            && cuts.last() == Some(&n)
            && cuts.windows(2).all(|w| w[0] < w[1]);
        if !valid {
            return Err(SimError::InvalidConfig(
                "shard cuts must rise strictly from 0 to the router count",
            ));
        }
        let k = cuts.len() - 1;
        if k == 1 {
            // Single shard: the serial simulator itself, no threads.
            let sim = Simulator::with_link_specs(g, config, spec)?;
            return Ok(Self {
                config,
                num_endpoints: sim.num_endpoints(),
                shards: vec![Arc::new(Mutex::new(sim))],
                shared: None,
                workers: Vec::new(),
                cuts: cuts.to_vec(),
                window: u64::MAX,
                cycle: 0,
                window_start: u64::MAX,
            });
        }

        // Lookahead: a boundary push at cycle t is due no earlier than
        // t + latency, so W = min boundary latency keeps every handoff
        // inside the next window.
        let shard_of = |r: usize| cuts.partition_point(|&c| c <= r) - 1;
        let mut window = u64::MAX;
        for r in 0..n {
            for &u in g.neighbors(r) {
                if shard_of(r) != shard_of(u) {
                    window = window.min(spec(r, u).latency.max(1));
                }
            }
        }
        // A connected graph with k >= 2 contiguous ranges always has a
        // boundary link; guard the degenerate case anyway.
        let capacity = if window == u64::MAX { 1 } else { window as usize };

        let mut shards = Vec::with_capacity(k);
        for w in cuts.windows(2) {
            let sim = Simulator::new_shard(g, config, &spec, (w[0], w[1]), capacity)?;
            shards.push(Arc::new(Mutex::new(sim)));
        }
        let num_endpoints = lock(&shards[0]).num_endpoints();

        // Dense mailbox index per boundary link, ascending link id: the
        // union of all shards' outgoing flit links (each boundary link
        // crosses exactly one cut, in one direction).
        let mut boundary: Vec<usize> =
            shards.iter().flat_map(|s| lock(s).flit_out_links().to_vec()).collect();
        boundary.sort_unstable();
        let mail_of = |l: usize| boundary.binary_search(&l).expect("boundary link registered");
        let shared = Arc::new(Shared {
            command: Mutex::new(Command::Stop),
            start: PoisonBarrier::new(k + 1),
            done: PoisonBarrier::new(k + 1),
            sync: PoisonBarrier::new(k),
            flit_mail: (0..boundary.len())
                .map(|_| Mutex::new(Vec::with_capacity(capacity)))
                .collect(),
            credit_mail: (0..boundary.len())
                .map(|_| Mutex::new(Vec::with_capacity(capacity)))
                .collect(),
            in_flight: (0..k).map(|_| AtomicU64::new(0)).collect(),
            last_progress: (0..k).map(|_| AtomicU64::new(0)).collect(),
            local_drained: (0..k).map(|_| AtomicBool::new(false)).collect(),
            fault_seeds: (0..k).map(|_| Mutex::new(Vec::new())).collect(),
            fault_credits: (0..k).map(|_| Mutex::new(Vec::new())).collect(),
        });

        let mut workers = Vec::with_capacity(k);
        for (index, sim) in shards.iter().enumerate() {
            let wire = |links: &[usize]| -> Vec<(usize, usize)> {
                links.iter().enumerate().map(|(slot, &l)| (slot, mail_of(l))).collect()
            };
            let wire_in = |links: &[usize]| -> Vec<(usize, usize)> {
                links.iter().map(|&l| (l, mail_of(l))).collect()
            };
            let mut worker = {
                let s = lock(sim);
                Worker {
                    index,
                    sim: Arc::clone(sim),
                    shared: Arc::clone(&shared),
                    window,
                    out_flits: wire(s.flit_out_links()),
                    out_credits: wire(s.credit_out_links()),
                    in_flits: wire_in(s.flit_in_links()),
                    in_credits: wire_in(s.credit_in_links()),
                }
            };
            let handle = std::thread::Builder::new()
                .name(format!("nocsim-shard-{index}"))
                .spawn(move || {
                    let shared = Arc::clone(&worker.shared);
                    let outcome =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker.run()));
                    if outcome.is_err() {
                        // The panic hook already printed the message;
                        // poison the barriers so nobody waits forever.
                        shared.start.poison();
                        shared.done.poison();
                        shared.sync.poison();
                    }
                })
                .expect("spawn shard worker");
            workers.push(handle);
        }

        Ok(Self {
            config,
            shards,
            shared: Some(shared),
            workers,
            cuts: cuts.to_vec(),
            window,
            cycle: 0,
            window_start: u64::MAX,
            num_endpoints,
        })
    }

    /// Issues one command and waits for every worker to finish it.
    fn command(&self, command: Command) {
        let shared = self.shared.as_ref().expect("threaded mode");
        *lock(&shared.command) = command;
        shared.start.wait();
        shared.done.wait();
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Installs a fault plan on every shard; see
    /// [`Simulator::install_fault_plan`]. Each shard holds the complete
    /// schedule, and failure events are applied in lockstep at window
    /// barriers — a faulted run is bit-identical for any shard count.
    ///
    /// # Panics
    ///
    /// As [`Simulator::install_fault_plan`], and if the simulation has
    /// already run.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        assert_eq!(self.cycle, 0, "install the fault plan before running");
        for shard in &self.shards {
            lock(shard).install_fault_plan(plan.clone());
        }
    }

    /// Current cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of endpoints.
    #[must_use]
    pub fn num_endpoints(&self) -> usize {
        self.num_endpoints
    }

    /// The bounded-lag window `W` in cycles ([`u64::MAX`] in single-shard
    /// mode: no barriers at all).
    #[must_use]
    pub fn lookahead_window(&self) -> u64 {
        self.window
    }

    /// Runs `cycles` simulation cycles across all shards.
    pub fn run(&mut self, cycles: u64) {
        let target = self.cycle.saturating_add(cycles);
        if self.shared.is_none() {
            lock(&self.shards[0]).run(cycles);
        } else {
            self.command(Command::Run { target });
        }
        self.cycle = target;
    }

    /// Opens the measurement window at the current cycle on every shard.
    pub fn open_measurement_window(&mut self) {
        self.window_start = self.cycle;
        for shard in &self.shards {
            lock(shard).open_measurement_window();
        }
    }

    /// Runs `warmup` cycles, opens the measurement window, then runs
    /// `measure` cycles and returns the window's statistics — the sharded
    /// [`Simulator::run_to_window`].
    pub fn run_to_window(&mut self, warmup: u64, measure: u64) -> NetworkStats {
        self.run(warmup);
        self.open_measurement_window();
        self.run(measure);
        self.stats()
    }

    /// Stops traffic generation and runs until the whole network drains
    /// or `max_cycles` pass; returns `true` if fully drained. The final
    /// cycle count matches the serial [`Simulator::drain`] exactly.
    pub fn drain(&mut self, max_cycles: u64) -> bool {
        if self.shared.is_none() {
            let mut sim = lock(&self.shards[0]);
            let drained = sim.drain(max_cycles);
            self.cycle = sim.cycle();
            return drained;
        }
        let deadline = self.cycle.saturating_add(max_cycles);
        self.command(Command::Drain { deadline });
        self.cycle = lock(&self.shards[0]).cycle();
        debug_assert!(
            self.shards.iter().all(|s| lock(s).cycle() == self.cycle),
            "shards disagree on the drain cycle"
        );
        self.shards.iter().all(|s| lock(s).is_fully_drained())
    }

    /// Aggregated statistics since the measurement window opened —
    /// bit-identical to the serial run's [`Simulator::stats`].
    ///
    /// # Panics
    ///
    /// Panics if no measurement window was opened.
    #[must_use]
    pub fn stats(&self) -> NetworkStats {
        assert!(self.window_start != u64::MAX, "open a measurement window first");
        let mut sums = WindowSums::default();
        for shard in &self.shards {
            sums.merge(&lock(shard).window_sums());
        }
        let window_cycles = self.cycle - self.window_start;
        stats_from_sums(&sums, window_cycles, self.num_endpoints, self.config.packet_size)
    }

    /// Latency percentile estimates, merged across shards; see
    /// [`Simulator::latency_percentiles`].
    ///
    /// # Panics
    ///
    /// Panics if any `p` is outside `(0, 1]`.
    #[must_use]
    pub fn latency_percentiles(&self, ps: &[f64]) -> Vec<Option<f64>> {
        let mut merged = vec![0u64; LATENCY_HISTOGRAM_BUCKETS];
        let mut total = 0u64;
        for shard in &self.shards {
            total += lock(shard).add_latency_histogram(&mut merged);
        }
        percentiles_from_histogram(ps, &merged, total)
    }

    /// Single latency percentile; see [`Simulator::latency_percentile`].
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1]`.
    #[must_use]
    pub fn latency_percentile(&self, p: f64) -> Option<f64> {
        self.latency_percentiles(&[p])[0]
    }

    /// Per-channel traffic counts since construction, summed across
    /// shards (a boundary link counts on its sending shard only); see
    /// [`Simulator::channel_loads`].
    #[must_use]
    pub fn channel_loads(&self) -> Vec<(RouterId, RouterId, u64)> {
        let mut out = lock(&self.shards[0]).channel_loads();
        for shard in &self.shards[1..] {
            let sim = lock(shard);
            for (slot, &count) in out.iter_mut().zip(sim.link_flit_counts()) {
                slot.2 += count;
            }
        }
        out
    }

    /// Attaches an observability probe to every shard; see
    /// [`Simulator::attach_probe`]. Shards sample at the same
    /// absolute-cycle boundaries, so the per-shard series line up window
    /// for window and [`ShardedSimulator::obs_windows`] merges them
    /// deterministically.
    pub fn attach_probe(&mut self, probe: Probe) {
        for shard in &self.shards {
            lock(shard).attach_probe(probe);
        }
    }

    /// The probe's recorded series, merged across shards by window index
    /// in ascending shard order (integer sums — deterministic regardless
    /// of how the shards interleaved in wall time). Empty without a probe.
    ///
    /// Endpoint-local counters (offered/accepted/received/latency) merge
    /// to exactly the serial run's values; occupancy gauges sum each
    /// shard's owned region, so a flit mid-handoff between shards at a
    /// boundary is attributed to neither until applied.
    #[must_use]
    pub fn obs_windows(&self) -> Vec<WindowSample> {
        let per_shard: Vec<Vec<WindowSample>> =
            self.shards.iter().map(|s| lock(s).obs_windows().to_vec()).collect();
        let views: Vec<&[WindowSample]> = per_shard.iter().map(Vec::as_slice).collect();
        merge_window_series(&views)
    }

    /// Network-wide stall-cause tallies, summed across shards; see
    /// [`Simulator::stall_counters`].
    #[must_use]
    pub fn stall_counters(&self) -> StallCounters {
        let mut stalls = StallCounters::default();
        for shard in &self.shards {
            stalls.absorb(lock(shard).stall_counters());
        }
        stalls
    }

    /// Flits currently inside the network, summed across shards.
    #[must_use]
    pub fn flits_in_network(&self) -> usize {
        self.shards.iter().map(|s| lock(s).flits_in_network()).sum()
    }

    /// The deadlock watchdog, aggregated across shards: flits are in the
    /// network and *no* shard has moved one for the watchdog period.
    /// Matches the serial [`Simulator::deadlock_suspected`] bit for bit.
    #[must_use]
    pub fn deadlock_suspected(&self) -> bool {
        let mut in_flight = 0usize;
        let mut last_progress = 0u64;
        for shard in &self.shards {
            let sim = lock(shard);
            in_flight += sim.flits_in_network();
            last_progress = last_progress.max(sim.last_progress_cycle());
        }
        in_flight > 0
            && self.cycle.saturating_sub(last_progress) > self.config.deadlock_watchdog
    }

    /// The blocked-packet report, aggregated across shards. Leads with
    /// the shard holding the *oldest* blocked flit (the least recent
    /// per-shard progress among shards still holding flits) — read that
    /// shard's section first when the watchdog fires.
    #[must_use]
    pub fn blocked_packet_report(&self) -> String {
        use std::fmt::Write as _;
        let mut oldest: Option<(usize, u64)> = None;
        for (k, shard) in self.shards.iter().enumerate() {
            let sim = lock(shard);
            if sim.flits_in_network() > 0 {
                let progress = sim.last_progress_cycle();
                if oldest.is_none_or(|(_, best)| progress < best) {
                    oldest = Some((k, progress));
                }
            }
        }
        let mut out = String::new();
        if let Some((k, progress)) = oldest {
            let _ = writeln!(
                out,
                "oldest blocked flit: shard {k} (routers {}..{}, no progress since cycle {progress})",
                self.cuts[k],
                self.cuts[k + 1],
            );
        }
        for (k, shard) in self.shards.iter().enumerate() {
            let report = lock(shard).blocked_packet_report();
            if !report.is_empty() {
                let _ = writeln!(
                    out,
                    "shard {k} (routers {}..{}):",
                    self.cuts[k],
                    self.cuts[k + 1]
                );
                out.push_str(&report);
            }
        }
        out
    }
}

impl Drop for ShardedSimulator {
    fn drop(&mut self) {
        let Some(shared) = self.shared.take() else { return };
        if shared.start.is_poisoned() {
            // A worker already died; joining reaps the rest (their next
            // barrier wait panics too).
            for handle in self.workers.drain(..) {
                let _ = handle.join();
            }
            return;
        }
        *lock(&shared.command) = Command::Stop;
        shared.start.wait();
        shared.done.wait();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_graph::gen;

    fn config(rate: f64) -> SimConfig {
        SimConfig {
            vcs: 4,
            buffer_depth: 4,
            injection_rate: rate,
            seed: 0x5EED,
            source_queue_cap: 16,
            ..SimConfig::paper_defaults()
        }
    }

    #[test]
    fn sharded_matches_serial_stats() {
        let g = gen::grid(4, 4);
        let cfg = config(0.1);
        let mut serial = Simulator::new(&g, cfg).unwrap();
        let serial_stats = serial.run_to_window(600, 2_000);
        for shards in [1, 2, 3, 4, 8] {
            let mut sharded = ShardedSimulator::new(&g, cfg, shards).unwrap();
            let stats = sharded.run_to_window(600, 2_000);
            assert_eq!(stats, serial_stats, "{shards} shards");
            assert_eq!(sharded.flits_in_network(), serial.flits_in_network());
            assert_eq!(sharded.channel_loads(), serial.channel_loads());
            assert_eq!(
                sharded.latency_percentiles(&[0.5, 0.99]),
                serial.latency_percentiles(&[0.5, 0.99])
            );
        }
    }

    #[test]
    fn sharded_drain_matches_serial() {
        let g = gen::grid(4, 4);
        let cfg = config(0.2);
        let mut serial = Simulator::new(&g, cfg).unwrap();
        serial.run(400);
        serial.open_measurement_window();
        serial.run(1_500);
        let drained = serial.drain(30_000);
        for shards in [2, 4] {
            let mut sharded = ShardedSimulator::new(&g, cfg, shards).unwrap();
            sharded.run(400);
            sharded.open_measurement_window();
            sharded.run(1_500);
            assert_eq!(sharded.drain(30_000), drained, "{shards} shards");
            assert_eq!(sharded.cycle(), serial.cycle(), "{shards} shards");
            assert_eq!(sharded.stats(), serial.stats(), "{shards} shards");
        }
    }

    #[test]
    fn sharded_faulted_run_matches_serial() {
        use crate::fault::{FaultEvent, FaultPlan, FaultSchedule, FaultTarget};
        let g = gen::grid(4, 4);
        let cfg = config(0.1);
        let plan = FaultPlan::new(FaultSchedule::new(vec![
            FaultEvent { cycle: 700, target: FaultTarget::Link { a: 5, b: 6 } },
            FaultEvent { cycle: 1_200, target: FaultTarget::Router(10) },
        ]));
        let mut serial = Simulator::new(&g, cfg).unwrap();
        serial.install_fault_plan(plan.clone());
        let serial_stats = serial.run_to_window(600, 2_000);
        assert!(
            serial_stats.link_fault_dropped_flits + serial_stats.router_fault_dropped_flits > 0,
            "scenario expected to drop flits: {serial_stats:?}"
        );
        for shards in [1, 2, 3, 4, 8] {
            let mut sharded = ShardedSimulator::new(&g, cfg, shards).unwrap();
            sharded.install_fault_plan(plan.clone());
            let stats = sharded.run_to_window(600, 2_000);
            assert_eq!(stats, serial_stats, "{shards} shards");
            assert_eq!(
                sharded.flits_in_network(),
                serial.flits_in_network(),
                "{shards} shards"
            );
            assert_eq!(sharded.channel_loads(), serial.channel_loads(), "{shards} shards");
        }
    }

    #[test]
    fn sharded_faulted_drain_matches_serial() {
        use crate::fault::{FaultPlan, FaultSchedule};
        let g = gen::grid(4, 4);
        let cfg = config(0.2);
        let plan = FaultPlan::new(FaultSchedule::random_links(&g, 2, 900, 11));
        let mut serial = Simulator::new(&g, cfg).unwrap();
        serial.install_fault_plan(plan.clone());
        serial.run(400);
        serial.open_measurement_window();
        serial.run(1_500);
        let drained = serial.drain(30_000);
        for shards in [2, 4] {
            let mut sharded = ShardedSimulator::new(&g, cfg, shards).unwrap();
            sharded.install_fault_plan(plan.clone());
            sharded.run(400);
            sharded.open_measurement_window();
            sharded.run(1_500);
            assert_eq!(sharded.drain(30_000), drained, "{shards} shards");
            assert_eq!(sharded.cycle(), serial.cycle(), "{shards} shards");
            assert_eq!(sharded.stats(), serial.stats(), "{shards} shards");
        }
    }

    #[test]
    fn shard_count_clamps_to_router_count() {
        let g = gen::grid(2, 2);
        let mut sim = ShardedSimulator::new(&g, config(0.1), 64).unwrap();
        assert_eq!(sim.num_shards(), 4);
        let stats = sim.run_to_window(300, 600);
        assert!(stats.received_packets > 0);
    }

    #[test]
    fn invalid_partitions_rejected() {
        let g = gen::grid(2, 2);
        let cfg = config(0.1);
        let spec = |_, _| LinkSpec::uniform(cfg.link_latency);
        for cuts in [&[0usize, 4][..0], &[1, 4][..], &[0, 2][..], &[0, 2, 2, 4][..]] {
            assert!(
                ShardedSimulator::with_partition(&g, cfg, spec, cuts).is_err(),
                "{cuts:?} accepted"
            );
        }
    }

    #[test]
    fn watchdog_quiet_on_healthy_network() {
        let g = gen::grid(3, 3);
        let mut sim = ShardedSimulator::new(&g, config(0.1), 3).unwrap();
        sim.run_to_window(500, 1_500);
        assert!(!sim.deadlock_suspected());
        // Mid-flight there are flits somewhere; the report names the
        // shard and router range to look at.
        let report = sim.blocked_packet_report();
        if sim.flits_in_network() > 0 {
            assert!(report.contains("oldest blocked flit: shard "), "report:\n{report}");
            assert!(report.contains("routers "), "report:\n{report}");
        }
    }
}
