//! The cycle-accurate simulator: wiring, event-driven evaluation,
//! statistics.
//!
//! The hot path is *event-driven*: per-cycle cost is O(active components),
//! not O(network). Delay lines carry a cached `next_due` cycle and feed a
//! bucketed event wheel (at most one entry per line), routers sit on an
//! active worklist only while they hold buffered flits, endpoints sample
//! their next packet arrival with geometric skip-ahead, and fully idle
//! stretches fast-forward the cycle counter straight to the next event.
//! A poll-every-cycle reference path ([`Simulator::set_reference_stepping`])
//! drives the exact same component operations exhaustively; golden tests
//! prove both produce bit-identical statistics.

use chiplet_graph::Graph;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

use crate::channel::{Credit, DelayLine, Link, IDLE};
use crate::endpoint::Endpoint;
use crate::fault::{FaultPlan, FaultTarget};
use crate::flit::{Flit, PacketId, RouterId};
use crate::obs::{ObsState, Probe, WindowSample};
use crate::rmodel::RouterModel;
use crate::router::{RouteContext, Router, RouterParams, SentCredit, SentFlit, StallCounters};
use crate::routing::{RoutingError, RoutingKind, RoutingTables};
use crate::traffic::{InjectionProcess, ProcessKind, TrafficPattern};

/// Full simulator configuration.
///
/// [`SimConfig::paper_defaults`] reproduces §VI-A of the paper: 8 virtual
/// channels, 8-flit buffers, 3-cycle routers, 27-cycle links, two endpoints
/// per chiplet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Virtual channels per port.
    pub vcs: usize,
    /// Buffer depth in flits per VC.
    pub buffer_depth: usize,
    /// Router pipeline latency in cycles.
    pub router_latency: u64,
    /// Router-to-router link latency in cycles (PHY + D2D wire + PHY).
    pub link_latency: u64,
    /// Endpoint-to-router (and back) link latency in cycles.
    pub injection_latency: u64,
    /// Endpoints attached to each router.
    pub endpoints_per_router: usize,
    /// Packet length in flits.
    pub packet_size: usize,
    /// Routing algorithm.
    pub routing: RoutingKind,
    /// Spatial traffic pattern.
    pub pattern: TrafficPattern,
    /// Temporal injection process (Bernoulli or bursty on/off).
    pub process: ProcessKind,
    /// Offered load in flits/cycle/endpoint.
    pub injection_rate: f64,
    /// RNG seed (traffic is reproducible given the seed).
    pub seed: u64,
    /// Source-queue capacity in packets per endpoint.
    pub source_queue_cap: usize,
    /// Watchdog: cycles without any flit movement (while flits are in the
    /// network) before deadlock is suspected.
    pub deadlock_watchdog: u64,
    /// Router microarchitecture (defaults to the paper's router; see
    /// [`crate::rmodel`]).
    pub router: RouterModel,
}

impl SimConfig {
    /// The configuration of §VI-A of the paper.
    #[must_use]
    pub fn paper_defaults() -> Self {
        Self {
            vcs: 8,
            buffer_depth: 8,
            router_latency: 3,
            link_latency: 27,
            injection_latency: 1,
            endpoints_per_router: 2,
            packet_size: 4,
            routing: RoutingKind::MinimalAdaptiveEscape,
            pattern: TrafficPattern::UniformRandom,
            process: ProcessKind::Bernoulli,
            injection_rate: 0.1,
            seed: 0xD2D_11CC,
            source_queue_cap: 64,
            deadlock_watchdog: 5_000,
            router: RouterModel::default(),
        }
    }

    /// Total per-hop pipeline cycles: the base router latency plus the
    /// model's extra crossbar stages. Every path that delays a traversing
    /// flit (serial, sharded replay, analytic zero-load) must use this.
    #[must_use]
    pub fn pipeline_cycles(&self) -> u64 {
        self.router_latency + self.router.crossbar_depth
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

/// Errors from simulator construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// Routing tables could not be built.
    Routing(RoutingError),
    /// A configuration field is invalid; the message names it.
    InvalidConfig(&'static str),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Routing(e) => write!(f, "routing: {e}"),
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Routing(e) => Some(e),
            SimError::InvalidConfig(_) => None,
        }
    }
}

impl From<RoutingError> for SimError {
    fn from(e: RoutingError) -> Self {
        SimError::Routing(e)
    }
}

/// Aggregated network statistics over the open measurement window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Cycles elapsed since the window opened.
    pub window_cycles: u64,
    /// Packets offered by all sources (including refused ones).
    pub offered_packets: u64,
    /// Packets accepted into source queues.
    pub accepted_packets: u64,
    /// Flits delivered to destinations.
    pub received_flits: u64,
    /// Packets fully delivered.
    pub received_packets: u64,
    /// Packets measured for latency (created inside the window).
    pub measured_packets: u64,
    /// Mean packet latency over measured packets (`None` if none measured).
    pub avg_packet_latency: Option<f64>,
    /// Maximum measured packet latency.
    pub max_packet_latency: u64,
    /// Delivered throughput in flits/cycle/endpoint.
    pub accepted_flits_per_cycle_per_endpoint: f64,
    /// Offered load in flits/cycle/endpoint (from generation counters).
    pub offered_flits_per_cycle_per_endpoint: f64,
    /// Largest source-queue occupancy (flits) any endpoint reached inside
    /// the window — the congestion signal closed-loop runs watch.
    pub max_source_queue_flits: u64,
    /// Mean source-queue occupancy in flits, averaged over time and over
    /// endpoints (time-weighted integral / window / endpoints).
    pub avg_source_queue_flits: f64,
    /// Flits dropped inside the window because the link carrying (or about
    /// to carry) them died.
    pub link_fault_dropped_flits: u64,
    /// Flits dropped inside the window because a router — and with it its
    /// endpoints — died.
    pub router_fault_dropped_flits: u64,
    /// Distinct packets that lost at least one flit to a fault inside the
    /// window, including queued packets abandoned at a dead or
    /// partitioned-away source.
    pub fault_dropped_packets: u64,
    /// Packets re-offered by source retransmission inside the window.
    pub retransmitted_packets: u64,
    /// Packets whose generation was squelched inside the window because
    /// the sampled destination was dead or unreachable.
    pub squelched_packets: u64,
}

/// One delivered packet, reported through the delivery log
/// ([`Simulator::take_deliveries`]): closed-loop drivers use this to
/// resolve message dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Delivery {
    /// Packet id (assigned at generation/offer time).
    pub packet: PacketId,
    /// Destination endpoint the tail flit arrived at.
    pub dest: usize,
    /// Cycle of tail-flit arrival.
    pub cycle: u64,
}

/// Physical properties of one directed router-to-router link, for
/// topologies with heterogeneous links (e.g. Kite-style express links that
/// are longer and narrower than neighbour links).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkSpec {
    /// One-way flit latency in cycles (PHY + wire + PHY).
    pub latency: u64,
    /// Serialization interval: the link sustains one flit every `interval`
    /// cycles (`1` = full bandwidth).
    pub interval: u64,
}

impl LinkSpec {
    /// A full-bandwidth link of the given latency.
    #[must_use]
    pub fn uniform(latency: u64) -> Self {
        Self { latency, interval: 1 }
    }
}

/// Sentinel for "this link's pushes stay local" in [`ShardRole`] maps.
const NO_OUTBOX: u32 = u32::MAX;

/// Partition bookkeeping for one shard of a conservative parallel run
/// (see [`crate::shard::ShardedSimulator`]).
///
/// A shard is a full `Simulator` over the whole graph that *owns* the
/// contiguous router range `[first_router, last_router)` plus those
/// routers' endpoints. For a boundary link (src and dst owned by
/// different shards), the flit delay line lives in the **destination**
/// shard and the credit delay line in the **source** shard — whichever
/// side pops it. The pushing side intercepts its pushes into a per-link
/// outbox instead; the owning side replays them at the next window
/// barrier with the original push cycle, so the line's serialization
/// state (`last_delivery`) evolves exactly as in the serial run.
#[derive(Debug)]
struct ShardRole {
    /// Owned routers `[first_router, last_router)`.
    first_router: usize,
    last_router: usize,
    /// Per net link: outbox slot for flit pushes whose destination router
    /// is foreign, or [`NO_OUTBOX`].
    flit_out: Vec<u32>,
    /// Per net link: outbox slot for credit pushes whose source router is
    /// foreign, or [`NO_OUTBOX`].
    credit_out: Vec<u32>,
    /// Outgoing boundary messages `(push_cycle, item)`, one buffer per
    /// intercepted line, preallocated to the window bound (a delay line
    /// takes at most one push per cycle).
    flit_outboxes: Vec<Vec<(u64, Flit)>>,
    credit_outboxes: Vec<Vec<(u64, Credit)>>,
    /// Link ids behind `flit_outboxes` / `credit_outboxes`, ascending.
    flit_out_links: Vec<usize>,
    credit_out_links: Vec<usize>,
    /// Boundary links whose flit / credit line this shard owns (receives
    /// replayed messages on), ascending link id.
    flit_in_links: Vec<usize>,
    credit_in_links: Vec<usize>,
}

/// Per-shard raw measurement-window sums. Integer counters only, so
/// cross-shard aggregation is order-independent and the final float
/// arithmetic ([`stats_from_sums`]) is bit-identical to the serial path.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct WindowSums {
    pub(crate) offered_packets: u64,
    pub(crate) accepted_packets: u64,
    pub(crate) received_flits: u64,
    pub(crate) received_packets: u64,
    pub(crate) measured: u64,
    pub(crate) latency_sum: u64,
    pub(crate) latency_max: u64,
    pub(crate) queue_max: u64,
    pub(crate) queue_integral: u64,
    pub(crate) link_fault_dropped_flits: u64,
    pub(crate) router_fault_dropped_flits: u64,
    pub(crate) fault_dropped_packets: u64,
    pub(crate) retransmitted_packets: u64,
    pub(crate) squelched_packets: u64,
}

impl WindowSums {
    pub(crate) fn merge(&mut self, o: &WindowSums) {
        self.offered_packets += o.offered_packets;
        self.accepted_packets += o.accepted_packets;
        self.received_flits += o.received_flits;
        self.received_packets += o.received_packets;
        self.measured += o.measured;
        self.latency_sum += o.latency_sum;
        self.latency_max = self.latency_max.max(o.latency_max);
        self.queue_max = self.queue_max.max(o.queue_max);
        self.queue_integral += o.queue_integral;
        self.link_fault_dropped_flits += o.link_fault_dropped_flits;
        self.router_fault_dropped_flits += o.router_fault_dropped_flits;
        self.fault_dropped_packets += o.fault_dropped_packets;
        self.retransmitted_packets += o.retransmitted_packets;
        self.squelched_packets += o.squelched_packets;
    }
}

/// The one place window sums become [`NetworkStats`] — shared by the
/// serial and sharded paths so both produce bit-identical floats.
pub(crate) fn stats_from_sums(
    sums: &WindowSums,
    window_cycles: u64,
    num_endpoints: usize,
    packet_size: usize,
) -> NetworkStats {
    let denom = (window_cycles.max(1) as f64) * num_endpoints as f64;
    NetworkStats {
        window_cycles,
        offered_packets: sums.offered_packets,
        accepted_packets: sums.accepted_packets,
        received_flits: sums.received_flits,
        received_packets: sums.received_packets,
        measured_packets: sums.measured,
        avg_packet_latency: (sums.measured > 0)
            .then(|| sums.latency_sum as f64 / sums.measured as f64),
        max_packet_latency: sums.latency_max,
        accepted_flits_per_cycle_per_endpoint: sums.received_flits as f64 / denom,
        offered_flits_per_cycle_per_endpoint: (sums.offered_packets * packet_size as u64)
            as f64
            / denom,
        max_source_queue_flits: sums.queue_max,
        avg_source_queue_flits: sums.queue_integral as f64 / denom,
        link_fault_dropped_flits: sums.link_fault_dropped_flits,
        router_fault_dropped_flits: sums.router_fault_dropped_flits,
        fault_dropped_packets: sums.fault_dropped_packets,
        retransmitted_packets: sums.retransmitted_packets,
        squelched_packets: sums.squelched_packets,
    }
}

/// Percentile sweep over a merged latency histogram — the algorithm of
/// [`Simulator::latency_percentiles`], shared with the sharded path.
///
/// # Panics
///
/// Panics if any `p` is outside `(0, 1]`.
pub(crate) fn percentiles_from_histogram(
    ps: &[f64],
    merged: &[u64],
    total: u64,
) -> Vec<Option<f64>> {
    for &p in ps {
        assert!(p > 0.0 && p <= 1.0, "percentile must be in (0, 1]");
    }
    let mut out = vec![None; ps.len()];
    if total == 0 || ps.is_empty() {
        return out;
    }
    // One cumulative sweep serves every requested percentile in
    // ascending target order.
    let mut order: Vec<usize> = (0..ps.len()).collect();
    order.sort_by(|&a, &b| ps[a].total_cmp(&ps[b]));
    let mut k = 0;
    let mut seen = 0u64;
    for (latency, &count) in merged.iter().enumerate() {
        seen += count;
        while k < order.len() {
            let idx = order[k];
            let target = (ps[idx] * total as f64).ceil() as u64;
            if seen < target {
                break;
            }
            out[idx] = Some(latency as f64);
            k += 1;
        }
        if k == order.len() {
            break;
        }
    }
    // p == 1.0 rounding can leave a straggler: saturate into the top
    // bucket, matching the single-percentile behaviour.
    for &idx in &order[k..] {
        out[idx] = Some((merged.len() - 1) as f64);
    }
    out
}

/// A source-retransmission record: everything needed to re-offer a packet
/// after its flits were dropped by a fault.
#[derive(Debug, Clone, Copy)]
struct Outstanding {
    src: u32,
    dest: u32,
    size: u32,
    /// Original creation cycle — preserved across retransmissions so
    /// eventual-delivery latency samples include the loss and backoff time.
    created_at: u64,
    /// Retransmissions scheduled so far (the initial send is not counted).
    attempt: u32,
}

/// Per-window fault statistics (reset by
/// [`Simulator::open_measurement_window`]).
#[derive(Debug, Default, Clone, Copy)]
struct FaultCounters {
    link_dropped_flits: u64,
    router_dropped_flits: u64,
    dropped_packets: u64,
    retransmitted: u64,
    squelched: u64,
}

/// All state behind [`Simulator::install_fault_plan`]. Boxed behind an
/// `Option` so the unfaulted common case pays one branch, not cache space.
#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    /// Next unapplied event index into `plan.schedule.events()`.
    cursor: usize,
    /// Reconstructed router graph — [`RoutingTables::new_degraded`] needs
    /// the adjacency to rebuild tables over the surviving topology.
    graph: Graph,
    /// Dead directed net links (both directions die together).
    dead_link: Vec<bool>,
    dead_router: Vec<bool>,
    dead_endpoint: Vec<bool>,
    /// Undelivered packets eligible for retransmission, by id. Empty when
    /// the plan has no [`crate::RetransmitConfig`].
    outstanding: HashMap<PacketId, Outstanding>,
    /// Pending re-offers: min-heap of `(due_cycle, source_endpoint,
    /// packet)` — the tuple order makes same-cycle processing
    /// deterministic.
    retx_heap: BinaryHeap<Reverse<(u64, u32, PacketId)>>,
    counters: FaultCounters,
}

/// A cycle-accurate NoC simulator over an arbitrary router graph.
///
/// # Example
///
/// ```
/// use chiplet_graph::gen;
/// use nocsim::{SimConfig, Simulator};
///
/// let g = gen::grid(3, 3);
/// let mut config = SimConfig::paper_defaults();
/// config.injection_rate = 0.05;
/// let mut sim = Simulator::new(&g, config)?;
/// let stats = sim.run_to_window(2_000, 4_000);
/// assert!(stats.received_packets > 0);
/// # Ok::<(), nocsim::SimError>(())
/// ```
#[derive(Debug)]
pub struct Simulator {
    config: SimConfig,
    tables: RoutingTables,
    routers: Vec<Router>,
    endpoints: Vec<Endpoint>,
    /// Directed router-to-router links.
    net_links: Vec<Link>,
    /// `link_dst[l] = (router, in_port)` receiving flits of link `l`.
    link_dst: Vec<(RouterId, usize)>,
    /// `link_src[l] = (router, out_port)` feeding flits into link `l`.
    link_src: Vec<(RouterId, usize)>,
    /// `link_out[r][p] = l`: link fed by output port `p` of router `r`.
    link_out: Vec<Vec<usize>>,
    /// `link_in[r][p] = l`: link feeding input port `p` of router `r`.
    link_in: Vec<Vec<usize>>,
    /// Endpoint→router links (credits flow back to the endpoint).
    inj_links: Vec<Link>,
    /// Router→endpoint links (credits flow back to the router).
    ej_links: Vec<Link>,
    /// Flits that traversed each net link (since construction).
    link_flit_counts: Vec<u64>,
    cycle: u64,
    window_start: u64,
    last_progress: u64,
    /// Set by [`Simulator::drain`]: endpoints stop generating traffic while
    /// the configured injection rate stays untouched in `config`.
    generation_stopped: bool,
    /// Flits inside the network (router buffers + links in flight),
    /// maintained incrementally: +1 per injected flit, −1 per ejected one.
    in_flight: usize,
    /// Bucketed event wheel for delay lines, keyed on due cycle.
    /// Invariant: every non-empty delay line has exactly one entry, keyed
    /// on its `next_due`; empty lines have none (an entry is consumed when
    /// its deliveries are processed and re-armed from the new front).
    line_events: EventWheel,
    /// Reused drain buffer for the wheel's due slot.
    wheel_scratch: Vec<u32>,
    /// Scheduled packet generations: min-heap of `(arrival_cycle,
    /// endpoint)`, one entry per endpoint with a pending arrival.
    arrival_events: BinaryHeap<Reverse<(u64, u32)>>,
    /// Routers holding buffered flits — the only ones whose allocation
    /// phases can do anything. `router_active` mirrors membership.
    active_routers: Vec<u32>,
    router_active: Vec<bool>,
    /// Endpoints with a non-empty source queue — the only ones whose
    /// injection can do anything. `endpoint_injecting` mirrors membership.
    inject_list: Vec<u32>,
    endpoint_injecting: Vec<bool>,
    /// Reusable out-param buffers for [`Router::allocate_switch`].
    sent_scratch: Vec<SentFlit>,
    credit_scratch: Vec<SentCredit>,
    /// Forced poll-every-cycle stepping (the golden-test reference path).
    reference_stepping: bool,
    /// Sharding role when this simulator is one shard of a
    /// [`crate::shard::ShardedSimulator`] (`None` for a whole-network
    /// simulator — the common case, costing one branch per sent flit).
    shard: Option<Box<ShardRole>>,
    /// When enabled, tail-flit arrivals are appended here until drained by
    /// [`Simulator::take_deliveries`]. Preallocated to one delivery per
    /// endpoint — the per-cycle bound, which is also the log's high-water
    /// mark when the caller drains at delivery granularity
    /// ([`Simulator::run_until_deliveries`]).
    delivery_log: Vec<Delivery>,
    log_deliveries: bool,
    /// Fault-injection state ([`Simulator::install_fault_plan`]); `None`
    /// in the common unfaulted case.
    faults: Option<Box<FaultState>>,
    /// Observability probe state ([`Simulator::attach_probe`]); `None` —
    /// the default — costs one branch per `run` iteration.
    obs: Option<Box<ObsState>>,
}

// The experiment engine (`crates/xp`) moves simulators onto worker
// threads; this assertion turns an accidental `!Send` field into a compile
// error here rather than a confusing one at a spawn site.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Simulator>();
};

impl Simulator {
    /// Builds a simulator for the router graph `g`.
    ///
    /// # Errors
    ///
    /// * [`SimError::Routing`] if `g` is empty or disconnected,
    /// * [`SimError::InvalidConfig`] for out-of-range parameters (zero VCs or
    ///   buffers, adaptive routing with fewer than 2 VCs, injection rate
    ///   outside `[0, 1]`, …).
    pub fn new(g: &Graph, config: SimConfig) -> Result<Self, SimError> {
        let latency = config.link_latency;
        Self::with_link_specs(g, config, |_, _| LinkSpec::uniform(latency))
    }

    /// Builds a simulator whose router-to-router links have per-link latency
    /// and serialization interval, supplied by `spec` for each directed link
    /// `(src, dst)`. `config.link_latency` is ignored for net links (it
    /// still applies to injection/ejection links).
    ///
    /// Use this for topologies with physically heterogeneous links: longer
    /// express links run at lower frequency, so they both take more cycles
    /// to cross and sustain fewer flits per router cycle.
    ///
    /// # Errors
    ///
    /// As [`Simulator::new`], plus [`SimError::InvalidConfig`] if any spec
    /// has a zero latency or interval.
    pub fn with_link_specs(
        g: &Graph,
        config: SimConfig,
        spec: impl Fn(RouterId, RouterId) -> LinkSpec,
    ) -> Result<Self, SimError> {
        Self::build(g, config, spec, None)
    }

    /// Builds one shard of a conservative parallel run: a full simulator
    /// owning routers `[first, last)` and their endpoints. Non-owned
    /// endpoints never generate traffic; pushes onto boundary lines whose
    /// pop side is foreign are intercepted into outboxes of capacity
    /// `outbox_capacity` (the window length — at most one push per cycle
    /// per line, so a barrier every window keeps them in bounds).
    pub(crate) fn new_shard(
        g: &Graph,
        config: SimConfig,
        spec: impl Fn(RouterId, RouterId) -> LinkSpec,
        owned: (usize, usize),
        outbox_capacity: usize,
    ) -> Result<Self, SimError> {
        Self::build(g, config, spec, Some((owned, outbox_capacity)))
    }

    fn build(
        g: &Graph,
        config: SimConfig,
        spec: impl Fn(RouterId, RouterId) -> LinkSpec,
        shard: Option<((usize, usize), usize)>,
    ) -> Result<Self, SimError> {
        validate(g, &config)?;
        let tables = RoutingTables::new(g, config.routing)?;
        let n = g.num_vertices();
        let params = RouterParams {
            vcs: config.vcs,
            buffer_depth: config.buffer_depth,
            pipeline_latency: config.pipeline_cycles(),
            model: config.router,
            seed: config.seed,
        };

        let mut routers = Vec::with_capacity(n);
        let mut net_links = Vec::new();
        let mut max_latency = config.injection_latency.max(1);
        let mut max_interval = 1;
        let mut link_dst = Vec::new();
        let mut link_src = Vec::new();
        let mut link_out: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut link_in: Vec<Vec<usize>> = vec![Vec::new(); n];
        for r in 0..n {
            let neighbors = g.neighbors(r);
            routers.push(Router::new(r, neighbors.len(), config.endpoints_per_router, params));
            link_in[r] = vec![usize::MAX; neighbors.len()];
            for (out_port, &u) in neighbors.iter().enumerate() {
                let l = net_links.len();
                let s = spec(r, u);
                if s.latency == 0 || s.interval == 0 {
                    return Err(SimError::InvalidConfig(
                        "link specs need latency >= 1 and interval >= 1",
                    ));
                }
                max_latency = max_latency.max(s.latency);
                max_interval = max_interval.max(s.interval);
                net_links.push(Link::with_interval(s.latency, s.interval));
                let in_port = g.neighbors(u).binary_search(&r).expect("symmetric adjacency");
                link_dst.push((u, in_port));
                link_src.push((r, out_port));
                link_out[r].push(l);
            }
        }
        // Fill link_in from link_dst.
        for (l, &(u, q)) in link_dst.iter().enumerate() {
            link_in[u][q] = l;
        }

        let max_ports = routers.iter().map(Router::num_ports).max().unwrap_or(1);
        // Flow control bounds every delay line's occupancy: each flit (or
        // outstanding credit) in flight holds one of the vcs × buffer_depth
        // downstream buffer slots. Reserving that bound up front keeps the
        // steady-state hot path allocation-free from cycle 0.
        let credit_bound = config.vcs * config.buffer_depth;
        for link in &mut net_links {
            link.reserve(credit_bound);
        }
        let num_endpoints = n * config.endpoints_per_router;
        let endpoints = (0..num_endpoints)
            .map(|e| {
                Endpoint::new(
                    e,
                    num_endpoints,
                    config.vcs,
                    config.buffer_depth,
                    config.source_queue_cap,
                    config.packet_size,
                    config.seed,
                )
            })
            .collect();
        let endpoint_link = || {
            let mut link = Link::new(config.injection_latency);
            link.reserve(credit_bound);
            link
        };
        let inj_links = (0..num_endpoints).map(|_| endpoint_link()).collect();
        let ej_links = (0..num_endpoints).map(|_| endpoint_link()).collect();

        let num_net_links = net_links.len();
        let mut sim = Self {
            config,
            tables,
            routers,
            endpoints,
            net_links,
            link_dst,
            link_src,
            link_out,
            link_in,
            inj_links,
            ej_links,
            link_flit_counts: vec![0; num_net_links],
            cycle: 0,
            window_start: u64::MAX,
            last_progress: 0,
            generation_stopped: false,
            in_flight: 0,
            // Scheduling distance is bounded by latency + pipeline (or the
            // serialization interval), so this horizon always fits.
            line_events: EventWheel::new(
                config.pipeline_cycles() + max_latency + max_interval + 2,
                2 * num_net_links + 4 * num_endpoints,
            ),
            wheel_scratch: Vec::with_capacity(2 * num_net_links + 4 * num_endpoints),
            arrival_events: BinaryHeap::with_capacity(num_endpoints + 1),
            active_routers: Vec::with_capacity(n),
            router_active: vec![false; n],
            inject_list: Vec::with_capacity(num_endpoints),
            endpoint_injecting: vec![false; num_endpoints],
            sent_scratch: Vec::with_capacity(max_ports),
            credit_scratch: Vec::with_capacity(max_ports),
            reference_stepping: false,
            shard: None,
            delivery_log: Vec::with_capacity(num_endpoints),
            log_deliveries: false,
            faults: None,
            obs: None,
        };
        if let Some(((first, last), cap)) = shard {
            assert!(first < last && last <= n, "shard range out of bounds");
            let mut role = ShardRole {
                first_router: first,
                last_router: last,
                flit_out: vec![NO_OUTBOX; num_net_links],
                credit_out: vec![NO_OUTBOX; num_net_links],
                flit_outboxes: Vec::new(),
                credit_outboxes: Vec::new(),
                flit_out_links: Vec::new(),
                credit_out_links: Vec::new(),
                flit_in_links: Vec::new(),
                credit_in_links: Vec::new(),
            };
            let owned = first..last;
            for l in 0..num_net_links {
                let src = sim.link_src[l].0;
                let dst = sim.link_dst[l].0;
                match (owned.contains(&src), owned.contains(&dst)) {
                    // We feed the link but its flit line is popped by the
                    // destination's shard; credits come back to us.
                    (true, false) => {
                        role.flit_out[l] = u32::try_from(role.flit_outboxes.len())
                            .expect("outbox count fits u32");
                        role.flit_outboxes.push(Vec::with_capacity(cap));
                        role.flit_out_links.push(l);
                        role.credit_in_links.push(l);
                    }
                    // We pop the flit line; the credits we push back are
                    // popped by the source's shard.
                    (false, true) => {
                        role.credit_out[l] = u32::try_from(role.credit_outboxes.len())
                            .expect("outbox count fits u32");
                        role.credit_outboxes.push(Vec::with_capacity(cap));
                        role.credit_out_links.push(l);
                        role.flit_in_links.push(l);
                    }
                    _ => {}
                }
            }
            sim.shard = Some(Box::new(role));
        }
        let process = sim.injection_process();
        let epr = sim.config.endpoints_per_router;
        let owned_endpoints = match &sim.shard {
            Some(role) => role.first_router * epr..role.last_router * epr,
            None => 0..sim.endpoints.len(),
        };
        // Only owned endpoints ever generate traffic; foreign ones stay
        // idle forever (their routers are serviced by another shard).
        for e in owned_endpoints {
            sim.endpoints[e].schedule_arrival(0, process);
        }
        sim.rebuild_event_state();
        Ok(sim)
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The routing tables in use.
    #[must_use]
    pub fn tables(&self) -> &RoutingTables {
        &self.tables
    }

    /// Current cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of endpoints.
    #[must_use]
    pub fn num_endpoints(&self) -> usize {
        self.endpoints.len()
    }

    /// Opens the measurement window at the current cycle.
    pub fn open_measurement_window(&mut self) {
        self.window_start = self.cycle;
        for e in &mut self.endpoints {
            e.open_window(self.cycle);
        }
        if let Some(f) = self.faults.as_deref_mut() {
            f.counters = FaultCounters::default();
        }
        // Endpoint (and fault) counters just reset; re-zero the probe's
        // delta snapshot so the next window's deltas stay exact. Stall and
        // link counters are never reset, so their snapshots stand.
        if let Some(o) = self.obs.as_deref_mut() {
            o.prev = WindowSums::default();
        }
    }

    /// The injection process implied by the configuration.
    fn injection_process(&self) -> InjectionProcess {
        InjectionProcess {
            rate: self.config.injection_rate,
            packet_size: self.config.packet_size,
            kind: self.config.process,
        }
    }

    /// Forces (or lifts) poll-every-cycle stepping: the reference path
    /// visits every link, router, and endpoint each cycle instead of
    /// consulting the event wheel and active sets. Both paths drive the
    /// same component operations, so statistics are bit-identical — the
    /// golden-equivalence tests rely on exactly this switch.
    ///
    /// Switching back to event-driven stepping rebuilds the event wheel
    /// and active sets from the network state (the reference path does not
    /// maintain them).
    pub fn set_reference_stepping(&mut self, on: bool) {
        if self.reference_stepping == on {
            return;
        }
        self.reference_stepping = on;
        if !on {
            self.rebuild_event_state();
        }
    }

    /// Rebuilds the event wheel and active sets from scratch (used at
    /// construction and when leaving reference stepping).
    fn rebuild_event_state(&mut self) {
        self.line_events.clear();
        self.arrival_events.clear();
        self.active_routers.clear();
        self.router_active.fill(false);
        self.inject_list.clear();
        self.endpoint_injecting.fill(false);
        for l in 0..self.net_links.len() {
            arm_line(&mut self.line_events, &self.net_links[l].flits, net_flit_id(l));
            arm_line(&mut self.line_events, &self.net_links[l].credits, net_credit_id(l));
        }
        let base = 2 * self.net_links.len();
        for e in 0..self.endpoints.len() {
            arm_line(&mut self.line_events, &self.inj_links[e].flits, inj_flit_id(base, e));
            arm_line(&mut self.line_events, &self.inj_links[e].credits, inj_credit_id(base, e));
            arm_line(&mut self.line_events, &self.ej_links[e].flits, ej_flit_id(base, e));
            arm_line(&mut self.line_events, &self.ej_links[e].credits, ej_credit_id(base, e));
        }
        for r in 0..self.routers.len() {
            if self.routers[r].has_buffered() {
                self.router_active[r] = true;
                self.active_routers.push(r as u32);
            }
        }
        for e in 0..self.endpoints.len() {
            if !self.generation_stopped && self.endpoints[e].next_arrival() != IDLE {
                self.arrival_events.push(Reverse((self.endpoints[e].next_arrival(), e as u32)));
            }
            if !self.endpoints[e].is_drained() {
                self.endpoint_injecting[e] = true;
                self.inject_list.push(e as u32);
            }
        }
    }

    /// Puts `r` on the active worklist (no-op while reference stepping —
    /// the reference path services every buffered router anyway).
    fn activate_router(&mut self, r: usize) {
        if !self.reference_stepping && !self.router_active[r] {
            self.router_active[r] = true;
            self.active_routers.push(r as u32);
        }
    }

    // ── Delivery helpers (shared by both stepping paths) ────────────────
    //
    // Each pops everything due at `t` from one delay line and dispatches
    // it; in event mode the caller's heap entry is consumed and the line
    // is re-armed here from its new front.

    fn deliver_net_flits(&mut self, t: u64, l: usize) {
        let (dst, in_port) = self.link_dst[l];
        while let Some(flit) = self.net_links[l].flits.pop_due(t) {
            self.routers[dst].receive_flit(in_port, flit);
            self.activate_router(dst);
            self.last_progress = t;
        }
        if !self.reference_stepping {
            arm_line(&mut self.line_events, &self.net_links[l].flits, net_flit_id(l));
        }
    }

    fn deliver_net_credits(&mut self, t: u64, l: usize) {
        let (src, out_port) = self.link_src[l];
        while let Some(credit) = self.net_links[l].credits.pop_due(t) {
            self.routers[src].receive_credit(out_port, credit);
        }
        if !self.reference_stepping {
            arm_line(&mut self.line_events, &self.net_links[l].credits, net_credit_id(l));
        }
    }

    fn deliver_inj_flits(&mut self, t: u64, e: usize) {
        let r = e / self.config.endpoints_per_router;
        let port = self.routers[r].endpoint_port(e % self.config.endpoints_per_router);
        while let Some(flit) = self.inj_links[e].flits.pop_due(t) {
            self.routers[r].receive_flit(port, flit);
            self.activate_router(r);
            self.last_progress = t;
        }
        if !self.reference_stepping {
            let base = 2 * self.net_links.len();
            arm_line(&mut self.line_events, &self.inj_links[e].flits, inj_flit_id(base, e));
        }
    }

    fn deliver_inj_credits(&mut self, t: u64, e: usize) {
        while let Some(credit) = self.inj_links[e].credits.pop_due(t) {
            self.endpoints[e].receive_credit(credit.vc);
        }
        if !self.reference_stepping {
            let base = 2 * self.net_links.len();
            arm_line(&mut self.line_events, &self.inj_links[e].credits, inj_credit_id(base, e));
        }
    }

    fn deliver_ej_flits(&mut self, t: u64, e: usize) {
        let base = 2 * self.net_links.len();
        let event = !self.reference_stepping;
        while let Some(flit) = self.ej_links[e].flits.pop_due(t) {
            self.endpoints[e].receive_flit(t, &flit);
            self.in_flight -= 1;
            if self.log_deliveries && flit.is_tail {
                self.delivery_log.push(Delivery { packet: flit.packet, dest: e, cycle: t });
            }
            if flit.is_tail {
                // Delivered: the packet no longer needs retransmission
                // cover (no-op unless a retransmitting fault plan is
                // installed — the map stays empty otherwise).
                if let Some(f) = self.faults.as_deref_mut() {
                    f.outstanding.remove(&flit.packet);
                }
            }
            // Endpoint consumes immediately; return the buffer slot.
            push_line(
                &mut self.ej_links[e].credits,
                event.then(|| (&mut self.line_events, ej_credit_id(base, e))),
                t,
                0,
                Credit { vc: flit.vc },
            );
            self.last_progress = t;
        }
        if event {
            arm_line(&mut self.line_events, &self.ej_links[e].flits, ej_flit_id(base, e));
        }
    }

    fn deliver_ej_credits(&mut self, t: u64, e: usize) {
        let r = e / self.config.endpoints_per_router;
        let port = self.routers[r].endpoint_port(e % self.config.endpoints_per_router);
        while let Some(credit) = self.ej_links[e].credits.pop_due(t) {
            self.routers[r].receive_credit(port, credit);
        }
        if !self.reference_stepping {
            let base = 2 * self.net_links.len();
            arm_line(&mut self.line_events, &self.ej_links[e].credits, ej_credit_id(base, e));
        }
    }

    /// Decodes and processes one event-wheel entry.
    fn dispatch_line_event(&mut self, t: u64, id: u32) {
        let nl2 = 2 * self.net_links.len() as u32;
        if id < nl2 {
            let l = (id / 2) as usize;
            if id.is_multiple_of(2) {
                self.deliver_net_flits(t, l);
            } else {
                self.deliver_net_credits(t, l);
            }
        } else {
            let k = id - nl2;
            let e = (k / 4) as usize;
            match k % 4 {
                0 => self.deliver_inj_flits(t, e),
                1 => self.deliver_inj_credits(t, e),
                2 => self.deliver_ej_flits(t, e),
                _ => self.deliver_ej_credits(t, e),
            }
        }
    }

    /// Runs both allocation phases for router `r` and routes its outputs
    /// onto the links. Allocation-free in steady state: the router reuses
    /// its own nomination/grant scratch and the simulator's `sent`/`credit`
    /// buffers are recycled across calls.
    fn service_router(&mut self, t: u64, r: usize) {
        let epr = self.config.endpoints_per_router;
        let ctx = RouteContext { tables: &self.tables, endpoints_per_router: epr };
        self.routers[r].allocate_vcs(ctx);
        let mut sent = std::mem::take(&mut self.sent_scratch);
        let mut credits = std::mem::take(&mut self.credit_scratch);
        self.routers[r].allocate_switch(&mut sent, &mut credits);
        if !sent.is_empty() {
            self.last_progress = t;
        }
        let pipeline = self.config.pipeline_cycles();
        let num_net_ports = self.routers[r].num_net_ports();
        let base = 2 * self.net_links.len();
        let event = !self.reference_stepping;
        for &SentFlit { out_port, flit } in &sent {
            if out_port < num_net_ports {
                let l = self.link_out[r][out_port];
                self.link_flit_counts[l] += 1;
                if let Some(role) = self.shard.as_deref_mut() {
                    let slot = role.flit_out[l];
                    if slot != NO_OUTBOX {
                        // Boundary link: the flit line lives in the
                        // destination's shard. Record the push for the
                        // next window barrier; the flit leaves this
                        // shard's in-flight accounting now and enters the
                        // receiver's when the message is applied.
                        role.flit_outboxes[slot as usize].push((t, flit));
                        self.in_flight -= 1;
                        continue;
                    }
                }
                push_line(
                    &mut self.net_links[l].flits,
                    event.then(|| (&mut self.line_events, net_flit_id(l))),
                    t,
                    pipeline,
                    flit,
                );
            } else {
                let e = r * epr + (out_port - num_net_ports);
                push_line(
                    &mut self.ej_links[e].flits,
                    event.then(|| (&mut self.line_events, ej_flit_id(base, e))),
                    t,
                    pipeline,
                    flit,
                );
            }
        }
        for &SentCredit { in_port, credit } in &credits {
            if in_port < num_net_ports {
                let l = self.link_in[r][in_port];
                if let Some(role) = self.shard.as_deref_mut() {
                    let slot = role.credit_out[l];
                    if slot != NO_OUTBOX {
                        // Boundary link: the credit line lives in the
                        // source's shard; hand the push over at the next
                        // window barrier.
                        role.credit_outboxes[slot as usize].push((t, credit));
                        continue;
                    }
                }
                push_line(
                    &mut self.net_links[l].credits,
                    event.then(|| (&mut self.line_events, net_credit_id(l))),
                    t,
                    0,
                    credit,
                );
            } else {
                let e = r * epr + (in_port - num_net_ports);
                push_line(
                    &mut self.inj_links[e].credits,
                    event.then(|| (&mut self.line_events, inj_credit_id(base, e))),
                    t,
                    0,
                    credit,
                );
            }
        }
        self.sent_scratch = sent;
        self.credit_scratch = credits;
    }

    /// Fires endpoint `e`'s scheduled packet generation at `t` and
    /// re-arms its next arrival.
    fn generate_endpoint(&mut self, t: u64, e: usize) {
        let process = self.injection_process();
        let next = if let Some(f) = self.faults.as_deref_mut() {
            // Degraded generation: identical RNG draws, but destinations
            // that are dead or partitioned away are squelched instead of
            // enqueued — sources on a severed island go quiet rather than
            // wedging the drain watchdog.
            let epr = self.config.endpoints_per_router;
            let src_router = e / epr;
            let tables = &self.tables;
            let dead_endpoint = &f.dead_endpoint;
            let retransmit = f.plan.retransmit.is_some();
            let outstanding = &mut f.outstanding;
            let (next, squelched) = self.endpoints[e].generate_due_degraded(
                t,
                process,
                self.config.pattern,
                |dest| !dead_endpoint[dest] && tables.reachable(src_router, dest / epr),
                &mut |id, dest, size| {
                    if retransmit {
                        let prev = outstanding.insert(
                            id,
                            Outstanding {
                                src: e as u32,
                                dest: dest as u32,
                                size: size as u32,
                                created_at: t,
                                attempt: 0,
                            },
                        );
                        debug_assert!(prev.is_none(), "packet id reused");
                    }
                },
            );
            if squelched {
                f.counters.squelched += 1;
            }
            next
        } else {
            self.endpoints[e].generate_due(t, process, self.config.pattern)
        };
        if !self.reference_stepping {
            if next != IDLE {
                self.arrival_events.push(Reverse((next, e as u32)));
            }
            if !self.endpoints[e].is_drained() && !self.endpoint_injecting[e] {
                self.endpoint_injecting[e] = true;
                self.inject_list.push(e as u32);
            }
        }
    }

    /// Attempts one flit injection for endpoint `e` at `t`.
    fn try_inject_endpoint(&mut self, t: u64, e: usize) {
        if let Some(flit) = self.endpoints[e].try_inject(t) {
            let base = 2 * self.net_links.len();
            let event = !self.reference_stepping;
            push_line(
                &mut self.inj_links[e].flits,
                event.then(|| (&mut self.line_events, inj_flit_id(base, e))),
                t,
                0,
                flit,
            );
            self.in_flight += 1;
            self.last_progress = t;
        }
    }

    /// One event-driven cycle: deliveries due now, scheduled generations,
    /// the active-router worklist, and backlogged injections.
    fn step_event(&mut self) {
        let t = self.cycle;

        // ── 1. Deliver everything due on the event wheel ────────────────
        let mut batch = std::mem::take(&mut self.wheel_scratch);
        self.line_events.take_due(t, &mut batch);
        for &id in &batch {
            self.dispatch_line_event(t, id);
        }
        batch.clear();
        self.wheel_scratch = batch;

        // ── 2. Scheduled packet generations (ascending endpoint order
        //       within the cycle: packet ids match the reference path) ───
        while let Some(&Reverse((due, e))) = self.arrival_events.peek() {
            if due > t {
                break;
            }
            self.arrival_events.pop();
            if !self.generation_stopped {
                self.generate_endpoint(t, e as usize);
            }
        }

        // ── 3. Allocation and traversal for active routers only ─────────
        let mut i = 0;
        while i < self.active_routers.len() {
            let r = self.active_routers[i] as usize;
            self.service_router(t, r);
            if self.routers[r].has_buffered() {
                i += 1;
            } else {
                self.router_active[r] = false;
                self.active_routers.swap_remove(i);
            }
        }

        // ── 4. Injection for backlogged endpoints only ──────────────────
        let mut i = 0;
        while i < self.inject_list.len() {
            let e = self.inject_list[i] as usize;
            self.try_inject_endpoint(t, e);
            if self.endpoints[e].is_drained() {
                self.endpoint_injecting[e] = false;
                self.inject_list.swap_remove(i);
            } else {
                i += 1;
            }
        }

        self.cycle = t + 1;
    }

    /// One poll-every-cycle reference cycle: visits every link, router,
    /// and endpoint unconditionally, driving the same operations as
    /// [`Simulator::step_event`].
    fn step_reference(&mut self) {
        let t = self.cycle;
        for l in 0..self.net_links.len() {
            self.deliver_net_flits(t, l);
            self.deliver_net_credits(t, l);
        }
        for e in 0..self.endpoints.len() {
            self.deliver_inj_flits(t, e);
            self.deliver_inj_credits(t, e);
            self.deliver_ej_flits(t, e);
            self.deliver_ej_credits(t, e);
        }
        for r in 0..self.routers.len() {
            // Quiescent routers are skipped in both paths: with no
            // buffered flit neither allocation phase can act, and skipping
            // keeps the round-robin pointers bit-identical between paths.
            if self.routers[r].has_buffered() {
                self.service_router(t, r);
            }
        }
        for e in 0..self.endpoints.len() {
            if !self.generation_stopped && self.endpoints[e].next_arrival() == t {
                self.generate_endpoint(t, e);
            }
            self.try_inject_endpoint(t, e);
        }
        self.cycle = t + 1;
    }

    /// Advances the simulation by one cycle.
    pub fn step(&mut self) {
        if self.reference_stepping {
            self.step_reference();
        } else {
            self.step_event();
        }
    }

    /// The earliest cycle at which anything is scheduled to happen
    /// ([`IDLE`] if nothing is).
    fn next_event_cycle(&self) -> u64 {
        let line = self.line_events.next_at_or_after(self.cycle);
        let arrival = self.arrival_events.peek().map_or(IDLE, |&Reverse((due, _))| due);
        let mut next = line.min(arrival);
        if let Some(f) = self.faults.as_deref() {
            // Idle fast-forward must not skip a scheduled failure or a
            // pending retransmission.
            if let Some(ev) = f.plan.schedule.events().get(f.cursor) {
                next = next.min(ev.cycle);
            }
            if let Some(&Reverse((due, _, _))) = f.retx_heap.peek() {
                next = next.min(due);
            }
        }
        next
    }

    /// Runs `cycles` simulation cycles. Idle stretches (no active router,
    /// no backlogged endpoint) fast-forward straight to the next scheduled
    /// event — skipped cycles have nothing to do by construction, so
    /// statistics are unaffected.
    pub fn run(&mut self, cycles: u64) {
        let target = self.cycle.saturating_add(cycles);
        if self.reference_stepping {
            while self.cycle < target {
                self.obs_sample_if_due();
                self.service_faults();
                self.step_reference();
            }
            self.obs_sample_if_due();
            return;
        }
        while self.cycle < target {
            self.obs_sample_if_due();
            self.service_faults();
            if self.active_routers.is_empty() && self.inject_list.is_empty() {
                let next = self.next_event_cycle();
                if next > self.cycle {
                    // An attached probe clamps the jump to its next sample
                    // boundary: the extra cycles stepped are idle by
                    // construction, so the sample lands at the exact
                    // boundary without perturbing any statistic.
                    self.cycle = next.min(target).min(self.obs_next_sample());
                    if self.cycle >= target {
                        break;
                    }
                    self.obs_sample_if_due();
                    // Failures or retransmissions may be due exactly at
                    // the landing cycle — before its step.
                    self.service_faults();
                }
            }
            self.step_event();
        }
        // A boundary landing exactly on `target` samples here, so e.g. a
        // measurement window whose length is a multiple of `sample_every`
        // records its final window.
        self.obs_sample_if_due();
    }

    // ── Closed-loop driver interface ────────────────────────────────────
    //
    // Workload engines (crates/workload) bypass the stochastic traffic
    // generator: they offer explicit packets when dependencies resolve and
    // observe tail-flit deliveries through the delivery log. The hot path
    // is unchanged — offers land in the same source queues, and deliveries
    // are recorded inside the existing ejection handler.

    /// Enables (or disables) the delivery log. While enabled, every
    /// tail-flit arrival is recorded until drained with
    /// [`Simulator::take_deliveries`]; drain at delivery granularity
    /// (see [`Simulator::run_until_deliveries`]) to keep the log inside
    /// its preallocated capacity.
    pub fn set_delivery_log(&mut self, on: bool) {
        self.log_deliveries = on;
        if !on {
            self.delivery_log.clear();
        }
    }

    /// Moves all logged deliveries into `out` (appended in arrival order;
    /// ties broken by endpoint id, matching the reference path's polling
    /// order). Allocation-free when `out` has capacity.
    pub fn take_deliveries(&mut self, out: &mut Vec<Delivery>) {
        out.append(&mut self.delivery_log);
    }

    /// Offers one explicit packet at the current cycle: `size_flits` flits
    /// from endpoint `src` to endpoint `dest`. Returns the assigned packet
    /// id, or `None` when `src`'s source queue cannot take the packet —
    /// the caller retries after the queue drains (deliveries are the
    /// natural wake-up).
    ///
    /// With a fault plan installed, offers whose source or destination is
    /// dead — or whose destination sits on a severed partition — are also
    /// refused with `None`: such a packet could never be delivered, and
    /// routing a flit toward an unreachable destination is unsound.
    ///
    /// The packet's `created_at` is the current cycle, so closed-loop
    /// packets are measured by the normal latency machinery.
    ///
    /// # Panics
    ///
    /// Panics if `src`/`dest` are out of range, equal, or `size_flits`
    /// is 0.
    pub fn offer_packet(
        &mut self,
        src: usize,
        dest: usize,
        size_flits: usize,
    ) -> Option<PacketId> {
        assert!(src < self.endpoints.len(), "source endpoint out of range");
        assert!(dest < self.endpoints.len(), "destination endpoint out of range");
        assert_ne!(src, dest, "self-traffic does not exercise the interconnect");
        assert!(size_flits >= 1, "packets need at least one flit");
        if let Some(f) = self.faults.as_deref() {
            let epr = self.config.endpoints_per_router;
            if f.dead_endpoint[src]
                || f.dead_endpoint[dest]
                || !self.tables.reachable(src / epr, dest / epr)
            {
                return None;
            }
        }
        let t = self.cycle;
        let id = self.endpoints[src].offer_packet(t, dest, size_flits)?;
        if let Some(f) = self.faults.as_deref_mut() {
            if f.plan.retransmit.is_some() {
                f.outstanding.insert(
                    id,
                    Outstanding {
                        src: src as u32,
                        dest: dest as u32,
                        size: size_flits as u32,
                        created_at: t,
                        attempt: 0,
                    },
                );
            }
        }
        if !self.reference_stepping && !self.endpoint_injecting[src] {
            self.endpoint_injecting[src] = true;
            self.inject_list.push(src as u32);
        }
        Some(id)
    }

    /// Runs until the delivery log is non-empty or `target` (an absolute
    /// cycle) is reached, fast-forwarding idle stretches exactly like
    /// [`Simulator::run`]. Returns `true` when deliveries are pending in
    /// the log.
    ///
    /// This is the closed-loop driver's pacing primitive: it wakes the
    /// driver at each dependency resolution (a delivery) and at its own
    /// scheduled injection times (`target`), without ever polling cycles
    /// in between.
    pub fn run_until_deliveries(&mut self, target: u64) -> bool {
        while self.cycle < target && self.delivery_log.is_empty() {
            self.service_faults();
            if !self.reference_stepping
                && self.active_routers.is_empty()
                && self.inject_list.is_empty()
            {
                let next = self.next_event_cycle();
                if next > self.cycle {
                    self.cycle = next.min(target);
                    if self.cycle >= target {
                        break;
                    }
                    self.service_faults();
                }
            }
            self.step();
        }
        !self.delivery_log.is_empty()
    }

    /// Flits currently inside the network (router buffers + links in
    /// flight), excluding source-queue backlogs. O(1): maintained
    /// incrementally (+1 per injected flit, −1 per ejected one — buffer
    /// and wire occupancy between those two points is conserved).
    #[must_use]
    pub fn flits_in_network(&self) -> usize {
        debug_assert_eq!(
            self.in_flight,
            self.recount_flits_in_network(),
            "incremental in-flight counter out of sync"
        );
        self.in_flight
    }

    /// O(routers + links) recount backing the `debug_assert` in
    /// [`Simulator::flits_in_network`].
    fn recount_flits_in_network(&self) -> usize {
        let buffered: usize = self.routers.iter().map(Router::buffered_flits).sum();
        let net: usize = self.net_links.iter().map(|l| l.flits.in_flight()).sum();
        let inj: usize = self.inj_links.iter().map(|l| l.flits.in_flight()).sum();
        let ej: usize = self.ej_links.iter().map(|l| l.flits.in_flight()).sum();
        buffered + net + inj + ej
    }

    /// `true` if flits are stuck: nothing has moved for the watchdog period
    /// while the network still holds flits.
    #[must_use]
    pub fn deadlock_suspected(&self) -> bool {
        self.flits_in_network() > 0
            && self.cycle.saturating_sub(self.last_progress) > self.config.deadlock_watchdog
    }

    /// Aggregated statistics since the measurement window opened.
    ///
    /// # Panics
    ///
    /// Panics if no measurement window was opened.
    #[must_use]
    pub fn stats(&self) -> NetworkStats {
        assert!(self.window_start != u64::MAX, "open a measurement window first");
        let window_cycles = self.cycle - self.window_start;
        stats_from_sums(
            &self.window_sums(),
            window_cycles,
            self.endpoints.len(),
            self.config.packet_size,
        )
    }

    /// Raw window counter sums over this simulator's endpoints. For a
    /// shard, foreign endpoints never generate or receive, so this is
    /// exactly the owned endpoints' contribution — summable across shards.
    pub(crate) fn window_sums(&self) -> WindowSums {
        let mut sums = WindowSums::default();
        for e in &self.endpoints {
            let s = e.stats();
            sums.offered_packets += s.offered_packets;
            sums.accepted_packets += s.accepted_packets;
            sums.received_flits += s.received_flits;
            sums.received_packets += s.received_packets;
            sums.measured += s.latency_count;
            sums.latency_sum += s.latency_sum;
            sums.latency_max = sums.latency_max.max(s.latency_max);
            let (m, integral) = e.queue_occupancy(self.cycle);
            sums.queue_max = sums.queue_max.max(m);
            sums.queue_integral += integral;
        }
        if let Some(f) = self.faults.as_deref() {
            sums.link_fault_dropped_flits = f.counters.link_dropped_flits;
            sums.router_fault_dropped_flits = f.counters.router_dropped_flits;
            sums.fault_dropped_packets = f.counters.dropped_packets;
            sums.retransmitted_packets = f.counters.retransmitted;
            sums.squelched_packets = f.counters.squelched;
        }
        sums
    }

    /// Latency percentile estimate over the measured packets (e.g. `0.5`,
    /// `0.95`, `0.99`), or `None` if nothing was measured. Resolution is one
    /// cycle up to [`crate::endpoint::LATENCY_HISTOGRAM_BUCKETS`] cycles;
    /// longer latencies saturate into the top bucket (reported as that
    /// bucket's lower edge).
    ///
    /// For several percentiles at once, prefer
    /// [`Simulator::latency_percentiles`]: it merges the per-endpoint
    /// histograms a single time instead of once per `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1]`.
    #[must_use]
    pub fn latency_percentile(&self, p: f64) -> Option<f64> {
        self.latency_percentiles(&[p])[0]
    }

    /// Latency percentile estimates for every `p` in `ps` (in matching
    /// order), from a single merge of the per-endpoint histograms and a
    /// single cumulative sweep. Entries are `None` when nothing was
    /// measured; see [`Simulator::latency_percentile`] for resolution.
    ///
    /// # Panics
    ///
    /// Panics if any `p` is outside `(0, 1]`.
    #[must_use]
    pub fn latency_percentiles(&self, ps: &[f64]) -> Vec<Option<f64>> {
        let mut merged = vec![0u64; crate::endpoint::LATENCY_HISTOGRAM_BUCKETS];
        let total = self.add_latency_histogram(&mut merged);
        percentiles_from_histogram(ps, &merged, total)
    }

    /// Adds this simulator's per-endpoint latency histograms into `merged`
    /// and returns the measured-packet count — the merge step shared with
    /// the sharded path.
    pub(crate) fn add_latency_histogram(&self, merged: &mut [u64]) -> u64 {
        let mut total = 0u64;
        for e in &self.endpoints {
            total += e.stats().latency_count;
            for (m, &c) in merged.iter_mut().zip(e.latency_histogram()) {
                *m += u64::from(c);
            }
        }
        total
    }

    /// Human-readable report of every router holding flits or bindings —
    /// the first thing to read when [`Simulator::deadlock_suspected`]
    /// fires. One line per occupied input VC and per owned output VC.
    #[must_use]
    pub fn blocked_packet_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (r, router) in self.routers.iter().enumerate() {
            let inputs = router.occupancy_report();
            let outputs = router.output_report();
            if inputs.is_empty() && outputs.is_empty() {
                continue;
            }
            let _ = writeln!(out, "router {r}:");
            for (port, vc, buffered, bound, escape, dest) in inputs {
                let _ = writeln!(
                    out,
                    "  in  port {port} vc {vc}: {buffered} flits, bound {bound:?}, escape {escape}, head_dest {dest:?}"
                );
            }
            for (port, vc, credits, owner) in outputs {
                let _ = writeln!(
                    out,
                    "  out port {port} vc {vc}: {credits} credits, owner {owner:?}"
                );
            }
        }
        out
    }

    /// Jain's fairness index over per-endpoint delivered flits in the
    /// measurement window: `(Σxᵢ)² / (n·Σxᵢ²)`, 1.0 when every endpoint
    /// receives equally, approaching `1/n` when one endpoint hogs the
    /// network. `None` if nothing was delivered.
    ///
    /// Under uniform traffic a healthy network sits near 1; hotspot
    /// patterns (or unfair allocators) push it down — a companion metric
    /// to aggregate saturation throughput.
    ///
    /// # Panics
    ///
    /// Panics if no measurement window was opened.
    #[must_use]
    pub fn fairness_index(&self) -> Option<f64> {
        assert!(self.window_start != u64::MAX, "open a measurement window first");
        let received: Vec<f64> =
            self.endpoints.iter().map(|e| e.stats().received_flits as f64).collect();
        let sum: f64 = received.iter().sum();
        if sum == 0.0 {
            return None;
        }
        let sum_sq: f64 = received.iter().map(|x| x * x).sum();
        Some(sum * sum / (received.len() as f64 * sum_sq))
    }

    /// Per-channel traffic counts since construction: one entry per
    /// *directed* router-to-router link, `(src, dst, flits)`.
    ///
    /// Under uniform traffic the hottest channels concentrate on the
    /// topology's bisection — the structural reason bisection bandwidth
    /// predicts saturation throughput (§III-C).
    #[must_use]
    pub fn channel_loads(&self) -> Vec<(RouterId, RouterId, u64)> {
        self.link_flit_counts
            .iter()
            .enumerate()
            .map(|(l, &count)| {
                let (src, _) = self.link_src[l];
                let (dst, _) = self.link_dst[l];
                (src, dst, count)
            })
            .collect()
    }

    // ── Observability probes (crate::obs) ───────────────────────────────

    /// Attaches an observability probe: every `probe.sample_every` cycles
    /// (at absolute-cycle multiples, so serial and sharded runs sample at
    /// identical boundaries) a [`WindowSample`] is recorded into a series
    /// preallocated for `probe.capacity` windows. Recording stops when the
    /// series is full; re-attaching replaces it.
    ///
    /// Probes observe, never perturb: all buffers are allocated here,
    /// sampling reads counters the simulator already maintains, and
    /// nothing recorded feeds back into simulation decisions — statistics
    /// are bit-identical to a probe-free run (see [`crate::obs`]).
    pub fn attach_probe(&mut self, probe: Probe) {
        let mut state = ObsState::new(probe, self.cycle, self.link_flit_counts.len());
        state.prev = self.window_sums();
        state.prev_stalls = self.stall_counters();
        state.prev_links.copy_from_slice(&self.link_flit_counts);
        self.obs = Some(Box::new(state));
    }

    /// The probe's recorded window series so far (empty without a probe).
    #[must_use]
    pub fn obs_windows(&self) -> &[WindowSample] {
        self.obs.as_deref().map_or(&[], |o| &o.windows)
    }

    /// Detaches the probe (if any), returning the recorded series.
    pub fn detach_probe(&mut self) -> Vec<WindowSample> {
        self.obs.take().map_or_else(Vec::new, |o| o.windows)
    }

    /// Network-wide stall-cause tallies since construction (observability
    /// only — see [`StallCounters`]).
    #[must_use]
    pub fn stall_counters(&self) -> StallCounters {
        let mut stalls = StallCounters::default();
        for r in &self.routers {
            stalls.absorb(r.stall_counters());
        }
        stalls
    }

    /// The next sample boundary, or `u64::MAX` without an attached (and
    /// non-full) probe — [`Simulator::run`] clamps idle fast-forward here.
    #[inline]
    fn obs_next_sample(&self) -> u64 {
        self.obs.as_deref().map_or(u64::MAX, |o| o.next_sample)
    }

    /// Takes a window sample if the current cycle reached the boundary.
    #[inline]
    fn obs_sample_if_due(&mut self) {
        if self.cycle >= self.obs_next_sample() {
            self.obs_sample();
        }
    }

    /// Records one [`WindowSample`]: deltas of the endpoint / stall / link
    /// counters against the previous sample's snapshots (updated in
    /// place), plus instantaneous occupancy gauges. Allocation-free: the
    /// series and snapshots were preallocated at attach time.
    fn obs_sample(&mut self) {
        let sums = self.window_sums();
        let stalls = self.stall_counters();
        let buffered: u64 = self.routers.iter().map(|r| r.buffered_flits() as u64).sum();
        let flits_in_network = self.in_flight as u64;
        let cycle = self.cycle;
        let Some(obs) = self.obs.as_deref_mut() else { return };
        if obs.windows.len() == obs.windows.capacity() {
            obs.next_sample = u64::MAX;
            return;
        }
        let mut link_flits = 0u64;
        let mut max_link_flits = 0u64;
        for (prev, &cur) in obs.prev_links.iter_mut().zip(&self.link_flit_counts) {
            let d = cur - *prev;
            *prev = cur;
            link_flits += d;
            max_link_flits = max_link_flits.max(d);
        }
        // Endpoint counters reset at `open_measurement_window` (which also
        // resets `obs.prev`); between resets they are monotone, so plain
        // subtraction is exact.
        obs.windows.push(WindowSample {
            window: obs.windows.len() as u64,
            start_cycle: obs.last_sample_cycle,
            end_cycle: cycle,
            offered_packets: sums.offered_packets - obs.prev.offered_packets,
            accepted_packets: sums.accepted_packets - obs.prev.accepted_packets,
            received_flits: sums.received_flits - obs.prev.received_flits,
            received_packets: sums.received_packets - obs.prev.received_packets,
            measured_packets: sums.measured - obs.prev.measured,
            latency_sum: sums.latency_sum - obs.prev.latency_sum,
            flits_in_network,
            buffered_flits: buffered,
            stalls: StallCounters {
                vc_starved: stalls.vc_starved - obs.prev_stalls.vc_starved,
                credit_starved: stalls.credit_starved - obs.prev_stalls.credit_starved,
                switch_lost: stalls.switch_lost - obs.prev_stalls.switch_lost,
            },
            link_flits,
            max_link_flits,
        });
        obs.prev = sums;
        obs.prev_stalls = stalls;
        obs.last_sample_cycle = cycle;
        obs.next_sample = (cycle / obs.sample_every + 1) * obs.sample_every;
    }

    /// Runs `warmup` cycles, opens the measurement window, then runs
    /// `measure` cycles and returns the window's statistics — the standard
    /// warmup/measure schedule every load point uses.
    pub fn run_to_window(&mut self, warmup: u64, measure: u64) -> NetworkStats {
        self.run(warmup);
        self.open_measurement_window();
        self.run(measure);
        self.stats()
    }

    /// `true` once nothing is left to move: no flit in the network, no
    /// source-queue backlog, and no retransmission still pending. O(1) in
    /// event mode (incremental in-flight counter + injection worklist).
    fn fully_drained(&self) -> bool {
        self.flits_in_network() == 0
            && self.faults.as_deref().is_none_or(|f| f.retx_heap.is_empty())
            && if self.reference_stepping {
                self.endpoints.iter().all(Endpoint::is_drained)
            } else {
                self.inject_list.is_empty()
            }
    }

    /// Stops traffic generation and runs until the network drains or
    /// `max_cycles` pass. Returns `true` if fully drained.
    ///
    /// The configured [`SimConfig::injection_rate`] is *not* modified:
    /// [`Simulator::config`] keeps reporting the rate the simulation ran
    /// at before the drain.
    pub fn drain(&mut self, max_cycles: u64) -> bool {
        self.generation_stopped = true;
        let deadline = self.cycle.saturating_add(max_cycles);
        while self.cycle < deadline {
            if self.fully_drained() {
                return true;
            }
            self.service_faults();
            self.step();
        }
        self.fully_drained()
    }

    // ── Fault injection (crate::fault) ──────────────────────────────────
    //
    // Failures are applied atomically at the start of their scheduled
    // cycle, in two halves so the sharded coordinator can interpose a
    // barrier between them: `fault_begin` marks the dying components,
    // rebuilds the routing tables over the survivors, and returns the
    // locally visible *doomed* packet ids; `fault_commit` then purges a
    // (globally agreed, sorted) doomed set everywhere, returns each freed
    // buffer slot's credit to whoever holds it upstream, and schedules
    // retransmissions. The standalone path simply commits its own seeds.

    /// Installs a fault plan: scheduled permanent link/router failures and
    /// optional source retransmission. Must be called on a freshly built
    /// simulator (cycle 0). Installing a plan — even an empty one —
    /// switches generation to the fault-aware path, which draws the exact
    /// same RNG sequence and only squelches destinations that are actually
    /// dead or unreachable.
    ///
    /// # Panics
    ///
    /// Panics if the simulator has already run, a plan is already
    /// installed, or an event targets a link or router absent from the
    /// topology.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        assert_eq!(self.cycle, 0, "install the fault plan before running");
        assert!(self.faults.is_none(), "a fault plan is already installed");
        let n = self.routers.len();
        for ev in plan.schedule.events() {
            match ev.target {
                FaultTarget::Router(r) => {
                    assert!(r < n, "fault targets router {r}, but the topology has {n}");
                }
                FaultTarget::Link { a, b } => {
                    assert!(
                        a < n
                            && b < n
                            && self.link_out[a].iter().any(|&l| self.link_dst[l].0 == b),
                        "fault targets link ({a}, {b}) absent from the topology"
                    );
                }
            }
        }
        // Reconstruct the router graph from the wiring: every post-failure
        // table rebuild needs the adjacency.
        let edges: Vec<(usize, usize)> = (0..self.net_links.len())
            .filter_map(|l| {
                let a = self.link_src[l].0;
                let b = self.link_dst[l].0;
                (a < b).then_some((a, b))
            })
            .collect();
        let graph = Graph::from_edges(n, &edges).expect("simulator wiring is a valid graph");
        self.faults = Some(Box::new(FaultState {
            plan,
            cursor: 0,
            graph,
            dead_link: vec![false; self.net_links.len()],
            dead_router: vec![false; n],
            dead_endpoint: vec![false; self.endpoints.len()],
            outstanding: HashMap::new(),
            retx_heap: BinaryHeap::new(),
            counters: FaultCounters::default(),
        }));
    }

    /// Cycle of the next unapplied failure event ([`IDLE`] when none).
    pub(crate) fn next_fault_cycle(&self) -> u64 {
        self.faults
            .as_deref()
            .and_then(|f| f.plan.schedule.events().get(f.cursor))
            .map_or(IDLE, |ev| ev.cycle)
    }

    /// First half of applying the failure event at the cursor: marks the
    /// dying components dead, rebuilds the routing tables over the
    /// surviving topology, and returns the sorted, deduplicated ids of
    /// every packet this simulator can see is doomed:
    ///
    /// * flits on a dying wire, and flits buffered in (or bound through) a
    ///   dying router;
    /// * a dying endpoint's in-transit flits and partially injected front
    ///   packet;
    /// * the bound packet of any input VC aimed at a dead link — the
    ///   upstream remnant of a packet severed mid-link;
    /// * flits at (or en route to) a router from which their destination
    ///   is no longer reachable, and flits to a dead endpoint;
    /// * every packet committed to the escape sub-network, whose per-
    ///   component trees are rebuilt from scratch (mixing old- and
    ///   new-tree hops could cycle the escape VC, so the escape layer is
    ///   flushed wholesale — rare in practice, and retransmission
    ///   re-offers the flushed packets).
    ///
    /// In a sharded run every physical flit lives in exactly one shard, so
    /// the union of the shards' seed sets equals the serial set.
    pub(crate) fn fault_begin(&mut self) -> Vec<PacketId> {
        let mut f = self.faults.take().expect("no fault plan installed");
        let epr = self.config.endpoints_per_router;
        let ev = f.plan.schedule.events()[f.cursor];
        debug_assert!(ev.cycle <= self.cycle, "fault event serviced early");
        match ev.target {
            FaultTarget::Link { a, b } => {
                for l in 0..self.net_links.len() {
                    let (src, _) = self.link_src[l];
                    let (dst, _) = self.link_dst[l];
                    if (src == a && dst == b) || (src == b && dst == a) {
                        f.dead_link[l] = true;
                    }
                }
            }
            FaultTarget::Router(r) => {
                f.dead_router[r] = true;
                for e in r * epr..(r + 1) * epr {
                    f.dead_endpoint[e] = true;
                }
                for l in 0..self.net_links.len() {
                    if self.link_src[l].0 == r || self.link_dst[l].0 == r {
                        f.dead_link[l] = true;
                    }
                }
            }
        }
        let link_out = &self.link_out;
        let link_dst = &self.link_dst;
        let dead_link = &f.dead_link;
        let tables = RoutingTables::new_degraded(
            &f.graph,
            self.config.routing,
            &f.dead_router,
            |u, v| link_out[u].iter().any(|&l| link_dst[l].0 == v && dead_link[l]),
        );

        let mut seeds: Vec<PacketId> = Vec::new();
        for l in 0..self.net_links.len() {
            let (dst, _) = self.link_dst[l];
            if f.dead_link[l] {
                for flit in self.net_links[l].flits.iter() {
                    seeds.push(flit.packet);
                }
            } else {
                for flit in self.net_links[l].flits.iter() {
                    if flit.escape
                        || f.dead_endpoint[flit.dest]
                        || !tables.reachable(dst, flit.dest / epr)
                    {
                        seeds.push(flit.packet);
                    }
                }
            }
        }
        for r in 0..self.routers.len() {
            if f.dead_router[r] {
                self.routers[r].for_each_flit(|flit| seeds.push(flit.packet));
                self.routers[r].for_each_bound_packet(|_, p, _| seeds.push(p));
            } else {
                self.routers[r].for_each_flit(|flit| {
                    if flit.escape
                        || f.dead_endpoint[flit.dest]
                        || !tables.reachable(r, flit.dest / epr)
                    {
                        seeds.push(flit.packet);
                    }
                });
                let num_net = self.routers[r].num_net_ports();
                let link_out_r = &self.link_out[r];
                self.routers[r].for_each_bound_packet(|out_port, p, escape| {
                    if escape || (out_port < num_net && f.dead_link[link_out_r[out_port]]) {
                        seeds.push(p);
                    }
                });
            }
        }
        for e in 0..self.endpoints.len() {
            let r = e / epr;
            if f.dead_endpoint[e] {
                for flit in self.inj_links[e].flits.iter() {
                    seeds.push(flit.packet);
                }
                for flit in self.ej_links[e].flits.iter() {
                    seeds.push(flit.packet);
                }
                if let Some((p, _)) = self.endpoints[e].partially_injected() {
                    seeds.push(p);
                }
            } else {
                for flit in self.inj_links[e].flits.iter() {
                    if flit.escape
                        || f.dead_endpoint[flit.dest]
                        || !tables.reachable(r, flit.dest / epr)
                    {
                        seeds.push(flit.packet);
                    }
                }
                // Ejection-line flits are already at their live
                // destination and always deliverable. But a live source
                // mid-way through injecting toward a now-severed
                // destination must abandon that packet: its flits would
                // have nowhere to route.
                if let Some((p, dest)) = self.endpoints[e].partially_injected() {
                    if f.dead_endpoint[dest] || !tables.reachable(r, dest / epr) {
                        seeds.push(p);
                    }
                }
            }
        }
        seeds.sort_unstable();
        seeds.dedup();
        self.tables = tables;
        self.faults = Some(f);
        seeds
    }

    /// Second half: purges the agreed doomed set from every component,
    /// returns freed buffer slots' credits upstream, drops dead or
    /// unreachable source-queue packets, schedules retransmissions for
    /// doomed packets this simulator sourced, and advances the event
    /// cursor. `count_doomed` attributes the doomed-set cardinality to
    /// this simulator's packet-drop counter (true for standalone runs and
    /// exactly one shard, so cross-shard sums match the serial count).
    ///
    /// Returns `(link, vc)` credit returns owed to routers this shard does
    /// not own (always empty for standalone runs); the coordinator routes
    /// them to the owning shard's
    /// [`Simulator::apply_foreign_fault_credits`].
    ///
    /// Credit sidebands are never purged: credits in flight on a dead link
    /// keep draining so surviving packets that already crossed release
    /// upstream state cleanly, and stale credits toward a dead output are
    /// harmless because nothing routes onto a dead link again.
    pub(crate) fn fault_commit(
        &mut self,
        doomed: &[PacketId],
        count_doomed: bool,
    ) -> Vec<(u32, u32)> {
        debug_assert!(
            doomed.windows(2).all(|w| w[0] < w[1]),
            "doomed set must be sorted and deduplicated"
        );
        let t = self.cycle;
        let epr = self.config.endpoints_per_router;
        let mut f = self.faults.take().expect("no fault plan installed");
        let ev = f.plan.schedule.events()[f.cursor];
        let is_doomed = |p: PacketId| doomed.binary_search(&p).is_ok();
        let (first_owned, last_owned) = self
            .shard
            .as_deref()
            .map_or((0, self.routers.len()), |r| (r.first_router, r.last_router));
        let mut dropped = 0usize;
        let mut foreign: Vec<(u32, u32)> = Vec::new();
        let mut freed: Vec<(usize, usize)> = Vec::new();

        // Net flit lines: a dead wire loses everything on it, live wires
        // lose exactly the doomed flits. A flit on a wire holds a slot in
        // the downstream input buffer, tracked by the upstream output's
        // credit counter — which may live in another shard.
        for l in 0..self.net_links.len() {
            if self.net_links[l].flits.is_empty() {
                continue;
            }
            let dead = f.dead_link[l];
            let (src, out_port) = self.link_src[l];
            freed.clear();
            self.net_links[l].flits.purge(|flit| {
                if dead || is_doomed(flit.packet) {
                    freed.push((out_port, flit.vc));
                    true
                } else {
                    false
                }
            });
            dropped += freed.len();
            for &(port, vc) in &freed {
                if (first_owned..last_owned).contains(&src) {
                    self.routers[src].receive_credit(port, Credit { vc });
                } else {
                    foreign.push((l as u32, vc as u32));
                }
            }
        }

        // Router buffers and bindings; dead routers lose everything.
        for r in 0..self.routers.len() {
            let dead_r = f.dead_router[r];
            let num_net = self.routers[r].num_net_ports();
            freed.clear();
            dropped += self.routers[r].purge_doomed(
                |p| dead_r || is_doomed(p),
                |port, flit| freed.push((port, flit.vc)),
            );
            for &(port, vc) in &freed {
                if port < num_net {
                    let l = self.link_in[r][port];
                    let (src, out_port) = self.link_src[l];
                    if (first_owned..last_owned).contains(&src) {
                        self.routers[src].receive_credit(out_port, Credit { vc });
                    } else {
                        foreign.push((l as u32, vc as u32));
                    }
                } else {
                    let e = r * epr + (port - num_net);
                    self.endpoints[e].receive_credit(vc);
                }
            }
        }

        // Injection/ejection wires and source queues (all endpoint-local,
        // so never cross a shard boundary).
        for e in 0..self.endpoints.len() {
            let r = e / epr;
            let dead_e = f.dead_endpoint[e];
            freed.clear();
            self.inj_links[e].flits.purge(|flit| {
                if dead_e || is_doomed(flit.packet) {
                    freed.push((0, flit.vc));
                    true
                } else {
                    false
                }
            });
            dropped += freed.len();
            for &(_, vc) in &freed {
                self.endpoints[e].receive_credit(vc);
            }
            let ej_port = self.routers[r].endpoint_port(e % epr);
            freed.clear();
            self.ej_links[e].flits.purge(|flit| {
                if dead_e || is_doomed(flit.packet) {
                    freed.push((0, flit.vc));
                    true
                } else {
                    false
                }
            });
            dropped += freed.len();
            for &(_, vc) in &freed {
                self.routers[r].receive_credit(ej_port, Credit { vc });
            }
            if dead_e {
                let counters = &mut f.counters;
                let outstanding = &mut f.outstanding;
                self.endpoints[e].kill(t, |p| {
                    if !is_doomed(p) {
                        counters.dropped_packets += 1;
                    }
                    outstanding.remove(&p);
                });
            } else {
                let dead_endpoint = &f.dead_endpoint;
                let counters = &mut f.counters;
                let outstanding = &mut f.outstanding;
                let tables = &self.tables;
                self.endpoints[e].purge_faulted(
                    t,
                    &is_doomed,
                    |dest| dead_endpoint[dest] || !tables.reachable(r, dest / epr),
                    |p| {
                        counters.dropped_packets += 1;
                        outstanding.remove(&p);
                    },
                );
            }
        }

        if count_doomed {
            f.counters.dropped_packets += doomed.len() as u64;
        }
        match ev.target {
            FaultTarget::Link { .. } => f.counters.link_dropped_flits += dropped as u64,
            FaultTarget::Router(_) => f.counters.router_dropped_flits += dropped as u64,
        }
        self.in_flight -= dropped;
        // The purge itself is movement; don't let the watchdog misread
        // the quiet right after a mass drop.
        self.last_progress = t;

        // Source retransmission: re-offer each doomed packet we sourced
        // after an exponential-backoff timeout. In a sharded run only the
        // source shard holds the outstanding entry, so exactly one shard
        // schedules each packet.
        if let Some(cfg) = f.plan.retransmit {
            for &p in doomed {
                let Some(entry) = f.outstanding.get(&p).copied() else { continue };
                let src = entry.src as usize;
                let dest = entry.dest as usize;
                if f.dead_endpoint[src]
                    || f.dead_endpoint[dest]
                    || !self.tables.reachable(src / epr, dest / epr)
                    || entry.attempt + 1 >= cfg.max_attempts
                {
                    f.outstanding.remove(&p);
                } else {
                    let delay = cfg.backoff(entry.attempt).max(1);
                    f.outstanding.get_mut(&p).expect("entry present").attempt += 1;
                    f.retx_heap.push(Reverse((t.saturating_add(delay), entry.src, p)));
                }
            }
        }

        f.cursor += 1;
        self.faults = Some(f);
        if !self.reference_stepping {
            self.rebuild_event_state();
        }
        foreign
    }

    /// Applies credit returns computed by another shard's
    /// [`Simulator::fault_commit`]; entries for routers this shard does
    /// not own are skipped (the list is broadcast to all shards).
    pub(crate) fn apply_foreign_fault_credits(&mut self, items: &[(u32, u32)]) {
        let Some(role) = self.shard.as_deref() else { return };
        let owned = role.first_router..role.last_router;
        for &(l, vc) in items {
            let (src, out_port) = self.link_src[l as usize];
            if owned.contains(&src) {
                self.routers[src].receive_credit(out_port, Credit { vc: vc as usize });
            }
        }
    }

    /// Per-step fault pump: applies every failure event due at the current
    /// cycle, then performs due retransmissions. Sharded runs skip the
    /// application half — the coordinator drives `fault_begin`/
    /// `fault_commit` at window barriers so all shards purge in lockstep.
    fn service_faults(&mut self) {
        if self.faults.is_none() {
            return;
        }
        if self.shard.is_none() {
            while self.next_fault_cycle() <= self.cycle {
                let seeds = self.fault_begin();
                let foreign = self.fault_commit(&seeds, true);
                debug_assert!(foreign.is_empty(), "standalone runs own every router");
            }
        }
        self.process_due_retx();
    }

    /// Re-offers every retransmission due at the current cycle. A packet
    /// whose source or destination died — or whose destination is no
    /// longer reachable — is given up; a full source queue backs off
    /// again.
    fn process_due_retx(&mut self) {
        let t = self.cycle;
        let due_now = match self.faults.as_deref() {
            Some(fs) => matches!(fs.retx_heap.peek(), Some(&Reverse((d, _, _))) if d <= t),
            None => return,
        };
        if !due_now {
            return;
        }
        let mut f = self.faults.take().expect("peeked above");
        let cfg = f.plan.retransmit.expect("retransmission heap implies a config");
        let epr = self.config.endpoints_per_router;
        while let Some(&Reverse((d, src, p))) = f.retx_heap.peek() {
            if d > t {
                break;
            }
            f.retx_heap.pop();
            let Some(entry) = f.outstanding.get(&p).copied() else { continue };
            let src_e = src as usize;
            let dest = entry.dest as usize;
            if f.dead_endpoint[src_e]
                || f.dead_endpoint[dest]
                || !self.tables.reachable(src_e / epr, dest / epr)
            {
                f.outstanding.remove(&p);
                continue;
            }
            if self.endpoints[src_e].requeue_packet(
                t,
                p,
                dest,
                entry.size as usize,
                entry.created_at,
            ) {
                f.counters.retransmitted += 1;
                if !self.reference_stepping && !self.endpoint_injecting[src_e] {
                    self.endpoint_injecting[src_e] = true;
                    self.inject_list.push(src);
                }
            } else if entry.attempt + 1 >= cfg.max_attempts {
                f.outstanding.remove(&p);
            } else {
                let delay = cfg.backoff(entry.attempt).max(1);
                f.outstanding.get_mut(&p).expect("entry present").attempt += 1;
                f.retx_heap.push(Reverse((t.saturating_add(delay), src, p)));
            }
        }
        self.faults = Some(f);
    }

    // ── Shard-coordination hooks (crate::shard) ─────────────────────────
    //
    // Everything the bounded-lag coordinator needs: posting/applying
    // boundary messages at window barriers, drain bookkeeping, and raw
    // accessors for bit-exact cross-shard stat aggregation.

    /// Boundary links this shard sends flits on (ascending link id; index
    /// `i` is outbox slot `i`).
    pub(crate) fn flit_out_links(&self) -> &[usize] {
        self.shard.as_ref().map_or(&[], |r| &r.flit_out_links)
    }

    /// Boundary links this shard sends credits on (ascending link id).
    pub(crate) fn credit_out_links(&self) -> &[usize] {
        self.shard.as_ref().map_or(&[], |r| &r.credit_out_links)
    }

    /// Boundary links whose flit line this shard owns (ascending link id).
    pub(crate) fn flit_in_links(&self) -> &[usize] {
        self.shard.as_ref().map_or(&[], |r| &r.flit_in_links)
    }

    /// Boundary links whose credit line this shard owns (ascending link
    /// id).
    pub(crate) fn credit_in_links(&self) -> &[usize] {
        self.shard.as_ref().map_or(&[], |r| &r.credit_in_links)
    }

    /// Swaps outbox slot `i` (flit direction) with the empty, equally
    /// preallocated `mailbox` — O(1), allocation-free handoff.
    pub(crate) fn post_flit_outbox(&mut self, i: usize, mailbox: &mut Vec<(u64, Flit)>) {
        debug_assert!(mailbox.is_empty(), "mailbox not drained by its receiver");
        let role = self.shard.as_deref_mut().expect("sharded simulator");
        std::mem::swap(&mut role.flit_outboxes[i], mailbox);
    }

    /// Swaps outbox slot `i` (credit direction) with the empty `mailbox`.
    pub(crate) fn post_credit_outbox(&mut self, i: usize, mailbox: &mut Vec<(u64, Credit)>) {
        debug_assert!(mailbox.is_empty(), "mailbox not drained by its receiver");
        let role = self.shard.as_deref_mut().expect("sharded simulator");
        std::mem::swap(&mut role.credit_outboxes[i], mailbox);
    }

    /// Replays boundary flit pushes onto link `l`'s flit line. Each
    /// message re-runs the exact `push(cycle, pipeline)` the sending
    /// router performed, so delivery cycles and the line's serialization
    /// state are bit-identical to the serial run. Clears `msgs` (capacity
    /// kept).
    pub(crate) fn apply_boundary_flits(&mut self, l: usize, msgs: &mut Vec<(u64, Flit)>) {
        debug_assert!(!self.reference_stepping, "sharded runs are event-driven");
        // Must match `service_router` exactly: boundary replays re-run the
        // sending router's push, crossbar stages included.
        let pipeline = self.config.pipeline_cycles();
        for &(cycle, flit) in msgs.iter() {
            push_line(
                &mut self.net_links[l].flits,
                Some((&mut self.line_events, net_flit_id(l))),
                cycle,
                pipeline,
                flit,
            );
            self.in_flight += 1;
        }
        msgs.clear();
    }

    /// Replays boundary credit pushes onto link `l`'s credit line; see
    /// [`Simulator::apply_boundary_flits`].
    pub(crate) fn apply_boundary_credits(&mut self, l: usize, msgs: &mut Vec<(u64, Credit)>) {
        debug_assert!(!self.reference_stepping, "sharded runs are event-driven");
        for &(cycle, credit) in msgs.iter() {
            push_line(
                &mut self.net_links[l].credits,
                Some((&mut self.line_events, net_credit_id(l))),
                cycle,
                0,
                credit,
            );
        }
        msgs.clear();
    }

    /// Stops traffic generation without running (the sharded drain's
    /// per-worker half of [`Simulator::drain`]).
    pub(crate) fn stop_generation(&mut self) {
        self.generation_stopped = true;
    }

    /// Whether nothing is left to move locally (see
    /// [`Simulator::fully_drained`]).
    pub(crate) fn is_fully_drained(&self) -> bool {
        self.fully_drained()
    }

    /// Last cycle any flit moved in this shard.
    pub(crate) fn last_progress_cycle(&self) -> u64 {
        self.last_progress
    }

    /// Rewinds the cycle counter to the exact global drain cycle. Sound
    /// only after a global drain: the cycles being unwound moved no flit
    /// anywhere (only residual credit deliveries, which no reported stat
    /// observes), and generation is stopped.
    pub(crate) fn rewind_cycle(&mut self, to: u64) {
        debug_assert!(self.generation_stopped, "rewind is a drain-only operation");
        debug_assert!(to <= self.cycle, "rewind must not advance the clock");
        self.cycle = to;
    }

    /// Per-link flit counts since construction (boundary links count on
    /// the sending shard only, so cross-shard sums match the serial run).
    pub(crate) fn link_flit_counts(&self) -> &[u64] {
        &self.link_flit_counts
    }
}

// ── Event-wheel plumbing ────────────────────────────────────────────────
//
// Delay lines are identified by a dense `u32` id ordered exactly like the
// reference path's polling order: net-link flit/credit wires first, then
// per-endpoint injection/ejection wires. `base` is `2 × num_net_links`.

/// A bucketed event wheel keyed on due cycle: slot `due % horizon` chains
/// the ids of the delay lines whose front item is due then. Sound because
/// a line's scheduling distance (`due − now` at scheduling time) is
/// bounded by its latency plus the router pipeline, or its serialization
/// interval — all strictly below `horizon` — so a slot never mixes cycles.
///
/// Slots are intrusive singly-linked lists threaded through a per-line
/// `next` pointer: every line has at most one pending event, so one slot
/// of pointer storage per line suffices and scheduling/draining never
/// allocates — part of the hot path's zero-allocation contract.
#[derive(Debug)]
struct EventWheel {
    /// Per slot: first line id in the chain, or `WHEEL_NONE`.
    slot_head: Vec<u32>,
    /// Per line id: next line in its slot's chain, or `WHEEL_NONE`.
    next: Vec<u32>,
    horizon: u64,
    len: usize,
}

const WHEEL_NONE: u32 = u32::MAX;

impl EventWheel {
    fn new(horizon: u64, num_lines: usize) -> Self {
        Self {
            slot_head: vec![WHEEL_NONE; horizon as usize],
            next: vec![WHEEL_NONE; num_lines],
            horizon,
            len: 0,
        }
    }

    fn schedule(&mut self, due: u64, id: u32) {
        let slot = (due % self.horizon) as usize;
        self.next[id as usize] = self.slot_head[slot];
        self.slot_head[slot] = id;
        self.len += 1;
    }

    /// Earliest pending due cycle at or after `now`, or [`IDLE`].
    fn next_at_or_after(&self, now: u64) -> u64 {
        if self.len == 0 {
            return IDLE;
        }
        for d in 0..self.horizon {
            if self.slot_head[((now + d) % self.horizon) as usize] != WHEEL_NONE {
                return now + d;
            }
        }
        unreachable!("non-empty wheel with no slot inside the horizon");
    }

    /// Moves the ids due at `t` into `out` (cleared first).
    fn take_due(&mut self, t: u64, out: &mut Vec<u32>) {
        out.clear();
        let slot = (t % self.horizon) as usize;
        let mut id = self.slot_head[slot];
        self.slot_head[slot] = WHEEL_NONE;
        while id != WHEEL_NONE {
            out.push(id);
            id = self.next[id as usize];
        }
        self.len -= out.len();
    }

    fn clear(&mut self) {
        self.slot_head.fill(WHEEL_NONE);
        self.len = 0;
    }
}

fn net_flit_id(l: usize) -> u32 {
    (2 * l) as u32
}
fn net_credit_id(l: usize) -> u32 {
    (2 * l + 1) as u32
}
fn inj_flit_id(base: usize, e: usize) -> u32 {
    (base + 4 * e) as u32
}
fn inj_credit_id(base: usize, e: usize) -> u32 {
    (base + 4 * e + 1) as u32
}
fn ej_flit_id(base: usize, e: usize) -> u32 {
    (base + 4 * e + 2) as u32
}
fn ej_credit_id(base: usize, e: usize) -> u32 {
    (base + 4 * e + 3) as u32
}

/// Arms the event wheel for `line` if anything is in flight (used when
/// (re)building the wheel and after processing a line's deliveries).
fn arm_line<T>(wheel: &mut EventWheel, line: &DelayLine<T>, id: u32) {
    let due = line.next_due();
    if due != IDLE {
        wheel.schedule(due, id);
    }
}

/// Pushes `item` onto `line`; when `events` is supplied (event-driven
/// stepping) and the line was empty, schedules its new delivery on the
/// wheel. Pushes to a non-empty line never change the front, so no entry
/// is needed then — the line already has one.
fn push_line<T>(
    line: &mut DelayLine<T>,
    events: Option<(&mut EventWheel, u32)>,
    cycle: u64,
    extra: u64,
    item: T,
) {
    let was_empty = line.is_empty();
    line.push(cycle, extra, item);
    if was_empty {
        if let Some((wheel, id)) = events {
            wheel.schedule(line.next_due(), id);
        }
    }
}

fn validate(g: &Graph, config: &SimConfig) -> Result<(), SimError> {
    if config.vcs == 0 {
        return Err(SimError::InvalidConfig("vcs must be at least 1"));
    }
    if config.routing == RoutingKind::MinimalAdaptiveEscape && config.vcs < 2 {
        return Err(SimError::InvalidConfig(
            "adaptive routing with escape needs at least 2 VCs (VC 0 is the escape)",
        ));
    }
    if config.buffer_depth == 0 {
        return Err(SimError::InvalidConfig("buffer_depth must be at least 1"));
    }
    if config.packet_size == 0 {
        return Err(SimError::InvalidConfig("packet_size must be at least 1"));
    }
    if config.endpoints_per_router == 0 {
        return Err(SimError::InvalidConfig("endpoints_per_router must be at least 1"));
    }
    if !(0.0..=1.0).contains(&config.injection_rate) {
        return Err(SimError::InvalidConfig("injection_rate must be within [0, 1]"));
    }
    if config.source_queue_cap == 0 {
        return Err(SimError::InvalidConfig("source_queue_cap must be at least 1"));
    }
    if config.router.bubble_escape && config.buffer_depth < 2 {
        return Err(SimError::InvalidConfig(
            "bubble flow control needs buffer_depth >= 2 (entry requires two free slots)",
        ));
    }
    // The event wheel's horizon grows with the pipeline; cap the crossbar
    // depth so a typo cannot allocate an absurd wheel.
    if config.router.crossbar_depth > 256 {
        return Err(SimError::InvalidConfig("crossbar_depth must be at most 256"));
    }
    let _ = g;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_graph::gen;

    fn small_config(rate: f64) -> SimConfig {
        SimConfig {
            vcs: 4,
            buffer_depth: 4,
            router_latency: 3,
            link_latency: 27,
            injection_latency: 1,
            endpoints_per_router: 2,
            packet_size: 4,
            routing: RoutingKind::MinimalAdaptiveEscape,
            pattern: TrafficPattern::UniformRandom,
            process: ProcessKind::Bernoulli,
            injection_rate: rate,
            seed: 99,
            source_queue_cap: 16,
            deadlock_watchdog: 2_000,
            router: RouterModel::default(),
        }
    }

    #[test]
    fn config_validation() {
        let g = gen::grid(2, 2);
        let bad = SimConfig { vcs: 0, ..small_config(0.1) };
        assert!(matches!(Simulator::new(&g, bad), Err(SimError::InvalidConfig(_))));
        let bad = SimConfig { vcs: 1, ..small_config(0.1) };
        assert!(matches!(Simulator::new(&g, bad), Err(SimError::InvalidConfig(_))));
        let bad = SimConfig { injection_rate: 1.5, ..small_config(0.1) };
        assert!(matches!(Simulator::new(&g, bad), Err(SimError::InvalidConfig(_))));
        let disconnected = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert!(matches!(
            Simulator::new(&disconnected, small_config(0.1)),
            Err(SimError::Routing(RoutingError::DisconnectedTopology))
        ));
    }

    #[test]
    fn packets_flow_end_to_end() {
        let g = gen::grid(2, 2);
        let mut sim = Simulator::new(&g, small_config(0.1)).unwrap();
        sim.run(500);
        sim.open_measurement_window();
        sim.run(2_000);
        let stats = sim.stats();
        assert!(stats.received_packets > 0, "no packets delivered");
        assert!(stats.avg_packet_latency.is_some());
        assert!(!sim.deadlock_suspected());
    }

    #[test]
    fn no_flit_loss_after_drain() {
        let g = gen::grid(3, 3);
        let mut sim = Simulator::new(&g, small_config(0.2)).unwrap();
        sim.open_measurement_window();
        sim.run(2_000);
        let drained = sim.drain(20_000);
        assert!(drained, "network failed to drain");
        let stats = sim.stats();
        // Conservation: every accepted packet is eventually delivered.
        assert_eq!(stats.received_packets, stats.accepted_packets);
        assert_eq!(
            stats.received_flits,
            stats.accepted_packets * sim.config().packet_size as u64
        );
    }

    #[test]
    fn drain_preserves_configured_rate() {
        let g = gen::grid(2, 2);
        let mut sim = Simulator::new(&g, small_config(0.2)).unwrap();
        sim.open_measurement_window();
        sim.run(1_000);
        assert!(sim.drain(20_000), "network failed to drain");
        // The drain stops generation without clobbering the config.
        assert_eq!(sim.config().injection_rate, 0.2);
        // And generation really is stopped.
        let offered_before = sim.stats().offered_packets;
        sim.run(1_000);
        assert_eq!(sim.stats().offered_packets, offered_before);
    }

    #[test]
    fn run_to_window_matches_manual_schedule() {
        let g = gen::grid(2, 2);
        let mut manual = Simulator::new(&g, small_config(0.1)).unwrap();
        manual.run(500);
        manual.open_measurement_window();
        manual.run(2_000);
        let mut helper = Simulator::new(&g, small_config(0.1)).unwrap();
        assert_eq!(helper.run_to_window(500, 2_000), manual.stats());
    }

    #[test]
    fn latency_bounded_below_by_structural_minimum() {
        let g = gen::grid(2, 2);
        let cfg = small_config(0.02);
        let mut sim = Simulator::new(&g, cfg).unwrap();
        sim.open_measurement_window();
        sim.run(6_000);
        sim.drain(20_000);
        let stats = sim.stats();
        assert!(stats.measured_packets > 0);
        // Minimum possible latency: same-router pair, H = 0:
        // inj 1 + router 3 + ej 1 + (P-1) 3 = 8 cycles.
        let min = 1 + cfg.router_latency + 1 + (cfg.packet_size as u64 - 1);
        assert!(
            stats.avg_packet_latency.unwrap() >= min as f64,
            "avg latency below structural minimum"
        );
    }

    #[test]
    fn zero_rate_generates_nothing() {
        let g = gen::grid(2, 2);
        let mut sim = Simulator::new(&g, small_config(0.0)).unwrap();
        sim.open_measurement_window();
        sim.run(1_000);
        let stats = sim.stats();
        assert_eq!(stats.offered_packets, 0);
        assert_eq!(stats.received_flits, 0);
        assert_eq!(sim.flits_in_network(), 0);
    }

    #[test]
    fn single_router_sibling_traffic() {
        let g = chiplet_graph::GraphBuilder::new(1).build();
        let mut sim = Simulator::new(&g, small_config(0.3)).unwrap();
        sim.open_measurement_window();
        sim.run(2_000);
        let stats = sim.stats();
        assert!(stats.received_packets > 0, "sibling endpoints must exchange traffic");
    }

    #[test]
    fn deterministic_given_seed() {
        let g = gen::grid(3, 3);
        let run = || {
            let mut sim = Simulator::new(&g, small_config(0.15)).unwrap();
            sim.run(300);
            sim.open_measurement_window();
            sim.run(1_500);
            sim.stats()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn channel_loads_concentrate_on_the_bisection() {
        // 2x4 grid: the two middle column-crossing links carry the most
        // traffic under uniform random load.
        let g = gen::grid(2, 4);
        let mut sim = Simulator::new(&g, small_config(0.1)).unwrap();
        sim.run(8_000);
        let loads = sim.channel_loads();
        assert_eq!(loads.len(), 2 * g.num_edges());
        let load_of = |a: usize, b: usize| -> u64 {
            loads
                .iter()
                .filter(|&&(s, d, _)| (s, d) == (a, b) || (s, d) == (b, a))
                .map(|&(_, _, c)| c)
                .sum()
        };
        // Vertices: row-major, cols 0..4. Bisection edges: (1,2) and (5,6).
        let bisection = load_of(1, 2) + load_of(5, 6);
        let edge_links = load_of(0, 1) + load_of(4, 5);
        assert!(bisection > edge_links, "bisection {bisection} !> outer {edge_links}");
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let g = gen::grid(3, 3);
        let mut sim = Simulator::new(&g, small_config(0.15)).unwrap();
        sim.run(1_000);
        sim.open_measurement_window();
        sim.run(6_000);
        let p50 = sim.latency_percentile(0.50).unwrap();
        let p95 = sim.latency_percentile(0.95).unwrap();
        let p99 = sim.latency_percentile(0.99).unwrap();
        let stats = sim.stats();
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p99 <= stats.max_packet_latency as f64);
        // Median within a factor of the mean at moderate load.
        let mean = stats.avg_packet_latency.unwrap();
        assert!(p50 < 2.0 * mean && p50 > 0.3 * mean, "p50 {p50} vs mean {mean}");
    }

    #[test]
    fn latency_percentile_none_without_samples() {
        let g = gen::grid(2, 2);
        let mut sim = Simulator::new(&g, small_config(0.0)).unwrap();
        sim.open_measurement_window();
        sim.run(100);
        assert_eq!(sim.latency_percentile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "percentile must be in")]
    fn latency_percentile_rejects_zero() {
        let g = gen::grid(2, 2);
        let sim = Simulator::new(&g, small_config(0.1)).unwrap();
        let _ = sim.latency_percentile(0.0);
    }

    #[test]
    fn percentile_histogram_empty_yields_all_none() {
        let merged = vec![0u64; 16];
        assert_eq!(
            percentiles_from_histogram(&[0.01, 0.5, 0.99, 1.0], &merged, 0),
            vec![None; 4]
        );
        // No requested percentiles is fine too.
        assert_eq!(percentiles_from_histogram(&[], &merged, 0), Vec::<Option<f64>>::new());
    }

    #[test]
    fn percentile_histogram_single_sample_answers_every_p() {
        // One sample at latency 7: every percentile in (0, 1] is 7.
        let mut merged = vec![0u64; 16];
        merged[7] = 1;
        let out = percentiles_from_histogram(&[0.001, 0.5, 1.0], &merged, 1);
        assert_eq!(out, vec![Some(7.0); 3]);
    }

    #[test]
    fn percentile_histogram_p_one_is_the_maximum() {
        // p = 1.0 must land on the largest observed latency, and rounding
        // stragglers saturate instead of returning None.
        let mut merged = vec![0u64; 32];
        merged[3] = 10;
        merged[12] = 5;
        let out = percentiles_from_histogram(&[0.5, 1.0], &merged, 15);
        assert_eq!(out[0], Some(3.0));
        assert_eq!(out[1], Some(12.0));
    }

    #[test]
    fn percentile_histogram_output_is_nan_free_and_monotone() {
        let mut merged = vec![0u64; 64];
        for (latency, count) in [(2usize, 7u64), (5, 3), (9, 1), (40, 2)] {
            merged[latency] = count;
        }
        let ps = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let out = percentiles_from_histogram(&ps, &merged, 13);
        let values: Vec<f64> = out.iter().map(|v| v.expect("total > 0")).collect();
        assert!(values.iter().all(|v| v.is_finite()), "{values:?}");
        assert!(values.windows(2).all(|w| w[0] <= w[1]), "not monotone: {values:?}");
    }

    #[test]
    fn heterogeneous_latency_shows_up_in_packet_latency() {
        // Two-router line with slow vs. fast links: average latency tracks
        // the link latency.
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let latency_with = |link_cycles: u64| -> f64 {
            let cfg = SimConfig { pattern: TrafficPattern::Complement, ..small_config(0.05) };
            let mut sim = Simulator::with_link_specs(&g, cfg, |_, _| LinkSpec {
                latency: link_cycles,
                interval: 1,
            })
            .unwrap();
            sim.run(1_000);
            sim.open_measurement_window();
            sim.run(6_000);
            sim.drain(20_000);
            sim.stats().avg_packet_latency.unwrap()
        };
        let fast = latency_with(5);
        let slow = latency_with(55);
        // Complement traffic (2 endpoints/router) keeps half the pairs
        // local; crossing pairs add exactly the extra wire cycles.
        assert!(slow > fast + 20.0, "slow {slow} vs fast {fast}");
    }

    #[test]
    fn serialized_link_caps_throughput() {
        // Two routers, all traffic crossing the single link. Short 5-cycle
        // wires keep the credit loop from binding first; with interval 8 the
        // wire sustains 1/8 flit per cycle in each direction, shared by two
        // endpoints → 1/16 flit/cycle/endpoint at best.
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let cfg = SimConfig {
            pattern: TrafficPattern::Complement,
            link_latency: 5,
            injection_rate: 0.9,
            ..small_config(0.9)
        };
        let mut sim =
            Simulator::with_link_specs(&g, cfg, |_, _| LinkSpec { latency: 5, interval: 8 })
                .unwrap();
        sim.run(4_000);
        sim.open_measurement_window();
        sim.run(12_000);
        let stats = sim.stats();
        let per_endpoint = stats.accepted_flits_per_cycle_per_endpoint;
        assert!(per_endpoint <= 0.0626, "throughput {per_endpoint} above serialized cap");
        assert!(per_endpoint > 0.04, "throughput {per_endpoint} suspiciously low");
        // The same setup with full-bandwidth links must push much more.
        let mut fast = Simulator::new(&g, cfg).unwrap();
        fast.run(4_000);
        fast.open_measurement_window();
        fast.run(12_000);
        let fast_tp = fast.stats().accepted_flits_per_cycle_per_endpoint;
        assert!(fast_tp > 2.0 * per_endpoint, "fast {fast_tp} vs serialized {per_endpoint}");
    }

    #[test]
    fn invalid_link_specs_rejected() {
        let g = gen::grid(2, 2);
        let cfg = small_config(0.1);
        let zero_latency =
            Simulator::with_link_specs(&g, cfg, |_, _| LinkSpec { latency: 0, interval: 1 });
        assert!(matches!(zero_latency, Err(SimError::InvalidConfig(_))));
        let zero_interval =
            Simulator::with_link_specs(&g, cfg, |_, _| LinkSpec { latency: 27, interval: 0 });
        assert!(matches!(zero_interval, Err(SimError::InvalidConfig(_))));
    }

    #[test]
    fn fairness_index_separates_uniform_from_hotspot() {
        let g = gen::grid(3, 3);
        let run = |pattern: TrafficPattern| -> f64 {
            let cfg = SimConfig { pattern, ..small_config(0.1) };
            let mut sim = Simulator::new(&g, cfg).unwrap();
            sim.run(1_000);
            sim.open_measurement_window();
            sim.run(8_000);
            sim.fairness_index().expect("packets delivered")
        };
        let uniform = run(TrafficPattern::UniformRandom);
        let hotspot = run(TrafficPattern::Hotspot { num_hotspots: 1, fraction_permille: 900 });
        assert!(uniform > 0.95, "uniform fairness {uniform}");
        // 90% of traffic lands on one of 18 endpoints: index near 1/n.
        assert!(hotspot < 0.3, "hotspot fairness {hotspot}");
        assert!(uniform > hotspot);
    }

    #[test]
    fn fairness_index_none_without_deliveries() {
        let g = gen::grid(2, 2);
        let mut sim = Simulator::new(&g, small_config(0.0)).unwrap();
        sim.open_measurement_window();
        sim.run(100);
        assert_eq!(sim.fairness_index(), None);
    }

    #[test]
    fn new_traffic_patterns_deliver_packets() {
        let g = gen::grid(3, 3);
        for pattern in [
            TrafficPattern::BitComplement,
            TrafficPattern::BitReverse,
            TrafficPattern::Tornado,
            TrafficPattern::Hotspot { num_hotspots: 2, fraction_permille: 600 },
        ] {
            let cfg = SimConfig { pattern, ..small_config(0.05) };
            let mut sim = Simulator::new(&g, cfg).unwrap();
            sim.run(1_000);
            sim.open_measurement_window();
            sim.run(5_000);
            let stats = sim.stats();
            assert!(stats.received_packets > 0, "{pattern:?} delivered nothing");
            assert!(!sim.deadlock_suspected(), "{pattern:?} deadlocked");
        }
    }

    #[test]
    fn onoff_process_delivers_packets() {
        let g = gen::grid(2, 2);
        let cfg = SimConfig {
            process: ProcessKind::OnOff { alpha: 0.02, beta: 0.05 },
            ..small_config(0.1)
        };
        let mut sim = Simulator::new(&g, cfg).unwrap();
        sim.run(1_000);
        sim.open_measurement_window();
        sim.run(8_000);
        let stats = sim.stats();
        assert!(stats.received_packets > 0);
        // Long-run offered rate stays near the configured one.
        let ratio = stats.offered_flits_per_cycle_per_endpoint / 0.1;
        assert!((0.6..=1.4).contains(&ratio), "offered ratio {ratio}");
    }

    #[test]
    fn accepted_tracks_offered_below_saturation() {
        let g = gen::grid(3, 3);
        let mut sim = Simulator::new(&g, small_config(0.05)).unwrap();
        sim.run(2_000);
        sim.open_measurement_window();
        sim.run(8_000);
        let stats = sim.stats();
        let ratio = stats.accepted_flits_per_cycle_per_endpoint
            / stats.offered_flits_per_cycle_per_endpoint;
        assert!(ratio > 0.9, "accepted/offered {ratio} too low at light load");
    }
}
