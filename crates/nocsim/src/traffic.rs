//! Traffic patterns and the Bernoulli injection process.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::flit::EndpointId;

/// Spatial traffic pattern: how destinations are drawn for each packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TrafficPattern {
    /// Uniform random over all other endpoints (the paper's evaluation
    /// traffic).
    #[default]
    UniformRandom,
    /// Fixed permutation: endpoint `i` sends to `(i + E/2) mod E`
    /// (a bisection-stressing pattern akin to bit-complement).
    Complement,
    /// Endpoint `i` sends to `(i + k) mod E` where `k` is the number of
    /// endpoints per router — nearest-neighbour style, low path diversity.
    NeighborShift {
        /// Shift distance in endpoint ids.
        shift: usize,
    },
    /// Endpoint `i` sends to `E − 1 − i` (BookSim2's `bitcomp` generalised
    /// to arbitrary endpoint counts): every packet crosses the id-space
    /// midpoint, stressing the bisection deterministically.
    BitComplement,
    /// Endpoint `i` sends to the bit-reversal of `i` within
    /// `⌈log₂ E⌉` bits, folded into range with `mod E` (BookSim2's
    /// `bitrev`). Fixed points fall back to the successor endpoint.
    BitReverse,
    /// Endpoint `i` sends to `(i + ⌈E/2⌉ − 1) mod E` (the classic tornado
    /// pattern): near-maximal distance with a consistent rotational bias
    /// that defeats symmetric load balancing.
    Tornado,
    /// A fraction of traffic converges on a few hot endpoints; the rest is
    /// uniform random. Models shared-memory controllers or I/O chiplets on
    /// the arrangement perimeter drawing disproportionate traffic.
    Hotspot {
        /// Number of hot endpoints (ids `0..num_hotspots`).
        num_hotspots: usize,
        /// Share of packets directed at a hotspot, in permille (`0..=1000`).
        fraction_permille: u32,
    },
}

impl TrafficPattern {
    /// Canonical name, as accepted by the [`std::str::FromStr`] parser: `uniform`,
    /// `complement`, `shift:K`, `bitcomp`, `bitrev`, `tornado`,
    /// `hotspot:H:PERMILLE`. Round-trips through `parse`.
    #[must_use]
    pub fn name(&self) -> String {
        match *self {
            TrafficPattern::UniformRandom => "uniform".to_owned(),
            TrafficPattern::Complement => "complement".to_owned(),
            TrafficPattern::NeighborShift { shift } => format!("shift:{shift}"),
            TrafficPattern::BitComplement => "bitcomp".to_owned(),
            TrafficPattern::BitReverse => "bitrev".to_owned(),
            TrafficPattern::Tornado => "tornado".to_owned(),
            TrafficPattern::Hotspot { num_hotspots, fraction_permille } => {
                format!("hotspot:{num_hotspots}:{fraction_permille}")
            }
        }
    }

    /// Draws a destination for a packet from `src` among `num_endpoints`
    /// endpoints. Never returns `src` (self-traffic would not exercise the
    /// interconnect).
    ///
    /// # Panics
    ///
    /// Panics if `num_endpoints < 2`.
    pub fn destination(
        &self,
        src: EndpointId,
        num_endpoints: usize,
        rng: &mut StdRng,
    ) -> EndpointId {
        assert!(num_endpoints >= 2, "traffic requires at least two endpoints");
        match *self {
            TrafficPattern::UniformRandom => {
                let d = rng.gen_range(0..num_endpoints - 1);
                if d >= src {
                    d + 1
                } else {
                    d
                }
            }
            TrafficPattern::Complement => {
                let d = (src + num_endpoints / 2) % num_endpoints;
                if d == src {
                    (src + 1) % num_endpoints
                } else {
                    d
                }
            }
            TrafficPattern::NeighborShift { shift } => {
                let s = if shift % num_endpoints == 0 { 1 } else { shift % num_endpoints };
                (src + s) % num_endpoints
            }
            TrafficPattern::BitComplement => {
                let d = num_endpoints - 1 - src;
                if d == src {
                    (src + 1) % num_endpoints
                } else {
                    d
                }
            }
            TrafficPattern::BitReverse => {
                let bits = usize::BITS - (num_endpoints - 1).leading_zeros();
                let mut reversed = 0usize;
                for b in 0..bits {
                    if src & (1 << b) != 0 {
                        reversed |= 1 << (bits - 1 - b);
                    }
                }
                let d = reversed % num_endpoints;
                if d == src {
                    (src + 1) % num_endpoints
                } else {
                    d
                }
            }
            TrafficPattern::Tornado => {
                let half = num_endpoints.div_ceil(2);
                let d = (src + half.saturating_sub(1)) % num_endpoints;
                if d == src {
                    (src + 1) % num_endpoints
                } else {
                    d
                }
            }
            TrafficPattern::Hotspot { num_hotspots, fraction_permille } => {
                let hot = num_hotspots.clamp(1, num_endpoints - 1);
                let to_hotspot = rng.gen_range(0..1000) < fraction_permille.min(1000);
                if to_hotspot {
                    let d = rng.gen_range(0..hot);
                    if d == src {
                        // A hot endpoint never targets itself; redirect to
                        // the next hotspot (or the first non-hot endpoint
                        // when it is the only one).
                        if hot > 1 {
                            (d + 1) % hot
                        } else {
                            (d + 1) % num_endpoints
                        }
                    } else {
                        d
                    }
                } else {
                    let d = rng.gen_range(0..num_endpoints - 1);
                    if d >= src {
                        d + 1
                    } else {
                        d
                    }
                }
            }
        }
    }
}

impl std::str::FromStr for TrafficPattern {
    type Err = String;

    /// Parses the names produced by [`TrafficPattern::name`]. Parameterised
    /// patterns carry `:`-separated arguments: `shift:3`,
    /// `hotspot:4:500` (4 hot endpoints drawing 500‰ of the traffic).
    fn from_str(s: &str) -> Result<Self, String> {
        let mut parts = s.split(':');
        let head = parts.next().unwrap_or_default();
        let args: Vec<&str> = parts.collect();
        let wants = |n: usize| -> Result<(), String> {
            if args.len() == n {
                Ok(())
            } else {
                Err(format!("pattern {head:?} takes {n} parameter(s), got {}", args.len()))
            }
        };
        match head {
            "uniform" => wants(0).map(|()| TrafficPattern::UniformRandom),
            "complement" => wants(0).map(|()| TrafficPattern::Complement),
            "bitcomp" => wants(0).map(|()| TrafficPattern::BitComplement),
            "bitrev" => wants(0).map(|()| TrafficPattern::BitReverse),
            "tornado" => wants(0).map(|()| TrafficPattern::Tornado),
            "shift" => {
                wants(1)?;
                let shift = args[0]
                    .parse()
                    .map_err(|_| format!("shift distance {:?} is not a number", args[0]))?;
                Ok(TrafficPattern::NeighborShift { shift })
            }
            "hotspot" => {
                wants(2)?;
                let num_hotspots: usize = args[0]
                    .parse()
                    .map_err(|_| format!("hotspot count {:?} is not a number", args[0]))?;
                let fraction_permille: u32 = args[1]
                    .parse()
                    .map_err(|_| format!("hotspot permille {:?} is not a number", args[1]))?;
                if fraction_permille > 1000 {
                    return Err(format!("hotspot permille {fraction_permille} exceeds 1000"));
                }
                Ok(TrafficPattern::Hotspot { num_hotspots, fraction_permille })
            }
            other => Err(format!(
                "unknown traffic pattern {other:?} (expected uniform|complement|shift:K|\
                 bitcomp|bitrev|tornado|hotspot:H:PERMILLE)"
            )),
        }
    }
}

/// Temporal injection process: how packet generation is spread over time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ProcessKind {
    /// Independent Bernoulli trials every cycle (BookSim2's default).
    #[default]
    Bernoulli,
    /// Two-state Markov-modulated on/off process (BookSim2's `onoff`):
    /// bursty traffic with the same average rate. `alpha` is the per-cycle
    /// off→on probability, `beta` the on→off probability; while *on*, the
    /// source fires at rate `rate · (alpha + beta) / alpha` so the long-run
    /// average equals `rate`.
    OnOff {
        /// Off→on transition probability per cycle.
        alpha: f64,
        /// On→off transition probability per cycle.
        beta: f64,
    },
}

/// Injection process parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InjectionProcess {
    /// Offered load in flits per cycle per endpoint (`0.0..=1.0`).
    pub rate: f64,
    /// Packet length in flits (≥ 1).
    pub packet_size: usize,
    /// Temporal structure of the process.
    pub kind: ProcessKind,
}

/// Per-endpoint state of an on/off source (ignored for Bernoulli).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProcessState {
    /// Whether the modulating Markov chain is in the *on* state.
    pub on: bool,
    /// Last cycle of the current on-window (inclusive); only meaningful
    /// while `on` is `true`.
    pub on_until: u64,
}

/// Samples a Geometric(p) count over `{0, 1, 2, …}`: the number of failed
/// Bernoulli(p) trials before the first success. One RNG draw replaces the
/// whole run of per-cycle coin flips (inverse-CDF skip-ahead).
///
/// `p` must be in `(0, 1)`; callers special-case `p <= 0` (never fires)
/// and `p >= 1` (fires immediately).
fn geometric_skip(p: f64, rng: &mut StdRng) -> u64 {
    debug_assert!(p > 0.0 && p < 1.0);
    // 1 - u is in (0, 1], so ln(1 - u) is finite and <= 0.
    let u: f64 = rng.gen_range(0.0..1.0);
    let skip = ((1.0 - u).ln() / (1.0 - p).ln()).floor();
    if skip >= u64::MAX as f64 {
        u64::MAX / 4 // effectively "never" at simulation time scales
    } else {
        skip as u64
    }
}

impl InjectionProcess {
    /// Bernoulli-style constructor (the paper's configuration).
    #[must_use]
    pub fn bernoulli(rate: f64, packet_size: usize) -> Self {
        Self { rate, packet_size, kind: ProcessKind::Bernoulli }
    }

    /// The per-cycle packet-generation probability implied by the flit
    /// `rate` and `packet_size`.
    #[must_use]
    pub fn packet_rate(&self) -> f64 {
        (self.rate / self.packet_size as f64).clamp(0.0, 1.0)
    }

    /// Samples the cycle of the next packet generation at or after `from`,
    /// or `None` if the process never fires (zero rate, or an on/off chain
    /// that can never turn on). One call replaces the per-cycle Bernoulli
    /// trials of every cycle in `from..=arrival` — the generation sequence
    /// has exactly the law of those per-cycle trials, but the simulator
    /// only touches the endpoint at arrival cycles.
    pub fn next_arrival(
        &self,
        from: u64,
        state: &mut ProcessState,
        rng: &mut StdRng,
    ) -> Option<u64> {
        let p = self.packet_rate();
        if p <= 0.0 {
            return None;
        }
        match self.kind {
            ProcessKind::Bernoulli => {
                if p >= 1.0 {
                    return Some(from);
                }
                Some(from.saturating_add(geometric_skip(p, rng)))
            }
            ProcessKind::OnOff { alpha, beta } => {
                let on_fraction = alpha / (alpha + beta);
                let q = (p / on_fraction).clamp(0.0, 1.0);
                if q <= 0.0 {
                    return None;
                }
                let mut t = from;
                loop {
                    if state.on && t > state.on_until {
                        // The cycle right after the window hosts the
                        // off-transition itself (the beta draw succeeded
                        // there, consuming that cycle's single transition
                        // trial), so the first off→on trial is one cycle
                        // later — off sojourns are 1 + Geometric(alpha)
                        // cycles, exactly as in per-cycle simulation.
                        state.on = false;
                        t = t.max(state.on_until.saturating_add(2));
                    }
                    if !state.on {
                        // Off dwell: the chain turns on after a
                        // Geometric(alpha) number of off-state trials, and
                        // may fire in the turn-on cycle itself (matching
                        // the transition-then-fire order of per-cycle
                        // simulation). The on-window length is
                        // 1 + Geometric(beta) cycles.
                        if alpha <= 0.0 {
                            return None;
                        }
                        let start = if alpha >= 1.0 {
                            t
                        } else {
                            t.saturating_add(geometric_skip(alpha, rng))
                        };
                        let dwell = if beta >= 1.0 {
                            0
                        } else if beta <= 0.0 {
                            u64::MAX / 4
                        } else {
                            geometric_skip(beta, rng)
                        };
                        state.on = true;
                        state.on_until = start.saturating_add(dwell);
                        t = start;
                    }
                    // Next fire attempt success within the on-window?
                    let fire =
                        if q >= 1.0 { t } else { t.saturating_add(geometric_skip(q, rng)) };
                    if fire <= state.on_until {
                        return Some(fire);
                    }
                    // Window exhausted without a fire: resume just past it
                    // and let the expiry branch above consume the
                    // off-transition cycle.
                    t = state.on_until.saturating_add(1);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_never_self() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let d = TrafficPattern::UniformRandom.destination(3, 8, &mut rng);
            assert_ne!(d, 3);
            assert!(d < 8);
        }
    }

    #[test]
    fn uniform_covers_all_destinations() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[TrafficPattern::UniformRandom.destination(0, 6, &mut rng)] = true;
        }
        assert!(seen[1..].iter().all(|&s| s));
        assert!(!seen[0]);
    }

    #[test]
    fn complement_pairs_up() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(TrafficPattern::Complement.destination(1, 8, &mut rng), 5);
        assert_eq!(TrafficPattern::Complement.destination(5, 8, &mut rng), 1);
        // Degenerate 2-endpoint case still avoids self.
        assert_eq!(TrafficPattern::Complement.destination(0, 2, &mut rng), 1);
    }

    #[test]
    fn neighbor_shift_wraps_and_avoids_self() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = TrafficPattern::NeighborShift { shift: 2 };
        assert_eq!(p.destination(7, 8, &mut rng), 1);
        let degenerate = TrafficPattern::NeighborShift { shift: 8 };
        assert_eq!(degenerate.destination(0, 8, &mut rng), 1);
    }

    #[test]
    fn bit_complement_mirrors_id_space() {
        let mut rng = StdRng::seed_from_u64(40);
        assert_eq!(TrafficPattern::BitComplement.destination(0, 8, &mut rng), 7);
        assert_eq!(TrafficPattern::BitComplement.destination(7, 8, &mut rng), 0);
        assert_eq!(TrafficPattern::BitComplement.destination(2, 8, &mut rng), 5);
        // Odd endpoint count: the middle endpoint would map to itself.
        assert_eq!(TrafficPattern::BitComplement.destination(2, 5, &mut rng), 3);
    }

    #[test]
    fn bit_reverse_is_its_own_inverse_on_powers_of_two() {
        let mut rng = StdRng::seed_from_u64(41);
        let e = 16;
        for src in 0..e {
            let d = TrafficPattern::BitReverse.destination(src, e, &mut rng);
            assert!(d < e);
            assert_ne!(d, src);
            if TrafficPattern::BitReverse.destination(d, e, &mut rng) != src {
                // Only fixed points (palindromic ids) break the involution,
                // and those were redirected to src + 1.
                let redirected = (d + 1) % e == src || (src + 1) % e == d;
                assert!(redirected, "src {src} -> {d} not an involution");
            }
        }
        // 0b0001 (1) reversed in 4 bits is 0b1000 (8).
        assert_eq!(TrafficPattern::BitReverse.destination(1, 16, &mut rng), 8);
    }

    #[test]
    fn tornado_rotates_by_half() {
        let mut rng = StdRng::seed_from_u64(42);
        assert_eq!(TrafficPattern::Tornado.destination(0, 8, &mut rng), 3);
        assert_eq!(TrafficPattern::Tornado.destination(6, 8, &mut rng), 1);
        // Two endpoints: the half-rotation is a fixed point; fall back.
        assert_eq!(TrafficPattern::Tornado.destination(0, 2, &mut rng), 1);
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let mut rng = StdRng::seed_from_u64(43);
        let p = TrafficPattern::Hotspot { num_hotspots: 2, fraction_permille: 800 };
        let mut hot_hits = 0;
        let trials = 10_000;
        for _ in 0..trials {
            let d = p.destination(9, 16, &mut rng);
            assert_ne!(d, 9);
            if d < 2 {
                hot_hits += 1;
            }
        }
        // 80% directed + a sliver of the uniform remainder.
        let share = hot_hits as f64 / trials as f64;
        assert!(share > 0.75 && share < 0.90, "hotspot share {share}");
    }

    #[test]
    fn hotspot_source_never_targets_itself() {
        let mut rng = StdRng::seed_from_u64(44);
        let p = TrafficPattern::Hotspot { num_hotspots: 3, fraction_permille: 1000 };
        for _ in 0..2_000 {
            assert_ne!(p.destination(1, 8, &mut rng), 1);
        }
        // Degenerate: a single hotspot sending to itself redirects outward.
        let solo = TrafficPattern::Hotspot { num_hotspots: 1, fraction_permille: 1000 };
        for _ in 0..100 {
            assert_ne!(solo.destination(0, 4, &mut rng), 0);
        }
    }

    #[test]
    fn all_patterns_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(45);
        let patterns = [
            TrafficPattern::UniformRandom,
            TrafficPattern::Complement,
            TrafficPattern::NeighborShift { shift: 3 },
            TrafficPattern::BitComplement,
            TrafficPattern::BitReverse,
            TrafficPattern::Tornado,
            TrafficPattern::Hotspot { num_hotspots: 2, fraction_permille: 500 },
        ];
        for e in [2usize, 3, 5, 8, 13, 50] {
            for p in patterns {
                for src in 0..e {
                    for _ in 0..20 {
                        let d = p.destination(src, e, &mut rng);
                        assert!(d < e, "{p:?} E={e} src={src} -> {d}");
                        assert_ne!(d, src, "{p:?} E={e} self-traffic");
                    }
                }
            }
        }
    }

    /// All arrival cycles in `0..horizon` produced by skip-ahead sampling.
    fn arrivals(proc: &InjectionProcess, horizon: u64, seed: u64) -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state = ProcessState::default();
        let mut out = Vec::new();
        let mut from = 0u64;
        while let Some(t) = proc.next_arrival(from, &mut state, &mut rng) {
            if t >= horizon {
                break;
            }
            out.push(t);
            from = t + 1;
        }
        out
    }

    #[test]
    fn injection_rate_statistics() {
        let proc = InjectionProcess::bernoulli(0.4, 4);
        let trials = 200_000;
        let fires = arrivals(&proc, trials, 5).len();
        let expected = trials as f64 * 0.1;
        let tolerance = expected * 0.05;
        assert!(
            (fires as f64 - expected).abs() < tolerance,
            "fires {fires} vs expected {expected}"
        );
    }

    #[test]
    fn arrivals_are_strictly_increasing_and_skip_ahead() {
        let proc = InjectionProcess::bernoulli(0.02, 4);
        let cycles = arrivals(&proc, 100_000, 17);
        assert!(cycles.windows(2).all(|w| w[0] < w[1]));
        // Mean gap at packet rate 0.005 is 200 cycles: skip-ahead must
        // produce far fewer samples than cycles.
        assert!(cycles.len() < 1_000, "{} arrivals", cycles.len());
        assert!(cycles.len() > 200, "{} arrivals", cycles.len());
    }

    #[test]
    fn full_rate_fires_every_cycle() {
        let proc = InjectionProcess::bernoulli(1.0, 1);
        assert_eq!(arrivals(&proc, 50, 9), (0..50).collect::<Vec<u64>>());
    }

    #[test]
    fn zero_rate_never_fires() {
        let mut rng = StdRng::seed_from_u64(6);
        let proc = InjectionProcess::bernoulli(0.0, 4);
        let mut state = ProcessState::default();
        assert_eq!(proc.next_arrival(0, &mut state, &mut rng), None);
    }

    #[test]
    fn onoff_preserves_average_rate() {
        let proc = InjectionProcess {
            rate: 0.2,
            packet_size: 2,
            kind: ProcessKind::OnOff { alpha: 0.01, beta: 0.03 },
        };
        let trials = 400_000;
        let fires = arrivals(&proc, trials, 7).len();
        let expected = trials as f64 * 0.1; // 0.2 flits / 2 flits-per-packet
        let tolerance = expected * 0.08; // bursty: wider tolerance
        assert!(
            (fires as f64 - expected).abs() < tolerance,
            "fires {fires} vs expected {expected}"
        );
    }

    #[test]
    fn onoff_is_bursty() {
        // Compare the variance of per-window packet counts: on/off must be
        // burstier than Bernoulli at the same rate.
        let window = 100u64;
        let windows = 2_000u64;
        let count_variance = |kind: ProcessKind, seed: u64| -> f64 {
            let proc = InjectionProcess { rate: 0.2, packet_size: 1, kind };
            let mut counts = vec![0f64; windows as usize];
            for t in arrivals(&proc, window * windows, seed) {
                counts[(t / window) as usize] += 1.0;
            }
            let mean = counts.iter().sum::<f64>() / counts.len() as f64;
            counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / counts.len() as f64
        };
        let bernoulli = count_variance(ProcessKind::Bernoulli, 8);
        let onoff = count_variance(ProcessKind::OnOff { alpha: 0.02, beta: 0.05 }, 8);
        assert!(onoff > 2.0 * bernoulli, "onoff {onoff} vs bernoulli {bernoulli}");
    }

    #[test]
    fn onoff_rate_exact_at_high_transition_rates() {
        // alpha = beta = 0.5: off sojourns are 1 + Geometric(0.5) cycles
        // (the off-transition consumes a cycle). Dropping that mandatory
        // cycle would inflate the measured rate by 4/3 here, far outside
        // this tolerance — a regression guard on the skip-ahead law.
        let proc = InjectionProcess {
            rate: 0.2,
            packet_size: 1,
            kind: ProcessKind::OnOff { alpha: 0.5, beta: 0.5 },
        };
        let trials = 1_000_000;
        let measured = arrivals(&proc, trials, 11).len() as f64 / trials as f64;
        assert!((measured - 0.2).abs() < 0.01, "rate {measured} vs configured 0.2");
    }

    #[test]
    fn onoff_never_on_with_zero_alpha() {
        let mut rng = StdRng::seed_from_u64(10);
        let proc = InjectionProcess {
            rate: 0.5,
            packet_size: 1,
            kind: ProcessKind::OnOff { alpha: 0.0, beta: 0.1 },
        };
        let mut state = ProcessState::default();
        assert_eq!(proc.next_arrival(0, &mut state, &mut rng), None);
    }
}
