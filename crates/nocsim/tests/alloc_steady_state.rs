//! Proves the zero-allocation steady-state contract of the hot path: once
//! buffers, queues, scratch, and the event wheel have reached their
//! working capacities, `Simulator::run` performs **zero** heap
//! allocations. A counting global allocator measures an exact window on a
//! fixed seed, so this is deterministic — any regression (a per-cycle
//! `Vec`, a histogram realloc, a forgotten scratch buffer) fails loudly.
//!
//! This file holds exactly one test so no concurrent test can perturb the
//! allocation counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use chiplet_graph::gen;
use nocsim::{Probe, SimConfig, Simulator};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_step_never_allocates() {
    let g = gen::grid(4, 4);
    let config = SimConfig { injection_rate: 0.1, seed: 42, ..SimConfig::paper_defaults() };
    let mut sim = Simulator::new(&g, config).expect("valid config");

    // Run probe-attached: the observability contract says sampling lives
    // inside preallocated buffers, so it must not break this test. The
    // capacity covers the full run with headroom.
    sim.attach_probe(Probe::new(100, 256));

    // Warm up traffic, open the window (preallocates the latency
    // histograms), then let every growable buffer reach its working
    // capacity before measuring.
    sim.run(3_000);
    sim.open_measurement_window();
    sim.run(3_000);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    sim.run(4_000);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state run() must not allocate (got {} allocations over 4000 cycles)",
        after - before
    );

    // The run did real work (this is a busy network, not a no-op window).
    let stats = sim.stats();
    assert!(stats.received_packets > 1_000, "unexpectedly idle: {stats:?}");

    // And the probe recorded the whole run without reallocating: 10_000
    // cycles at one sample per 100 cycles.
    assert_eq!(sim.obs_windows().len(), 100, "probe sampled every boundary");
}
