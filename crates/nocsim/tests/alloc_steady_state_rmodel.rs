//! Zero-allocation steady state under every router model. The policy
//! dispatch (enum matches, per-router splitmix RNG, age-keyed
//! arbitration, bubble credit checks, deeper crossbar pipelines) must
//! not introduce a single heap allocation on the hot path — including
//! probe-attached runs.
//!
//! Like `alloc_steady_state.rs` this file holds exactly one test so no
//! concurrent test perturbs the allocation counter; the models run
//! sequentially inside it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use chiplet_graph::gen;
use nocsim::{Probe, RouterModelKind, SimConfig, Simulator};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_never_allocates_under_any_router_model() {
    let g = gen::grid(4, 4);
    for kind in RouterModelKind::ALL {
        let config = SimConfig {
            injection_rate: 0.1,
            seed: 42,
            router: kind.model(),
            ..SimConfig::paper_defaults()
        };
        let mut sim = Simulator::new(&g, config).expect("valid config");
        sim.attach_probe(Probe::new(100, 256));

        // Warm up, open the window, let every growable buffer reach its
        // working capacity, then measure an exact allocation window.
        sim.run(3_000);
        sim.open_measurement_window();
        sim.run(3_000);

        let before = ALLOCATIONS.load(Ordering::Relaxed);
        sim.run(4_000);
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "steady-state run() must not allocate under the {kind} model \
             (got {} allocations over 4000 cycles)",
            after - before
        );

        // The run did real work under this model.
        let stats = sim.stats();
        assert!(stats.received_packets > 1_000, "{kind} unexpectedly idle: {stats:?}");
        assert_eq!(sim.obs_windows().len(), 100, "{kind}: probe sampled every boundary");
    }
}
