//! The sharded sibling of `alloc_steady_state.rs`: once every shard's
//! buffers have reached their working capacities, a sharded
//! `ShardedSimulator::run` performs **zero** heap allocations — across
//! *all* threads. Worker threads are spawned at construction and the
//! boundary handoff buffers (outboxes and mailboxes) are preallocated to
//! the bounded-lag window, so the barrier-post-apply cycle is pure buffer
//! swapping. The counting allocator is global, so a single stray `Vec`
//! in any worker fails the test.
//!
//! This file holds exactly one test so no concurrent test can perturb the
//! allocation counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use chiplet_graph::gen;
use nocsim::{ShardedSimulator, SimConfig};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn sharded_steady_state_run_never_allocates() {
    let g = gen::grid(4, 4);
    let config = SimConfig { injection_rate: 0.1, seed: 42, ..SimConfig::paper_defaults() };
    let mut sim = ShardedSimulator::new(&g, config, 4).expect("valid config");

    // Warm up traffic, open the window (preallocates the latency
    // histograms), then let every growable buffer in every shard reach
    // its working capacity before measuring.
    sim.run(3_000);
    sim.open_measurement_window();
    sim.run(3_000);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    sim.run(4_000);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "sharded steady-state run() must not allocate (got {} allocations over 4000 cycles)",
        after - before
    );

    // The run did real work (this is a busy network, not a no-op window),
    // and the result is the serial one bit for bit.
    let stats = sim.stats();
    assert!(stats.received_packets > 1_000, "unexpectedly idle: {stats:?}");
    let mut serial = nocsim::Simulator::new(&g, config).expect("valid config");
    serial.run(3_000);
    serial.open_measurement_window();
    serial.run(7_000);
    assert_eq!(stats, serial.stats());
}
