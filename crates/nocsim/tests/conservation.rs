//! Property-based tests of the simulator's conservation and determinism
//! invariants on randomised topologies and loads: no flit is ever lost,
//! duplicated, or delivered faster than physically possible.

use chiplet_graph::{gen, Graph};
use nocsim::{MeasureConfig, RoutingKind, SimConfig, Simulator, TrafficPattern};
use proptest::prelude::*;

/// Random connected topology with 2..=12 routers.
fn arb_topology() -> impl Strategy<Value = Graph> {
    (2usize..=12).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec(0u8..100, max_edges).prop_map(move |coins| {
            let mut k = 0;
            let g = gen::from_coin(n, |_, _| {
                let edge = coins[k] < 35;
                k += 1;
                edge
            });
            let mut edges: Vec<_> = g.edges().collect();
            for i in 1..n {
                if !g.has_edge(i - 1, i) {
                    edges.push((i - 1, i));
                }
            }
            Graph::from_edges(n, &edges).expect("still simple")
        })
    })
}

fn config(rate: f64, seed: u64, routing: RoutingKind) -> SimConfig {
    SimConfig {
        vcs: 4,
        buffer_depth: 4,
        routing,
        injection_rate: rate,
        seed,
        source_queue_cap: 8,
        ..SimConfig::paper_defaults()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn no_flit_lost_or_duplicated(
        g in arb_topology(),
        rate in 0.02f64..0.5,
        seed in 0u64..1000,
    ) {
        let mut sim =
            Simulator::new(&g, config(rate, seed, RoutingKind::MinimalAdaptiveEscape))
                .expect("valid");
        sim.open_measurement_window();
        sim.run(1_500);
        let drained = sim.drain(60_000);
        prop_assert!(drained, "network failed to drain");
        let stats = sim.stats();
        prop_assert_eq!(stats.received_packets, stats.accepted_packets);
        prop_assert_eq!(
            stats.received_flits,
            stats.accepted_packets * sim.config().packet_size as u64
        );
    }

    #[test]
    fn latency_at_least_structural_minimum(
        g in arb_topology(),
        seed in 0u64..1000,
    ) {
        let cfg = config(0.05, seed, RoutingKind::MinimalAdaptiveEscape);
        let mut sim = Simulator::new(&g, cfg).expect("valid");
        sim.open_measurement_window();
        sim.run(4_000);
        sim.drain(60_000);
        let stats = sim.stats();
        prop_assume!(stats.measured_packets > 0);
        // Cheapest possible packet: sibling endpoints, H = 0:
        // 2·inj + router + (P − 1).
        let min = 2 * cfg.injection_latency
            + cfg.router_latency
            + (cfg.packet_size as u64 - 1);
        prop_assert!(stats.avg_packet_latency.expect("measured") >= min as f64);
    }

    #[test]
    fn determinism_across_identical_runs(
        g in arb_topology(),
        rate in 0.05f64..0.4,
        seed in 0u64..1000,
    ) {
        let run = || {
            let mut sim =
                Simulator::new(&g, config(rate, seed, RoutingKind::MinimalAdaptiveEscape))
                    .expect("valid");
            sim.run(200);
            sim.open_measurement_window();
            sim.run(1_200);
            sim.stats()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn updown_routing_also_conserves(
        g in arb_topology(),
        seed in 0u64..1000,
    ) {
        let mut sim =
            Simulator::new(&g, config(0.15, seed, RoutingKind::UpDownOnly)).expect("valid");
        sim.open_measurement_window();
        sim.run(1_500);
        prop_assert!(sim.drain(60_000));
        let stats = sim.stats();
        prop_assert_eq!(stats.received_packets, stats.accepted_packets);
    }

    #[test]
    fn throughput_monotone_in_offered_load_below_saturation(
        g in arb_topology(),
        seed in 0u64..1000,
    ) {
        // Accepted throughput at 4% offered must not be lower than at 2%
        // (both far below saturation for any topology here).
        let measure = |rate: f64| {
            let mut sim =
                Simulator::new(&g, config(rate, seed, RoutingKind::MinimalAdaptiveEscape))
                    .expect("valid");
            sim.run(1_000);
            sim.open_measurement_window();
            sim.run(6_000);
            sim.stats().accepted_flits_per_cycle_per_endpoint
        };
        let low = measure(0.02);
        let high = measure(0.04);
        prop_assert!(high >= low * 0.8, "low {low} high {high}");
    }
}

/// The escape mechanism must keep heavily loaded cyclic topologies live
/// where purely deterministic minimal routing is allowed to deadlock or
/// starve; run well past saturation and require continued ejection.
#[test]
fn adaptive_escape_stays_live_past_saturation() {
    // A ring of 8 routers: minimal routing has cyclic channel dependencies.
    let g = gen::cycle(8);
    let cfg = SimConfig {
        injection_rate: 1.0,
        vcs: 4,
        buffer_depth: 4,
        source_queue_cap: 8,
        pattern: TrafficPattern::Complement,
        ..SimConfig::paper_defaults()
    };
    let mut sim = Simulator::new(&g, cfg).expect("valid");
    sim.run(2_000);
    sim.open_measurement_window();
    sim.run(10_000);
    let stats = sim.stats();
    assert!(!sim.deadlock_suspected(), "escape VC must prevent deadlock");
    assert!(
        stats.received_packets > 100,
        "network must keep delivering past saturation (got {})",
        stats.received_packets
    );
}

/// Quick schedule sanity for the measurement harness on a fixed topology.
#[test]
fn measure_quick_schedule_is_usable() {
    let g = gen::grid(3, 3);
    let schedule = MeasureConfig::quick();
    let cfg = config(0.1, 7, RoutingKind::MinimalAdaptiveEscape);
    let point = nocsim::measure::run_load_point(&g, &cfg, &schedule).expect("valid");
    assert!(point.stats.received_packets > 0);
}

/// Regression: a 4-packet credit cycle found by `no_flit_lost_or_duplicated`
/// (8-router graph, rate ≈ 0.495, seed 986). Before output-VC allocation
/// required a credit, all four packets bound zero-credit adaptive VCs,
/// never returned to the allocation point, and the escape VC could not
/// save them. Must drain fully.
#[test]
fn regression_zero_credit_binding_deadlock() {
    let edges = [
        (0usize, 1usize),
        (0, 2),
        (0, 3),
        (0, 4),
        (0, 5),
        (0, 6),
        (1, 2),
        (2, 3),
        (2, 7),
        (3, 4),
        (4, 5),
        (4, 7),
        (5, 6),
        (6, 7),
    ];
    let g = Graph::from_edges(8, &edges).unwrap();
    let cfg = SimConfig {
        injection_rate: 0.49506137459632826,
        ..config(0.0, 986, RoutingKind::MinimalAdaptiveEscape)
    };
    let mut sim = Simulator::new(&g, cfg).unwrap();
    sim.open_measurement_window();
    sim.run(1_500);
    let drained = sim.drain(60_000);
    assert!(drained, "deadlock regression:\n{}", sim.blocked_packet_report());
    let stats = sim.stats();
    assert_eq!(stats.received_packets, stats.accepted_packets);
}
