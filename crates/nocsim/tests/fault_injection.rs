//! Behavioural suite for live fault injection: the event-driven path must
//! stay bit-identical to the poll-every-cycle reference under faults, no
//! flit may be lost without being counted as a fault drop, source
//! retransmission must eventually deliver every packet on a network that
//! stays connected, and a partitioned network must squelch cut-off
//! traffic and still drain instead of wedging the watchdog.

use chiplet_graph::{gen, Graph};
use nocsim::{
    FaultEvent, FaultPlan, FaultSchedule, FaultTarget, RetransmitConfig, SimConfig, Simulator,
};

fn config(rate: f64) -> SimConfig {
    SimConfig {
        vcs: 4,
        buffer_depth: 4,
        injection_rate: rate,
        seed: 0xFA117,
        source_queue_cap: 16,
        ..SimConfig::paper_defaults()
    }
}

fn link_fault(a: usize, b: usize, cycle: u64) -> FaultEvent {
    FaultEvent { cycle, target: FaultTarget::Link { a, b } }
}

fn router_fault(r: usize, cycle: u64) -> FaultEvent {
    FaultEvent { cycle, target: FaultTarget::Router(r) }
}

/// Run 2,000 cycles with `plan` installed and the measurement window
/// open from cycle 0 (so the window counters see every accepted packet
/// and every drop — exact conservation), then drain.
fn faulted_drained(
    g: &Graph,
    config: SimConfig,
    plan: FaultPlan,
    reference: bool,
) -> Simulator {
    let mut sim = Simulator::new(g, config).expect("valid config");
    sim.set_reference_stepping(reference);
    sim.install_fault_plan(plan);
    sim.open_measurement_window();
    sim.run(2_000);
    assert!(sim.drain(200_000), "faulted network failed to drain");
    sim
}

#[test]
fn event_path_matches_reference_under_faults() {
    let g = gen::grid(4, 4);
    let plan = FaultPlan::new(FaultSchedule::new(vec![
        link_fault(5, 6, 700),
        router_fault(10, 1_100),
    ]));
    let event = faulted_drained(&g, config(0.12), plan.clone(), false);
    let reference = faulted_drained(&g, config(0.12), plan, true);
    assert_eq!(event.stats(), reference.stats());
    assert_eq!(event.cycle(), reference.cycle());
    assert_eq!(event.channel_loads(), reference.channel_loads());
    assert!(event.stats().fault_dropped_packets > 0, "faults must actually bite");
}

#[test]
fn every_accepted_packet_is_delivered_or_counted_dropped() {
    // Without retransmission, drain completion means each accepted packet
    // either arrived whole or lost flits to a fault — nothing vanishes.
    let g = gen::grid(4, 4);
    let plan = FaultPlan::new(FaultSchedule::new(vec![
        link_fault(1, 2, 600),
        link_fault(9, 13, 900),
        router_fault(6, 1_200),
    ]));
    let sim = faulted_drained(&g, config(0.15), plan, false);
    let stats = sim.stats();
    assert_eq!(sim.flits_in_network(), 0);
    assert!(stats.link_fault_dropped_flits > 0);
    assert!(stats.router_fault_dropped_flits > 0);
    assert_eq!(
        stats.received_packets + stats.fault_dropped_packets,
        stats.accepted_packets,
        "conservation: delivered + dropped must cover every accepted packet"
    );
}

#[test]
fn retransmission_delivers_every_packet_on_connected_network() {
    // Killing one grid link leaves the network connected, so with source
    // retransmission enabled every accepted packet must eventually arrive.
    let g = gen::grid(4, 4);
    let plan = FaultPlan::new(FaultSchedule::new(vec![link_fault(5, 6, 700)]))
        .with_retransmit(RetransmitConfig { timeout: 512, max_attempts: 16 });
    let sim = faulted_drained(&g, config(0.12), plan, false);
    let stats = sim.stats();
    assert!(stats.fault_dropped_packets > 0, "fault must drop something to retransmit");
    assert!(stats.retransmitted_packets > 0);
    assert_eq!(
        stats.received_packets, stats.accepted_packets,
        "retransmission must recover every dropped packet"
    );
}

#[test]
fn partitioned_network_squelches_and_still_drains() {
    // Two triangles joined by one bridge; killing the bridge partitions
    // the network. Cross-partition flits die, sources stop sampling cut
    // destinations (counted as squelched), and drain must still succeed.
    let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
        .expect("simple graph");
    let plan = FaultPlan::new(FaultSchedule::new(vec![link_fault(2, 3, 500)]));
    let sim = faulted_drained(&g, config(0.2), plan, false);
    let stats = sim.stats();
    assert!(stats.squelched_packets > 0, "cut-off generation must be squelched");
    assert_eq!(stats.received_packets + stats.fault_dropped_packets, stats.accepted_packets);
}

#[test]
fn retransmission_gives_up_across_a_partition() {
    // With retransmission on, packets severed by a partition must be
    // abandoned (the destination is unreachable) rather than retried
    // forever — otherwise the drain watchdog would wedge.
    let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
        .expect("simple graph");
    let plan = FaultPlan::new(FaultSchedule::new(vec![link_fault(2, 3, 500)]))
        .with_retransmit(RetransmitConfig { timeout: 256, max_attempts: 16 });
    let sim = faulted_drained(&g, config(0.2), plan, false);
    let stats = sim.stats();
    assert!(stats.fault_dropped_packets > 0);
    assert!(
        stats.received_packets < stats.accepted_packets,
        "cross-partition packets cannot be delivered"
    );
}

#[test]
fn dead_router_endpoints_stop_offering() {
    // After a router dies its endpoints neither inject nor eject; traffic
    // among the survivors keeps flowing.
    let g = gen::grid(3, 3);
    let plan = FaultPlan::new(FaultSchedule::new(vec![router_fault(4, 500)]));
    let mut sim = Simulator::new(&g, config(0.1)).expect("valid config");
    sim.install_fault_plan(plan);
    sim.open_measurement_window();
    sim.run(2_000);
    let before = sim.stats().received_packets;
    assert!(sim.drain(200_000));
    let stats = sim.stats();
    assert!(stats.received_packets > before, "survivors must keep delivering");
    assert!(stats.router_fault_dropped_flits > 0);
    assert!(stats.squelched_packets > 0, "survivors must stop sampling the dead endpoints");
}

#[test]
fn same_cycle_fault_batch_applies_atomically() {
    // Several failures at one cycle replay in schedule order and the run
    // still satisfies conservation.
    let g = gen::grid(4, 4);
    let plan = FaultPlan::new(FaultSchedule::new(vec![
        link_fault(0, 1, 800),
        link_fault(10, 11, 800),
        router_fault(5, 800),
    ]));
    let sim = faulted_drained(&g, config(0.12), plan, false);
    let stats = sim.stats();
    assert!(stats.fault_dropped_packets > 0);
    assert_eq!(stats.received_packets + stats.fault_dropped_packets, stats.accepted_packets);
}

#[test]
fn fault_before_window_only_counts_window_drops() {
    // A fault during warmup biases nothing inside the window: the window
    // counters only record drops that happen after it opens.
    let g = gen::grid(4, 4);
    let plan = FaultPlan::new(FaultSchedule::new(vec![link_fault(5, 6, 200)]));
    let mut sim = Simulator::new(&g, config(0.1)).expect("valid config");
    sim.install_fault_plan(plan);
    sim.run(400);
    sim.open_measurement_window();
    sim.run(1_000);
    let stats = sim.stats();
    assert_eq!(stats.link_fault_dropped_flits, 0);
    assert_eq!(stats.fault_dropped_packets, 0);
    assert!(stats.received_packets > 0, "degraded network still delivers");
}

#[test]
fn faulted_load_point_is_identical_across_shard_counts() {
    use nocsim::measure::run_load_point_faulted;
    use nocsim::MeasureConfig;

    let g = gen::grid(4, 4);
    let base = config(0.1);
    let plan = FaultPlan::new(FaultSchedule::random_links(&g, 2, 2_500, 7));
    let serial = {
        let schedule = MeasureConfig::quick();
        run_load_point_faulted(&g, &base, &schedule, &plan).expect("valid")
    };
    assert!(serial.stats.fault_dropped_packets > 0, "plan must bite inside the window");
    for shards in [2, 4, 8] {
        let mut schedule = MeasureConfig::quick();
        schedule.shards = shards;
        let sharded = run_load_point_faulted(&g, &base, &schedule, &plan).expect("valid");
        assert_eq!(sharded.stats, serial.stats, "{shards} shards vs serial");
        assert_eq!(sharded.saturated, serial.saturated);
    }
}
