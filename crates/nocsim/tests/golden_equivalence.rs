//! Golden equivalence suite: the event-driven hot path must produce
//! *bit-identical* results to the forced poll-every-cycle reference path
//! ([`Simulator::set_reference_stepping`]) — same `NetworkStats`, same
//! per-channel loads, same latency percentiles — across routing kinds,
//! traffic patterns, injection processes, heterogeneous link specs, and
//! the drain schedule. Plus a property test pinning the new cached-
//! `next_due` [`DelayLine`] to a naive model of the original semantics.

use std::collections::VecDeque;

use chiplet_graph::{gen, Graph};
use nocsim::channel::{DelayLine, IDLE};
use nocsim::traffic::ProcessKind;
use nocsim::{LinkSpec, RouterModelKind, RoutingKind, SimConfig, Simulator, TrafficPattern};
use proptest::prelude::*;

fn base_config(rate: f64) -> SimConfig {
    SimConfig {
        vcs: 4,
        buffer_depth: 4,
        injection_rate: rate,
        seed: 0xBEEF,
        source_queue_cap: 16,
        ..SimConfig::paper_defaults()
    }
}

/// Everything the two paths must agree on, bit for bit.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    cycle: u64,
    stats: nocsim::NetworkStats,
    channel_loads: Vec<(usize, usize, u64)>,
    percentiles: Vec<Option<f64>>,
    in_network: usize,
    drained: Option<bool>,
}

/// Runs warmup + measurement (+ optional drain) under one stepping mode.
fn fingerprint(
    g: &Graph,
    config: SimConfig,
    spec: impl Fn(usize, usize) -> LinkSpec,
    reference: bool,
    drain: bool,
) -> Fingerprint {
    let mut sim = Simulator::with_link_specs(g, config, spec).expect("valid config");
    sim.set_reference_stepping(reference);
    sim.run(600);
    sim.open_measurement_window();
    sim.run(2_500);
    let drained = drain.then(|| sim.drain(40_000));
    Fingerprint {
        cycle: sim.cycle(),
        stats: sim.stats(),
        channel_loads: sim.channel_loads(),
        percentiles: sim.latency_percentiles(&[0.5, 0.9, 0.95, 0.99]),
        in_network: sim.flits_in_network(),
        drained,
    }
}

fn assert_equivalent(
    g: &Graph,
    config: SimConfig,
    spec: impl Fn(usize, usize) -> LinkSpec + Copy,
    drain: bool,
    label: &str,
) {
    let event = fingerprint(g, config, spec, false, drain);
    let reference = fingerprint(g, config, spec, true, drain);
    assert_eq!(event, reference, "event vs reference mismatch: {label}");
}

fn uniform_spec(config: &SimConfig) -> impl Fn(usize, usize) -> LinkSpec + Copy {
    let latency = config.link_latency;
    move |_, _| LinkSpec::uniform(latency)
}

#[test]
fn golden_across_routing_kinds() {
    let g = gen::grid(4, 4);
    for routing in [
        RoutingKind::MinimalAdaptiveEscape,
        RoutingKind::MinimalDeterministic,
        RoutingKind::UpDownOnly,
    ] {
        let config = SimConfig { routing, ..base_config(0.08) };
        assert_equivalent(&g, config, uniform_spec(&config), false, &format!("{routing:?}"));
    }
}

#[test]
fn golden_across_traffic_patterns() {
    let g = gen::grid(3, 3);
    for pattern in [
        TrafficPattern::UniformRandom,
        TrafficPattern::Complement,
        TrafficPattern::NeighborShift { shift: 3 },
        TrafficPattern::BitComplement,
        TrafficPattern::BitReverse,
        TrafficPattern::Tornado,
        TrafficPattern::Hotspot { num_hotspots: 2, fraction_permille: 700 },
    ] {
        let config = SimConfig { pattern, ..base_config(0.07) };
        assert_equivalent(&g, config, uniform_spec(&config), false, &format!("{pattern:?}"));
    }
}

#[test]
fn golden_across_injection_processes() {
    let g = gen::grid(3, 3);
    for process in [ProcessKind::Bernoulli, ProcessKind::OnOff { alpha: 0.02, beta: 0.05 }] {
        let config = SimConfig { process, ..base_config(0.1) };
        assert_equivalent(&g, config, uniform_spec(&config), false, &format!("{process:?}"));
    }
}

#[test]
fn golden_under_heterogeneous_link_specs() {
    // A ring with one serialized slow link and one fast link: exercises
    // per-line event horizons that differ per link.
    let g = gen::cycle(6);
    let config = base_config(0.08);
    let spec = |u: usize, v: usize| {
        if (u, v) == (0, 1) || (u, v) == (1, 0) {
            LinkSpec { latency: 41, interval: 5 }
        } else if (u, v) == (2, 3) || (u, v) == (3, 2) {
            LinkSpec { latency: 3, interval: 1 }
        } else {
            LinkSpec { latency: 27, interval: 2 }
        }
    };
    assert_equivalent(&g, config, spec, false, "heterogeneous links");
}

#[test]
fn golden_through_drain() {
    let g = gen::grid(3, 3);
    // High enough load that drain starts with real backlog everywhere.
    let config = base_config(0.25);
    assert_equivalent(&g, config, uniform_spec(&config), true, "drain");
}

#[test]
fn golden_at_fast_forward_loads() {
    // So little traffic that idle stretches dominate: exercises the
    // cycle fast-forward against exhaustive stepping.
    let g = gen::grid(3, 3);
    let config = base_config(0.004);
    assert_equivalent(&g, config, uniform_spec(&config), true, "fast-forward");
}

#[test]
fn golden_on_irregular_topology() {
    let g = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 0), (2, 4), (4, 5), (5, 6)])
        .expect("simple graph");
    let config = base_config(0.1);
    assert_equivalent(&g, config, uniform_spec(&config), true, "irregular");
}

#[test]
fn golden_across_router_models() {
    // Every router model — not just the default — must keep the
    // event-driven and reference paths bit-identical: the policy RNG and
    // the arbitration keys are pure functions of router state, never of
    // the stepping mode.
    let g = gen::grid(4, 4);
    for kind in RouterModelKind::ALL {
        let config = SimConfig { router: kind.model(), ..base_config(0.12) };
        assert_equivalent(&g, config, uniform_spec(&config), true, kind.name());
    }
}

#[test]
fn default_router_model_is_pinned_to_pre_axis_output() {
    // The exact statistics the pre-rmodel simulator produced for this
    // configuration (captured before the router axis landed). Any drift
    // in the default model — a reordered draw, a changed tie-break —
    // fails here even if event/reference stay self-consistent.
    let g = gen::grid(4, 4);
    let config = base_config(0.12);
    let fp = fingerprint(&g, config, uniform_spec(&config), false, false);
    assert_eq!(config.router, nocsim::RouterModel::default());
    assert_eq!(
        (fp.cycle, fp.stats.received_packets, fp.stats.received_flits, fp.in_network),
        PRE_AXIS_FINGERPRINT,
        "default router model drifted from the pre-axis simulator"
    );
    assert_eq!(fp.stats.avg_packet_latency.map(f64::to_bits), Some(PRE_AXIS_AVG_LATENCY_BITS));
}

/// `(cycle, received_packets, received_flits, flits_in_network)` of the
/// pre-axis simulator for `base_config(0.12)` on the 4×4 grid above.
const PRE_AXIS_FINGERPRINT: (u64, u64, u64, usize) = (3_100, 777, 3_107, 1_079);

/// Bit pattern of the pre-axis mean packet latency for the same run.
const PRE_AXIS_AVG_LATENCY_BITS: u64 = 4_650_781_536_326_259_343;

#[test]
fn switching_modes_mid_run_is_seamless() {
    // event → reference → event must equal a pure reference run: leaving
    // reference mode rebuilds the event wheel and active sets exactly.
    let g = gen::grid(3, 3);
    let config = base_config(0.12);
    let mut mixed = Simulator::new(&g, config).expect("valid");
    mixed.run(700);
    mixed.set_reference_stepping(true);
    mixed.run(700);
    mixed.set_reference_stepping(false);
    mixed.open_measurement_window();
    mixed.run(1_400);

    let mut pure = Simulator::new(&g, config).expect("valid");
    pure.set_reference_stepping(true);
    pure.run(1_400);
    pure.open_measurement_window();
    pure.run(1_400);

    assert_eq!(mixed.stats(), pure.stats());
    assert_eq!(mixed.channel_loads(), pure.channel_loads());
    assert_eq!(mixed.flits_in_network(), pure.flits_in_network());
}

// ── DelayLine vs naive model ────────────────────────────────────────────

/// The pre-optimization delay line, reimplemented as the obvious model:
/// a sorted queue scanned on every pop, no cached `next_due`.
struct ModelLine {
    latency: u64,
    interval: u64,
    queue: VecDeque<(u64, u32)>,
    last_delivery: Option<u64>,
}

impl ModelLine {
    fn new(latency: u64, interval: u64) -> Self {
        Self { latency, interval, queue: VecDeque::new(), last_delivery: None }
    }

    fn push(&mut self, cycle: u64, extra: u64, item: u32) {
        let mut deliver_at = cycle + self.latency + extra;
        if let Some(last) = self.last_delivery {
            deliver_at = deliver_at.max(last + self.interval);
        }
        self.last_delivery = Some(deliver_at);
        self.queue.push_back((deliver_at, item));
    }

    fn pop_due(&mut self, cycle: u64) -> Option<u32> {
        match self.queue.front() {
            Some(&(due, _)) if due <= cycle => self.queue.pop_front().map(|(_, x)| x),
            _ => None,
        }
    }

    fn next_due(&self) -> u64 {
        self.queue.front().map_or(IDLE, |&(due, _)| due)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn delay_line_matches_old_semantics(
        latency in 1u64..30,
        interval in 1u64..5,
        extra in 0u64..4,
        ops in proptest::collection::vec((proptest::bool::ANY, 0usize..3), 1..150),
    ) {
        let mut line: DelayLine<u32> = DelayLine::with_interval(latency, interval);
        let mut model = ModelLine::new(latency, interval);
        let mut next_item = 0u32;
        for (t, &(push, pops)) in ops.iter().enumerate() {
            let t = t as u64;
            if push {
                line.push(t, extra, next_item);
                model.push(t, extra, next_item);
                next_item += 1;
            }
            for _ in 0..pops {
                prop_assert_eq!(line.pop_due(t), model.pop_due(t));
            }
            prop_assert_eq!(line.in_flight(), model.queue.len());
            prop_assert_eq!(line.next_due(), model.next_due());
        }
        // Drain both far in the future; order and contents must agree.
        let late = ops.len() as u64 * (interval + 1) + latency + extra + 10;
        loop {
            let (a, b) = (line.pop_due(late), model.pop_due(late));
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        prop_assert!(line.is_empty());
    }
}
