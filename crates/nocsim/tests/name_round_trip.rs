//! `name()` ↔ `FromStr` round-trip contracts for the axis enums spec
//! files and `--patterns`-style flags parse. A drift between the two
//! would silently split the spec-file dialect from the output dialect,
//! so the whole parameter domain is pinned: exhaustively for the finite
//! variants, property-based for the parameterised ones.

use std::str::FromStr;

use nocsim::{OutputArbPolicy, RouterModelKind, RoutingKind, TrafficPattern, VcAllocPolicy};
use proptest::prelude::*;

const FINITE_PATTERNS: [TrafficPattern; 5] = [
    TrafficPattern::UniformRandom,
    TrafficPattern::Complement,
    TrafficPattern::BitComplement,
    TrafficPattern::BitReverse,
    TrafficPattern::Tornado,
];

#[test]
fn finite_patterns_round_trip() {
    for pattern in FINITE_PATTERNS {
        assert_eq!(TrafficPattern::from_str(&pattern.name()).unwrap(), pattern);
    }
}

proptest! {
    #[test]
    fn shift_patterns_round_trip(shift in 0usize..10_000) {
        let pattern = TrafficPattern::NeighborShift { shift };
        prop_assert_eq!(TrafficPattern::from_str(&pattern.name()).unwrap(), pattern);
    }

    #[test]
    fn hotspot_patterns_round_trip(num_hotspots in 0usize..1_000, permille in 0u32..=1_000) {
        let pattern =
            TrafficPattern::Hotspot { num_hotspots, fraction_permille: permille };
        prop_assert_eq!(TrafficPattern::from_str(&pattern.name()).unwrap(), pattern);
    }

    #[test]
    fn malformed_pattern_names_never_parse_to_defaults(
        letters in proptest::collection::vec(0u8..26, 1usize..12),
    ) {
        // Either the noise happens to be a canonical name (and parses to
        // the pattern carrying it), or parsing errors — it never falls
        // back to some default pattern.
        let noise: String = letters.iter().map(|&l| char::from(b'a' + l)).collect();
        if let Ok(parsed) = TrafficPattern::from_str(&noise) {
            prop_assert_eq!(parsed.name(), noise);
        }
    }
}

#[test]
fn routing_kinds_round_trip() {
    for routing in [
        RoutingKind::MinimalDeterministic,
        RoutingKind::MinimalAdaptiveEscape,
        RoutingKind::UpDownOnly,
    ] {
        assert_eq!(RoutingKind::from_str(routing.name()).unwrap(), routing);
        assert_eq!(RoutingKind::from_str(&routing.to_string()).unwrap(), routing);
    }
    assert!(RoutingKind::from_str("xy").is_err());
}

#[test]
fn router_model_kinds_round_trip() {
    for kind in RouterModelKind::ALL {
        assert_eq!(RouterModelKind::from_str(kind.name()).unwrap(), kind);
        assert_eq!(RouterModelKind::from_str(&kind.to_string()).unwrap(), kind);
    }
    assert!(RouterModelKind::from_str("default").is_err());
}

#[test]
fn router_policy_names_round_trip() {
    for policy in VcAllocPolicy::ALL {
        assert_eq!(VcAllocPolicy::from_str(policy.name()).unwrap(), policy);
        assert_eq!(VcAllocPolicy::from_str(&policy.to_string()).unwrap(), policy);
    }
    for policy in OutputArbPolicy::ALL {
        assert_eq!(OutputArbPolicy::from_str(policy.name()).unwrap(), policy);
        assert_eq!(OutputArbPolicy::from_str(&policy.to_string()).unwrap(), policy);
    }
    assert!(VcAllocPolicy::from_str("lru").is_err());
    assert!(OutputArbPolicy::from_str("age").is_err());
}

proptest! {
    #[test]
    fn malformed_router_model_names_never_parse_to_defaults(
        letters in proptest::collection::vec(0u8..26, 1usize..12),
    ) {
        // Same contract as the pattern names: noise either names exactly
        // the kind it parses to, or errors — never a silent fallback.
        let noise: String = letters.iter().map(|&l| char::from(b'a' + l)).collect();
        if let Ok(parsed) = RouterModelKind::from_str(&noise) {
            prop_assert_eq!(parsed.name(), noise);
        }
        if let Ok(parsed) = VcAllocPolicy::from_str(&noise) {
            prop_assert_eq!(parsed.name(), noise);
        }
        if let Ok(parsed) = OutputArbPolicy::from_str(&noise) {
            prop_assert_eq!(parsed.name(), noise);
        }
    }
}

#[test]
fn out_of_range_hotspot_permille_is_rejected() {
    assert!(TrafficPattern::from_str("hotspot:4:1001").is_err());
    assert!(TrafficPattern::from_str("hotspot:4").is_err());
    assert!(TrafficPattern::from_str("shift").is_err());
}
