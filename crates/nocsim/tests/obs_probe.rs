//! The observability probe's zero-perturbation contract: attaching a
//! probe changes no reported statistic, and per-shard window series merge
//! to the serial run's series for any shard count.

use chiplet_graph::gen;
use nocsim::{Probe, ShardedSimulator, SimConfig, Simulator};

fn config(rate: f64) -> SimConfig {
    SimConfig {
        vcs: 4,
        buffer_depth: 4,
        injection_rate: rate,
        seed: 0xB0B,
        source_queue_cap: 16,
        ..SimConfig::paper_defaults()
    }
}

#[test]
fn probe_attached_stats_bit_identical_to_probe_free() {
    let g = gen::grid(4, 4);
    let cfg = config(0.12);

    let mut plain = Simulator::new(&g, cfg).unwrap();
    let plain_stats = plain.run_to_window(600, 2_400);

    let mut probed = Simulator::new(&g, cfg).unwrap();
    probed.attach_probe(Probe::new(200, 64));
    let probed_stats = probed.run_to_window(600, 2_400);

    assert_eq!(probed_stats, plain_stats, "probe must not perturb NetworkStats");
    assert_eq!(probed.channel_loads(), plain.channel_loads());
    assert_eq!(
        probed.latency_percentiles(&[0.5, 0.95, 0.99]),
        plain.latency_percentiles(&[0.5, 0.95, 0.99])
    );
    assert_eq!(probed.flits_in_network(), plain.flits_in_network());

    // And the probe actually recorded: 3_000 cycles at one sample per
    // 200 cycles is 15 windows, ascending and contiguous.
    let windows = probed.obs_windows();
    assert_eq!(windows.len(), 15, "3000 cycles / 200 = 15 windows");
    for (i, w) in windows.iter().enumerate() {
        assert_eq!(w.window, i as u64);
        assert_eq!(w.end_cycle, (i as u64 + 1) * 200);
        assert_eq!(w.start_cycle, i as u64 * 200);
    }
    let received: u64 = windows.iter().map(|w| w.received_flits).sum();
    assert!(received > 0, "a loaded network must deliver in some window");
    let moved: u64 = windows.iter().map(|w| w.link_flits).sum();
    assert!(moved > 0, "flits must traverse links");
    assert!(windows.iter().any(|w| w.avg_latency().is_some()));
}

#[test]
fn probe_attached_reference_stepping_matches_event_path() {
    let g = gen::grid(3, 3);
    let cfg = config(0.1);

    let mut event = Simulator::new(&g, cfg).unwrap();
    event.attach_probe(Probe::new(150, 64));
    let event_stats = event.run_to_window(450, 1_500);

    let mut reference = Simulator::new(&g, cfg).unwrap();
    reference.set_reference_stepping(true);
    reference.attach_probe(Probe::new(150, 64));
    let reference_stats = reference.run_to_window(450, 1_500);

    assert_eq!(event_stats, reference_stats);
    assert_eq!(event.obs_windows(), reference.obs_windows());
}

#[test]
fn window_series_merges_to_serial_under_shard_counts() {
    let g = gen::grid(4, 4);
    let cfg = config(0.1);
    let probe = Probe::new(250, 64);

    let mut serial = Simulator::new(&g, cfg).unwrap();
    serial.attach_probe(probe);
    let serial_stats = serial.run_to_window(600, 2_000);
    let serial_windows = serial.obs_windows().to_vec();
    assert!(!serial_windows.is_empty());

    for shards in [1, 2, 4, 8] {
        let mut sharded = ShardedSimulator::new(&g, cfg, shards).unwrap();
        sharded.attach_probe(probe);
        let stats = sharded.run_to_window(600, 2_000);
        assert_eq!(stats, serial_stats, "{shards} shards");

        let merged = sharded.obs_windows();
        assert_eq!(merged.len(), serial_windows.len(), "{shards} shards");
        for (m, s) in merged.iter().zip(&serial_windows) {
            // Merge order: ascending window index, aligned boundaries.
            assert_eq!(m.window, s.window, "{shards} shards");
            assert_eq!(m.start_cycle, s.start_cycle, "{shards} shards");
            assert_eq!(m.end_cycle, s.end_cycle, "{shards} shards");
            // Endpoint-local counters and per-router / per-link tallies
            // are exact: every endpoint, router, and (source-counted)
            // link lives in exactly one shard and evolves bit-identically
            // to the serial run.
            assert_eq!(m.offered_packets, s.offered_packets, "{shards} shards");
            assert_eq!(m.accepted_packets, s.accepted_packets, "{shards} shards");
            assert_eq!(m.received_flits, s.received_flits, "{shards} shards");
            assert_eq!(m.received_packets, s.received_packets, "{shards} shards");
            assert_eq!(m.measured_packets, s.measured_packets, "{shards} shards");
            assert_eq!(m.latency_sum, s.latency_sum, "{shards} shards");
            assert_eq!(m.stalls, s.stalls, "{shards} shards");
            assert_eq!(m.link_flits, s.link_flits, "{shards} shards");
            assert_eq!(m.max_link_flits, s.max_link_flits, "{shards} shards");
            assert_eq!(m.buffered_flits, s.buffered_flits, "{shards} shards");
            // The in-network gauge sums each shard's owned region; a flit
            // mid-handoff between shards is attributed to neither, so the
            // merged gauge can only undercount the serial one.
            assert!(m.flits_in_network <= s.flits_in_network, "{shards} shards");
        }
    }
}

#[test]
fn detach_returns_series_and_stops_recording() {
    let g = gen::grid(3, 3);
    let mut sim = Simulator::new(&g, config(0.1)).unwrap();
    sim.attach_probe(Probe::new(100, 8));
    sim.run(500);
    let series = sim.detach_probe();
    assert_eq!(series.len(), 5);
    assert!(sim.obs_windows().is_empty());
    sim.run(500);
    assert!(sim.obs_windows().is_empty(), "detached probe must not record");
}

#[test]
fn capacity_caps_the_series() {
    let g = gen::grid(3, 3);
    let mut sim = Simulator::new(&g, config(0.1)).unwrap();
    sim.attach_probe(Probe::new(100, 3));
    sim.run(1_000);
    let windows = sim.obs_windows();
    assert_eq!(windows.len(), 3, "capacity bounds the series");
    assert_eq!(windows.last().unwrap().end_cycle, 300);
}

#[test]
fn stall_counters_accumulate_under_heavy_load() {
    let g = gen::grid(3, 3);
    let mut sim = Simulator::new(&g, config(0.9)).unwrap();
    sim.run(3_000);
    let stalls = sim.stall_counters();
    assert!(
        stalls.vc_starved + stalls.credit_starved + stalls.switch_lost > 0,
        "an overloaded grid must stall somewhere: {stalls:?}"
    );
}
