//! Statistical pinning of the traffic-pattern destination laws.
//!
//! Workload-vs-pattern comparisons (the `workload_comparison` binary
//! against `ablation_traffic`/`load_curves`) only mean something if the
//! synthetic generators draw from the distributions they claim. This
//! suite pins them:
//!
//! * **uniform** — chi-square goodness-of-fit against the uniform law
//!   over the `E − 1` non-self destinations;
//! * **hotspot** — chi-square against the exact mixture law
//!   `P(hot) = f/H + (1−f)/(E−1)`, `P(cold) = (1−f)/(E−1)`;
//! * **deterministic permutations** (complement, bitcomp, tornado,
//!   shift) — exact-count: every draw lands on the single analytic
//!   destination.
//!
//! Seeds are fixed, so the chi-square statistics are exact reproducible
//! numbers, not flaky samples; thresholds are the α = 0.001 quantiles,
//! far above any healthy generator's statistic.

use rand::rngs::StdRng;
use rand::SeedableRng;

use nocsim::TrafficPattern;

/// Draws `trials` destinations from `src` and returns per-destination
/// counts (index = endpoint id; `counts[src]` must stay 0).
fn destination_counts(
    pattern: TrafficPattern,
    src: usize,
    num_endpoints: usize,
    trials: u64,
    seed: u64,
) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = vec![0u64; num_endpoints];
    for _ in 0..trials {
        counts[pattern.destination(src, num_endpoints, &mut rng)] += 1;
    }
    counts
}

/// Pearson's chi-square statistic of `counts` against `expected`
/// (absolute counts; zero-expectation cells must have zero observations).
fn chi_square(counts: &[u64], expected: &[f64]) -> f64 {
    assert_eq!(counts.len(), expected.len());
    counts
        .iter()
        .zip(expected)
        .map(|(&obs, &exp)| {
            if exp == 0.0 {
                assert_eq!(obs, 0, "observation in a zero-probability cell");
                0.0
            } else {
                let d = obs as f64 - exp;
                d * d / exp
            }
        })
        .sum()
}

#[test]
fn uniform_destinations_are_uniform() {
    // E = 12, src = 5: 11 equiprobable destinations, 10 degrees of
    // freedom. χ²(10) at α = 0.001 is 29.59.
    let (e, src, trials) = (12usize, 5usize, 40_000u64);
    let counts = destination_counts(TrafficPattern::UniformRandom, src, e, trials, 0xC0FFEE);
    assert_eq!(counts[src], 0, "uniform drew self-traffic");
    let mut expected = vec![trials as f64 / (e - 1) as f64; e];
    expected[src] = 0.0;
    let chi2 = chi_square(&counts, &expected);
    assert!(chi2 < 29.59, "uniform destination law rejected: chi2 = {chi2:.2}");
}

#[test]
fn uniform_is_uniform_from_every_source() {
    // The off-by-one reindexing around `src` must not bias any source's
    // view. χ²(6) at α = 0.001 is 22.46.
    let (e, trials) = (8usize, 20_000u64);
    for src in 0..e {
        let counts =
            destination_counts(TrafficPattern::UniformRandom, src, e, trials, 7 + src as u64);
        let mut expected = vec![trials as f64 / (e - 1) as f64; e];
        expected[src] = 0.0;
        let chi2 = chi_square(&counts, &expected);
        assert!(chi2 < 22.46, "src {src}: chi2 = {chi2:.2}");
    }
}

#[test]
fn hotspot_matches_the_mixture_law() {
    // E = 16, H = 2, f = 0.8, src = 9 (cold): each hot endpoint gets
    // f/H + (1−f)/(E−1), each cold one (1−f)/(E−1). 14 degrees of
    // freedom; χ²(14) at α = 0.001 is 36.12.
    let (e, src, trials) = (16usize, 9usize, 60_000u64);
    let pattern = TrafficPattern::Hotspot { num_hotspots: 2, fraction_permille: 800 };
    let counts = destination_counts(pattern, src, e, trials, 0xDEAD);
    assert_eq!(counts[src], 0, "hotspot drew self-traffic");
    let (f, h) = (0.8, 2.0);
    let uniform_share = (1.0 - f) / (e - 1) as f64;
    let mut expected = vec![trials as f64 * uniform_share; e];
    expected[0] = trials as f64 * (f / h + uniform_share);
    expected[1] = trials as f64 * (f / h + uniform_share);
    expected[src] = 0.0;
    let chi2 = chi_square(&counts, &expected);
    assert!(chi2 < 36.12, "hotspot mixture law rejected: chi2 = {chi2:.2}");
}

#[test]
fn hotspot_full_direction_splits_hotspots_evenly() {
    // f = 1.0 from a cold source: all mass on the hotspots, uniform
    // among them. χ²(3) at α = 0.001 is 16.27.
    let (e, src, trials) = (12usize, 11usize, 40_000u64);
    let pattern = TrafficPattern::Hotspot { num_hotspots: 4, fraction_permille: 1000 };
    let counts = destination_counts(pattern, src, e, trials, 0xF00D);
    assert_eq!(counts[4..].iter().sum::<u64>(), 0, "directed traffic leaked off-hotspot");
    let mut expected = vec![0.0; e];
    for cell in expected.iter_mut().take(4) {
        *cell = trials as f64 / 4.0;
    }
    let chi2 = chi_square(&counts[..4], &expected[..4]);
    assert!(chi2 < 16.27, "within-hotspot law rejected: chi2 = {chi2:.2}");
}

/// The analytic destination law of a deterministic pattern.
type DestLaw = fn(usize, usize) -> usize;

#[test]
fn deterministic_patterns_hit_their_analytic_destination_exactly() {
    // Exact-count: a permutation pattern puts every draw on one endpoint.
    let e = 10usize;
    let cases: [(TrafficPattern, DestLaw); 4] = [
        (TrafficPattern::Complement, |src, e| (src + e / 2) % e),
        (TrafficPattern::BitComplement, |src, e| e - 1 - src),
        (TrafficPattern::Tornado, |src, e| (src + e.div_ceil(2) - 1) % e),
        (TrafficPattern::NeighborShift { shift: 3 }, |src, _| (src + 3) % 10),
    ];
    for (pattern, law) in cases {
        for src in 0..e {
            let counts = destination_counts(pattern, src, e, 50, 1);
            let mut want = law(src, e);
            if want == src {
                want = (src + 1) % e; // the documented self-traffic fallback
            }
            assert_eq!(
                counts[want], 50,
                "{pattern:?} from {src}: expected all 50 draws on {want}, got {counts:?}"
            );
        }
    }
}
