//! Golden determinism suite for the sharded engine: a
//! [`ShardedSimulator`] run must produce *bit-identical* results to the
//! serial [`Simulator`] — same `NetworkStats`, same per-channel loads,
//! same latency percentiles, same drain outcome and final cycle — across
//! routing kinds, traffic patterns, injection processes, heterogeneous
//! link specs, and shard counts 1/2/4/8. Plus a property test pinning
//! that *any* contiguous partition of the router ids (not just the
//! balanced cuts) yields identical statistics.

use chiplet_graph::{gen, Graph};
use nocsim::traffic::ProcessKind;
use nocsim::{
    LinkSpec, RouterModelKind, RoutingKind, ShardedSimulator, SimConfig, Simulator,
    TrafficPattern,
};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn base_config(rate: f64) -> SimConfig {
    SimConfig {
        vcs: 4,
        buffer_depth: 4,
        injection_rate: rate,
        seed: 0xBEEF,
        source_queue_cap: 16,
        ..SimConfig::paper_defaults()
    }
}

/// Everything serial and sharded must agree on, bit for bit.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    cycle: u64,
    stats: nocsim::NetworkStats,
    channel_loads: Vec<(usize, usize, u64)>,
    percentiles: Vec<Option<f64>>,
    in_network: usize,
    drained: Option<bool>,
}

fn serial_fingerprint(
    g: &Graph,
    config: SimConfig,
    spec: impl Fn(usize, usize) -> LinkSpec,
    drain: bool,
) -> Fingerprint {
    let mut sim = Simulator::with_link_specs(g, config, spec).expect("valid config");
    sim.run(600);
    sim.open_measurement_window();
    sim.run(2_500);
    let drained = drain.then(|| sim.drain(40_000));
    Fingerprint {
        cycle: sim.cycle(),
        stats: sim.stats(),
        channel_loads: sim.channel_loads(),
        percentiles: sim.latency_percentiles(&[0.5, 0.9, 0.95, 0.99]),
        in_network: sim.flits_in_network(),
        drained,
    }
}

fn sharded_fingerprint(
    g: &Graph,
    config: SimConfig,
    spec: impl Fn(usize, usize) -> LinkSpec,
    shards: usize,
    drain: bool,
) -> Fingerprint {
    let mut sim = ShardedSimulator::with_link_specs(g, config, spec, shards).expect("valid");
    sim.run(600);
    sim.open_measurement_window();
    sim.run(2_500);
    let drained = drain.then(|| sim.drain(40_000));
    Fingerprint {
        cycle: sim.cycle(),
        stats: sim.stats(),
        channel_loads: sim.channel_loads(),
        percentiles: sim.latency_percentiles(&[0.5, 0.9, 0.95, 0.99]),
        in_network: sim.flits_in_network(),
        drained,
    }
}

fn assert_equivalent(
    g: &Graph,
    config: SimConfig,
    spec: impl Fn(usize, usize) -> LinkSpec + Copy,
    drain: bool,
    label: &str,
) {
    let serial = serial_fingerprint(g, config, spec, drain);
    for shards in SHARD_COUNTS {
        let sharded = sharded_fingerprint(g, config, spec, shards, drain);
        assert_eq!(sharded, serial, "sharded ({shards}) vs serial mismatch: {label}");
    }
}

fn uniform_spec(config: &SimConfig) -> impl Fn(usize, usize) -> LinkSpec + Copy {
    let latency = config.link_latency;
    move |_, _| LinkSpec::uniform(latency)
}

#[test]
fn sharded_golden_across_routing_kinds() {
    let g = gen::grid(4, 4);
    for routing in [
        RoutingKind::MinimalAdaptiveEscape,
        RoutingKind::MinimalDeterministic,
        RoutingKind::UpDownOnly,
    ] {
        let config = SimConfig { routing, ..base_config(0.08) };
        assert_equivalent(&g, config, uniform_spec(&config), false, &format!("{routing:?}"));
    }
}

#[test]
fn sharded_golden_across_traffic_patterns() {
    let g = gen::grid(3, 3);
    for pattern in [
        TrafficPattern::UniformRandom,
        TrafficPattern::Complement,
        TrafficPattern::NeighborShift { shift: 3 },
        TrafficPattern::BitComplement,
        TrafficPattern::BitReverse,
        TrafficPattern::Tornado,
        TrafficPattern::Hotspot { num_hotspots: 2, fraction_permille: 700 },
    ] {
        let config = SimConfig { pattern, ..base_config(0.07) };
        assert_equivalent(&g, config, uniform_spec(&config), false, &format!("{pattern:?}"));
    }
}

#[test]
fn sharded_golden_across_injection_processes() {
    let g = gen::grid(3, 3);
    for process in [ProcessKind::Bernoulli, ProcessKind::OnOff { alpha: 0.02, beta: 0.05 }] {
        let config = SimConfig { process, ..base_config(0.1) };
        assert_equivalent(&g, config, uniform_spec(&config), false, &format!("{process:?}"));
    }
}

#[test]
fn sharded_golden_under_heterogeneous_link_specs() {
    // A ring cut by any contiguous partition has boundary links of
    // different latencies: exercises the min-latency lookahead window.
    let g = gen::cycle(6);
    let config = base_config(0.08);
    let spec = |u: usize, v: usize| {
        if (u, v) == (0, 1) || (u, v) == (1, 0) {
            LinkSpec { latency: 41, interval: 5 }
        } else if (u, v) == (2, 3) || (u, v) == (3, 2) {
            LinkSpec { latency: 3, interval: 1 }
        } else {
            LinkSpec { latency: 27, interval: 2 }
        }
    };
    assert_equivalent(&g, config, spec, false, "heterogeneous links");
}

#[test]
fn sharded_golden_across_router_models() {
    // Every router model must shard bit-identically: per-router policy
    // RNG state lives with the owning shard, boundary replays re-apply
    // the crossbar-deepened pipeline, and arbitration keys carry no
    // global state. Drain included — bubble flow control restricts
    // escape entry, so the drain path is the risky one.
    let g = gen::grid(4, 4);
    for kind in RouterModelKind::ALL {
        let config = SimConfig { router: kind.model(), ..base_config(0.12) };
        assert_equivalent(&g, config, uniform_spec(&config), true, kind.name());
    }
}

#[test]
fn sharded_golden_through_drain() {
    let g = gen::grid(3, 3);
    // High enough load that drain starts with real backlog in every
    // shard — exercises the global drain detection and cycle rewind.
    let config = base_config(0.25);
    assert_equivalent(&g, config, uniform_spec(&config), true, "drain");
}

#[test]
fn sharded_golden_at_fast_forward_loads() {
    // So little traffic that idle stretches dominate: per-shard
    // fast-forward must still stop at every window boundary handoff.
    let g = gen::grid(3, 3);
    let config = base_config(0.004);
    assert_equivalent(&g, config, uniform_spec(&config), true, "fast-forward");
}

#[test]
fn sharded_golden_on_irregular_topology() {
    let g = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 0), (2, 4), (4, 5), (5, 6)])
        .expect("simple graph");
    let config = base_config(0.1);
    assert_equivalent(&g, config, uniform_spec(&config), true, "irregular");
}

#[test]
fn sharded_golden_on_dense_topology() {
    // A complete graph puts every link on some shard boundary — the
    // worst case for handoff volume relative to local work.
    let g = gen::complete(6);
    let config = base_config(0.1);
    assert_equivalent(&g, config, uniform_spec(&config), true, "complete");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any contiguous partition — not just the balanced default cuts —
    /// yields statistics bit-identical to the serial run.
    #[test]
    fn any_contiguous_partition_is_bit_identical(
        raw_cuts in proptest::collection::vec(1usize..16, 1..5),
        rate in 0.02f64..0.2,
    ) {
        let g = gen::grid(4, 4);
        let n = g.num_vertices();
        let mut cuts: Vec<usize> = raw_cuts.into_iter().filter(|&c| c < n).collect();
        cuts.push(0);
        cuts.push(n);
        cuts.sort_unstable();
        cuts.dedup();
        let config = base_config(rate);
        let latency = config.link_latency;
        let spec = move |_: usize, _: usize| LinkSpec::uniform(latency);

        let mut serial = Simulator::new(&g, config).expect("valid");
        let serial_stats = serial.run_to_window(400, 1_200);

        let mut sharded =
            ShardedSimulator::with_partition(&g, config, spec, &cuts).expect("valid cuts");
        let sharded_stats = sharded.run_to_window(400, 1_200);

        prop_assert_eq!(sharded_stats, serial_stats, "cuts {:?}", cuts);
        prop_assert_eq!(sharded.flits_in_network(), serial.flits_in_network());
        prop_assert_eq!(sharded.channel_loads(), serial.channel_loads());
    }

    /// A run that loses at least one link mid-flight stays bit-identical
    /// across shard counts: failure events replay in global order at the
    /// sync barriers, so the doomed set, the rebuilt tables, and the
    /// post-fault traffic all match the serial engine exactly.
    #[test]
    fn mid_run_link_failure_is_bit_identical(
        rate in 0.03f64..0.2,
        fault_seed in 0u64..500,
        fault_cycle in 450u64..1_400,
        extra in 0u8..2,
        extra_cycle in 1_450u64..2_400,
    ) {
        use nocsim::{FaultPlan, FaultSchedule};

        let g = gen::grid(4, 4);
        let mut events =
            FaultSchedule::random_links(&g, 1, fault_cycle, fault_seed).events().to_vec();
        if extra == 1 {
            events.extend(
                FaultSchedule::random_links(&g, 1, extra_cycle, fault_seed ^ 0x5A5A)
                    .events()
                    .iter()
                    .copied(),
            );
        }
        let plan = FaultPlan::new(FaultSchedule::new(events));
        let config = base_config(rate);

        let mut serial = Simulator::new(&g, config).expect("valid");
        serial.install_fault_plan(plan.clone());
        let serial_stats = serial.run_to_window(400, 2_200);
        let serial_drained = serial.drain(60_000);

        for shards in SHARD_COUNTS {
            let latency = config.link_latency;
            let mut sharded = ShardedSimulator::with_link_specs(
                &g,
                config,
                move |_, _| LinkSpec::uniform(latency),
                shards,
            )
            .expect("valid");
            sharded.install_fault_plan(plan.clone());
            let sharded_stats = sharded.run_to_window(400, 2_200);
            let sharded_drained = sharded.drain(60_000);
            prop_assert_eq!(&sharded_stats, &serial_stats, "{} shards", shards);
            prop_assert_eq!(sharded_drained, serial_drained);
            prop_assert_eq!(sharded.cycle(), serial.cycle());
            prop_assert_eq!(sharded.channel_loads(), serial.channel_loads());
        }
    }
}
