//! Observability sinks: serialization of engine-level traces.
//!
//! The simulator-side probes live in `nocsim::obs` (they must see
//! simulator internals); this crate holds the dependency-free *sinks*
//! that turn recorded spans into files — currently the Chrome trace
//! event format, loadable by Perfetto (<https://ui.perfetto.dev>) and
//! `chrome://tracing`.
//!
//! The JSON emitter is hand-rolled (the workspace is offline and the
//! vendored serde has no serializer for nested dynamic documents) and
//! deterministic: span order, key order, and number formatting are all
//! fixed, so traces diff cleanly across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

/// One argument value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// A string argument (escaped on output).
    Str(String),
    /// An integer argument.
    Int(i64),
    /// A float argument (must be finite; NaN/inf are not valid JSON).
    Float(f64),
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::Int(v)
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::Float(v)
    }
}

/// One complete ("ph": "X") trace event: a named span on a track.
///
/// Times are nanoseconds relative to the trace epoch (the containing
/// run's start); the emitter converts to the microsecond `ts`/`dur`
/// fields the format requires, keeping sub-microsecond precision as
/// fractional digits.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Span name (shown on the slice).
    pub name: String,
    /// Comma-separated category list (Perfetto filter key).
    pub cat: &'static str,
    /// Process id track; one logical engine per trace, so usually 1.
    pub pid: u64,
    /// Thread id track: worker slot index, or 0 for the coordinator.
    pub tid: u64,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Extra key/value payload rendered under "args".
    pub args: Vec<(&'static str, ArgValue)>,
}

impl TraceSpan {
    /// A span with no arguments; fill `args` afterwards as needed.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        cat: &'static str,
        tid: u64,
        start_ns: u64,
        dur_ns: u64,
    ) -> Self {
        Self { name: name.into(), cat, pid: 1, tid, start_ns, dur_ns, args: Vec::new() }
    }
}

/// Collects [`TraceSpan`]s and renders them as one Chrome-trace JSON
/// document.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    spans: Vec<TraceSpan>,
    /// Optional human-readable names for thread tracks (tid -> name),
    /// emitted as `thread_name` metadata events.
    thread_names: Vec<(u64, String)>,
}

impl TraceBuilder {
    /// An empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a span. Spans may arrive in any order; the emitter sorts
    /// by start time so output is deterministic regardless of how worker
    /// threads interleaved.
    pub fn push(&mut self, span: TraceSpan) {
        self.spans.push(span);
    }

    /// Appends spans recorded elsewhere (e.g. a per-worker buffer).
    pub fn extend(&mut self, spans: impl IntoIterator<Item = TraceSpan>) {
        self.spans.extend(spans);
    }

    /// Names a thread track (rendered as `thread_name` metadata).
    pub fn name_thread(&mut self, tid: u64, name: impl Into<String>) {
        self.thread_names.push((tid, name.into()));
    }

    /// Number of spans collected so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no spans have been collected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Renders the trace as a Chrome trace event JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut spans: Vec<&TraceSpan> = self.spans.iter().collect();
        spans.sort_by_key(|s| (s.start_ns, s.tid, s.dur_ns));

        let mut out = String::with_capacity(64 + 160 * spans.len());
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for (tid, name) in &self.thread_names {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
            let _ = write!(out, "{tid}");
            out.push_str(",\"args\":{\"name\":");
            push_json_string(&mut out, name);
            out.push_str("}}");
        }
        for s in spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":");
            push_json_string(&mut out, &s.name);
            out.push_str(",\"cat\":");
            push_json_string(&mut out, s.cat);
            out.push_str(",\"ph\":\"X\",\"ts\":");
            push_us(&mut out, s.start_ns);
            out.push_str(",\"dur\":");
            push_us(&mut out, s.dur_ns);
            let _ = write!(out, ",\"pid\":{},\"tid\":{}", s.pid, s.tid);
            if !s.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (key, value)) in s.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_json_string(&mut out, key);
                    out.push(':');
                    match value {
                        ArgValue::Str(v) => push_json_string(&mut out, v),
                        ArgValue::Int(v) => {
                            let _ = write!(out, "{v}");
                        }
                        ArgValue::Float(v) => {
                            if v.is_finite() {
                                let _ = write!(out, "{v}");
                            } else {
                                out.push_str("null");
                            }
                        }
                    }
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

/// Writes `ns` nanoseconds as a microsecond JSON number with fixed
/// three-digit fractional precision (`1234567` → `1234.567`).
fn push_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

/// Appends `s` as a JSON string literal, escaping per RFC 8259.
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_is_a_valid_document() {
        let trace = TraceBuilder::new();
        assert!(trace.is_empty());
        assert_eq!(trace.to_json(), "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
    }

    #[test]
    fn spans_render_with_microsecond_times_and_args() {
        let mut trace = TraceBuilder::new();
        let mut span = TraceSpan::new("job 3", "pool", 2, 1_234_567, 2_000);
        span.args.push(("coord", ArgValue::from("HexaMesh n=37")));
        span.args.push(("shards", ArgValue::from(4u64)));
        trace.push(span);
        let json = trace.to_json();
        assert!(json.contains("\"name\":\"job 3\""), "{json}");
        assert!(json.contains("\"ts\":1234.567"), "{json}");
        assert!(json.contains("\"dur\":2.000"), "{json}");
        assert!(json.contains("\"tid\":2"), "{json}");
        assert!(json.contains("\"coord\":\"HexaMesh n=37\""), "{json}");
        assert!(json.contains("\"shards\":4"), "{json}");
    }

    #[test]
    fn output_is_sorted_by_start_time_not_insertion_order() {
        let mut trace = TraceBuilder::new();
        trace.push(TraceSpan::new("late", "t", 0, 500, 1));
        trace.push(TraceSpan::new("early", "t", 0, 100, 1));
        let json = trace.to_json();
        let early = json.find("early").unwrap();
        let late = json.find("late").unwrap();
        assert!(early < late, "{json}");
    }

    #[test]
    fn strings_are_escaped() {
        let mut trace = TraceBuilder::new();
        trace.push(TraceSpan::new("quote \" slash \\ tab \t", "t", 0, 0, 1));
        let json = trace.to_json();
        assert!(json.contains("quote \\\" slash \\\\ tab \\t"), "{json}");
    }

    #[test]
    fn thread_names_emit_metadata_events() {
        let mut trace = TraceBuilder::new();
        trace.name_thread(3, "worker 3");
        let json = trace.to_json();
        assert!(json.contains("\"thread_name\""), "{json}");
        assert!(json.contains("\"worker 3\""), "{json}");
    }

    #[test]
    fn nonfinite_floats_degrade_to_null() {
        let mut trace = TraceBuilder::new();
        let mut span = TraceSpan::new("s", "t", 0, 0, 1);
        span.args.push(("bad", ArgValue::Float(f64::NAN)));
        let json = trace.to_json();
        drop(json);
        trace.push(span);
        assert!(trace.to_json().contains("\"bad\":null"));
    }
}
