//! Weighted graphs and heavy-edge-matching coarsening.
//!
//! Coarsening contracts a maximal matching of the current graph, preferring
//! heavy edges (METIS's HEM rule). Vertex weights accumulate so balance can
//! be maintained across levels; parallel edges created by contraction merge
//! into one edge whose weight is the sum.

use chiplet_graph::Graph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// A small undirected graph with integer vertex and edge weights.
///
/// This is the internal representation used by the multilevel partitioner.
/// Adjacency is stored as per-vertex `(neighbor, edge_weight)` lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightedGraph {
    vertex_weights: Vec<u64>,
    adjacency: Vec<Vec<(usize, u64)>>,
}

impl WeightedGraph {
    /// Lifts an unweighted [`Graph`] into a weighted one (all weights 1).
    #[must_use]
    pub fn from_graph(g: &Graph) -> Self {
        let adjacency =
            g.vertices().map(|v| g.neighbors(v).iter().map(|&u| (u, 1)).collect()).collect();
        Self { vertex_weights: vec![1; g.num_vertices()], adjacency }
    }

    /// Builds directly from weights and adjacency lists.
    ///
    /// # Panics
    ///
    /// Panics if the adjacency is not symmetric or lengths disagree
    /// (internal invariant; debug builds only).
    #[must_use]
    pub fn new(vertex_weights: Vec<u64>, adjacency: Vec<Vec<(usize, u64)>>) -> Self {
        debug_assert_eq!(vertex_weights.len(), adjacency.len());
        Self { vertex_weights, adjacency }
    }

    /// Number of vertices.
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.vertex_weights.len()
    }

    /// Weight of vertex `v` (number of original vertices it represents).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn vertex_weight(&self, v: usize) -> u64 {
        self.vertex_weights[v]
    }

    /// Total vertex weight (equals the original vertex count).
    #[must_use]
    pub fn total_weight(&self) -> u64 {
        self.vertex_weights.iter().sum()
    }

    /// `(neighbor, edge_weight)` pairs of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn weighted_neighbors(&self, v: usize) -> &[(usize, u64)] {
        &self.adjacency[v]
    }

    /// Sum of edge weights (each undirected edge counted once).
    #[must_use]
    pub fn total_edge_weight(&self) -> u64 {
        let twice: u64 =
            self.adjacency.iter().flat_map(|adj| adj.iter().map(|&(_, w)| w)).sum();
        twice / 2
    }
}

/// One coarsening step: contracts a heavy-edge matching of `g`.
///
/// Returns the coarser graph and the fine→coarse vertex mapping, or `None`
/// if no edge could be matched (graph already edgeless) so coarsening cannot
/// make progress.
pub fn coarsen_step(
    g: &WeightedGraph,
    rng: &mut StdRng,
) -> Option<(WeightedGraph, Vec<usize>)> {
    let n = g.num_vertices();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);

    // match_of[v] = partner vertex, or v itself if unmatched.
    let mut match_of: Vec<usize> = (0..n).collect();
    let mut matched = vec![false; n];
    let mut matched_any = false;
    for &v in &order {
        if matched[v] {
            continue;
        }
        // Heaviest unmatched neighbour wins; ties to the lowest index for
        // determinism given the shuffled visit order.
        let best = g
            .weighted_neighbors(v)
            .iter()
            .filter(|&&(u, _)| !matched[u] && u != v)
            .max_by_key(|&&(u, w)| (w, std::cmp::Reverse(u)))
            .map(|&(u, _)| u);
        if let Some(u) = best {
            match_of[v] = u;
            match_of[u] = v;
            matched[v] = true;
            matched[u] = true;
            matched_any = true;
        }
    }
    if !matched_any {
        return None;
    }

    // Assign coarse ids: one per matched pair, one per unmatched vertex.
    let mut mapping = vec![usize::MAX; n];
    let mut next_id = 0;
    for v in 0..n {
        if mapping[v] != usize::MAX {
            continue;
        }
        mapping[v] = next_id;
        let partner = match_of[v];
        if partner != v {
            mapping[partner] = next_id;
        }
        next_id += 1;
    }

    // Accumulate vertex weights and merged adjacency.
    let mut vertex_weights = vec![0u64; next_id];
    for v in 0..n {
        vertex_weights[mapping[v]] += g.vertex_weight(v);
    }
    let mut adjacency: Vec<Vec<(usize, u64)>> = vec![Vec::new(); next_id];
    // Edge weights between coarse vertices, merged via a per-vertex scratch map.
    let mut scratch: Vec<u64> = vec![0; next_id];
    let mut touched: Vec<usize> = Vec::new();
    #[allow(clippy::needless_range_loop)] // coarse ids index adjacency and scratch
    for coarse in 0..next_id {
        touched.clear();
        for fine in 0..n {
            if mapping[fine] != coarse {
                continue;
            }
            for &(u, w) in g.weighted_neighbors(fine) {
                let cu = mapping[u];
                if cu == coarse {
                    continue; // contracted edge disappears
                }
                if scratch[cu] == 0 {
                    touched.push(cu);
                }
                scratch[cu] += w;
            }
        }
        for &cu in &touched {
            adjacency[coarse].push((cu, scratch[cu]));
            scratch[cu] = 0;
        }
        adjacency[coarse].sort_unstable();
    }

    Some((WeightedGraph::new(vertex_weights, adjacency), mapping))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_graph::gen;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn from_graph_preserves_structure() {
        let g = gen::cycle(6);
        let wg = WeightedGraph::from_graph(&g);
        assert_eq!(wg.num_vertices(), 6);
        assert_eq!(wg.total_weight(), 6);
        assert_eq!(wg.total_edge_weight(), 6);
        assert_eq!(wg.weighted_neighbors(0).len(), 2);
    }

    #[test]
    fn coarsen_preserves_total_weight() {
        let g = WeightedGraph::from_graph(&gen::grid(5, 5));
        let (coarse, mapping) = coarsen_step(&g, &mut rng()).unwrap();
        assert_eq!(coarse.total_weight(), 25);
        assert_eq!(mapping.len(), 25);
        assert!(coarse.num_vertices() < 25);
        // Every fine vertex maps to a valid coarse vertex.
        assert!(mapping.iter().all(|&c| c < coarse.num_vertices()));
    }

    #[test]
    fn coarsen_halves_matched_pairs() {
        // A perfect matching on a path of 4: at most 2 pairs -> 2 vertices.
        let g = WeightedGraph::from_graph(&gen::path(4));
        let (coarse, _) = coarsen_step(&g, &mut rng()).unwrap();
        assert!(coarse.num_vertices() >= 2 && coarse.num_vertices() <= 3);
    }

    #[test]
    fn coarsen_edgeless_returns_none() {
        let g = WeightedGraph::from_graph(&chiplet_graph::GraphBuilder::new(4).build());
        assert!(coarsen_step(&g, &mut rng()).is_none());
    }

    #[test]
    fn contracted_adjacency_is_symmetric_with_equal_weights() {
        let g = WeightedGraph::from_graph(&gen::grid(4, 6));
        let (coarse, _) = coarsen_step(&g, &mut rng()).unwrap();
        for v in 0..coarse.num_vertices() {
            for &(u, w) in coarse.weighted_neighbors(v) {
                let back = coarse
                    .weighted_neighbors(u)
                    .iter()
                    .find(|&&(x, _)| x == v)
                    .map(|&(_, wb)| wb);
                assert_eq!(back, Some(w), "asymmetric edge {v}<->{u}");
            }
        }
    }

    #[test]
    fn edge_weight_is_conserved_minus_contracted() {
        let fine = WeightedGraph::from_graph(&gen::complete(6));
        let before = fine.total_edge_weight();
        let (coarse, mapping) = coarsen_step(&fine, &mut rng()).unwrap();
        // Contracted edges (within a pair) vanish; all other edge weight is
        // preserved (possibly merged).
        let contracted: u64 = {
            let g = gen::complete(6);
            g.edges().filter(|&(u, v)| mapping[u] == mapping[v]).count() as u64
        };
        assert_eq!(coarse.total_edge_weight(), before - contracted);
    }
}
