//! Exact minimum balanced bisection by subset enumeration.
//!
//! For `n ≤ ~20` vertices we can afford to enumerate every balanced subset
//! containing vertex 0 (fixing vertex 0 removes the A/B symmetry):
//! `C(n−1, ⌊n/2⌋−1)` candidates, ≈ 92k at `n = 20`. This is the ground truth
//! the multilevel heuristic is validated against.

use chiplet_graph::cut::{Bipartition, Side};
use chiplet_graph::Graph;

use crate::balance_tolerance;

/// Exhaustively finds a minimum balanced bisection of `g`.
///
/// Balance: part sizes differ by at most `n % 2`. For odd `n` both
/// `⌈n/2⌉ / ⌊n/2⌋` splits are considered.
///
/// Returns the optimal partition and its cut size.
///
/// # Panics
///
/// Panics if `g` is empty (callers check; see [`crate::bisect`]) or has more
/// than 63 vertices (bitmask representation).
#[must_use]
pub fn exact_bisection(g: &Graph) -> (Bipartition, usize) {
    let n = g.num_vertices();
    assert!(n >= 1, "exact_bisection requires a non-empty graph");
    assert!(n <= 63, "exact_bisection is limited to 63 vertices");

    if n == 1 {
        return (Bipartition::from_sides(vec![Side::A]), 0);
    }

    let tolerance = balance_tolerance(n);
    // Sizes of part A (which contains vertex 0) compatible with balance.
    let low = (n - tolerance) / 2;
    let high = (n + tolerance) / 2;

    // Precompute neighbour bitmasks.
    let masks: Vec<u64> = g
        .vertices()
        .map(|v| {
            let mut m = 0u64;
            for &u in g.neighbors(v) {
                m |= 1 << u;
            }
            m
        })
        .collect();

    let mut best_mask = 1u64; // vertex 0 alone (may be out of balance range)
    let mut best_cut = usize::MAX;

    for size_a in low..=high.min(n) {
        if size_a == 0 {
            continue;
        }
        // Enumerate subsets of {1..n-1} of size size_a - 1, always adding
        // vertex 0, via Gosper's hack over (n-1)-bit words.
        let k = size_a - 1;
        enumerate_k_subsets(n - 1, k, |subset| {
            let mask = (subset << 1) | 1;
            let cut = cut_of_mask(g, &masks, mask);
            if cut < best_cut {
                best_cut = cut;
                best_mask = mask;
            }
        });
    }

    let partition =
        Bipartition::from_side_of(
            n,
            |v| {
                if best_mask >> v & 1 == 1 {
                    Side::A
                } else {
                    Side::B
                }
            },
        );
    debug_assert!(partition.is_balanced(tolerance));
    (partition, best_cut)
}

/// Calls `f` for every `bits`-bit word with exactly `k` bits set.
fn enumerate_k_subsets<F: FnMut(u64)>(bits: usize, k: usize, mut f: F) {
    if k == 0 {
        f(0);
        return;
    }
    if k > bits {
        return;
    }
    let limit = 1u64 << bits;
    let mut word: u64 = (1 << k) - 1;
    while word < limit {
        f(word);
        // Gosper's hack: next word with the same popcount.
        let c = word & word.wrapping_neg();
        let r = word + c;
        word = (((r ^ word) >> 2) / c) | r;
    }
}

/// Cut size of the bipartition encoded by `mask` (bit set ⇒ side A).
fn cut_of_mask(g: &Graph, masks: &[u64], mask: u64) -> usize {
    let mut cut = 0;
    for v in g.vertices() {
        if mask >> v & 1 == 1 {
            // Count neighbours on side B; each crossing edge counted once
            // because we only look from side A.
            cut += (masks[v] & !mask).count_ones() as usize;
        }
    }
    cut
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiplet_graph::gen;

    #[test]
    fn single_vertex() {
        let g = chiplet_graph::GraphBuilder::new(1).build();
        let (p, cut) = exact_bisection(&g);
        assert_eq!(cut, 0);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn path_graphs_cut_one() {
        for n in 2..=10usize {
            let (p, cut) = exact_bisection(&gen::path(n));
            assert_eq!(cut, 1, "path {n}");
            assert!(p.is_balanced(n % 2));
        }
    }

    #[test]
    fn even_cycles_cut_two() {
        for n in [4usize, 6, 8, 10, 12] {
            let (_, cut) = exact_bisection(&gen::cycle(n));
            assert_eq!(cut, 2, "cycle {n}");
        }
    }

    #[test]
    fn complete_graph_quarter_square() {
        // K_n balanced cut = ceil(n/2) * floor(n/2).
        for n in 2..=9usize {
            let (_, cut) = exact_bisection(&gen::complete(n));
            assert_eq!(cut, n.div_ceil(2) * (n / 2), "K_{n}");
        }
    }

    #[test]
    fn even_grids_match_sqrt_formula() {
        for k in [2usize, 4] {
            let (_, cut) = exact_bisection(&gen::grid(k, k));
            assert_eq!(cut, k);
        }
    }

    #[test]
    fn odd_grid_3x3() {
        // Known: min balanced (4/5) cut of the 3x3 mesh is 4 — above the
        // idealised sqrt(N)=3 of the paper's even-case formula.
        let (_, cut) = exact_bisection(&gen::grid(3, 3));
        assert_eq!(cut, 4);
    }

    #[test]
    fn star_graph_cut() {
        // Star with centre + 2k-1 leaves: balanced cut puts half the leaves
        // on the far side => cut = floor(n/2) for n even, where n = leaves+1.
        let g = gen::star(7); // 8 vertices
        let (_, cut) = exact_bisection(&g);
        assert_eq!(cut, 4);
    }

    #[test]
    fn disconnected_components_zero_cut() {
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (3, 4), (3, 5)]).unwrap();
        let (p, cut) = exact_bisection(&g);
        assert_eq!(cut, 0);
        assert!(p.is_balanced(0));
    }

    #[test]
    fn enumerate_counts_binomials() {
        let mut count = 0;
        enumerate_k_subsets(6, 3, |_| count += 1);
        assert_eq!(count, 20); // C(6,3)

        let mut count = 0;
        enumerate_k_subsets(5, 0, |w| {
            assert_eq!(w, 0);
            count += 1;
        });
        assert_eq!(count, 1);

        let mut count = 0;
        enumerate_k_subsets(3, 5, |_| count += 1);
        assert_eq!(count, 0); // k > bits
    }
}
